
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_space.cpp" "src/sim/CMakeFiles/hpm_sim.dir/address_space.cpp.o" "gcc" "src/sim/CMakeFiles/hpm_sim.dir/address_space.cpp.o.d"
  "/root/repo/src/sim/backing_store.cpp" "src/sim/CMakeFiles/hpm_sim.dir/backing_store.cpp.o" "gcc" "src/sim/CMakeFiles/hpm_sim.dir/backing_store.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/hpm_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/hpm_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/hpm_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/hpm_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/perf_monitor.cpp" "src/sim/CMakeFiles/hpm_sim.dir/perf_monitor.cpp.o" "gcc" "src/sim/CMakeFiles/hpm_sim.dir/perf_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
