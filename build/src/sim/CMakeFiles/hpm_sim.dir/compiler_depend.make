# Empty compiler generated dependencies file for hpm_sim.
# This may be replaced when dependencies are built.
