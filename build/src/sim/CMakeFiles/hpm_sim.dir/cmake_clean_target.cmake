file(REMOVE_RECURSE
  "libhpm_sim.a"
)
