file(REMOVE_RECURSE
  "CMakeFiles/hpm_sim.dir/address_space.cpp.o"
  "CMakeFiles/hpm_sim.dir/address_space.cpp.o.d"
  "CMakeFiles/hpm_sim.dir/backing_store.cpp.o"
  "CMakeFiles/hpm_sim.dir/backing_store.cpp.o.d"
  "CMakeFiles/hpm_sim.dir/cache.cpp.o"
  "CMakeFiles/hpm_sim.dir/cache.cpp.o.d"
  "CMakeFiles/hpm_sim.dir/machine.cpp.o"
  "CMakeFiles/hpm_sim.dir/machine.cpp.o.d"
  "CMakeFiles/hpm_sim.dir/perf_monitor.cpp.o"
  "CMakeFiles/hpm_sim.dir/perf_monitor.cpp.o.d"
  "libhpm_sim.a"
  "libhpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
