file(REMOVE_RECURSE
  "CMakeFiles/hpm_workloads.dir/applu.cpp.o"
  "CMakeFiles/hpm_workloads.dir/applu.cpp.o.d"
  "CMakeFiles/hpm_workloads.dir/compress.cpp.o"
  "CMakeFiles/hpm_workloads.dir/compress.cpp.o.d"
  "CMakeFiles/hpm_workloads.dir/ijpeg.cpp.o"
  "CMakeFiles/hpm_workloads.dir/ijpeg.cpp.o.d"
  "CMakeFiles/hpm_workloads.dir/mgrid.cpp.o"
  "CMakeFiles/hpm_workloads.dir/mgrid.cpp.o.d"
  "CMakeFiles/hpm_workloads.dir/su2cor.cpp.o"
  "CMakeFiles/hpm_workloads.dir/su2cor.cpp.o.d"
  "CMakeFiles/hpm_workloads.dir/swim.cpp.o"
  "CMakeFiles/hpm_workloads.dir/swim.cpp.o.d"
  "CMakeFiles/hpm_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/hpm_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/hpm_workloads.dir/tomcatv.cpp.o"
  "CMakeFiles/hpm_workloads.dir/tomcatv.cpp.o.d"
  "CMakeFiles/hpm_workloads.dir/workload.cpp.o"
  "CMakeFiles/hpm_workloads.dir/workload.cpp.o.d"
  "libhpm_workloads.a"
  "libhpm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
