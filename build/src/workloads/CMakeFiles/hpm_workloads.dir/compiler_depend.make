# Empty compiler generated dependencies file for hpm_workloads.
# This may be replaced when dependencies are built.
