
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/applu.cpp" "src/workloads/CMakeFiles/hpm_workloads.dir/applu.cpp.o" "gcc" "src/workloads/CMakeFiles/hpm_workloads.dir/applu.cpp.o.d"
  "/root/repo/src/workloads/compress.cpp" "src/workloads/CMakeFiles/hpm_workloads.dir/compress.cpp.o" "gcc" "src/workloads/CMakeFiles/hpm_workloads.dir/compress.cpp.o.d"
  "/root/repo/src/workloads/ijpeg.cpp" "src/workloads/CMakeFiles/hpm_workloads.dir/ijpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/hpm_workloads.dir/ijpeg.cpp.o.d"
  "/root/repo/src/workloads/mgrid.cpp" "src/workloads/CMakeFiles/hpm_workloads.dir/mgrid.cpp.o" "gcc" "src/workloads/CMakeFiles/hpm_workloads.dir/mgrid.cpp.o.d"
  "/root/repo/src/workloads/su2cor.cpp" "src/workloads/CMakeFiles/hpm_workloads.dir/su2cor.cpp.o" "gcc" "src/workloads/CMakeFiles/hpm_workloads.dir/su2cor.cpp.o.d"
  "/root/repo/src/workloads/swim.cpp" "src/workloads/CMakeFiles/hpm_workloads.dir/swim.cpp.o" "gcc" "src/workloads/CMakeFiles/hpm_workloads.dir/swim.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/hpm_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/hpm_workloads.dir/synthetic.cpp.o.d"
  "/root/repo/src/workloads/tomcatv.cpp" "src/workloads/CMakeFiles/hpm_workloads.dir/tomcatv.cpp.o" "gcc" "src/workloads/CMakeFiles/hpm_workloads.dir/tomcatv.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/hpm_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/hpm_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
