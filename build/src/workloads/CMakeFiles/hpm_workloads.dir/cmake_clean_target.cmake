file(REMOVE_RECURSE
  "libhpm_workloads.a"
)
