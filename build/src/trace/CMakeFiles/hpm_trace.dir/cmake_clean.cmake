file(REMOVE_RECURSE
  "CMakeFiles/hpm_trace.dir/trace.cpp.o"
  "CMakeFiles/hpm_trace.dir/trace.cpp.o.d"
  "libhpm_trace.a"
  "libhpm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
