# Empty compiler generated dependencies file for hpm_trace.
# This may be replaced when dependencies are built.
