file(REMOVE_RECURSE
  "libhpm_trace.a"
)
