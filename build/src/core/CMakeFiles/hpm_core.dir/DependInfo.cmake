
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/exact_profiler.cpp" "src/core/CMakeFiles/hpm_core.dir/exact_profiler.cpp.o" "gcc" "src/core/CMakeFiles/hpm_core.dir/exact_profiler.cpp.o.d"
  "/root/repo/src/core/nway_search.cpp" "src/core/CMakeFiles/hpm_core.dir/nway_search.cpp.o" "gcc" "src/core/CMakeFiles/hpm_core.dir/nway_search.cpp.o.d"
  "/root/repo/src/core/primes.cpp" "src/core/CMakeFiles/hpm_core.dir/primes.cpp.o" "gcc" "src/core/CMakeFiles/hpm_core.dir/primes.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/hpm_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/hpm_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sampler.cpp" "src/core/CMakeFiles/hpm_core.dir/sampler.cpp.o" "gcc" "src/core/CMakeFiles/hpm_core.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/objmap/CMakeFiles/hpm_objmap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
