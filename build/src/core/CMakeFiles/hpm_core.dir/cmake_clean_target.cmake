file(REMOVE_RECURSE
  "libhpm_core.a"
)
