file(REMOVE_RECURSE
  "CMakeFiles/hpm_core.dir/exact_profiler.cpp.o"
  "CMakeFiles/hpm_core.dir/exact_profiler.cpp.o.d"
  "CMakeFiles/hpm_core.dir/nway_search.cpp.o"
  "CMakeFiles/hpm_core.dir/nway_search.cpp.o.d"
  "CMakeFiles/hpm_core.dir/primes.cpp.o"
  "CMakeFiles/hpm_core.dir/primes.cpp.o.d"
  "CMakeFiles/hpm_core.dir/report.cpp.o"
  "CMakeFiles/hpm_core.dir/report.cpp.o.d"
  "CMakeFiles/hpm_core.dir/sampler.cpp.o"
  "CMakeFiles/hpm_core.dir/sampler.cpp.o.d"
  "libhpm_core.a"
  "libhpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
