# Empty dependencies file for hpm_core.
# This may be replaced when dependencies are built.
