# Empty dependencies file for hpm_harness.
# This may be replaced when dependencies are built.
