file(REMOVE_RECURSE
  "libhpm_harness.a"
)
