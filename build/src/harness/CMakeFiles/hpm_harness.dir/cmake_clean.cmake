file(REMOVE_RECURSE
  "CMakeFiles/hpm_harness.dir/experiment.cpp.o"
  "CMakeFiles/hpm_harness.dir/experiment.cpp.o.d"
  "libhpm_harness.a"
  "libhpm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
