file(REMOVE_RECURSE
  "libhpm_util.a"
)
