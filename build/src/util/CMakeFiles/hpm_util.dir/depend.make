# Empty dependencies file for hpm_util.
# This may be replaced when dependencies are built.
