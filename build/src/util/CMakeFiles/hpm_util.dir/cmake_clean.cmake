file(REMOVE_RECURSE
  "CMakeFiles/hpm_util.dir/cli.cpp.o"
  "CMakeFiles/hpm_util.dir/cli.cpp.o.d"
  "CMakeFiles/hpm_util.dir/stats.cpp.o"
  "CMakeFiles/hpm_util.dir/stats.cpp.o.d"
  "CMakeFiles/hpm_util.dir/table.cpp.o"
  "CMakeFiles/hpm_util.dir/table.cpp.o.d"
  "libhpm_util.a"
  "libhpm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
