file(REMOVE_RECURSE
  "CMakeFiles/hpm_objmap.dir/heap_tracker.cpp.o"
  "CMakeFiles/hpm_objmap.dir/heap_tracker.cpp.o.d"
  "CMakeFiles/hpm_objmap.dir/object_map.cpp.o"
  "CMakeFiles/hpm_objmap.dir/object_map.cpp.o.d"
  "CMakeFiles/hpm_objmap.dir/rbtree.cpp.o"
  "CMakeFiles/hpm_objmap.dir/rbtree.cpp.o.d"
  "CMakeFiles/hpm_objmap.dir/symbol_table.cpp.o"
  "CMakeFiles/hpm_objmap.dir/symbol_table.cpp.o.d"
  "libhpm_objmap.a"
  "libhpm_objmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpm_objmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
