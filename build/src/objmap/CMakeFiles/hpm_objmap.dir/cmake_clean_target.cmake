file(REMOVE_RECURSE
  "libhpm_objmap.a"
)
