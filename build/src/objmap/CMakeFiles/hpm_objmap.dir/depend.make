# Empty dependencies file for hpm_objmap.
# This may be replaced when dependencies are built.
