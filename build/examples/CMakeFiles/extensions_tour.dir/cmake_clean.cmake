file(REMOVE_RECURSE
  "CMakeFiles/extensions_tour.dir/extensions_tour.cpp.o"
  "CMakeFiles/extensions_tour.dir/extensions_tour.cpp.o.d"
  "extensions_tour"
  "extensions_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
