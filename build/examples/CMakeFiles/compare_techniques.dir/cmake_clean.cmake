file(REMOVE_RECURSE
  "CMakeFiles/compare_techniques.dir/compare_techniques.cpp.o"
  "CMakeFiles/compare_techniques.dir/compare_techniques.cpp.o.d"
  "compare_techniques"
  "compare_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
