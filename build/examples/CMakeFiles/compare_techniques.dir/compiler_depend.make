# Empty compiler generated dependencies file for compare_techniques.
# This may be replaced when dependencies are built.
