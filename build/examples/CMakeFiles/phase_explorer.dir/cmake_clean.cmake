file(REMOVE_RECURSE
  "CMakeFiles/phase_explorer.dir/phase_explorer.cpp.o"
  "CMakeFiles/phase_explorer.dir/phase_explorer.cpp.o.d"
  "phase_explorer"
  "phase_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
