# Empty compiler generated dependencies file for phase_explorer.
# This may be replaced when dependencies are built.
