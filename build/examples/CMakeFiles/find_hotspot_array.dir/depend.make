# Empty dependencies file for find_hotspot_array.
# This may be replaced when dependencies are built.
