file(REMOVE_RECURSE
  "CMakeFiles/find_hotspot_array.dir/find_hotspot_array.cpp.o"
  "CMakeFiles/find_hotspot_array.dir/find_hotspot_array.cpp.o.d"
  "find_hotspot_array"
  "find_hotspot_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_hotspot_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
