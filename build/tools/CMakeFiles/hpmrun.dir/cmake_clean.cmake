file(REMOVE_RECURSE
  "CMakeFiles/hpmrun.dir/hpmrun.cpp.o"
  "CMakeFiles/hpmrun.dir/hpmrun.cpp.o.d"
  "hpmrun"
  "hpmrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpmrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
