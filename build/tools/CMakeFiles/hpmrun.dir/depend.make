# Empty dependencies file for hpmrun.
# This may be replaced when dependencies are built.
