file(REMOVE_RECURSE
  "CMakeFiles/fig_prime_sampling.dir/bench/fig_prime_sampling.cpp.o"
  "CMakeFiles/fig_prime_sampling.dir/bench/fig_prime_sampling.cpp.o.d"
  "bench/fig_prime_sampling"
  "bench/fig_prime_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_prime_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
