# Empty dependencies file for fig_prime_sampling.
# This may be replaced when dependencies are built.
