file(REMOVE_RECURSE
  "CMakeFiles/table1_quality.dir/bench/table1_quality.cpp.o"
  "CMakeFiles/table1_quality.dir/bench/table1_quality.cpp.o.d"
  "bench/table1_quality"
  "bench/table1_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
