# Empty compiler generated dependencies file for ablation_boundary_adjust.
# This may be replaced when dependencies are built.
