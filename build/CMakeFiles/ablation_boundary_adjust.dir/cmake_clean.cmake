file(REMOVE_RECURSE
  "CMakeFiles/ablation_boundary_adjust.dir/bench/ablation_boundary_adjust.cpp.o"
  "CMakeFiles/ablation_boundary_adjust.dir/bench/ablation_boundary_adjust.cpp.o.d"
  "bench/ablation_boundary_adjust"
  "bench/ablation_boundary_adjust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_boundary_adjust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
