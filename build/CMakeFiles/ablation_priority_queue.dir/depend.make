# Empty dependencies file for ablation_priority_queue.
# This may be replaced when dependencies are built.
