file(REMOVE_RECURSE
  "CMakeFiles/ablation_priority_queue.dir/bench/ablation_priority_queue.cpp.o"
  "CMakeFiles/ablation_priority_queue.dir/bench/ablation_priority_queue.cpp.o.d"
  "bench/ablation_priority_queue"
  "bench/ablation_priority_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_priority_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
