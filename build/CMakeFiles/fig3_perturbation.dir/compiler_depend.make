# Empty compiler generated dependencies file for fig3_perturbation.
# This may be replaced when dependencies are built.
