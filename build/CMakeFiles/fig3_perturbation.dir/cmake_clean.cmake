file(REMOVE_RECURSE
  "CMakeFiles/fig3_perturbation.dir/bench/fig3_perturbation.cpp.o"
  "CMakeFiles/fig3_perturbation.dir/bench/fig3_perturbation.cpp.o.d"
  "bench/fig3_perturbation"
  "bench/fig3_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
