file(REMOVE_RECURSE
  "CMakeFiles/micro_components.dir/bench/micro_components.cpp.o"
  "CMakeFiles/micro_components.dir/bench/micro_components.cpp.o.d"
  "bench/micro_components"
  "bench/micro_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
