# Empty dependencies file for ablation_phase_heuristic.
# This may be replaced when dependencies are built.
