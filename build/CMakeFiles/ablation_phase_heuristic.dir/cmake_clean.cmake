file(REMOVE_RECURSE
  "CMakeFiles/ablation_phase_heuristic.dir/bench/ablation_phase_heuristic.cpp.o"
  "CMakeFiles/ablation_phase_heuristic.dir/bench/ablation_phase_heuristic.cpp.o.d"
  "bench/ablation_phase_heuristic"
  "bench/ablation_phase_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phase_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
