file(REMOVE_RECURSE
  "CMakeFiles/fig4_cost.dir/bench/fig4_cost.cpp.o"
  "CMakeFiles/fig4_cost.dir/bench/fig4_cost.cpp.o.d"
  "bench/fig4_cost"
  "bench/fig4_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
