# Empty compiler generated dependencies file for fig4_cost.
# This may be replaced when dependencies are built.
