file(REMOVE_RECURSE
  "CMakeFiles/ablation_timeshare.dir/bench/ablation_timeshare.cpp.o"
  "CMakeFiles/ablation_timeshare.dir/bench/ablation_timeshare.cpp.o.d"
  "bench/ablation_timeshare"
  "bench/ablation_timeshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timeshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
