# Empty dependencies file for ablation_timeshare.
# This may be replaced when dependencies are built.
