
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_nway.cpp" "CMakeFiles/table2_nway.dir/bench/table2_nway.cpp.o" "gcc" "CMakeFiles/table2_nway.dir/bench/table2_nway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/hpm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hpm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/objmap/CMakeFiles/hpm_objmap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
