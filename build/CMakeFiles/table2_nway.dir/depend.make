# Empty dependencies file for table2_nway.
# This may be replaced when dependencies are built.
