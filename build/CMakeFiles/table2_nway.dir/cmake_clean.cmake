file(REMOVE_RECURSE
  "CMakeFiles/table2_nway.dir/bench/table2_nway.cpp.o"
  "CMakeFiles/table2_nway.dir/bench/table2_nway.cpp.o.d"
  "bench/table2_nway"
  "bench/table2_nway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_nway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
