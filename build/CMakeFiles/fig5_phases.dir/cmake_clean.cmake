file(REMOVE_RECURSE
  "CMakeFiles/fig5_phases.dir/bench/fig5_phases.cpp.o"
  "CMakeFiles/fig5_phases.dir/bench/fig5_phases.cpp.o.d"
  "bench/fig5_phases"
  "bench/fig5_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
