# Empty compiler generated dependencies file for fig5_phases.
# This may be replaced when dependencies are built.
