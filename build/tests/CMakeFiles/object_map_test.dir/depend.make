# Empty dependencies file for object_map_test.
# This may be replaced when dependencies are built.
