file(REMOVE_RECURSE
  "CMakeFiles/object_map_test.dir/object_map_test.cpp.o"
  "CMakeFiles/object_map_test.dir/object_map_test.cpp.o.d"
  "object_map_test"
  "object_map_test.pdb"
  "object_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
