file(REMOVE_RECURSE
  "CMakeFiles/heap_tracker_test.dir/heap_tracker_test.cpp.o"
  "CMakeFiles/heap_tracker_test.dir/heap_tracker_test.cpp.o.d"
  "heap_tracker_test"
  "heap_tracker_test.pdb"
  "heap_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
