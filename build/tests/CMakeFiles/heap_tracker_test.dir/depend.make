# Empty dependencies file for heap_tracker_test.
# This may be replaced when dependencies are built.
