file(REMOVE_RECURSE
  "CMakeFiles/paper_pipeline_test.dir/paper_pipeline_test.cpp.o"
  "CMakeFiles/paper_pipeline_test.dir/paper_pipeline_test.cpp.o.d"
  "paper_pipeline_test"
  "paper_pipeline_test.pdb"
  "paper_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
