# Empty compiler generated dependencies file for paper_pipeline_test.
# This may be replaced when dependencies are built.
