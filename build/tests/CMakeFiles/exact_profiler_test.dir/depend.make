# Empty dependencies file for exact_profiler_test.
# This may be replaced when dependencies are built.
