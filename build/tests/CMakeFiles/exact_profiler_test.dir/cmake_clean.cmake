file(REMOVE_RECURSE
  "CMakeFiles/exact_profiler_test.dir/exact_profiler_test.cpp.o"
  "CMakeFiles/exact_profiler_test.dir/exact_profiler_test.cpp.o.d"
  "exact_profiler_test"
  "exact_profiler_test.pdb"
  "exact_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
