# Empty compiler generated dependencies file for symbol_table_test.
# This may be replaced when dependencies are built.
