file(REMOVE_RECURSE
  "CMakeFiles/symbol_table_test.dir/symbol_table_test.cpp.o"
  "CMakeFiles/symbol_table_test.dir/symbol_table_test.cpp.o.d"
  "symbol_table_test"
  "symbol_table_test.pdb"
  "symbol_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
