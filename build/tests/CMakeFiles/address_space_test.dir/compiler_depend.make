# Empty compiler generated dependencies file for address_space_test.
# This may be replaced when dependencies are built.
