file(REMOVE_RECURSE
  "CMakeFiles/address_space_test.dir/address_space_test.cpp.o"
  "CMakeFiles/address_space_test.dir/address_space_test.cpp.o.d"
  "address_space_test"
  "address_space_test.pdb"
  "address_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
