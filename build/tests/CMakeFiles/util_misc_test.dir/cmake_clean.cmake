file(REMOVE_RECURSE
  "CMakeFiles/util_misc_test.dir/util_misc_test.cpp.o"
  "CMakeFiles/util_misc_test.dir/util_misc_test.cpp.o.d"
  "util_misc_test"
  "util_misc_test.pdb"
  "util_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
