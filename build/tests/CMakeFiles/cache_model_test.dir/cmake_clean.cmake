file(REMOVE_RECURSE
  "CMakeFiles/cache_model_test.dir/cache_model_test.cpp.o"
  "CMakeFiles/cache_model_test.dir/cache_model_test.cpp.o.d"
  "cache_model_test"
  "cache_model_test.pdb"
  "cache_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
