# Empty dependencies file for cache_model_test.
# This may be replaced when dependencies are built.
