file(REMOVE_RECURSE
  "CMakeFiles/perf_monitor_test.dir/perf_monitor_test.cpp.o"
  "CMakeFiles/perf_monitor_test.dir/perf_monitor_test.cpp.o.d"
  "perf_monitor_test"
  "perf_monitor_test.pdb"
  "perf_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
