# Empty compiler generated dependencies file for rbtree_test.
# This may be replaced when dependencies are built.
