file(REMOVE_RECURSE
  "CMakeFiles/rbtree_test.dir/rbtree_test.cpp.o"
  "CMakeFiles/rbtree_test.dir/rbtree_test.cpp.o.d"
  "rbtree_test"
  "rbtree_test.pdb"
  "rbtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
