# Empty dependencies file for accounting_test.
# This may be replaced when dependencies are built.
