file(REMOVE_RECURSE
  "CMakeFiles/accounting_test.dir/accounting_test.cpp.o"
  "CMakeFiles/accounting_test.dir/accounting_test.cpp.o.d"
  "accounting_test"
  "accounting_test.pdb"
  "accounting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
