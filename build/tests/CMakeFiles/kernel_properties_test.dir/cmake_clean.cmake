file(REMOVE_RECURSE
  "CMakeFiles/kernel_properties_test.dir/kernel_properties_test.cpp.o"
  "CMakeFiles/kernel_properties_test.dir/kernel_properties_test.cpp.o.d"
  "kernel_properties_test"
  "kernel_properties_test.pdb"
  "kernel_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
