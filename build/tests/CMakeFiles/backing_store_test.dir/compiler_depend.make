# Empty compiler generated dependencies file for backing_store_test.
# This may be replaced when dependencies are built.
