file(REMOVE_RECURSE
  "CMakeFiles/backing_store_test.dir/backing_store_test.cpp.o"
  "CMakeFiles/backing_store_test.dir/backing_store_test.cpp.o.d"
  "backing_store_test"
  "backing_store_test.pdb"
  "backing_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backing_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
