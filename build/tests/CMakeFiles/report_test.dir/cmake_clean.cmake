file(REMOVE_RECURSE
  "CMakeFiles/report_test.dir/report_test.cpp.o"
  "CMakeFiles/report_test.dir/report_test.cpp.o.d"
  "report_test"
  "report_test.pdb"
  "report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
