# Empty compiler generated dependencies file for nway_search_test.
# This may be replaced when dependencies are built.
