file(REMOVE_RECURSE
  "CMakeFiles/nway_search_test.dir/nway_search_test.cpp.o"
  "CMakeFiles/nway_search_test.dir/nway_search_test.cpp.o.d"
  "nway_search_test"
  "nway_search_test.pdb"
  "nway_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nway_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
