# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/backing_store_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/address_space_test[1]_include.cmake")
include("/root/repo/build/tests/perf_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/rbtree_test[1]_include.cmake")
include("/root/repo/build/tests/symbol_table_test[1]_include.cmake")
include("/root/repo/build/tests/heap_tracker_test[1]_include.cmake")
include("/root/repo/build/tests/object_map_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/util_misc_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/exact_profiler_test[1]_include.cmake")
include("/root/repo/build/tests/sampler_test[1]_include.cmake")
include("/root/repo/build/tests/nway_search_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/accounting_test[1]_include.cmake")
include("/root/repo/build/tests/cache_model_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_properties_test[1]_include.cmake")
include("/root/repo/build/tests/paper_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
