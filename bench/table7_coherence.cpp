// Table 7 (extension): per-object coherence attribution on a multi-core
// machine.
//
// The paper's tools attribute *miss* counts to data objects on a single
// execution stream; on a multi-core machine the dominant memory cost can
// instead be coherence traffic — invalidations, upgrades and forced
// writebacks that the last-level PMU never sees as misses (the ping-pong
// line keeps hitting in the shared LLC).  This table runs the sharing
// kernels (false_sharing / true_sharing / producer_consumer, see
// src/workloads/sharing.cpp) on N cores with private L1s in front of a
// shared LLC, one sampler per core, and compares the merged per-object
// coherence-event shares against the exact coherence profile.  Reading
// the table: the contended object (SHARED_SLOTS / HOT_COUNTER /
// RING_BUFFER) carries the bulk of the coherence events while the regular
// miss profile stays dominated by the private lanes — the two planes
// disagree, which is exactly the bottleneck-isolation signal this
// extension adds.
//
// The (workload) sweep runs on the BatchRunner pool (--jobs N); --out
// exports hpm.batch.v4 JSON (per-core stats + coherence blocks), which
// hpmreport renders as coherence scoreboard columns and HTML attribution
// charts.  tests/golden/coherence_pipeline.json pins this pipeline.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/memory_hierarchy.hpp"
#include "workloads/sharing.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv,
                                         {"cores", "period", "levels"});
  if (!flags) return 2;
  util::Cli cli(argc, argv,
                {"scale", "iters", "seed", "csv", "workloads", "jobs", "out",
                 "telemetry-guardrail", "hierarchy-guardrail",
                 "live-guardrail", "cores", "period", "levels"});
  const unsigned cores =
      static_cast<unsigned>(cli.get_uint("cores", 4));
  if (cores < 2 || cores > 64) {
    std::fprintf(stderr, "--cores must be 2-64 for the coherence table\n");
    return 2;
  }
  const std::uint64_t period = cli.get_uint("period", 256);
  // Private L1 per core, shared LLC: roomy enough that the contended
  // lines stay resident between slices (coherence events, not capacity
  // evictions, reclaim them).
  const std::string levels =
      cli.get("levels", "L1:4k:64:4,LLC:256k:64:8");

  std::printf("Table 7: Per-object coherence attribution (%u cores)\n",
              cores);
  std::printf("(hierarchy %s; private L1 per core, shared LLC; one sampler "
              "per core, coherence period auto)\n\n",
              levels.c_str());

  std::vector<harness::RunSpec> specs;
  const auto& names = flags->workloads.empty()
                          ? workloads::sharing_workload_names()
                          : flags->workloads;
  for (const auto& name : names) {
    harness::RunConfig config;
    config.machine = harness::paper_machine();
    try {
      config.machine.hierarchy = sim::parse_hierarchy_spec(levels);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    config.machine.cores = cores;
    config.tool = harness::ToolKind::kSampler;
    config.sampler.period = period;
    harness::RunSpec spec;
    spec.name = name + "/sample+" + std::to_string(cores) + "core";
    spec.workload = name;
    spec.config = config;
    spec.options = bench::options_for(*flags);
    specs.push_back(std::move(spec));
  }

  const auto batch =
      harness::BatchRunner(bench::batch_options(*flags)).run(specs);

  util::Table table({"application", "coh events", "samples", "invalidations",
                     "forced wb", "object", "coherence %", "sampled %",
                     "miss %"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});
  for (const auto& item : batch.items) {
    if (!item.ok) {
      std::fprintf(stderr, "[%s] failed: %s\n", item.spec.name.c_str(),
                   item.error.c_str());
      continue;
    }
    const auto& result = item.result;
    std::uint64_t invalidations = 0;
    std::uint64_t forced = 0;
    for (const auto& level : result.coherence) {
      invalidations += level.invalidations_received;
      forced += level.forced_writebacks;
    }
    const auto top = result.coherence_actual.top(3);
    bool first = true;
    for (const auto& object : top.rows()) {
      table.row().cell(first ? item.spec.workload : std::string());
      if (first) {
        table.cell(result.coherence_events);
        table.cell(result.coherence_samples);
        table.cell(invalidations).cell(forced);
      } else {
        table.blank().blank().blank().blank();
      }
      table.cell(object.name).cell(object.percent, 2);
      if (auto p = result.coherence_estimated.percent_of(object.name)) {
        table.cell(*p, 2);
      } else {
        table.blank();
      }
      // The same object's share of ordinary (capacity) misses — the
      // column that shows the two planes disagreeing.
      if (auto p = result.actual.percent_of(object.name)) {
        table.cell(*p, 2);
      } else {
        table.blank();
      }
      first = false;
    }
  }
  bench::emit(table, flags->csv);
  bench::maybe_export(*flags, batch);
  return 0;
}
