// Shared plumbing for the table/figure harnesses: flag handling, run
// helpers, and the row formats the paper's tables use.
#pragma once

#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "harness/batch.hpp"
#include "harness/json_export.hpp"
#include "harness/live_stream.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace hpm::bench {

struct CommonFlags {
  double scale = 1.0;        ///< workload linear size factor
  double iters = 1.0;        ///< iteration multiplier (1.0 = paper default)
  std::uint64_t seed = 0x5ca1ab1e;
  bool csv = false;
  unsigned jobs = 1;         ///< worker threads for batch sweeps (0 = cores)
  std::string out;           ///< JSON export path ("" = none)
  /// --telemetry-guardrail: time the sweep with telemetry off vs on and
  /// print both, checking the zero-cost-when-disabled contract holds.
  bool telemetry_guardrail = false;
  /// --hierarchy-guardrail: time the sweep with the implicit single-level
  /// machine vs an explicit 1-level hierarchy config and print both,
  /// checking that the MemoryHierarchy generalization kept single-level
  /// runs hot (acceptance bar: <2% wall-time delta).
  bool hierarchy_guardrail = false;
  /// --live-guardrail: time the sweep with hpm.live.v1 streaming off vs on
  /// (events discarded into an in-memory sink) and print both, checking
  /// that live monitoring stays within the <2% perturbation bar.
  bool live_guardrail = false;
  std::vector<std::string> workloads;  ///< empty = all paper workloads

  static std::optional<CommonFlags> parse(
      int argc, const char* const* argv,
      std::vector<std::string> extra_flags = {});
};

inline std::optional<CommonFlags> CommonFlags::parse(
    int argc, const char* const* argv,
    std::vector<std::string> extra_flags) {
  std::vector<std::string> known = {"scale", "iters", "seed", "csv",
                                    "workloads", "jobs", "out",
                                    "telemetry-guardrail",
                                    "hierarchy-guardrail",
                                    "live-guardrail"};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());
  util::Cli cli(argc, argv, known);
  if (!cli.ok()) {
    std::fprintf(stderr, "%s\n", cli.error().c_str());
    return std::nullopt;
  }
  CommonFlags flags;
  flags.scale = cli.get_double("scale", 1.0);
  flags.iters = cli.get_double("iters", 1.0);
  flags.seed = cli.get_uint("seed", 0x5ca1ab1e);
  flags.csv = cli.get_bool("csv", false);
  flags.jobs = static_cast<unsigned>(cli.get_uint("jobs", 1));
  flags.out = cli.get("out", "");
  flags.telemetry_guardrail = cli.get_bool("telemetry-guardrail", false);
  flags.hierarchy_guardrail = cli.get_bool("hierarchy-guardrail", false);
  flags.live_guardrail = cli.get_bool("live-guardrail", false);
  const std::string list = cli.get("workloads", "");
  if (!list.empty()) {
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t comma = list.find(',', start);
      const std::size_t end = comma == std::string::npos ? list.size() : comma;
      if (end > start) flags.workloads.push_back(list.substr(start, end - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return flags;
}

/// Workload options derived from the common flags; `default_iters` is the
/// workload's own default when the multiplier is 1.0.
inline workloads::WorkloadOptions options_for(
    const CommonFlags& flags, std::uint64_t default_iters = 0) {
  workloads::WorkloadOptions options;
  options.scale = flags.scale;
  options.seed = flags.seed;
  if (flags.iters != 1.0 || default_iters != 0) {
    const double base = default_iters != 0 ? static_cast<double>(default_iters)
                                           : 0.0;
    if (base > 0.0) {
      options.iterations = static_cast<std::uint64_t>(base * flags.iters + 0.5);
      if (options.iterations == 0) options.iterations = 1;
    }
  }
  return options;
}

inline const std::vector<std::string>& selected_workloads(
    const CommonFlags& flags) {
  return flags.workloads.empty() ? workloads::paper_workload_names()
                                 : flags.workloads;
}

/// Per-workload default iteration counts used by the benches (chosen so
/// each run produces several million misses).
[[nodiscard]] inline std::uint64_t bench_default_iters(
    const std::string& workload) {
  if (workload == "tomcatv") return 4;
  if (workload == "swim") return 4;
  if (workload == "su2cor") return 3;
  if (workload == "mgrid") return 3;
  if (workload == "applu") return 6;
  if (workload == "compress") return 3;
  if (workload == "ijpeg") return 2;
  return 0;
}

inline void emit(const util::Table& table, bool csv) {
  if (csv) {
    table.write_csv(std::cout);
  } else {
    table.render(std::cout);
  }
}

/// BatchRunner options for a bench sweep: honour --jobs and narrate
/// completions on stderr (stdout stays reserved for the table).
inline harness::BatchRunner::Options batch_options(const CommonFlags& flags) {
  harness::BatchRunner::Options options;
  options.jobs = flags.jobs;
  options.on_progress = [](std::size_t done, std::size_t total,
                           const harness::BatchItem& item) {
    std::fprintf(stderr, "[%zu/%zu] %s (%.3fs)%s%s\n", done, total,
                 item.spec.name.c_str(), item.wall_seconds,
                 item.ok ? "" : " FAILED: ", item.ok ? "" : item.error.c_str());
  };
  return options;
}

/// Honour --telemetry-guardrail: re-run the sweep twice — telemetry fully
/// off, then with metrics + phase timeline on — and print both wall times.
/// The enabled run's results are discarded; the guardrail exists to catch a
/// regression where "disabled" stops being free (the acceptance bar is
/// <2% wall-time delta with the flags omitted).
inline void maybe_telemetry_guardrail(const CommonFlags& flags,
                                      const std::vector<harness::RunSpec>&
                                          specs) {
  if (!flags.telemetry_guardrail) return;
  harness::BatchRunner::Options options;
  options.jobs = flags.jobs;
  const harness::BatchRunner runner(options);
  auto timed = [&](bool telemetry) {
    auto copy = specs;
    for (auto& spec : copy) {
      spec.config.telemetry.enabled = telemetry;
      spec.config.telemetry.timeline_every = telemetry ? 1'000'000 : 0;
    }
    const auto batch = runner.run(copy);
    return batch.metrics.wall_seconds;
  };
  const double disabled = timed(false);
  const double enabled = timed(true);
  std::fprintf(stderr,
               "telemetry guardrail: disabled %.3fs, enabled %.3fs "
               "(enabled/disabled = %.3fx)\n",
               disabled, enabled,
               disabled > 0.0 ? enabled / disabled : 0.0);
}

/// Honour --hierarchy-guardrail: re-run the sweep twice — once with the
/// specs as given (implicit single-level machine) and once with the same
/// geometry spelled as an explicit 1-level HierarchyConfig — and print
/// both wall times.  The explicit run's results are discarded; the
/// guardrail exists to catch a regression where the MemoryHierarchy walk
/// makes single-level machines slower than the old hard-wired cache (the
/// acceptance bar is <2% wall-time delta).
inline void maybe_hierarchy_guardrail(const CommonFlags& flags,
                                      const std::vector<harness::RunSpec>&
                                          specs) {
  if (!flags.hierarchy_guardrail) return;
  harness::BatchRunner::Options options;
  options.jobs = flags.jobs;
  const harness::BatchRunner runner(options);
  auto timed = [&](bool explicit_levels) {
    auto copy = specs;
    for (auto& spec : copy) {
      auto& machine = spec.config.machine;
      machine.hierarchy.levels.clear();
      if (explicit_levels) {
        machine.hierarchy.levels.push_back({"L1", machine.cache});
      }
    }
    const auto batch = runner.run(copy);
    return batch.metrics.wall_seconds;
  };
  const double implicit_level = timed(false);
  const double explicit_level = timed(true);
  std::fprintf(stderr,
               "hierarchy guardrail: implicit %.3fs, explicit 1-level %.3fs "
               "(explicit/implicit = %.3fx)\n",
               implicit_level, explicit_level,
               implicit_level > 0.0 ? explicit_level / implicit_level : 0.0);
}

/// Honour --live-guardrail: re-run the sweep twice — live streaming fully
/// off, then with hpm.live.v1 window sampling on at the default period,
/// the stream discarded into an in-memory sink — and print both wall
/// times.  The enabled run's results are discarded; the guardrail exists
/// to catch a regression where the per-reference hook test or the window
/// encoder stops being cheap (the acceptance bar is <2% wall-time delta).
inline void maybe_live_guardrail(const CommonFlags& flags,
                                 const std::vector<harness::RunSpec>& specs) {
  if (!flags.live_guardrail) return;
  auto timed = [&](bool live) {
    std::ostringstream discard;
    harness::JsonlSink sink(discard);
    harness::LiveStreamer streamer(
        {.sink = &sink, .every_refs = 250'000, .include_build_meta = false});
    harness::BatchRunner::Options options;
    options.jobs = flags.jobs;
    if (live) {
      options.observer = &streamer;
      options.live_sink = &sink;
      options.live_every_refs = 250'000;
    }
    const auto batch = harness::BatchRunner(options).run(specs);
    return batch.metrics.wall_seconds;
  };
  const double disabled = timed(false);
  const double enabled = timed(true);
  std::fprintf(stderr,
               "live guardrail: disabled %.3fs, enabled %.3fs "
               "(enabled/disabled = %.3fx)\n",
               disabled, enabled,
               disabled > 0.0 ? enabled / disabled : 0.0);
}

/// Honour --out: export the batch as hpm.batch JSON (v2, or v3 when a run
/// carries per-level hierarchy stats).
inline void maybe_export(const CommonFlags& flags,
                         const harness::BatchResult& batch) {
  if (flags.out.empty()) return;
  std::ofstream out(flags.out);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", flags.out.c_str());
    return;
  }
  harness::export_json(out, batch);
  std::fprintf(stderr, "wrote %s (%zu runs)\n", flags.out.c_str(),
               batch.items.size());
}

}  // namespace hpm::bench
