// Table 3 (extension): attribution quality under PMU fault injection.
//
// Sweeps interrupt skid (overflow delivered K application references late)
// crossed with dropped-overflow probability, runs the hardened sampler on
// each cell, and scores the estimated per-object miss profile against the
// exact profiler's ground truth (Report::compare).  The skid=0/drop=0 cell
// is the fault-free baseline — no injector is installed there, so its
// numbers are bit-identical to an unfaulted run — and every other cell
// reports the accuracy delta attributable to the injected faults, plus the
// fault counters (interrupts dropped, skid refs, watchdog re-arms,
// discarded samples) that explain the degradation.
//
// Reading the table: drop-rate degradation is monotone (each dropped
// interrupt loses a sample and shifts the sampling phase; the watchdog
// re-arm bounds the loss to one period).  Skid error is NOT monotone in K:
// a deterministic K-reference skid shifts which miss the handler observes,
// so the error depends on where K lands in the workload's access-pattern
// phase — e.g. on tomcatv skid=4 misattributes heavily while skid=64
// realigns with the stride and is nearly exact.  The skid-refs counter
// makes the shift auditable either way.
//
// The sweep runs on the BatchRunner pool (--jobs N) and exports
// hpm.batch.v2/v3 JSON with per-cell RunOutcome and fault blocks (--out).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

struct Cell {
  unsigned skid = 0;
  double drop = 0.0;
  std::size_t runs = 0;        // cells aggregate over the selected workloads
  std::size_t ok = 0;
  double mean_err = 0.0;       // mean over workloads of mean |actual-est| %
  double max_err = 0.0;        // worst per-object error in the cell
  double order = 0.0;          // mean pairwise order agreement
  std::uint64_t dropped = 0;
  std::uint64_t skid_refs = 0;
  std::uint64_t rearms = 0;
  std::uint64_t discarded = 0;
  std::string outcome = "ok";  // worst outcome across the cell's runs
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv,
                                         {"period", "top-k", "fault-seed"});
  if (!flags) return 2;
  util::Cli cli(argc, argv,
                {"scale", "iters", "seed", "csv", "workloads", "jobs", "out",
                 "telemetry-guardrail", "period", "top-k", "fault-seed"});
  // Default to a dense prime period: the paper's fixed 50,000 period
  // aliases with tomcatv's strided access pattern (see fig_prime_sampling),
  // and that aliasing error would swamp — and under drops, even invert —
  // the fault degradation this table is measuring; a coarse period leaves
  // so few samples that sampling noise does the same.
  const std::uint64_t period = cli.get_uint("period", 4'999);
  const auto top_k = static_cast<std::size_t>(cli.get_uint("top-k", 8));
  const std::uint64_t fault_seed = cli.get_uint("fault-seed", 0x0fa417);

  const std::vector<unsigned> skids = {0, 1, 4, 16, 64};
  const std::vector<double> drops = {0.0, 0.01, 0.05, 0.20};

  // Three workloads with distinct miss profiles by default (dense stencil,
  // banded, pointer-ish); --workloads widens the sweep to taste.
  const std::vector<std::string> names =
      flags->workloads.empty()
          ? std::vector<std::string>{"tomcatv", "swim", "compress"}
          : flags->workloads;

  std::printf("Table 3: Attribution quality under PMU faults\n");
  std::printf("(sampling 1 in %llu misses; top-%zu objects; %zu workloads; "
              "fault seed %llu)\n\n",
              static_cast<unsigned long long>(period), top_k, names.size(),
              static_cast<unsigned long long>(fault_seed));

  std::vector<harness::RunSpec> specs;
  for (const unsigned skid : skids) {
    for (const double drop : drops) {
      for (const auto& name : names) {
        harness::RunSpec spec;
        spec.workload = name;
        char label[96];
        std::snprintf(label, sizeof label, "%s/skid%u_drop%g", name.c_str(),
                      skid, drop * 100.0);
        spec.name = label;
        spec.options =
            bench::options_for(*flags, bench::bench_default_iters(name));
        spec.config.machine = harness::paper_machine();
        spec.config.tool = harness::ToolKind::kSampler;
        spec.config.sampler.period = period;
        if (skid != 0 || drop != 0.0) {
          spec.config.machine.faults.seed = fault_seed;
          spec.config.machine.faults.skid_refs = skid;
          spec.config.machine.faults.drop_rate = drop;
        }
        specs.push_back(std::move(spec));
      }
    }
  }

  const auto batch =
      harness::BatchRunner(bench::batch_options(*flags)).run(specs);

  std::vector<Cell> cells;
  std::size_t index = 0;
  for (const unsigned skid : skids) {
    for (const double drop : drops) {
      Cell cell;
      cell.skid = skid;
      cell.drop = drop;
      for (std::size_t w = 0; w < names.size(); ++w, ++index) {
        const auto& item = batch.items[index];
        ++cell.runs;
        // Worst outcome wins the cell label: failed > timed_out > retried.
        const auto rank = [](harness::RunOutcome o) {
          switch (o) {
            case harness::RunOutcome::kCancelled: return 4;
            case harness::RunOutcome::kFailed: return 3;
            case harness::RunOutcome::kTimedOut: return 2;
            case harness::RunOutcome::kRetried: return 1;
            case harness::RunOutcome::kOk: return 0;
          }
          return 0;
        };
        if (rank(item.outcome) >
            rank(harness::parse_run_outcome(cell.outcome))) {
          cell.outcome = std::string(harness::run_outcome_name(item.outcome));
        }
        if (!item.ok) continue;
        ++cell.ok;
        const auto cmp = core::Report::compare(
            item.result.actual, item.result.estimated, top_k);
        cell.mean_err += cmp.mean_abs_error;
        cell.max_err = std::max(cell.max_err, cmp.max_abs_error);
        cell.order += cmp.order_agreement;
        cell.dropped += item.result.fault_stats.interrupts_dropped;
        cell.skid_refs += item.result.fault_stats.skid_refs;
        cell.rearms += item.result.sampler_rearms;
        cell.discarded += item.result.samples_discarded;
      }
      if (cell.ok != 0) {
        cell.mean_err /= static_cast<double>(cell.ok);
        cell.order /= static_cast<double>(cell.ok);
      }
      cells.push_back(cell);
    }
  }

  const double baseline = cells.front().mean_err;
  util::Table table(
      {"skid", "drop %", "mean err %", "max err %", "order", "delta err",
       "dropped", "skid refs", "rearms", "discarded", "outcome"},
      {util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kLeft});
  unsigned last_skid = skids.front();
  for (const auto& cell : cells) {
    if (cell.skid != last_skid) {
      table.separator();
      last_skid = cell.skid;
    }
    table.row()
        .cell(static_cast<std::uint64_t>(cell.skid))
        .cell(cell.drop * 100.0, 0)
        .cell(cell.mean_err, 3)
        .cell(cell.max_err, 3)
        .cell(cell.order, 3)
        .cell(cell.mean_err - baseline, 3)
        .cell(cell.dropped)
        .cell(cell.skid_refs)
        .cell(cell.rearms)
        .cell(cell.discarded)
        .cell(cell.outcome);
  }
  bench::emit(table, flags->csv);
  bench::maybe_export(*flags, batch);

  // Sanity narration: the fault-free cell must show zero extra error, and
  // degradation should grow with the injected fault intensity.
  const auto& worst = cells.back();
  std::fprintf(stderr,
               "baseline (skid=0 drop=0) mean err %.3f%%; worst cell "
               "(skid=%u drop=%g%%) mean err %.3f%% (+%.3f)\n",
               baseline, worst.skid, worst.drop * 100.0, worst.mean_err,
               worst.mean_err - baseline);
  std::fprintf(stderr, "sweep: %zu runs, jobs=%u, wall=%.3fs\n",
               batch.metrics.runs, batch.metrics.jobs,
               batch.metrics.wall_seconds);
  return batch.metrics.failed == 0 ? 0 : 1;
}
