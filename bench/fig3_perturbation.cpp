// Figure 3: Increase in Cache Misses Due to Instrumentation (log scale).
//
// Each application runs uninstrumented, with the 10-way search, and with
// sampling at 1 in 1,000 / 10,000 / 100,000 / 1,000,000 misses.  Every run
// executes the identical application instruction stream (the simulator
// guarantees this); the reported value is the percent increase in total
// cache misses caused by the instrumentation's own memory traffic.
//
// Paper shape to look for: all values tiny (<0.2%) except ijpeg (~2.4% for
// the search) because its baseline miss rate is far lower; and for some
// applications the sampling perturbation *rises* as sampling gets rarer
// (tool data gets evicted between samples), until the sample count itself
// becomes negligible.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv);
  if (!flags) return 2;

  std::printf("Figure 3: Increase in Cache Misses Due to Instrumentation\n");
  std::printf("(percent increase vs. uninstrumented run; log-scale bars)\n\n");

  const std::uint64_t kPeriods[] = {1'000, 10'000, 100'000, 1'000'000};

  util::Table table({"application", "config", "base misses", "instr misses",
                     "increase %", "log bar"},
                    {util::Align::kLeft, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kLeft});

  for (const auto& name : bench::selected_workloads(*flags)) {
    const auto options =
        bench::options_for(*flags, bench::bench_default_iters(name));

    harness::RunConfig base_cfg;
    base_cfg.machine = harness::paper_machine();
    const auto baseline = harness::run_experiment(base_cfg, name, options);
    const auto base_misses = baseline.stats.total_misses();

    auto add_row = [&](const std::string& config_name,
                       const harness::RunResult& run) {
      const auto misses = run.stats.total_misses();
      const double increase =
          100.0 * (static_cast<double>(misses) -
                   static_cast<double>(base_misses)) /
          static_cast<double>(base_misses);
      table.row()
          .cell(name)
          .cell(config_name)
          .cell(base_misses)
          .cell(misses)
          .cell(increase, 4)
          .cell(util::log_bar(increase, 1e-4, 10.0, 40));
    };

    harness::RunConfig search_cfg = base_cfg;
    search_cfg.tool = harness::ToolKind::kSearch;
    search_cfg.search.n = 10;
    add_row("search", harness::run_experiment(search_cfg, name, options));

    for (const auto period : kPeriods) {
      harness::RunConfig cfg = base_cfg;
      cfg.tool = harness::ToolKind::kSampler;
      cfg.sampler.period = period;
      add_row("sample(" + std::to_string(period) + ")",
              harness::run_experiment(cfg, name, options));
    }
    table.separator();
  }
  bench::emit(table, flags->csv);
  return 0;
}
