// §3.1 prime-interval experiment.
//
// tomcatv's relaxation passes interleave RX/RY misses with a short period,
// and the per-iteration miss count is a multiple of 50,000 — so sampling
// exactly 1 in 50,000 misses aliases with the access pattern and
// mis-attributes misses spectacularly (the paper saw RX at 37.1% instead of
// 22.5%).  Sampling 1 in 50,111 (a prime), or with a pseudo-random period,
// breaks the correlation.  This bench reproduces all three runs and reports
// the per-object estimates plus the maximum absolute error of each policy.
#include <cstdio>

#include "bench_common.hpp"
#include "core/primes.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv, {"period"});
  if (!flags) return 2;
  util::Cli cli(argc, argv,
                {"scale", "iters", "seed", "csv", "workloads", "period"});
  const std::uint64_t period = cli.get_uint("period", 50'000);
  // 50,000 -> 50,111, the exact prime the paper used.
  const std::uint64_t prime = core::next_prime(period + 111);

  // A longer tomcatv run than Table 1's, for tighter sampled estimates.
  workloads::WorkloadOptions options = bench::options_for(*flags, 12);

  struct Config {
    std::string name;
    core::SamplerConfig sampler;
  };
  const Config configs[] = {
      {"fixed(" + std::to_string(period) + ")",
       {.period = period, .policy = core::PeriodPolicy::kFixed}},
      {"prime(" + std::to_string(prime) + ")",
       {.period = prime, .policy = core::PeriodPolicy::kFixed}},
      {"pseudo-random(~" + std::to_string(period) + ")",
       {.period = period, .policy = core::PeriodPolicy::kPseudoRandom,
        .seed = flags->seed}},
  };

  std::printf("Prime sampling-interval experiment (tomcatv, §3.1)\n\n");

  util::Table table({"object", "actual %", configs[0].name + " %",
                     configs[1].name + " %", configs[2].name + " %"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});

  harness::RunResult runs[3];
  for (int i = 0; i < 3; ++i) {
    harness::RunConfig cfg;
    cfg.machine = harness::paper_machine();
    cfg.tool = harness::ToolKind::kSampler;
    cfg.sampler = configs[i].sampler;
    runs[i] = harness::run_experiment(cfg, "tomcatv", options);
  }

  const auto actual = runs[0].actual.filtered(0.01);
  const auto actual_top = actual.top(8);
  for (const auto& row : actual_top.rows()) {
    table.row().cell(row.name).cell(row.percent, 1);
    for (int i = 0; i < 3; ++i) {
      if (auto p = runs[i].estimated.percent_of(row.name)) {
        table.cell(*p, 1);
      } else {
        table.cell(0.0, 1);
      }
    }
  }
  bench::emit(table, flags->csv);

  std::printf("\nMax |error| vs actual over the top objects:\n");
  for (int i = 0; i < 3; ++i) {
    const auto c = core::Report::compare(actual, runs[i].estimated, 8);
    std::printf("  %-26s max %6.2f%%  mean %6.2f%%  (%llu samples)\n",
                configs[i].name.c_str(), c.max_abs_error, c.mean_abs_error,
                static_cast<unsigned long long>(runs[i].samples));
  }
  std::printf("\nExpected shape: the fixed even period aliases (errors of "
              "10%%+); the prime and pseudo-random periods do not.\n");
  return 0;
}
