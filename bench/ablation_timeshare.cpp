// Ablation: counter timesharing (§2.2 / §3.4).
//
// "Multiple counters with separate base/bounds could be simulated by
// timesharing the single conditional counter between regions of interest
// ... but this may lead to increased inaccuracy."  This bench runs the
// 10-way search with 10 dedicated physical counters, then with 5, 2 and 1
// timeshared ones, and reports what the inaccuracy costs: each region is
// observed in only a slice of the interval, so phase-active applications
// suffer most.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv);
  if (!flags) return 2;

  std::printf("Ablation: dedicated vs timeshared miss counters "
              "(10-way search)\n\n");

  util::Table table({"application", "physical counters", "objects found",
                     "top-5 missing", "max err %", "order agreement",
                     "iterations"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});

  for (const auto& name : bench::selected_workloads(*flags)) {
    const auto options =
        bench::options_for(*flags, bench::bench_default_iters(name));
    for (const unsigned phys : {10u, 5u, 2u, 1u}) {
      harness::RunConfig config;
      config.machine = harness::paper_machine();
      config.tool = harness::ToolKind::kSearch;
      config.search.n = 10;
      config.search.physical_counters = phys;
      const auto result = harness::run_experiment(config, name, options);
      const auto comparison = core::Report::compare(
          result.actual.filtered(1.0), result.estimated, 5);
      table.row()
          .cell(name)
          .cell(static_cast<std::uint64_t>(phys))
          .cell(static_cast<std::uint64_t>(result.estimated.size()))
          .cell(static_cast<std::uint64_t>(comparison.missing))
          .cell(comparison.max_abs_error, 1)
          .cell(comparison.order_agreement, 2)
          .cell(static_cast<std::uint64_t>(result.search_stats.iterations));
    }
    table.separator();
  }
  bench::emit(table, flags->csv);
  std::printf("\nExpected shape: accuracy degrades as fewer physical "
              "counters are timeshared, most on phase-heavy applications "
              "(su2cor, applu).\n");
  return 0;
}
