// Table 1: Results for Sampling and Search.
//
// For each application, the top objects by actual cache-miss share, with
// the rank and percentage estimated by (a) sampling one miss in 50,000 and
// (b) the 10-way search.  Objects causing less than 0.01% of all misses
// are excluded, exactly as in the paper.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv, {"period", "n"});
  if (!flags) return 2;
  util::Cli cli(argc, argv,
                {"scale", "iters", "seed", "csv", "workloads", "period", "n"});
  const std::uint64_t period = cli.get_uint("period", 50'000);
  const unsigned n = static_cast<unsigned>(cli.get_uint("n", 10));

  std::printf("Table 1: Results for Sampling and Search\n");
  std::printf("(sampling 1 in %llu misses; %u-way search; objects <0.01%% "
              "excluded)\n\n",
              static_cast<unsigned long long>(period), n);

  util::Table table(
      {"application", "object", "actual rank", "actual %", "sample rank",
       "sample %", "search rank", "search %"},
      {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight});

  for (const auto& name : bench::selected_workloads(*flags)) {
    const auto options =
        bench::options_for(*flags, bench::bench_default_iters(name));

    harness::RunConfig sample_cfg;
    sample_cfg.machine = harness::paper_machine();
    sample_cfg.tool = harness::ToolKind::kSampler;
    sample_cfg.sampler.period = period;
    const auto sampled = harness::run_experiment(sample_cfg, name, options);

    harness::RunConfig search_cfg;
    search_cfg.machine = harness::paper_machine();
    search_cfg.tool = harness::ToolKind::kSearch;
    search_cfg.search.n = n;
    const auto searched = harness::run_experiment(search_cfg, name, options);

    const auto actual = sampled.actual.filtered(0.01);
    const auto sample_est = sampled.estimated.filtered(0.01);
    const auto search_est = searched.estimated.filtered(0.01);

    table.separator();
    bool first = true;
    // The paper lists the top (up to) 5-8 actual objects per application.
    const auto actual_top = actual.top(8);
    for (const auto& row : actual_top.rows()) {
      table.row().cell(first ? name : std::string()).cell(row.name);
      first = false;
      table.cell(static_cast<std::uint64_t>(actual.rank_of(row.name)));
      table.cell(row.percent, 1);
      if (const auto r = sample_est.rank_of(row.name)) {
        table.cell(static_cast<std::uint64_t>(r));
        table.cell(*sample_est.percent_of(row.name), 1);
      } else {
        table.blank().blank();
      }
      if (const auto r = search_est.rank_of(row.name)) {
        table.cell(static_cast<std::uint64_t>(r));
        table.cell(*search_est.percent_of(row.name), 1);
      } else {
        table.blank().blank();
      }
    }
    std::fprintf(stderr,
                 "[%s] misses=%llu samples=%llu search:%s iters=%u\n",
                 name.c_str(),
                 static_cast<unsigned long long>(sampled.stats.app_misses),
                 static_cast<unsigned long long>(sampled.samples),
                 searched.search_done ? "done" : "incomplete",
                 searched.search_stats.iterations);
  }
  bench::emit(table, flags->csv);
  return 0;
}
