// Table 1: Results for Sampling and Search.
//
// For each application, the top objects by actual cache-miss share, with
// the rank and percentage estimated by (a) sampling one miss in 50,000 and
// (b) the 10-way search.  Objects causing less than 0.01% of all misses
// are excluded, exactly as in the paper.
//
// The (workload x tool) sweep runs on the BatchRunner worker pool; pass
// --jobs N to parallelize and --out FILE to export hpm.batch.v1 JSON.
// Results are identical for every jobs value (see batch_runner_test).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv, {"period", "n"});
  if (!flags) return 2;
  util::Cli cli(argc, argv,
                {"scale", "iters", "seed", "csv", "workloads", "jobs", "out",
                 "period", "n"});
  const std::uint64_t period = cli.get_uint("period", 50'000);
  const unsigned n = static_cast<unsigned>(cli.get_uint("n", 10));

  std::printf("Table 1: Results for Sampling and Search\n");
  std::printf("(sampling 1 in %llu misses; %u-way search; objects <0.01%% "
              "excluded)\n\n",
              static_cast<unsigned long long>(period), n);

  util::Table table =
      core::make_comparison_table("application", {"sample", "search"});

  harness::RunConfig sample_cfg;
  sample_cfg.machine = harness::paper_machine();
  sample_cfg.tool = harness::ToolKind::kSampler;
  sample_cfg.sampler.period = period;

  harness::RunConfig search_cfg;
  search_cfg.machine = harness::paper_machine();
  search_cfg.tool = harness::ToolKind::kSearch;
  search_cfg.search.n = n;

  const auto& names = bench::selected_workloads(*flags);
  const auto specs = harness::cross_specs(
      names, {{"sample", sample_cfg}, {"search", search_cfg}},
      [&](const std::string& name) {
        return bench::options_for(*flags, bench::bench_default_iters(name));
      });
  const auto batch =
      harness::BatchRunner(bench::batch_options(*flags)).run(specs);
  bench::maybe_telemetry_guardrail(*flags, specs);
  bench::maybe_hierarchy_guardrail(*flags, specs);
  bench::maybe_live_guardrail(*flags, specs);

  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& name = names[i];
    const auto& sampled = batch.items[2 * i];
    const auto& searched = batch.items[2 * i + 1];
    if (!sampled.ok || !searched.ok) {
      std::fprintf(stderr, "[%s] failed: %s\n", name.c_str(),
                   (sampled.ok ? searched.error : sampled.error).c_str());
      continue;
    }

    const auto actual = sampled.result.actual.filtered(0.01);
    const auto sample_est = sampled.result.estimated.filtered(0.01);
    const auto search_est = searched.result.estimated.filtered(0.01);

    table.separator();
    // The paper lists the top (up to) 5-8 actual objects per application.
    core::append_comparison_rows(
        table, {.label = name,
                .actual = &actual,
                .estimates = {&sample_est, &search_est},
                .top_k = 8});
    std::fprintf(
        stderr, "[%s] misses=%llu samples=%llu search:%s iters=%u\n",
        name.c_str(),
        static_cast<unsigned long long>(sampled.result.stats.app_misses),
        static_cast<unsigned long long>(sampled.result.samples),
        searched.result.search_done ? "done" : "incomplete",
        searched.result.search_stats.iterations);
  }
  bench::emit(table, flags->csv);
  bench::maybe_export(*flags, batch);
  std::fprintf(stderr, "sweep: %zu runs, jobs=%u, wall=%.3fs\n",
               batch.metrics.runs, batch.metrics.jobs,
               batch.metrics.wall_seconds);
  return batch.metrics.failed == 0 ? 0 : 1;
}
