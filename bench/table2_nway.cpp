// Table 2: Results of Two-Way Versus Ten-Way Search.
//
// For each application: the top objects by actual miss share, with the rank
// and percentage found by a 2-way and by a 10-way search.  The paper's
// headline: with the priority queue, even a 2-way search identifies the top
// one or two objects for almost all applications — su2cor being the
// exception, because its access pattern changes between phases.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv);
  if (!flags) return 2;

  std::printf("Table 2: Results of Two-Way Versus Ten-Way Search\n\n");

  util::Table table(
      {"application", "object", "actual rank", "actual %", "2-way rank",
       "2-way %", "10-way rank", "10-way %"},
      {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kRight, util::Align::kRight});

  for (const auto& name : bench::selected_workloads(*flags)) {
    const auto options =
        bench::options_for(*flags, bench::bench_default_iters(name));

    auto run_search = [&](unsigned n) {
      harness::RunConfig config;
      config.machine = harness::paper_machine();
      config.tool = harness::ToolKind::kSearch;
      config.search.n = n;
      return harness::run_experiment(config, name, options);
    };
    const auto two = run_search(2);
    const auto ten = run_search(10);

    const auto actual = two.actual.filtered(0.01);
    const auto est2 = two.estimated.filtered(0.01);
    const auto est10 = ten.estimated.filtered(0.01);

    table.separator();
    bool first = true;
    const auto actual_top = actual.top(8);
    for (const auto& row : actual_top.rows()) {
      table.row().cell(first ? name : std::string()).cell(row.name);
      first = false;
      table.cell(static_cast<std::uint64_t>(actual.rank_of(row.name)));
      table.cell(row.percent, 1);
      if (const auto r = est2.rank_of(row.name)) {
        table.cell(static_cast<std::uint64_t>(r));
        table.cell(*est2.percent_of(row.name), 1);
      } else {
        table.blank().blank();
      }
      if (const auto r = est10.rank_of(row.name)) {
        table.cell(static_cast<std::uint64_t>(r));
        table.cell(*est10.percent_of(row.name), 1);
      } else {
        table.blank().blank();
      }
    }
    std::fprintf(stderr, "[%s] 2-way:%s(%u it)  10-way:%s(%u it)\n",
                 name.c_str(), two.search_done ? "done" : "incomplete",
                 two.search_stats.iterations,
                 ten.search_done ? "done" : "incomplete",
                 ten.search_stats.iterations);
  }
  bench::emit(table, flags->csv);
  return 0;
}
