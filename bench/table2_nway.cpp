// Table 2: Results of Two-Way Versus Ten-Way Search.
//
// For each application: the top objects by actual miss share, with the rank
// and percentage found by a 2-way and by a 10-way search.  The paper's
// headline: with the priority queue, even a 2-way search identifies the top
// one or two objects for almost all applications — su2cor being the
// exception, because its access pattern changes between phases.
//
// The (workload x search-width) sweep runs on the BatchRunner worker pool;
// pass --jobs N to parallelize and --out FILE to export hpm.batch.v1 JSON.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv);
  if (!flags) return 2;

  std::printf("Table 2: Results of Two-Way Versus Ten-Way Search\n\n");

  util::Table table =
      core::make_comparison_table("application", {"2-way", "10-way"});

  auto search_cfg = [](unsigned n) {
    harness::RunConfig config;
    config.machine = harness::paper_machine();
    config.tool = harness::ToolKind::kSearch;
    config.search.n = n;
    return config;
  };

  const auto& names = bench::selected_workloads(*flags);
  const auto specs = harness::cross_specs(
      names, {{"search2", search_cfg(2)}, {"search10", search_cfg(10)}},
      [&](const std::string& name) {
        return bench::options_for(*flags, bench::bench_default_iters(name));
      });
  const auto batch =
      harness::BatchRunner(bench::batch_options(*flags)).run(specs);
  bench::maybe_telemetry_guardrail(*flags, specs);

  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& name = names[i];
    const auto& two = batch.items[2 * i];
    const auto& ten = batch.items[2 * i + 1];
    if (!two.ok || !ten.ok) {
      std::fprintf(stderr, "[%s] failed: %s\n", name.c_str(),
                   (two.ok ? ten.error : two.error).c_str());
      continue;
    }

    const auto actual = two.result.actual.filtered(0.01);
    const auto est2 = two.result.estimated.filtered(0.01);
    const auto est10 = ten.result.estimated.filtered(0.01);

    table.separator();
    core::append_comparison_rows(table, {.label = name,
                                         .actual = &actual,
                                         .estimates = {&est2, &est10},
                                         .top_k = 8});
    std::fprintf(stderr, "[%s] 2-way:%s(%u it)  10-way:%s(%u it)\n",
                 name.c_str(),
                 two.result.search_done ? "done" : "incomplete",
                 two.result.search_stats.iterations,
                 ten.result.search_done ? "done" : "incomplete",
                 ten.result.search_stats.iterations);
  }
  bench::emit(table, flags->csv);
  bench::maybe_export(*flags, batch);
  std::fprintf(stderr, "sweep: %zu runs, jobs=%u, wall=%.3fs\n",
               batch.metrics.runs, batch.metrics.jobs,
               batch.metrics.wall_seconds);
  return batch.metrics.failed == 0 ? 0 : 1;
}
