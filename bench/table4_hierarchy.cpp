// Table 4 (extension): miss traffic through multi-level hierarchies.
//
// The paper's simulator observes a single 2 MB cache (§3); real PMUs sit
// behind one or two filter levels (the Itanium counters the paper
// discusses count only L1-filtered misses).  This table sweeps the same
// workloads across 1-, 2- and 3-level hierarchy presets (paper / 2level /
// 3level, see docs/memory_hierarchy.md) and reports, per level: accesses,
// misses, miss rate and writebacks, plus the miss count the PMU observes
// at the default (last-level) observation point.  Reading the table: the
// observed miss count is nearly invariant across the presets for a given
// workload — inner levels filter references, not last-level misses (only
// second-order LRU-recency effects differ, because the LLC sees a
// filtered reference stream) — while traffic into each level drops by the
// inner level's hit rate.
//
// The (workload x preset) sweep runs on the BatchRunner pool (--jobs N);
// --out exports hpm.batch.v3 JSON (per-level stats on every multi-level
// run), which hpmreport renders as per-level scoreboard columns and HTML
// hierarchy tables.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/memory_hierarchy.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv, {});
  if (!flags) return 2;

  const std::vector<std::string> presets = {"paper", "2level", "3level"};

  std::printf("Table 4: Miss traffic through multi-level hierarchies\n");
  std::printf("(presets: paper = 2m LLC; 2level = 32k L1 + 2m LLC; "
              "3level = + 256k L2; PMU observes the last level)\n\n");

  // One spec per (workload, preset); tool none — this table is about the
  // memory system, not the measurement tools.
  std::vector<harness::RunSpec> specs;
  const auto& names = bench::selected_workloads(*flags);
  for (const auto& name : names) {
    for (const auto& preset : presets) {
      harness::RunConfig config;
      config.machine = harness::paper_machine();
      if (!sim::hierarchy_preset(preset, config.machine.hierarchy)) {
        std::fprintf(stderr, "unknown preset %s\n", preset.c_str());
        return 2;
      }
      harness::RunSpec spec;
      spec.name = name + "/" + preset;
      spec.workload = name;
      spec.config = config;
      spec.options =
          bench::options_for(*flags, bench::bench_default_iters(name));
      specs.push_back(std::move(spec));
    }
  }

  const auto batch =
      harness::BatchRunner(bench::batch_options(*flags)).run(specs);
  bench::maybe_hierarchy_guardrail(*flags, specs);

  util::Table table({"application", "preset", "level", "size", "accesses",
                     "misses", "miss %", "writebacks", "PMU misses"},
                    {util::Align::kLeft, util::Align::kLeft,
                     util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight});
  for (const auto& item : batch.items) {
    if (!item.ok) {
      std::fprintf(stderr, "[%s] failed: %s\n", item.spec.name.c_str(),
                   item.error.c_str());
      continue;
    }
    const auto& result = item.result;
    // Single-level runs carry no per-level block (the export contract);
    // synthesize one row from the machine stats instead.
    if (result.levels.empty()) {
      table.row().cell(item.spec.workload).cell("paper").cell("LLC");
      table.cell(std::uint64_t{2} * 1024 * 1024);
      table.cell(result.stats.app_refs).cell(result.stats.app_misses);
      table.cell(result.stats.app_refs > 0
                     ? 100.0 * static_cast<double>(result.stats.app_misses) /
                           static_cast<double>(result.stats.app_refs)
                     : 0.0,
                 2);
      table.blank();
      table.cell(result.stats.app_misses);
      continue;
    }
    for (std::size_t i = 0; i < result.levels.size(); ++i) {
      const sim::LevelSnapshot& level = result.levels[i];
      table.row().cell(i == 0 ? item.spec.workload : std::string());
      const std::string preset =
          item.spec.name.substr(item.spec.name.find('/') + 1);
      table.cell(i == 0 ? preset : std::string());
      table.cell(level.name + (i == result.observe_level ? "*" : ""));
      table.cell(level.size_bytes);
      table.cell(level.accesses).cell(level.misses);
      table.cell(100.0 * level.miss_rate(), 2);
      table.cell(level.writebacks);
      if (i == result.observe_level) {
        table.cell(result.stats.app_misses);
      } else {
        table.blank();
      }
    }
  }
  bench::emit(table, flags->csv);
  bench::maybe_export(*flags, batch);
  return 0;
}
