// Table 6 (repro extension): hpmserve saturation and recovery.
//
// Not a paper table — the paper's experiments were hand-driven; this
// bench characterizes the experiment *service* the repro adds on top:
//
//  1. Measure single-stream capacity (sequential distinct requests).
//  2. Offer load at 0.5x / 1.0x / 2.0x capacity (open loop, distinct
//     sweeps so neither the cache nor coalescing flatters the numbers)
//     and report achieved req/s plus p50/p95/p99 latency per class.
//     Acceptance gate: at 2x capacity the daemon SHEDS with explicit
//     RETRY_AFTER rejections and loses nothing silently — every request
//     terminates in accepted->result or rejected.
//  3. Kill the server mid-sweep (hard stop, the moral kill -9), restart
//     on the same state dir, and verify the recovered result is
//     byte-identical to an uninterrupted `hpmrun --jobs 1` run.
//
// Flags: --requests N (per load point), --scale S (request sweep size),
// --queue D (admission depth), --seed, --csv, --out FILE (JSON summary).
//
// --observe-guardrail measures the observability plane instead: the same
// sequential request stream against a server with the plane off
// (--no-observe) and on (monitor tree + event log + stage spans), and
// prints the enabled/disabled wall ratio.  CI takes the best of three and
// gates it < 1.02x — the paper's bar: observation cheap enough to leave on.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace hpm;
using Clock = std::chrono::steady_clock;

serve::SweepSpec request_sweep(double scale, std::uint64_t seed) {
  serve::SweepSpec sweep;
  sweep.workloads = {"synthetic"};
  sweep.tools = {"search"};
  sweep.scale = scale;
  sweep.seed = seed;
  return sweep;
}

/// Submit one sweep on a fresh connection and wait for its terminal event.
struct Outcome {
  enum class Kind { kOk, kRejected, kError, kLost } kind = Kind::kLost;
  double latency_ms = 0.0;
  std::string result_json;  ///< filled for kOk
};

Outcome run_one(std::uint16_t port, const serve::SweepSpec& sweep) {
  Outcome outcome;
  const auto start = Clock::now();
  serve::Socket socket = serve::connect_to("127.0.0.1", port);
  if (!socket.valid()) return outcome;
  serve::LineReader reader(socket);
  const std::string op = "{\"op\":\"submit\",\"id\":\"bench\",\"sweep\":" +
                         serve::canonical_sweep_json(sweep) + "}";
  if (!socket.send_line(op)) return outcome;
  std::string line;
  while (reader.read_line(line)) {
    harness::JsonValue event;
    try {
      event = harness::JsonValue::parse(line);
    } catch (const std::exception&) {
      continue;
    }
    const harness::JsonValue* kind = event.find("event");
    if (kind == nullptr) continue;
    if (kind->str() == "result") {
      outcome.kind = Outcome::Kind::kOk;
      const auto pos = line.find("\"result\":");
      outcome.result_json = line.substr(pos + 9, line.size() - pos - 10);
      break;
    }
    if (kind->str() == "rejected") {
      outcome.kind = Outcome::Kind::kRejected;
      break;
    }
    if (kind->str() == "error") {
      outcome.kind = Outcome::Kind::kError;
      break;
    }
  }
  outcome.latency_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return outcome;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

struct LoadPoint {
  double factor = 1.0;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  std::size_t ok = 0, rejected = 0, errors = 0, lost = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  ///< ms, ok requests only
};

/// Open-loop load: fire `requests` submissions at fixed intervals, each on
/// its own thread/connection, and collect terminal outcomes.
LoadPoint offer_load(std::uint16_t port, double factor, double capacity_rps,
                     std::size_t requests, double scale, std::uint64_t seed) {
  LoadPoint point;
  point.factor = factor;
  point.offered_rps = capacity_rps * factor;
  const auto interval = std::chrono::duration<double>(1.0 / point.offered_rps);

  std::mutex mutex;
  std::vector<Outcome> outcomes;
  std::vector<std::thread> threads;
  threads.reserve(requests);
  const auto start = Clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const auto slot = start + std::chrono::duration_cast<Clock::duration>(
                                  interval * static_cast<double>(i));
    std::this_thread::sleep_until(slot);
    threads.emplace_back([&, i] {
      Outcome outcome = run_one(port, request_sweep(scale, seed + i));
      std::lock_guard lock(mutex);
      outcomes.push_back(std::move(outcome));
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> ok_latencies;
  for (const Outcome& outcome : outcomes) {
    switch (outcome.kind) {
      case Outcome::Kind::kOk:
        ++point.ok;
        ok_latencies.push_back(outcome.latency_ms);
        break;
      case Outcome::Kind::kRejected: ++point.rejected; break;
      case Outcome::Kind::kError: ++point.errors; break;
      case Outcome::Kind::kLost: ++point.lost; break;
    }
  }
  point.achieved_rps =
      wall > 0.0 ? static_cast<double>(point.ok) / wall : 0.0;
  std::sort(ok_latencies.begin(), ok_latencies.end());
  point.p50 = percentile(ok_latencies, 0.50);
  point.p95 = percentile(ok_latencies, 0.95);
  point.p99 = percentile(ok_latencies, 0.99);
  return point;
}

/// Observability on-vs-off overhead: identical sequential distinct
/// request streams against two otherwise identical servers.  Both get a
/// state dir (journal + checkpoints are a serving cost, not an observing
/// cost); only the enabled server pays for the monitor tree, the event
/// log and the Chrome-trace hooks.
int observe_guardrail(std::size_t requests, double scale,
                      std::uint64_t seed) {
  const auto timed = [&](bool observe) {
    const std::string state =
        (std::filesystem::temp_directory_path() /
         (observe ? "hpm_observe_guard_on" : "hpm_observe_guard_off"))
            .string();
    std::filesystem::remove_all(state);
    std::filesystem::create_directories(state);
    serve::ServerOptions options;
    options.executors = 2;
    options.state_dir = state;
    options.observe = observe;
    serve::Server server(options);
    std::thread runner([&] { server.run(); });
    (void)run_one(server.port(), request_sweep(scale, seed));  // warm-up
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      const Outcome outcome =
          run_one(server.port(), request_sweep(scale, seed + 1 + i));
      if (outcome.kind != Outcome::Kind::kOk) {
        std::fprintf(stderr, "observe guardrail: request %zu did not "
                             "complete ok\n", i);
      }
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    server.stop_now();
    runner.join();
    std::filesystem::remove_all(state);
    return wall;
  };
  const double disabled = timed(false);
  const double enabled = timed(true);
  std::fprintf(stderr,
               "observe guardrail: disabled %.3fs, enabled %.3fs "
               "(enabled/disabled = %.3fx)\n",
               disabled, enabled,
               disabled > 0.0 ? enabled / disabled : 0.0);
  return 0;
}

/// Kill-mid-sweep -> restart -> byte-identical recovery check.
bool recovery_is_byte_identical(const std::string& state_dir, double scale,
                                std::uint64_t seed) {
  serve::SweepSpec sweep;
  sweep.workloads = {"synthetic"};
  sweep.tools = {"none", "sample", "search"};
  sweep.scale = scale * 10.0;  // slow enough to die mid-flight
  sweep.seed = seed;

  // Ground truth: the uninterrupted CLI-equivalent run.
  harness::BatchRunner::Options options;
  options.jobs = 1;
  const auto batch =
      harness::BatchRunner(options).run(serve::build_specs(sweep));
  harness::JsonExportOptions stable;
  stable.include_timing = false;
  stable.indent = 0;
  std::string expected = harness::to_json(batch, stable);
  while (!expected.empty() &&
         (expected.back() == '\n' || expected.back() == ' ')) {
    expected.pop_back();
  }

  serve::ServerOptions server_options;
  server_options.executors = 1;
  server_options.state_dir = state_dir;

  // Accept the sweep, wait until it is running, then pull the plug.
  {
    serve::Server server(server_options);
    std::thread runner([&] { server.run(); });
    serve::Socket socket = serve::connect_to("127.0.0.1", server.port());
    serve::LineReader reader(socket);
    socket.send_line("{\"op\":\"submit\",\"id\":\"doomed\",\"sweep\":" +
                     serve::canonical_sweep_json(sweep) + "}");
    std::string line;
    while (reader.read_line(line)) {
      if (line.find("\"event\":\"started\"") != std::string::npos) break;
      if (line.find("\"event\":\"rejected\"") != std::string::npos) {
        server.stop_now();
        runner.join();
        return false;
      }
    }
    server.stop_now();
    runner.join();
  }

  // Restart: the journal replays, the checkpoint resumes, the cache ends
  // up holding the finished result — which must match the ground truth.
  serve::Server server(server_options);
  std::thread runner([&] { server.run(); });
  const auto deadline = Clock::now() + std::chrono::minutes(5);
  bool done = false;
  while (Clock::now() < deadline) {
    const serve::ServerStats stats = server.stats();
    if (stats.completed >= 1 && stats.running == 0 && stats.queue_depth == 0) {
      done = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  bool identical = false;
  if (done) {
    const Outcome outcome = run_one(server.port(), sweep);
    identical = outcome.kind == Outcome::Kind::kOk &&
                outcome.result_json == expected;
  }
  server.stop_now();
  runner.join();
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = hpm::bench::CommonFlags::parse(
      argc, argv, {"requests", "queue", "observe-guardrail"});
  if (!flags) return 2;
  hpm::util::Cli cli(argc, argv,
                     {"scale", "iters", "seed", "csv", "workloads", "jobs",
                      "out", "telemetry-guardrail", "hierarchy-guardrail",
                      "live-guardrail", "requests", "queue",
                      "observe-guardrail"});
  const auto requests = static_cast<std::size_t>(cli.get_uint("requests", 24));
  const auto queue_depth = static_cast<std::size_t>(cli.get_uint("queue", 4));
  const double scale = flags->scale * 0.02;  // per-request sweep size

  if (cli.get_bool("observe-guardrail", false)) {
    return observe_guardrail(requests, scale, flags->seed);
  }

  std::printf("Table 6: hpmserve saturation and crash recovery\n\n");

  const std::string state_dir =
      (std::filesystem::temp_directory_path() / "hpm_table6_state").string();
  std::filesystem::remove_all(state_dir);
  std::filesystem::create_directories(state_dir);

  serve::ServerOptions options;
  options.executors = 2;
  options.max_queue = queue_depth;
  options.state_dir = state_dir;
  serve::Server server(options);
  std::thread runner([&] { server.run(); });

  // Capacity: sequential distinct requests, no queueing.
  const auto warm = Clock::now();
  constexpr std::size_t kProbe = 8;
  for (std::size_t i = 0; i < kProbe; ++i) {
    (void)run_one(server.port(), request_sweep(scale, flags->seed + 90'000 + i));
  }
  const double capacity_rps =
      static_cast<double>(kProbe) /
      std::chrono::duration<double>(Clock::now() - warm).count();
  std::fprintf(stderr, "capacity probe: %.1f req/s\n", capacity_rps);

  std::vector<LoadPoint> points;
  for (const double factor : {0.5, 1.0, 2.0}) {
    points.push_back(offer_load(server.port(), factor, capacity_rps, requests,
                                scale,
                                flags->seed + static_cast<std::uint64_t>(
                                                  factor * 1'000'000.0)));
  }
  server.stop_now();
  runner.join();

  hpm::util::Table table({"load", "offered r/s", "achieved r/s", "ok",
                          "rejected", "lost", "p50 ms", "p95 ms", "p99 ms"});
  for (const LoadPoint& point : points) {
    table.row()
        .cell(std::to_string(point.factor).substr(0, 4) + "x")
        .cell(point.offered_rps, 1)
        .cell(point.achieved_rps, 1)
        .cell(static_cast<std::uint64_t>(point.ok))
        .cell(static_cast<std::uint64_t>(point.rejected + point.errors))
        .cell(static_cast<std::uint64_t>(point.lost))
        .cell(point.p50, 1)
        .cell(point.p95, 1)
        .cell(point.p99, 1);
  }
  hpm::bench::emit(table, flags->csv);

  const LoadPoint& overload = points.back();
  const bool sheds_reported = overload.lost == 0;
  const bool recovered = recovery_is_byte_identical(state_dir, flags->scale,
                                                    flags->seed + 777);
  std::printf("\n2x overload: %zu shed via RETRY_AFTER, %zu lost %s\n",
              overload.rejected, overload.lost,
              sheds_reported ? "(gate: PASS)" : "(gate: FAIL)");
  std::printf("kill mid-sweep -> restart -> result %s\n",
              recovered ? "byte-identical (gate: PASS)"
                        : "MISMATCH (gate: FAIL)");

  if (!flags->out.empty()) {
    std::ofstream out(flags->out);
    out << "{\"schema\":\"hpm.table6.v1\",\"capacity_rps\":" << capacity_rps
        << ",\"points\":[";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const LoadPoint& p = points[i];
      out << (i != 0 ? "," : "") << "{\"factor\":" << p.factor
          << ",\"offered_rps\":" << p.offered_rps
          << ",\"achieved_rps\":" << p.achieved_rps << ",\"ok\":" << p.ok
          << ",\"rejected\":" << p.rejected << ",\"errors\":" << p.errors
          << ",\"lost\":" << p.lost << ",\"p50_ms\":" << p.p50
          << ",\"p95_ms\":" << p.p95 << ",\"p99_ms\":" << p.p99 << "}";
    }
    out << "],\"overload_sheds_reported\":"
        << (sheds_reported ? "true" : "false")
        << ",\"recovery_byte_identical\":" << (recovered ? "true" : "false")
        << "}\n";
  }
  std::filesystem::remove_all(state_dir);
  return sheds_reported && recovered ? 0 : 1;
}
