// Ablation: the phase heuristic (§2.2 / §3.5).
//
// Regions that previously ranked high but show zero misses in the current
// interval are retained for a few iterations, and every retention lengthens
// future intervals.  applu is the motivating case (Figure 5): the Jacobian
// blocks a/b/c periodically incur no misses at all.  Without the heuristic,
// their regions are discarded the first time an interval lands in the idle
// phase and the search loses them.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace hpm;

void report_variant(util::Table& table, const std::string& workload,
                    const harness::RunResult& result, bool retention) {
  const auto comparison =
      core::Report::compare(result.actual.filtered(1.0), result.estimated, 6);
  std::string found;
  for (const auto& row : result.estimated.rows()) {
    if (!found.empty()) found += ", ";
    found += row.name;
  }
  table.row()
      .cell(workload)
      .cell(retention ? "retention on" : "retention off")
      .cell(static_cast<std::uint64_t>(result.estimated.size()))
      .cell(static_cast<std::uint64_t>(comparison.missing))
      .cell(comparison.max_abs_error, 1)
      .cell(found.empty() ? "(none)" : found);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::CommonFlags::parse(argc, argv);
  if (!flags) return 2;

  std::printf("Ablation: zero-miss region retention + interval growth\n\n");

  util::Table table({"workload", "variant", "objects found",
                     "top-6 missing", "max err %", "found set"},
                    {util::Align::kLeft, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kLeft});

  // applu: the paper's Figure 5 case.
  for (const bool retention : {true, false}) {
    harness::RunConfig config;
    config.machine = harness::paper_machine();
    config.tool = harness::ToolKind::kSearch;
    config.search.n = 10;
    config.search.phase_retention = retention;
    const auto options =
        bench::options_for(*flags, bench::bench_default_iters("applu"));
    report_variant(table, "applu",
                   harness::run_experiment(config, "applu", options),
                   retention);
  }
  table.separator();

  // su2cor under a 10-way search: the other heavily phased application
  // (the sweep/intact alternation that §3.4 blames for the 2-way failure).
  for (const bool retention : {true, false}) {
    harness::RunConfig config;
    config.machine = harness::paper_machine();
    config.tool = harness::ToolKind::kSearch;
    config.search.n = 10;
    config.search.phase_retention = retention;
    const auto options =
        bench::options_for(*flags, bench::bench_default_iters("su2cor"));
    report_variant(table, "su2cor",
                   harness::run_experiment(config, "su2cor", options),
                   retention);
  }

  bench::emit(table, flags->csv);
  std::printf("\nExpected shape: with retention on, phase-idle arrays (applu "
              "a/b/c during the RHS phase, su2cor's sweep-phase arrays) stay "
              "in the result set; off, they are discarded the first time an "
              "interval lands in their idle phase.\n");
  return 0;
}
