// Figure 4: Instrumentation Cost (percent slowdown, log scale).
//
// Same run matrix as Figure 3.  The slowdown is total virtual cycles versus
// the uninstrumented run; the table also reports the per-interrupt cost and
// the interrupt rate, the two quantities §3.3 uses to explain the result
// (search: few, expensive interrupts; sampling: many, ~9,000-cycle ones —
// 8,800 of which is the measured OS delivery cost).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv);
  if (!flags) return 2;

  std::printf("Figure 4: Instrumentation Cost\n");
  std::printf("(percent slowdown vs. uninstrumented run; log-scale bars)\n\n");

  const std::uint64_t kPeriods[] = {1'000, 10'000, 100'000, 1'000'000};

  util::Table table(
      {"application", "config", "slowdown %", "interrupts",
       "cycles/interrupt", "interrupts/Gcycle", "log bar"},
      {util::Align::kLeft, util::Align::kLeft, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight,
       util::Align::kLeft});

  for (const auto& name : bench::selected_workloads(*flags)) {
    const auto options =
        bench::options_for(*flags, bench::bench_default_iters(name));

    harness::RunConfig base_cfg;
    base_cfg.machine = harness::paper_machine();
    const auto baseline = harness::run_experiment(base_cfg, name, options);
    const double base_cycles =
        static_cast<double>(baseline.stats.total_cycles());

    auto add_row = [&](const std::string& config_name,
                       const harness::RunResult& run) {
      const double cycles = static_cast<double>(run.stats.total_cycles());
      const double slowdown = 100.0 * (cycles - base_cycles) / base_cycles;
      const double per_interrupt =
          run.stats.interrupts
              ? static_cast<double>(run.stats.tool_cycles) /
                    static_cast<double>(run.stats.interrupts)
              : 0.0;
      const double per_gcycle =
          static_cast<double>(run.stats.interrupts) * 1e9 / cycles;
      table.row()
          .cell(name)
          .cell(config_name)
          .cell(slowdown, 4)
          .cell(run.stats.interrupts)
          .cell(per_interrupt, 0)
          .cell(per_gcycle, 1)
          .cell(util::log_bar(slowdown, 1e-4, 100.0, 40));
    };

    harness::RunConfig search_cfg = base_cfg;
    search_cfg.tool = harness::ToolKind::kSearch;
    search_cfg.search.n = 10;
    add_row("search", harness::run_experiment(search_cfg, name, options));

    for (const auto period : kPeriods) {
      harness::RunConfig cfg = base_cfg;
      cfg.tool = harness::ToolKind::kSampler;
      cfg.sampler.period = period;
      add_row("sample(" + std::to_string(period) + ")",
              harness::run_experiment(cfg, name, options));
    }
    table.separator();
  }
  bench::emit(table, flags->csv);
  return 0;
}
