// Table 5 (extension): model refutation accuracy under PMU fault injection.
//
// The calibration search (src/calibrate, tools/hpmcalibrate) answers the
// CounterPoint-style question "which machine models are consistent with
// this counter profile?".  This table quantifies how that answer degrades
// as the profile itself is perturbed: each row observes the TRUE machine
// (the paper preset, 2 MB LLC, penalty 50) under one PR-3 fault plan, then
// calibrates the faulted observation against the default candidate space
// (hierarchy presets x miss penalties) and reports where the generating
// spec landed.
//
// Reading the table: the fault-free row must rank the true spec #1 with
// zero inconsistency (self-calibration, pinned by the property tests).
// Faulted rows keep the fault-immune metrics (exact miss shares, cycles)
// clean but perturb the planes real PMUs corrupt — dropped interrupts thin
// the `interrupts` counter, skid mis-attributes the tool's estimated
// shares (`est_share`), jitter corrupts sampled counts — so the true
// spec's inconsistency grows with fault severity and the profile
// eventually becomes UNEXPLAINABLE within the space: refutation of every
// candidate is exactly how the tool reports "these counters are not the
// machine's".  The dropped-interrupt series is monotone by construction
// (the seeded Bernoulli thinning nests as the rate grows); the bench
// checks that and exits 1 on violation, so CI can gate on it.  Skid, like
// table3, is NOT monotone in K — the error depends on where the skid
// lands in the workload's access phase.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "calibrate/candidates.hpp"
#include "calibrate/model_search.hpp"
#include "calibrate/report.hpp"

namespace {

struct Plan {
  std::string name;
  unsigned skid = 0;
  double drop = 0.0;
  double jitter_rate = 0.0;
  unsigned jitter_magnitude = 0;
  bool in_drop_series = false;  // rows the monotonicity check covers
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv, {"fault-seed", "refine"});
  if (!flags) return 2;
  util::Cli cli(argc, argv,
                {"scale", "iters", "seed", "csv", "workloads", "jobs", "out",
                 "telemetry-guardrail", "hierarchy-guardrail", "fault-seed",
                 "refine"});
  const std::uint64_t fault_seed = cli.get_uint("fault-seed", 0x0fa417);
  const std::size_t refine_rounds =
      static_cast<std::size_t>(cli.get_uint("refine", 0));

  // Calibration replays every candidate against every observed run, so the
  // default observation is one fast synthetic search run; --workloads
  // widens it to the paper applications.
  const std::vector<std::string> workload_names =
      flags->workloads.empty() ? std::vector<std::string>{"synthetic"}
                               : flags->workloads;

  const std::vector<Plan> plans = {
      {"none", 0, 0.0, 0.0, 0, true},
      {"drop=0.5%", 0, 0.005, 0.0, 0, true},
      {"drop=2%", 0, 0.02, 0.0, 0, true},
      {"drop=5%", 0, 0.05, 0.0, 0, true},
      {"skid=4", 4, 0.0, 0.0, 0, false},
      {"skid=64", 64, 0.0, 0.0, 0, false},
      {"jitter=5%x4", 0, 0.0, 0.05, 4, false},
      {"jitter=20%x256", 0, 0.0, 0.20, 256, false},
      {"skid=4+drop=2%", 4, 0.02, 0.0, 0, false},
  };

  // True machine: the paper preset.  The candidate space is the default
  // grid hpmcalibrate searches (presets x penalties {25,50,100}).
  sim::MachineConfig true_machine;
  const bool preset_ok = sim::hierarchy_preset("paper", true_machine.hierarchy);
  if (!preset_ok) {
    std::fprintf(stderr, "paper preset missing\n");
    return 2;
  }
  const auto grid = calibrate::candidate_grid({}, {});
  const std::string true_key =
      sim::format_hierarchy_spec(
          sim::resolve_levels(true_machine.hierarchy, true_machine.cache)) +
      "/p" + std::to_string(true_machine.cycles.cache_miss_penalty);

  util::Table table({"plan", "explained", "true_rank", "true_inconsist",
                     "true_verdict", "refuted_by", "consistent",
                     "candidates"});
  bool monotone = true;
  double previous_drop_inconsistency = -1.0;
  harness::BatchResult last_batch;

  for (const Plan& plan : plans) {
    std::vector<harness::RunSpec> specs;
    for (const std::string& workload : workload_names) {
      // The sampler is the drop/skid-sensitive tool: the injector perturbs
      // the PMU overflow path.  The sampler config is pinned identically on
      // the replay side below, so every observed-vs-replayed delta is
      // attributable to the injected faults: a dense prime period keeps the
      // interrupt count high enough that fractional drop rates are
      // resolvable, and the explicit watchdog makes the hardening timer
      // tick on BOTH sides instead of only in the auto-hardened faulted
      // observation.
      harness::RunSpec sample;
      sample.name = workload + "/sample+" + plan.name;
      sample.workload = workload;
      sample.config.machine = true_machine;
      sample.config.tool = harness::ToolKind::kSampler;
      sample.config.sampler.period = 499;
      sample.config.sampler.watchdog_interval = 500'000;
      sample.config.machine.faults.seed = fault_seed;
      sample.config.machine.faults.skid_refs = plan.skid;
      sample.config.machine.faults.drop_rate = plan.drop;
      sample.config.machine.faults.jitter_rate = plan.jitter_rate;
      sample.config.machine.faults.jitter_magnitude = plan.jitter_magnitude;
      sample.options =
          bench::options_for(*flags, bench::bench_default_iters(workload));
      if (workload == "synthetic" && sample.options.iterations == 0) {
        sample.options.iterations = 8;
        sample.options.scale = flags->scale == 1.0 ? 0.5 : flags->scale;
      }

      // Jitter corrupts region-counter READS — the n-way search's plane —
      // so each plan is also observed under the search tool; drops and
      // skid, conversely, only touch the sampler's overflow path.
      harness::RunSpec search = sample;
      search.name = workload + "/search+" + plan.name;
      search.config.tool = harness::ToolKind::kSearch;

      specs.push_back(std::move(sample));
      specs.push_back(std::move(search));
    }

    const auto observed =
        harness::BatchRunner(bench::batch_options(*flags)).run(specs);
    last_batch = observed;

    calibrate::ModelSearchOptions options;
    options.jobs = flags->jobs;
    options.refine_rounds = refine_rounds;
    options.base.sampler.period = 499;
    options.base.sampler.watchdog_interval = 500'000;
    const calibrate::CalibrationResult result =
        calibrate::calibrate(observed, grid, options);

    std::size_t true_rank = 0;
    double true_inconsistency = 0.0;
    std::string true_verdict = "-";
    std::string refuted_by = "-";
    std::size_t consistent = 0;
    for (std::size_t i = 0; i < result.ranked.size(); ++i) {
      const calibrate::CandidateVerdict& v = result.ranked[i];
      if (v.consistent) ++consistent;
      if (calibrate::candidate_key(v.candidate) == true_key) {
        true_rank = i + 1;
        true_inconsistency = v.inconsistency;
        true_verdict = v.consistent ? "CONSISTENT" : "REFUTED";
        if (!v.consistent && v.worst < v.deltas.size()) {
          refuted_by = v.deltas[v.worst].metric;
        }
      }
    }

    if (plan.in_drop_series) {
      if (true_inconsistency + 1e-12 < previous_drop_inconsistency) {
        monotone = false;
      }
      previous_drop_inconsistency = true_inconsistency;
    }

    table.row()
        .cell(plan.name)
        .cell(result.explained ? "yes" : "NO")
        .cell(static_cast<std::uint64_t>(true_rank))
        .cell(true_inconsistency, 3)
        .cell(true_verdict)
        .cell(refuted_by)
        .cell(static_cast<std::uint64_t>(consistent))
        .cell(static_cast<std::uint64_t>(result.ranked.size()));
  }

  bench::emit(table, flags->csv);
  bench::maybe_export(*flags, last_batch);

  std::fprintf(stderr,
               "drop-series degradation %s: true-spec inconsistency must be "
               "non-decreasing in the dropped-interrupt rate\n",
               monotone ? "monotone (ok)" : "NON-MONOTONE (regression)");
  return monotone ? 0 : 1;
}
