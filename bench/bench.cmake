# Bench harnesses: one binary per paper table/figure plus ablations and
# component micro-benchmarks.  Included from the top-level CMakeLists so
# that build/bench/ contains only the executables.

function(hpm_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    hpm_harness hpm_core hpm_workloads hpm_objmap hpm_sim hpm_util)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

hpm_add_bench(table1_quality)
hpm_add_bench(table2_nway)
hpm_add_bench(table3_degradation)
hpm_add_bench(table4_hierarchy)
hpm_add_bench(table5_calibration)
target_link_libraries(table5_calibration PRIVATE hpm_calibrate hpm_analysis)
hpm_add_bench(table6_saturation)
target_link_libraries(table6_saturation PRIVATE hpm_serve)
hpm_add_bench(table7_coherence)
hpm_add_bench(fig3_perturbation)
hpm_add_bench(fig4_cost)
hpm_add_bench(fig5_phases)
hpm_add_bench(fig_prime_sampling)
hpm_add_bench(ablation_priority_queue)
hpm_add_bench(ablation_boundary_adjust)
hpm_add_bench(ablation_phase_heuristic)
hpm_add_bench(ablation_timeshare)

add_executable(micro_components ${CMAKE_SOURCE_DIR}/bench/micro_components.cpp)
target_link_libraries(micro_components PRIVATE
  hpm_harness hpm_core hpm_workloads hpm_objmap hpm_sim hpm_util
  benchmark::benchmark)
set_target_properties(micro_components PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
