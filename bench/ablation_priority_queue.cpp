// Ablation: the priority queue (Figure 2).
//
// Without the priority queue, the search greedily refines whichever region
// currently shows the most misses and discards the rest.  Figure 2's layout
// defeats it: one half of the address space holds several mid-weight arrays
// (60% combined) while the other half holds the single hottest array E
// (35%).  The greedy search descends into the 60% half and terminates on a
// 20% array; the priority queue backs up and finds E.  This bench runs both
// variants on that layout and on the paper applications.
#include <cstdio>

#include "bench_common.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace hpm;

harness::RunResult run_fig2(bool use_pq, unsigned n) {
  workloads::SyntheticWorkload workload(
      workloads::figure2_spec(4 * 1024 * 1024, /*iterations=*/10));
  harness::RunConfig config;
  config.machine = harness::paper_machine();
  config.tool = harness::ToolKind::kSearch;
  config.search.n = n;
  config.search.use_priority_queue = use_pq;
  config.search.search_whole_space = false;
  config.search.initial_interval = 2'000'000;
  return harness::run_experiment(config, workload);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::CommonFlags::parse(argc, argv, {"n"});
  if (!flags) return 2;
  util::Cli cli(argc, argv, {"scale", "iters", "seed", "csv", "workloads", "n"});
  const unsigned n = static_cast<unsigned>(cli.get_uint("n", 2));

  std::printf("Ablation: priority queue vs. greedy search (Figure 2)\n\n");
  std::printf("Layout: A 10%%, B 10%%, C 20%%, D 17.5%% | E 35%%, F 7.5%% — "
              "E is the single hottest array.\n\n");

  util::Table table({"variant", "top object found", "estimated %",
                     "iterations", "verdict"},
                    {util::Align::kLeft, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kLeft});
  for (const bool use_pq : {false, true}) {
    const auto result = run_fig2(use_pq, n);
    const auto& rows = result.estimated.rows();
    const std::string top = rows.empty() ? "(none)" : rows.front().name;
    table.row()
        .cell(use_pq ? "priority queue" : "greedy (no queue)")
        .cell(top)
        .cell(rows.empty() ? 0.0 : rows.front().percent, 1)
        .cell(static_cast<std::uint64_t>(result.search_stats.iterations))
        .cell(top == "E" ? "correct" : "WRONG (expected E)");
  }
  bench::emit(table, flags->csv);

  // The same comparison across the paper applications: how often does the
  // greedy variant's top result match ground truth?
  std::printf("\nPaper applications, %u-way search, top-1 agreement:\n\n", n);
  util::Table apps({"application", "actual top", "greedy top", "pq top"},
                   {util::Align::kLeft, util::Align::kLeft, util::Align::kLeft,
                    util::Align::kLeft});
  for (const auto& name : bench::selected_workloads(*flags)) {
    const auto options =
        bench::options_for(*flags, bench::bench_default_iters(name));
    std::string tops[2];
    std::string actual_top = "?";
    for (const bool use_pq : {false, true}) {
      harness::RunConfig config;
      config.machine = harness::paper_machine();
      config.tool = harness::ToolKind::kSearch;
      config.search.n = n;
      config.search.use_priority_queue = use_pq;
      const auto result = harness::run_experiment(config, name, options);
      tops[use_pq ? 1 : 0] = result.estimated.empty()
                                 ? "(none)"
                                 : result.estimated.rows().front().name;
      if (!result.actual.empty()) {
        actual_top = result.actual.rows().front().name;
      }
    }
    apps.row().cell(name).cell(actual_top).cell(tops[0]).cell(tops[1]);
  }
  bench::emit(apps, flags->csv);
  return 0;
}
