// Ablation: adjusting region extents to object boundaries (§2.2).
//
// "An array causing many cache misses that spans a region boundary may not
// cause enough cache misses in any single region to attract the search to
// it."  Layout: three equal arrays A (30%), HOT (40%), B (30%), with HOT
// straddling the midpoint of the occupied span — exactly where a 2-way
// search places its first region boundary.  With boundary adjustment the
// split snaps to HOT's edge and HOT wins; without it HOT's misses are cut
// in half per region (20% each) and A outranks it.
#include <cstdio>

#include "bench_common.hpp"
#include "workloads/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv, {"n"});
  if (!flags) return 2;
  util::Cli cli(argc, argv, {"scale", "iters", "seed", "csv", "workloads", "n"});
  const unsigned n = static_cast<unsigned>(cli.get_uint("n", 2));

  std::printf("Ablation: region-boundary adjustment to object extents\n\n");
  std::printf("Layout: A 30%% | HOT 40%% (spans the initial split point) | "
              "B 30%%\n\n");

  util::Table table({"variant", "rank 1", "%", "rank 2", "%", "HOT rank",
                     "verdict"},
                    {util::Align::kLeft, util::Align::kLeft,
                     util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kLeft});

  for (const bool adjust : {true, false}) {
    workloads::SyntheticSpec spec;
    spec.name = "spanning";
    spec.iterations = 12;
    spec.lockstep = true;  // all arrays active in every interval
    const std::uint64_t mb = 1024 * 1024;
    // Sizes double as miss weights: 30% / 40% / 30%.  The occupied span is
    // 20 MB, so a 2-way search's first split point (10 MB) bisects HOT.
    spec.arrays = {{"A", 6 * mb}, {"HOT", 8 * mb}, {"B", 6 * mb}};
    spec.phases.push_back({{1, 1, 1}, 1});
    workloads::SyntheticWorkload workload(std::move(spec));

    harness::RunConfig config;
    config.machine = harness::paper_machine();
    config.tool = harness::ToolKind::kSearch;
    config.search.n = n;
    config.search.adjust_boundaries = adjust;
    config.search.search_whole_space = false;  // span midpoint bisects HOT
    config.search.initial_interval = 2'000'000;
    const auto result = harness::run_experiment(config, workload);

    const auto& rows = result.estimated.rows();
    const std::size_t hot_rank = result.estimated.rank_of("HOT");
    table.row().cell(adjust ? "adjusted boundaries" : "raw midpoint splits");
    for (std::size_t i = 0; i < 2; ++i) {
      if (i < rows.size()) {
        table.cell(rows[i].name).cell(rows[i].percent, 1);
      } else {
        table.blank().blank();
      }
    }
    table.cell(static_cast<std::uint64_t>(hot_rank));
    table.cell(hot_rank == 1 ? "correct"
                             : "WRONG (HOT should rank first)");
  }
  bench::emit(table, flags->csv);
  return 0;
}
