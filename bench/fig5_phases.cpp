// Figure 5: Cache Misses over Time for Applu.
//
// Per-object miss counts per uniform time interval, captured by the
// ground-truth profiler.  The paper's figure shows the Jacobian blocks
// (a, b, c — nearly identical curves) periodically dipping to zero while
// rsd (and u) spike: the phase behaviour that motivates the search's
// zero-retention heuristic.  Output: a CSV-ish series plus sparklines.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  auto flags = bench::CommonFlags::parse(argc, argv, {"interval", "workload"});
  if (!flags) return 2;
  util::Cli cli(argc, argv, {"scale", "iters", "seed", "csv", "workloads",
                             "interval", "workload"});
  const std::string workload = cli.get("workload", "applu");
  const sim::Cycles interval = cli.get_uint("interval", 4'000'000);

  harness::RunConfig config;
  config.machine = harness::paper_machine();
  config.series_interval = interval;
  const auto options =
      bench::options_for(*flags, bench::bench_default_iters(workload));
  const auto result = harness::run_experiment(config, workload, options);

  std::printf("Figure 5: Cache Misses over Time for %s\n", workload.c_str());
  std::printf("(interval = %llu cycles, %zu intervals)\n\n",
              static_cast<unsigned long long>(interval),
              result.series.empty()
                  ? std::size_t{0}
                  : result.series.front().misses_per_interval.size());

  // CSV block: one column per object, one row per interval.
  std::printf("interval");
  for (const auto& s : result.series) std::printf(",%s", s.name.c_str());
  std::printf("\n");
  const std::size_t intervals =
      result.series.empty() ? 0 : result.series.front().misses_per_interval.size();
  for (std::size_t i = 0; i < intervals; ++i) {
    std::printf("%zu", i);
    for (const auto& s : result.series) {
      std::printf(",%llu",
                  static_cast<unsigned long long>(
                      i < s.misses_per_interval.size()
                          ? s.misses_per_interval[i]
                          : 0));
    }
    std::printf("\n");
  }

  // Sparklines for a quick visual check of the phase pattern.
  std::printf("\n");
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  for (const auto& s : result.series) {
    if (s.misses_per_interval.empty()) continue;
    const auto peak = *std::max_element(s.misses_per_interval.begin(),
                                        s.misses_per_interval.end());
    if (peak == 0) continue;
    std::string line;
    for (auto v : s.misses_per_interval) {
      const auto idx =
          static_cast<std::size_t>(v == 0 ? 0 : 1 + (7 * (v - 1)) / peak);
      line += kLevels[std::min<std::size_t>(idx, 7)];
    }
    std::printf("%-12s |%s|\n", s.name.c_str(), line.c_str());
  }
  return 0;
}
