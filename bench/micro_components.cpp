// Component micro-benchmarks (google-benchmark): host-side throughput of
// the simulator substrates.  These bound how much simulated work the
// table/figure harnesses can afford and catch performance regressions in
// the hot paths (cache access, PMU update, object resolution, RB tree).
#include <benchmark/benchmark.h>

#include <vector>

#include "objmap/object_map.hpp"
#include "objmap/rbtree.hpp"
#include "sim/backing_store.hpp"
#include "sim/cache.hpp"
#include "sim/machine.hpp"
#include "util/prng.hpp"

namespace {

using namespace hpm;

void BM_CacheAccessHit(benchmark::State& state) {
  sim::Cache cache(sim::CacheConfig{});
  (void)cache.access(0, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(0, false));
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessStreaming(benchmark::State& state) {
  sim::CacheConfig config;
  config.policy = static_cast<sim::ReplacementPolicy>(state.range(0));
  sim::Cache cache(config);
  sim::Addr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false));
    addr += 64;  // every access a miss
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccessStreaming)->DenseRange(0, 3);

void BM_CacheAccessMixed(benchmark::State& state) {
  sim::Cache cache(sim::CacheConfig{});
  util::Xoshiro256 rng(1);
  // 2x cache-size working set: a realistic hit/miss blend.
  const std::uint64_t span = 4ULL * 1024 * 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_below(span), false));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccessMixed);

void BM_BackingStoreLoad(benchmark::State& state) {
  sim::BackingStore store;
  store.store<double>(0x1000, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.load<double>(0x1000));
  }
}
BENCHMARK(BM_BackingStoreLoad);

void BM_MachineAppRef(benchmark::State& state) {
  sim::Machine machine;
  const sim::Addr base = machine.address_space().define_static("v", 1 << 24);
  sim::Addr offset = 0;
  for (auto _ : state) {
    machine.touch(base + offset);
    offset = (offset + 64) & ((1 << 24) - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineAppRef);

void BM_RbTreeInsertErase(benchmark::State& state) {
  objmap::RbTree tree;
  util::Xoshiro256 rng(2);
  std::vector<sim::Addr> keys;
  for (int i = 0; i < state.range(0); ++i) {
    const sim::Addr a = 0x141000000ULL + static_cast<sim::Addr>(i) * 128;
    tree.insert(a, 64, static_cast<std::uint32_t>(i));
    keys.push_back(a);
  }
  std::size_t idx = 0;
  for (auto _ : state) {
    const sim::Addr a = keys[idx];
    tree.erase(a);
    tree.insert(a, 64, 0);
    idx = (idx + 1) % keys.size();
  }
}
BENCHMARK(BM_RbTreeInsertErase)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RbTreeFindContaining(benchmark::State& state) {
  objmap::RbTree tree;
  for (int i = 0; i < state.range(0); ++i) {
    tree.insert(0x141000000ULL + static_cast<sim::Addr>(i) * 128, 128,
                static_cast<std::uint32_t>(i));
  }
  util::Xoshiro256 rng(3);
  const std::uint64_t span = static_cast<std::uint64_t>(state.range(0)) * 128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.find_containing(0x141000000ULL + rng.next_below(span)));
  }
}
BENCHMARK(BM_RbTreeFindContaining)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ObjectMapResolve(benchmark::State& state) {
  sim::Machine machine;
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  std::vector<sim::Addr> bases;
  for (int i = 0; i < 64; ++i) {
    bases.push_back(machine.address_space().define_static(
        "sym" + std::to_string(i), 4096));
  }
  for (int i = 0; i < 64; ++i) {
    bases.push_back(machine.address_space().malloc(4096));
  }
  util::Xoshiro256 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.resolve(bases[rng.next_below(bases.size())] + 128));
  }
}
BENCHMARK(BM_ObjectMapResolve);

void BM_SnapSplitPoint(benchmark::State& state) {
  sim::Machine machine;
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  for (int i = 0; i < 256; ++i) {
    (void)machine.address_space().define_static("sym" + std::to_string(i),
                                                1 << 16);
  }
  const auto span = map.occupied_span();
  util::Xoshiro256 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.snap_split_point(span.base + rng.next_below(span.size()), span));
  }
}
BENCHMARK(BM_SnapSplitPoint);

}  // namespace

BENCHMARK_MAIN();
