// Search a realistic HPC workload (mgrid) for its memory bottlenecks with
// the 10-way search, printing the search's internal progress statistics —
// the scenario the paper's tool is built for.
#include <cstdio>

#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  const char* workload = argc > 1 ? argv[1] : "mgrid";

  harness::RunConfig config;
  config.machine = harness::paper_machine();
  config.tool = harness::ToolKind::kSearch;
  config.search.n = 10;
  config.search.initial_interval = 1'000'000;

  std::printf("Running 10-way search on '%s' (2 MB cache)...\n", workload);
  const auto result = harness::run_experiment(config, workload);

  std::printf("\nSearch %s: %u iterations, %u splits, %u regions discarded, "
              "%u zero-miss regions retained\n",
              result.search_done ? "converged" : "did not converge",
              result.search_stats.iterations, result.search_stats.splits,
              result.search_stats.discarded,
              result.search_stats.zero_retained);
  std::printf("Interrupts: %llu, tool cycles: %llu (%.0f per interrupt)\n",
              static_cast<unsigned long long>(result.stats.interrupts),
              static_cast<unsigned long long>(result.stats.tool_cycles),
              result.stats.interrupts
                  ? static_cast<double>(result.stats.tool_cycles) /
                        static_cast<double>(result.stats.interrupts)
                  : 0.0);

  std::puts("\nBottleneck objects (search estimate vs. ground truth):");
  for (const auto& row : result.estimated.rows()) {
    const auto actual = result.actual.percent_of(row.name);
    std::printf("  %-24s  search %6.1f%%   actual %6.1f%%\n",
                row.name.c_str(), row.percent, actual.value_or(0.0));
  }
  return result.estimated.empty() ? 1 : 0;
}
