// Quickstart: find the data structure causing the most cache misses.
//
// Builds a simulated machine, runs a small program with one "hot" array,
// and uses both techniques from the paper — miss-address sampling and the
// n-way search — to identify it.  This is the 60-second tour of the API.
#include <cstdio>

#include "core/nway_search.hpp"
#include "core/sampler.hpp"
#include "objmap/object_map.hpp"
#include "sim/machine.hpp"
#include "workloads/sim_array.hpp"

int main() {
  using namespace hpm;

  // 1. A machine: 256 KB 8-way cache, 16 PMU miss counters.
  sim::MachineConfig config;
  config.cache.size_bytes = 256 * 1024;
  sim::Machine machine(config);

  // 2. An object map, fed automatically by the address space (symbol
  //    registration and instrumented malloc, as in the paper).
  objmap::ObjectMap map;
  map.attach(machine.address_space());

  // 3. A tiny "application": three global arrays, one of them hot.
  auto a = workloads::Array1D<double>::make_static(machine, "a", 64 * 1024);
  auto b = workloads::Array1D<double>::make_static(machine, "b", 64 * 1024);
  auto hot = workloads::Array1D<double>::make_static(machine, "hot", 64 * 1024);

  auto sweep = [&](const workloads::Array1D<double>& arr) {
    for (std::uint64_t i = 0; i < arr.size(); ++i) {
      arr.set(i, arr.get(i) * 0.5 + 1.0);
      machine.exec(2);
    }
  };

  // 4. Technique 1: sample one miss in every 1,000.
  core::Sampler sampler(machine, map, {.period = 1'000});
  sampler.start();
  for (int iter = 0; iter < 6; ++iter) {
    sweep(a);
    sweep(hot);
    sweep(hot);
    sweep(hot);  // hot gets 3x the sweeps -> ~60% of misses
    sweep(b);
  }
  sampler.stop();

  std::puts("Sampling (1 in 1,000 misses):");
  for (const auto& row : sampler.report().rows()) {
    std::printf("  %-6s %6.1f%%  (%llu samples)\n", row.name.c_str(),
                row.percent, static_cast<unsigned long long>(row.count));
  }

  // 5. Technique 2: a 4-way search over the address space.
  core::SearchConfig search_config;
  search_config.n = 4;
  search_config.initial_interval = 2'000'000;
  core::NWaySearch search(machine, map, search_config);
  search.start();
  for (int iter = 0; iter < 60 && !search.done(); ++iter) {
    sweep(a);
    sweep(hot);
    sweep(hot);
    sweep(hot);
    sweep(b);
  }
  search.stop();

  std::printf("\n4-way search (%s after %u iterations):\n",
              search.done() ? "converged" : "still running",
              search.stats().iterations);
  for (const auto& row : search.report().rows()) {
    std::printf("  %-6s %6.1f%% of all misses\n", row.name.c_str(),
                row.percent);
  }

  const auto& top = search.report().rows();
  if (!top.empty() && top.front().name == "hot") {
    std::puts("\nOK: both techniques agree the bottleneck is 'hot'.");
    return 0;
  }
  std::puts("\nWARNING: search did not identify 'hot' first.");
  return 1;
}
