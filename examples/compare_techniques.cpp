// Side-by-side comparison of the two techniques on one workload: actual
// miss shares vs. sampling vs. 10-way search, plus each technique's
// overhead — a one-workload preview of the paper's Tables 1/2 and Figure 4.
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  const char* workload = argc > 1 ? argv[1] : "tomcatv";

  // Baseline (no instrumentation) for overhead numbers.
  harness::RunConfig base;
  base.machine = harness::paper_machine();
  const auto baseline = harness::run_experiment(base, workload);

  harness::RunConfig sample_cfg = base;
  sample_cfg.tool = harness::ToolKind::kSampler;
  sample_cfg.sampler.period = 10'000;
  const auto sampled = harness::run_experiment(sample_cfg, workload);

  harness::RunConfig search_cfg = base;
  search_cfg.tool = harness::ToolKind::kSearch;
  search_cfg.search.n = 10;
  const auto searched = harness::run_experiment(search_cfg, workload);

  util::Table table({"object", "actual %", "sampled %", "search %"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight});
  const auto actual_top = baseline.actual.filtered(0.01).top(8);
  for (const auto& row : actual_top.rows()) {
    table.row().cell(row.name).cell(row.percent, 1);
    if (auto p = sampled.estimated.percent_of(row.name)) {
      table.cell(*p, 1);
    } else {
      table.blank();
    }
    if (auto p = searched.estimated.percent_of(row.name)) {
      table.cell(*p, 1);
    } else {
      table.blank();
    }
  }
  std::printf("Workload: %s\n\n", workload);
  std::puts(table.to_string().c_str());

  auto slowdown = [&](const harness::RunResult& r) {
    return 100.0 *
           (static_cast<double>(r.stats.total_cycles()) -
            static_cast<double>(baseline.stats.total_cycles())) /
           static_cast<double>(baseline.stats.total_cycles());
  };
  std::printf("Sampling: %llu samples, %.3f%% slowdown\n",
              static_cast<unsigned long long>(sampled.samples),
              slowdown(sampled));
  std::printf("Search:   %u iterations, %.3f%% slowdown, converged: %s\n",
              searched.search_stats.iterations, slowdown(searched),
              searched.search_done ? "yes" : "no");
  return 0;
}
