// Example: run a small (workload x tool) sweep on the parallel batch
// engine and export the results as JSON.
//
// Demonstrates the three pieces PR 1 added to the harness:
//   * cross_specs     — build the sweep's run list;
//   * BatchRunner     — execute it on a worker pool, results in
//                       submission order (identical for any --jobs);
//   * export_json     — machine-readable hpm.batch.v1 output.
#include <cstdio>
#include <iostream>

#include "harness/batch.hpp"
#include "harness/json_export.hpp"

int main() {
  using namespace hpm;

  // A reduced-scale sweep: three workloads, sampler vs search, sized so
  // the whole thing finishes in a couple of seconds.
  harness::RunConfig sample_cfg;
  sample_cfg.machine.cache.size_bytes = 128 * 1024;
  sample_cfg.tool = harness::ToolKind::kSampler;
  sample_cfg.sampler.period = 1'999;

  harness::RunConfig search_cfg;
  search_cfg.machine.cache.size_bytes = 128 * 1024;
  search_cfg.tool = harness::ToolKind::kSearch;
  search_cfg.search.n = 10;
  search_cfg.search.initial_interval = 250'000;

  const auto specs = harness::cross_specs(
      {"tomcatv", "mgrid", "applu"},
      {{"sample", sample_cfg}, {"search", search_cfg}},
      [](const std::string&) {
        workloads::WorkloadOptions options;
        options.scale = 0.25;
        options.iterations = 4;
        return options;
      });

  harness::BatchRunner::Options options;
  options.jobs = 0;  // all cores
  options.on_progress = [](std::size_t done, std::size_t total,
                           const harness::BatchItem& item) {
    std::fprintf(stderr, "[%zu/%zu] %s (%.3fs)\n", done, total,
                 item.spec.name.c_str(), item.wall_seconds);
  };

  const auto batch = harness::BatchRunner(options).run(specs);

  std::fprintf(stderr, "ran %zu experiments on %u workers in %.3fs\n",
               batch.metrics.runs, batch.metrics.jobs,
               batch.metrics.wall_seconds);
  for (const auto& item : batch.items) {
    if (!item.ok) continue;
    const auto top = item.result.estimated.top(1);
    std::fprintf(stderr, "  %-16s top estimated object: %s\n",
                 item.spec.name.c_str(),
                 top.empty() ? "(none)" : top.rows().front().name.c_str());
  }

  // The full document — every count, report row and search statistic —
  // goes to stdout; pipe it wherever the trajectory needs it.
  harness::export_json(std::cout, batch);
  return batch.metrics.failed == 0 ? 0 : 1;
}
