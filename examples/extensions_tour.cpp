// Tour of the §5/§6 extensions on one synthetic program:
//   1. stack-variable sampling (locals aggregated across activations),
//   2. allocation-site grouping with a contiguous arena, so the n-way
//      search reports a linked structure as ONE bottleneck,
//   3. the retire-measured search mode that returns more than n-1 objects,
//   4. trace record + replay under a different cache.
#include <cstdio>
#include <vector>

#include "core/nway_search.hpp"
#include "core/sampler.hpp"
#include "objmap/object_map.hpp"
#include "sim/machine.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hpm;

// A "tree workload": nodes allocated from one site, walked hotly; a stack
// buffer used per call; a cold global array.
struct TreeApp {
  sim::Machine& machine;
  std::vector<sim::Addr> nodes;
  sim::Addr cold = 0;

  explicit TreeApp(sim::Machine& m) : machine(m) {
    auto& as = machine.address_space();
    (void)as.create_site_arena(/*site=*/1, 4 << 20);
    for (int i = 0; i < 1024; ++i) nodes.push_back(as.malloc(2048, 1));
    cold = as.define_static("cold_table", 1 << 20);
  }

  void run(int rounds) {
    auto& as = machine.address_space();
    for (int r = 0; r < rounds; ++r) {
      // Walk every node (the dominant traffic).
      for (sim::Addr node : nodes) {
        for (sim::Addr off = 0; off < 2048; off += 64) {
          machine.touch(node + off, (off & 127) == 0);
          machine.exec(2);
        }
      }
      // A helper with a hot stack buffer, called repeatedly.
      for (int call = 0; call < 4; ++call) {
        as.push_frame("hash_block");
        const sim::Addr buf = as.define_local("scratch", 16 * 1024);
        for (sim::Addr off = 0; off < 16 * 1024; off += 64) {
          machine.touch(buf + off, true);
          machine.exec(2);
        }
        as.pop_frame();
      }
      // Occasional cold-table sweep.
      if (r % 4 == 0) {
        for (sim::Addr off = 0; off < (1 << 20); off += 64) {
          machine.touch(cold + off);
          machine.exec(1);
        }
      }
    }
  }
};

}  // namespace

int main() {
  sim::MachineConfig config;
  config.cache.size_bytes = 512 * 1024;

  // ---- 1 + 2: sampling with stack aggregation and a named site group.
  {
    sim::Machine machine(config);
    objmap::ObjectMap map;
    map.attach(machine.address_space());
    map.set_site_name(1, "tree_nodes");
    TreeApp app(machine);
    core::Sampler sampler(machine, map, {.period = 2'003});
    sampler.start();
    app.run(24);
    sampler.stop();
    std::puts("Sampling with stack + site aggregation:");
    const auto report = sampler.report();
    for (const auto& row : report.top(4).rows()) {
      std::printf("  %-22s %6.1f%%\n", row.name.c_str(), row.percent);
    }
  }

  // ---- 3: retire-measured search — more results than n-1 from a 4-way.
  {
    sim::Machine machine(config);
    objmap::ObjectMap map;
    map.attach(machine.address_space());
    map.set_site_name(1, "tree_nodes");
    TreeApp app(machine);
    core::SearchConfig sc;
    sc.n = 4;
    sc.initial_interval = 500'000;
    sc.retire_measured = true;
    sc.continue_into_discarded = true;
    core::NWaySearch search(machine, map, sc);
    search.start();
    app.run(24);
    search.stop();
    std::printf("\n4-way retire-mode search (%u iterations, "
                "%u continuations):\n",
                search.stats().iterations, search.stats().continuations);
    for (const auto& row : search.report().rows()) {
      std::printf("  %-22s %6.1f%%\n", row.name.c_str(), row.percent);
    }
  }

  // ---- 4: record a trace, re-measure under a bigger cache.
  {
    sim::Machine machine(config);
    objmap::ObjectMap map;
    map.attach(machine.address_space());
    TreeApp app(machine);
    trace::Recorder recorder(machine);
    recorder.start();
    app.run(6);
    recorder.stop();
    const trace::Trace t = recorder.take();

    sim::MachineConfig big = config;
    big.cache.size_bytes = 4 * 1024 * 1024;
    sim::Machine replay_machine(big);
    trace::replay(t, replay_machine);
    std::printf("\nTrace replay: %llu refs; misses %llu @512KB -> %llu "
                "@4MB cache\n",
                static_cast<unsigned long long>(t.reference_count()),
                static_cast<unsigned long long>(machine.stats().app_misses),
                static_cast<unsigned long long>(
                    replay_machine.stats().app_misses));
  }
  return 0;
}
