// Visualise a workload's phase behaviour: per-object cache misses over
// time, as captured by the ground-truth profiler (the data behind the
// paper's Figure 5), rendered as console sparklines.
#include <algorithm>
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace hpm;
  const char* workload = argc > 1 ? argv[1] : "applu";

  harness::RunConfig config;
  config.machine = harness::paper_machine();
  config.series_interval = 4'000'000;  // cycles per sample interval

  std::printf("Cache misses over time for '%s' (interval = %llu cycles)\n\n",
              workload,
              static_cast<unsigned long long>(config.series_interval));
  const auto result = harness::run_experiment(config, workload);

  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  for (const auto& series : result.series) {
    if (series.misses_per_interval.empty()) continue;
    const auto peak = *std::max_element(series.misses_per_interval.begin(),
                                        series.misses_per_interval.end());
    if (peak == 0) continue;
    std::string line;
    for (auto v : series.misses_per_interval) {
      const auto idx = static_cast<std::size_t>(
          v == 0 ? 0 : 1 + (7 * (v - 1)) / peak);
      line += kLevels[std::min<std::size_t>(idx, 7)];
    }
    std::printf("%-16s |%s| peak %llu\n", series.name.c_str(), line.c_str(),
                static_cast<unsigned long long>(peak));
  }
  std::printf("\n%zu intervals captured.\n", result.series.empty()
                                                 ? 0
                                                 : result.series.front()
                                                       .misses_per_interval
                                                       .size());
  return 0;
}
