// End-to-end CLI validation: hpmrun must reject malformed or out-of-range
// flag values up front with exit code 2 and a usage message, before any
// simulation starts.  Regression cover for --observe, which used to accept
// garbage silently: util::Cli::get_uint falls back on unparsable text,
// wraps "-1" to the observe-last sentinel and maps >uint64 values to the
// fallback — all of which turned typos into multi-hour runs observing the
// wrong level.
//
// The tests drive the real binary (HPM_HPMRUN_PATH, injected by CMake)
// through std::system, so they pin the actual process exit codes, not a
// reimplementation of the parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef HPM_HPMRUN_PATH
#error "HPM_HPMRUN_PATH must point at the hpmrun binary"
#endif

namespace {

/// Run hpmrun with `args`, muting its output, and return the process exit
/// code (-1 if the shell could not run it).
int run_hpmrun(const std::string& args) {
  const std::string command = std::string("\"") + HPM_HPMRUN_PATH + "\" " +
                              args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
#if defined(_WIN32)
  return status;
#else
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

/// A tiny but real run: one synthetic iteration under the cheapest tool.
const char* kFastRun = "--workload synthetic --tool none --scale 0.05 "
                       "--iterations 1";

TEST(HpmrunObserve, RejectsNonNumericValues) {
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --observe abc"), 2);
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --observe 1x"), 2);
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --observe ''"), 2);
}

TEST(HpmrunObserve, RejectsNegativeValues) {
  // "-1" used to wrap to the observe-last sentinel and run "successfully".
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --observe -1"), 2);
}

TEST(HpmrunObserve, RejectsValuesThatOverflowALevelIndex) {
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) +
                       " --observe 18446744073709551615"),
            2);
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) +
                       " --observe 99999999999999999999999999"),
            2);
}

TEST(HpmrunObserve, RejectsIndexesPastTheLastLevel) {
  // The implicit hierarchy has exactly one level, so 1 is out of range...
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --observe 1"), 2);
  // ...and a 2-level hierarchy accepts 1 but not 2.
  EXPECT_EQ(
      run_hpmrun(std::string(kFastRun) + " --levels 2level --observe 2"), 2);
}

TEST(HpmrunObserve, AcceptsInRangeIndexes) {
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --observe 0"), 0);
  EXPECT_EQ(
      run_hpmrun(std::string(kFastRun) + " --levels 2level --observe 1"), 0);
}

TEST(HpmrunUsage, BadFlagValuesElsewhereStillExitTwo) {
  EXPECT_EQ(run_hpmrun("--workload no_such_workload --tool none"), 2);
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --levels nonsense:spec:"),
            2);
}

// --cores gets the same strict parse as --observe: a typo must be a usage
// error, never a silent fall-back to the single-core default.
TEST(HpmrunCores, RejectsMalformedCounts) {
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --cores abc"), 2);
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --cores ''"), 2);
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --cores -1"), 2);
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --cores 2x"), 2);
}

TEST(HpmrunCores, RejectsCountsOutsideTheDirectoryRange) {
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --cores 0"), 2);
  // The MESI directory's sharer bitmask caps the machine at 64 cores.
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --cores 65"), 2);
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) +
                       " --cores 99999999999999999999999999"),
            2);
}

TEST(HpmrunCores, AcceptsInRangeCounts) {
  EXPECT_EQ(run_hpmrun(std::string(kFastRun) + " --cores 1"), 0);
  EXPECT_EQ(
      run_hpmrun(std::string(kFastRun) + " --levels 2level --cores 2"), 0);
}

/// Run hpmrun with `args`, capturing stdout and stderr separately.
/// Returns the exit code.
int run_hpmrun_capture(const std::string& args, std::string* out,
                       std::string* err) {
  // ctest runs each test case as its own process, possibly concurrently,
  // so the capture files must be unique per test to avoid races.
  const std::string tag =
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  const std::string out_path =
      ::testing::TempDir() + "hpmrun_stdout_" + tag + ".txt";
  const std::string err_path =
      ::testing::TempDir() + "hpmrun_stderr_" + tag + ".txt";
  const std::string command = std::string("\"") + HPM_HPMRUN_PATH + "\" " +
                              args + " >" + out_path + " 2>" + err_path;
  const int status = std::system(command.c_str());
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  *out = slurp(out_path);
  *err = slurp(err_path);
#if defined(_WIN32)
  return status;
#else
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

// The --l1-* aliases still work but warn; the warning must go to stderr
// so scripted stdout parsing (tables, piped JSON) never sees it.
TEST(HpmrunDeprecation, L1FlagsWarnOnStderrAndKeepStdoutClean) {
  std::string out;
  std::string err;
  const int code = run_hpmrun_capture(
      std::string(kFastRun) + " --l1-size 32768", &out, &err);
  EXPECT_EQ(code, 0);
  EXPECT_NE(err.find("deprecated"), std::string::npos) << err;
  EXPECT_NE(err.find("--levels"), std::string::npos) << err;
  EXPECT_EQ(out.find("deprecated"), std::string::npos) << out;
  // The run itself still happened: the table landed on stdout.
  EXPECT_NE(out.find("workload"), std::string::npos) << out;
}

TEST(HpmrunDeprecation, LevelsAloneDoesNotWarn) {
  std::string out;
  std::string err;
  const int code = run_hpmrun_capture(
      std::string(kFastRun) + " --levels 2level", &out, &err);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(err.find("deprecated"), std::string::npos) << err;
}

}  // namespace
