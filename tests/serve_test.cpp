// hpmserve robustness contract (src/serve/server.hpp lists the properties;
// each one is pinned here):
//
//  * canonical request form + fingerprint identity,
//  * bounded admission with priorities, quotas, and explicit RETRY_AFTER
//    sheds — never a silent drop,
//  * deadlines, disconnect abandonment, graceful drain,
//  * crash recovery replaying the journal into byte-identical results,
//  * the result cache answering identical requests once.
//
// Integration tests drive a real Server on an ephemeral port over real
// sockets.  The suite carries the "property" label so CI also runs it
// under TSan (the server is aggressively multithreaded).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/batch.hpp"
#include "harness/json_export.hpp"
#include "serve/admission.hpp"
#include "serve/journal.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/server.hpp"

namespace {

using namespace hpm::serve;
using hpm::harness::JsonValue;

// -- helpers -----------------------------------------------------------------

std::string temp_dir(const std::string& leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// The exact bytes the server must serve for `sweep` — an uninterrupted
/// jobs=1 run exported compact with timing omitted (the determinism
/// contract in server.hpp).
std::string expected_result_json(const SweepSpec& sweep) {
  hpm::harness::BatchRunner::Options options;
  options.jobs = 1;
  const auto batch = hpm::harness::BatchRunner(options).run(build_specs(sweep));
  hpm::harness::JsonExportOptions export_options;
  export_options.include_timing = false;
  export_options.indent = 0;
  std::string json = hpm::harness::to_json(batch, export_options);
  while (!json.empty() && (json.back() == '\n' || json.back() == ' ')) {
    json.pop_back();
  }
  return json;
}

/// Slice the spliced result document back out of a raw "result" event line
/// (it is the final member, so it ends one byte before the line's '}').
std::string extract_result_bytes(const std::string& line) {
  const auto pos = line.find("\"result\":");
  if (pos == std::string::npos) throw std::runtime_error("no result in line");
  const auto start = pos + 9;
  return line.substr(start, line.size() - start - 1);
}

/// Server under test: runs run() on a background thread, hard-stops on
/// destruction if the test did not already shut it down.
struct ServerFixture {
  std::unique_ptr<Server> server;
  std::thread thread;

  explicit ServerFixture(ServerOptions options)
      : server(std::make_unique<Server>(std::move(options))) {
    thread = std::thread([this] { server->run(); });
  }

  ~ServerFixture() { shutdown(); }

  void shutdown() {
    if (server && thread.joinable()) {
      server->stop_now();
      thread.join();
    }
  }

  /// Join without stopping — for drain tests where run() exits by itself.
  void join() { thread.join(); }

  std::uint16_t port() const { return server->port(); }
};

/// One protocol client: connect, consume the hello, then submit and read
/// parsed events.
struct TestClient {
  Socket socket;
  LineReader reader;
  std::string last_raw;

  explicit TestClient(std::uint16_t port)
      : socket(connect_to("127.0.0.1", port)), reader(socket) {
    if (!socket.valid()) throw std::runtime_error("connect failed");
    const JsonValue hello = read_event();
    if (hello.at("event").str() != "hello") {
      throw std::runtime_error("expected hello, got " + last_raw);
    }
  }

  void send(const std::string& line) {
    if (!socket.send_line(line)) throw std::runtime_error("send failed");
  }

  JsonValue read_event() {
    if (!reader.read_line(last_raw)) {
      throw std::runtime_error("connection closed");
    }
    return JsonValue::parse(last_raw);
  }

  /// Read until one of the named events arrives (skipping progress/live
  /// noise); throws after `limit` lines so a hang fails fast.
  JsonValue wait_for(const std::vector<std::string>& events,
                     std::size_t limit = 10'000) {
    for (std::size_t i = 0; i < limit; ++i) {
      JsonValue event = read_event();
      const std::string& kind = event.at("event").str();
      for (const std::string& want : events) {
        if (kind == want) return event;
      }
    }
    throw std::runtime_error("event never arrived");
  }
};

std::string submit_op(const std::string& id, const std::string& sweep_json,
                      const std::string& extra = "") {
  return "{\"op\":\"submit\",\"id\":\"" + id + "\"" + extra +
         ",\"sweep\":" + sweep_json + "}";
}

SweepSpec small_sweep(std::uint64_t seed) {
  SweepSpec sweep;
  sweep.scale = 0.05;
  sweep.seed = seed;
  return sweep;
}

/// A sweep slow enough (~seconds) that a test can act "while it runs".
SweepSpec slow_sweep(std::uint64_t seed) {
  SweepSpec sweep;
  sweep.tools = {"none", "sample", "search"};
  sweep.scale = 2.0;
  sweep.seed = seed;
  return sweep;
}

std::string sweep_json(const SweepSpec& sweep) {
  return canonical_sweep_json(sweep);
}

template <typename Predicate>
bool poll_until(Predicate&& done, int timeout_ms = 60'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// -- protocol units ----------------------------------------------------------

TEST(ServeProtocol, PriorityNamesRoundTrip) {
  for (const Priority p : {Priority::kHigh, Priority::kNormal, Priority::kLow}) {
    EXPECT_EQ(parse_priority(priority_name(p)), p);
  }
  EXPECT_THROW((void)parse_priority("urgent"), std::invalid_argument);
}

TEST(ServeProtocol, CanonicalFormMaterializesEveryDefault) {
  // An empty sweep object and a sweep that spells out the defaults must
  // mean the same experiment: same canonical bytes, same fingerprint.
  const JsonValue bare = JsonValue::parse(submit_op("r1", "{}"));
  const JsonValue spelled = JsonValue::parse(submit_op(
      "r2", "{\"workloads\":[\"synthetic\"],\"tools\":[\"search\"],"
            "\"scale\":1.0,\"seed\":1554098974}"));
  const SweepSpec a = parse_request(bare).sweep;
  const SweepSpec b = parse_request(spelled).sweep;
  EXPECT_EQ(canonical_sweep_json(a), canonical_sweep_json(b));
  EXPECT_EQ(request_fingerprint(a), request_fingerprint(b));
  EXPECT_EQ(request_fingerprint(a).size(), 16u);

  SweepSpec different = a;
  different.seed = 7;
  EXPECT_NE(request_fingerprint(a), request_fingerprint(different));
}

TEST(ServeProtocol, CanonicalJsonRoundTripsThroughTheParser) {
  SweepSpec sweep;
  sweep.workloads = {"synthetic"};
  sweep.tools = {"sample", "search"};
  sweep.scale = 0.25;
  sweep.seed = 0xdeadbeefcafe;
  sweep.period = 5'000;
  sweep.policy = "prime";
  sweep.faults.drop_rate = 0.01;
  sweep.retries = 2;
  const std::string canonical = canonical_sweep_json(sweep);
  EXPECT_EQ(canonical_sweep_json(parse_canonical_sweep(canonical)), canonical);
}

TEST(ServeProtocol, TypoedSweepKeysAreErrorsNotDefaults) {
  EXPECT_THROW(
      (void)parse_request(JsonValue::parse(submit_op("r", "{\"scalee\":2}"))),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_request(
          JsonValue::parse(submit_op("r", "{\"scale\":\"big\"}"))),
      std::invalid_argument);
  // Missing id: a terminal event could never be correlated.
  EXPECT_THROW(
      (void)parse_request(JsonValue::parse("{\"op\":\"submit\",\"sweep\":{}}")),
      std::invalid_argument);
}

TEST(ServeProtocol, BuildSpecsMatchesCliRunNaming) {
  SweepSpec sweep;
  sweep.tools = {"none", "search"};
  const auto specs = build_specs(sweep);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "synthetic/none");
  EXPECT_EQ(specs[1].name, "synthetic/search");

  SweepSpec bogus;
  bogus.workloads = {"no_such_workload"};
  EXPECT_THROW((void)build_specs(bogus), std::invalid_argument);
  SweepSpec bad_tool;
  bad_tool.tools = {"profiler9000"};
  EXPECT_THROW((void)build_specs(bad_tool), std::invalid_argument);
}

// -- admission queue units ---------------------------------------------------

std::shared_ptr<Job> make_job(const std::string& fingerprint,
                              Priority priority = Priority::kNormal,
                              const std::string& client = "c") {
  auto job = std::make_shared<Job>();
  job->fingerprint = fingerprint;
  job->priority = priority;
  job->client = client;
  return job;
}

TEST(Admission, ShedsWhenFullWithBacklogProportionalHint) {
  AdmissionQueue queue({.max_depth = 2,
                        .per_client_quota = 0,
                        .retry_after_base_ms = 100,
                        .retry_after_per_item_ms = 25});
  EXPECT_TRUE(queue.try_push(make_job("a")).accepted);
  EXPECT_TRUE(queue.try_push(make_job("b")).accepted);
  const auto verdict = queue.try_push(make_job("c"));
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.reason, ShedReason::kQueueFull);
  EXPECT_EQ(verdict.retry_after_ms, 100 + 2 * 25);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.shed_count(), 1u);
}

TEST(Admission, PriorityClassesDrainHighFirstFifoWithin) {
  AdmissionQueue queue({.max_depth = 8});
  (void)queue.try_push(make_job("low1", Priority::kLow));
  (void)queue.try_push(make_job("norm1", Priority::kNormal));
  (void)queue.try_push(make_job("high1", Priority::kHigh));
  (void)queue.try_push(make_job("high2", Priority::kHigh));
  (void)queue.try_push(make_job("norm2", Priority::kNormal));
  std::vector<std::string> order;
  while (auto job = queue.try_pop()) order.push_back(job->fingerprint);
  EXPECT_EQ(order, (std::vector<std::string>{"high1", "high2", "norm1",
                                             "norm2", "low1"}));
}

TEST(Admission, PerClientQuotaIsEnforcedAndReleased) {
  AdmissionQueue queue({.max_depth = 8, .per_client_quota = 1});
  EXPECT_TRUE(queue.try_push(make_job("a", Priority::kNormal, "alice")).accepted);
  const auto verdict = queue.try_push(make_job("b", Priority::kNormal, "alice"));
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.reason, ShedReason::kOverQuota);
  // Another tenant is unaffected.
  EXPECT_TRUE(queue.try_push(make_job("c", Priority::kNormal, "bob")).accepted);
  // The slot frees once the job finishes (not when it pops).
  (void)queue.try_pop();
  EXPECT_FALSE(queue.try_push(make_job("d", Priority::kNormal, "alice")).accepted);
  queue.job_finished("alice");
  EXPECT_TRUE(queue.try_push(make_job("e", Priority::kNormal, "alice")).accepted);
}

TEST(Admission, DrainingShedsNewWorkButRecoveryIsExempt) {
  AdmissionQueue queue({.max_depth = 1, .per_client_quota = 1});
  queue.begin_drain();
  EXPECT_TRUE(queue.draining());
  const auto verdict = queue.try_push(make_job("a"));
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.reason, ShedReason::kDraining);

  // Journal-replayed work was accepted before the crash: it bypasses
  // drain, depth, and quota limits alike.
  auto recovered = make_job("r", Priority::kHigh, "__recovery");
  recovered->recovery = true;
  EXPECT_TRUE(queue.try_push(recovered).accepted);
}

// -- result cache units ------------------------------------------------------

TEST(ResultCacheLru, EvictsLeastRecentlyUsedAndCounts) {
  ResultCache cache(2);
  EXPECT_FALSE(cache.get("a").has_value());  // miss 1
  cache.put("a", "{\"doc\":\"a\"}");
  cache.put("b", "{\"doc\":\"b\"}");
  EXPECT_EQ(cache.get("a").value(), "{\"doc\":\"a\"}");  // hit; a now MRU
  cache.put("c", "{\"doc\":\"c\"}");                     // evicts b
  EXPECT_FALSE(cache.get("b").has_value());              // miss 2
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
}

// -- recovery journal units --------------------------------------------------

TEST(ServeJournal, RecoversBeginsWithoutEndsAndSkipsGarbage) {
  const std::string dir = temp_dir("hpm_serve_journal_unit");
  const std::string path = dir + "/journal.jsonl";
  {
    RequestJournal journal(path);
    journal.begin("aaaa000000000000", "{\"schema\":\"hpm.serve.sweep.v1\"}");
    journal.begin("bbbb000000000000", "{\"schema\":\"hpm.serve.sweep.v1\"}");
    journal.end("aaaa000000000000", "done");
    // Repeated begin (crash/replay/crash) must not duplicate the entry.
    journal.begin("bbbb000000000000", "{\"schema\":\"hpm.serve.sweep.v1\"}");
  }
  // A torn final line (writer killed mid-append) is skipped, not fatal.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"schema\":\"hpm.serve.journal.v1\",\"op\":\"beg";
  }
  const auto pending = RequestJournal::recover(path);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].fingerprint, "bbbb000000000000");

  // Compaction rewrites the journal to exactly the pending set.
  RequestJournal::compact(path, pending);
  const auto again = RequestJournal::recover(path);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].fingerprint, "bbbb000000000000");
  std::filesystem::remove_all(dir);
}

TEST(ServeJournal, UnwritableJournalPathRefusesToStart) {
  EXPECT_THROW(RequestJournal journal("/no/such/dir/journal.jsonl"),
               std::runtime_error);
}

// -- integration: a real server over real sockets ----------------------------

TEST(ServeIntegration, ServedResultIsByteIdenticalToAJobsOneRun) {
  const std::string dir = temp_dir("hpm_serve_roundtrip");
  ServerFixture fixture({.state_dir = dir});
  const SweepSpec sweep = small_sweep(101);
  const std::string expected = expected_result_json(sweep);

  TestClient client(fixture.port());
  client.send(submit_op("r1", sweep_json(sweep)));
  const JsonValue accepted = client.wait_for({"accepted", "rejected", "error"});
  ASSERT_EQ(accepted.at("event").str(), "accepted");
  EXPECT_EQ(accepted.at("fingerprint").str(), request_fingerprint(sweep));

  const JsonValue result = client.wait_for({"result", "error"});
  ASSERT_EQ(result.at("event").str(), "result") << client.last_raw;
  EXPECT_TRUE(result.at("ok").boolean());
  EXPECT_FALSE(result.at("cached").boolean());
  EXPECT_EQ(result.at("id").str(), "r1");
  EXPECT_EQ(extract_result_bytes(client.last_raw), expected);
  fixture.shutdown();
  std::filesystem::remove_all(dir);
}

TEST(ServeIntegration, IdenticalResubmitIsServedFromCache) {
  const std::string dir = temp_dir("hpm_serve_cache");
  ServerFixture fixture({.state_dir = dir});
  const SweepSpec sweep = small_sweep(202);

  TestClient client(fixture.port());
  client.send(submit_op("first", sweep_json(sweep)));
  const JsonValue first = client.wait_for({"result", "error"});
  ASSERT_EQ(first.at("event").str(), "result") << client.last_raw;
  const std::string first_bytes = extract_result_bytes(client.last_raw);

  client.send(submit_op("second", sweep_json(sweep)));
  const JsonValue second = client.wait_for({"result", "error"});
  ASSERT_EQ(second.at("event").str(), "result") << client.last_raw;
  EXPECT_TRUE(second.at("cached").boolean());
  EXPECT_EQ(extract_result_bytes(client.last_raw), first_bytes);

  const ServerStats stats = fixture.server->stats();
  EXPECT_GE(stats.cache_hits, 1u);
  fixture.shutdown();
  std::filesystem::remove_all(dir);
}

TEST(ServeIntegration, ConcurrentIdenticalSubmitsCoalesceOntoOneRun) {
  const std::string dir = temp_dir("hpm_serve_coalesce");
  ServerFixture fixture({.executors = 1, .state_dir = dir});
  const SweepSpec sweep = slow_sweep(303);

  TestClient first(fixture.port());
  first.send(submit_op("a", sweep_json(sweep)));
  (void)first.wait_for({"started"});  // the job is now in flight

  TestClient second(fixture.port());
  second.send(submit_op("b", sweep_json(sweep)));
  const JsonValue accepted = second.wait_for({"accepted", "rejected"});
  ASSERT_EQ(accepted.at("event").str(), "accepted");
  EXPECT_TRUE(accepted.at("coalesced").boolean());

  const JsonValue ra = first.wait_for({"result", "error"});
  const JsonValue rb = second.wait_for({"result", "error"});
  ASSERT_EQ(ra.at("event").str(), "result");
  ASSERT_EQ(rb.at("event").str(), "result");
  EXPECT_EQ(fixture.server->stats().coalesced, 1u);
  fixture.shutdown();
  std::filesystem::remove_all(dir);
}

TEST(ServeIntegration, OverloadShedsExplicitlyWithRetryAfterNeverSilently) {
  const std::string dir = temp_dir("hpm_serve_shed");
  ServerFixture fixture(
      {.executors = 1, .max_queue = 1, .state_dir = dir});

  // Occupy the single executor with a slow job...
  TestClient busy(fixture.port());
  busy.send(submit_op("busy", sweep_json(slow_sweep(404))));
  (void)busy.wait_for({"started"});

  // ...then burst four distinct submits: one fills the queue, the rest
  // MUST be shed with an explicit rejected event carrying retry_after_ms.
  TestClient burst(fixture.port());
  std::size_t accepted = 0, rejected = 0;
  for (int i = 0; i < 4; ++i) {
    burst.send(submit_op("burst" + std::to_string(i),
                         sweep_json(small_sweep(500 + i))));
    const JsonValue verdict = burst.wait_for({"accepted", "rejected"});
    if (verdict.at("event").str() == "accepted") {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_EQ(verdict.at("reason").str(), "queue_full");
      EXPECT_GT(verdict.at("retry_after_ms").number(), 0.0);
    }
  }
  EXPECT_EQ(accepted, 1u);
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(fixture.server->stats().shed, 3u);

  // Zero silent drops: every accepted submit still terminates in a result.
  ASSERT_EQ(busy.wait_for({"result", "error"}).at("event").str(), "result");
  ASSERT_EQ(burst.wait_for({"result", "error"}).at("event").str(), "result");
  fixture.shutdown();
  std::filesystem::remove_all(dir);
}

TEST(ServeIntegration, DeadlineCancelsTheSweepAndReportsNotOk) {
  const std::string dir = temp_dir("hpm_serve_deadline");
  ServerFixture fixture({.state_dir = dir});
  TestClient client(fixture.port());
  client.send(submit_op("d1", sweep_json(slow_sweep(606)),
                        ",\"deadline_ms\":30"));
  const JsonValue result = client.wait_for({"result", "error"});
  ASSERT_EQ(result.at("event").str(), "result") << client.last_raw;
  EXPECT_FALSE(result.at("ok").boolean());
  EXPECT_GE(result.at("failed").number(), 1.0);

  // A truncated result must never poison the cache: the same sweep without
  // a deadline runs fresh and succeeds.
  client.send(submit_op("d2", sweep_json(slow_sweep(606))));
  const JsonValue clean = client.wait_for({"result", "error"});
  ASSERT_EQ(clean.at("event").str(), "result") << client.last_raw;
  EXPECT_TRUE(clean.at("ok").boolean());
  EXPECT_FALSE(clean.at("cached").boolean());
  fixture.shutdown();
  std::filesystem::remove_all(dir);
}

TEST(ServeIntegration, DisconnectedClientsWorkIsAbandonedNotRun) {
  const std::string dir = temp_dir("hpm_serve_abandon");
  ServerFixture fixture({.executors = 1, .max_queue = 4, .state_dir = dir});

  TestClient busy(fixture.port());
  busy.send(submit_op("busy", sweep_json(slow_sweep(707))));
  (void)busy.wait_for({"started"});

  {
    // Queue a second job, then vanish before it starts.
    TestClient doomed(fixture.port());
    doomed.send(submit_op("orphan", sweep_json(small_sweep(708))));
    const JsonValue verdict = doomed.wait_for({"accepted", "rejected"});
    ASSERT_EQ(verdict.at("event").str(), "accepted");
  }  // socket closes here

  ASSERT_EQ(busy.wait_for({"result", "error"}).at("event").str(), "result");
  // The orphaned job is skipped, never executed: the queue empties with
  // exactly one completion.
  ASSERT_TRUE(poll_until([&] {
    const ServerStats stats = fixture.server->stats();
    return stats.queue_depth == 0 && stats.running == 0;
  }));
  EXPECT_EQ(fixture.server->stats().completed, 1u);
  fixture.shutdown();
  std::filesystem::remove_all(dir);
}

TEST(ServeIntegration, GracefulDrainFinishesAdmittedWorkThenExits) {
  const std::string dir = temp_dir("hpm_serve_drain");
  ServerFixture fixture({.executors = 1, .max_queue = 4, .state_dir = dir});

  TestClient client(fixture.port());
  client.send(submit_op("a", sweep_json(slow_sweep(808))));
  (void)client.wait_for({"started"});
  client.send(submit_op("b", sweep_json(small_sweep(809))));
  ASSERT_EQ(client.wait_for({"accepted", "rejected"}).at("event").str(),
            "accepted");

  fixture.server->request_drain();

  // New work is shed with the drain reason...
  client.send(submit_op("late", sweep_json(small_sweep(810))));
  const JsonValue late = client.wait_for({"accepted", "rejected"});
  ASSERT_EQ(late.at("event").str(), "rejected");
  EXPECT_EQ(late.at("reason").str(), "draining");

  // ...but both admitted jobs still complete, then run() returns.
  ASSERT_EQ(client.wait_for({"result", "error"}).at("event").str(), "result");
  ASSERT_EQ(client.wait_for({"result", "error"}).at("event").str(), "result");
  fixture.join();
  std::filesystem::remove_all(dir);
}

TEST(ServeIntegration, CrashRecoveryReplaysToByteIdenticalResults) {
  const std::string dir = temp_dir("hpm_serve_recovery");
  const SweepSpec sweep = slow_sweep(909);
  const std::string expected = expected_result_json(sweep);

  // Accept the sweep, wait until it is running, then hard-stop the server
  // (the moral equivalent of kill -9: the journal keeps its pending begin
  // and the checkpoint keeps whatever runs completed).
  {
    ServerFixture fixture({.executors = 1, .state_dir = dir});
    TestClient client(fixture.port());
    client.send(submit_op("doomed", sweep_json(sweep)));
    (void)client.wait_for({"started"});
    fixture.shutdown();
  }

  // A fresh server on the same state dir replays the journal and finishes
  // the sweep with no client attached.
  ServerFixture revived({.executors = 1, .state_dir = dir});
  EXPECT_GE(revived.server->stats().recovered, 1u);
  ASSERT_TRUE(poll_until([&] {
    const ServerStats stats = revived.server->stats();
    return stats.completed >= 1 && stats.running == 0 &&
           stats.queue_depth == 0;
  })) << "recovered sweep never completed";

  // The replayed result — resumed from the checkpoint — is byte-identical
  // to an uninterrupted jobs=1 run, and is served straight from the cache.
  TestClient client(revived.port());
  client.send(submit_op("verify", sweep_json(sweep)));
  const JsonValue result = client.wait_for({"result", "error"});
  ASSERT_EQ(result.at("event").str(), "result") << client.last_raw;
  EXPECT_TRUE(result.at("ok").boolean());
  EXPECT_TRUE(result.at("cached").boolean());
  EXPECT_EQ(extract_result_bytes(client.last_raw), expected);
  revived.shutdown();
  std::filesystem::remove_all(dir);
}

}  // namespace
