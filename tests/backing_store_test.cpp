#include "sim/backing_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/prng.hpp"

namespace hpm::sim {
namespace {

TEST(BackingStore, UnwrittenMemoryReadsAsZero) {
  BackingStore store;
  EXPECT_EQ(store.load<std::uint64_t>(0x1000), 0u);
  EXPECT_EQ(store.load<std::uint8_t>(0xdeadbeef), 0u);
  EXPECT_EQ(store.load<double>(0x141020000ULL), 0.0);
  EXPECT_EQ(store.resident_pages(), 0u);
}

TEST(BackingStore, RoundTripsScalars) {
  BackingStore store;
  store.store<std::uint64_t>(0x2000, 0x1122334455667788ULL);
  EXPECT_EQ(store.load<std::uint64_t>(0x2000), 0x1122334455667788ULL);
  store.store<double>(0x3000, 3.25);
  EXPECT_EQ(store.load<double>(0x3000), 3.25);
  store.store<std::uint8_t>(0x4000, 0xab);
  EXPECT_EQ(store.load<std::uint8_t>(0x4000), 0xab);
}

TEST(BackingStore, DistinctAddressesAreIndependent) {
  BackingStore store;
  store.store<std::uint32_t>(0x100, 1);
  store.store<std::uint32_t>(0x104, 2);
  EXPECT_EQ(store.load<std::uint32_t>(0x100), 1u);
  EXPECT_EQ(store.load<std::uint32_t>(0x104), 2u);
}

TEST(BackingStore, ValuesSurviveOtherPageTraffic) {
  BackingStore store;
  store.store<std::uint64_t>(0x10, 42);
  for (std::uint64_t page = 1; page < 64; ++page) {
    store.store<std::uint64_t>(page * BackingStore::kPageSize, page);
  }
  EXPECT_EQ(store.load<std::uint64_t>(0x10), 42u);
}

TEST(BackingStore, CrossPageScalarAccess) {
  BackingStore store;
  const Addr boundary = BackingStore::kPageSize;
  const Addr addr = boundary - 4;  // 8-byte value spanning two pages
  store.store<std::uint64_t>(addr, 0xa1b2c3d4e5f60718ULL);
  EXPECT_EQ(store.load<std::uint64_t>(addr), 0xa1b2c3d4e5f60718ULL);
  // The halves are visible byte-wise on both pages.
  EXPECT_NE(store.load<std::uint8_t>(boundary - 1), 0u);
}

TEST(BackingStore, BulkReadWrite) {
  BackingStore store;
  std::vector<std::uint8_t> data(200'000);
  util::SplitMix64 rng(7);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const Addr base = BackingStore::kPageSize - 1234;  // multi-page span
  store.write_bytes(base, data.data(), data.size());
  std::vector<std::uint8_t> out(data.size());
  store.read_bytes(base, out.data(), out.size());
  EXPECT_EQ(data, out);
}

TEST(BackingStore, FillSetsBytes) {
  BackingStore store;
  store.fill(0x500, 0xcc, 300);
  EXPECT_EQ(store.load<std::uint8_t>(0x500), 0xcc);
  EXPECT_EQ(store.load<std::uint8_t>(0x500 + 299), 0xcc);
  EXPECT_EQ(store.load<std::uint8_t>(0x500 + 300), 0u);
}

TEST(BackingStore, PagesMaterialiseLazily) {
  BackingStore store;
  store.store<std::uint8_t>(0, 1);
  store.store<std::uint8_t>(10 * BackingStore::kPageSize, 1);
  EXPECT_EQ(store.resident_pages(), 2u);
  // Reads do not materialise pages.
  (void)store.load<std::uint64_t>(99 * BackingStore::kPageSize);
  EXPECT_EQ(store.resident_pages(), 2u);
}

TEST(BackingStore, SparseHighAddresses) {
  BackingStore store;
  const Addr high = 0x7fff'ffff'0000ULL;
  store.store<std::uint64_t>(high, 99);
  EXPECT_EQ(store.load<std::uint64_t>(high), 99u);
}

}  // namespace
}  // namespace hpm::sim
