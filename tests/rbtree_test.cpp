#include "objmap/rbtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "util/prng.hpp"

namespace hpm::objmap {
namespace {

TEST(RbTree, EmptyTree) {
  RbTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.validate());
  EXPECT_EQ(tree.min(), nullptr);
  EXPECT_EQ(tree.max(), nullptr);
  EXPECT_EQ(tree.find_containing(0x1000).node, nullptr);
  EXPECT_EQ(tree.lower_bound(0).node, nullptr);
  EXPECT_EQ(tree.floor(~0ULL).node, nullptr);
}

TEST(RbTree, SingleInsertFind) {
  RbTree tree;
  tree.insert(0x1000, 256, 7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.validate());
  const auto hit = tree.find_containing(0x1080);
  ASSERT_NE(hit.node, nullptr);
  EXPECT_EQ(hit.node->base, 0x1000u);
  EXPECT_EQ(hit.node->size, 256u);
  EXPECT_EQ(hit.node->object_id, 7u);
  EXPECT_EQ(tree.find_containing(0x1100).node, nullptr);  // one past end
  EXPECT_EQ(tree.find_containing(0xfff).node, nullptr);   // below
}

TEST(RbTree, DuplicateInsertThrows) {
  RbTree tree;
  tree.insert(0x1000, 64, 0);
  EXPECT_THROW(tree.insert(0x1000, 128, 1), std::invalid_argument);
}

TEST(RbTree, EraseLeafRootAndInternal) {
  RbTree tree;
  for (sim::Addr a : {0x3000, 0x1000, 0x5000, 0x2000, 0x4000}) {
    tree.insert(static_cast<sim::Addr>(a), 64, 0);
  }
  EXPECT_TRUE(tree.validate());
  EXPECT_TRUE(tree.erase(0x2000));  // leaf-ish
  EXPECT_TRUE(tree.validate());
  EXPECT_TRUE(tree.erase(0x3000));  // likely root / internal
  EXPECT_TRUE(tree.validate());
  EXPECT_FALSE(tree.erase(0x3000));  // already gone
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.find_containing(0x3000).node, nullptr);
  ASSERT_NE(tree.find_containing(0x4000).node, nullptr);
}

TEST(RbTree, MinMaxTrackExtremes) {
  RbTree tree;
  for (int i = 10; i >= 1; --i) {
    tree.insert(static_cast<sim::Addr>(i) * 0x100, 64, 0);
  }
  ASSERT_NE(tree.min(), nullptr);
  EXPECT_EQ(tree.min()->base, 0x100u);
  EXPECT_EQ(tree.max()->base, 0xa00u);
  tree.erase(0x100);
  tree.erase(0xa00);
  EXPECT_EQ(tree.min()->base, 0x200u);
  EXPECT_EQ(tree.max()->base, 0x900u);
}

TEST(RbTree, LowerBoundAndFloor) {
  RbTree tree;
  tree.insert(0x1000, 64, 0);
  tree.insert(0x3000, 64, 1);
  tree.insert(0x5000, 64, 2);
  EXPECT_EQ(tree.lower_bound(0x0).node->base, 0x1000u);
  EXPECT_EQ(tree.lower_bound(0x1000).node->base, 0x1000u);
  EXPECT_EQ(tree.lower_bound(0x1001).node->base, 0x3000u);
  EXPECT_EQ(tree.lower_bound(0x5001).node, nullptr);
  EXPECT_EQ(tree.floor(0x0).node, nullptr);
  EXPECT_EQ(tree.floor(0x1000).node->base, 0x1000u);
  EXPECT_EQ(tree.floor(0x2fff).node->base, 0x1000u);
  EXPECT_EQ(tree.floor(~0ULL).node->base, 0x5000u);
}

TEST(RbTree, VisitRangeInOrder) {
  RbTree tree;
  std::vector<sim::Addr> bases = {0x7000, 0x1000, 0x5000, 0x3000, 0x9000};
  for (auto b : bases) tree.insert(b, 64, 0);
  std::vector<sim::Addr> seen;
  tree.visit_range(0x2000, 0x8000, [&](const HeapBlockNode& n) {
    seen.push_back(n.base);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<sim::Addr>{0x3000, 0x5000, 0x7000}));
}

TEST(RbTree, VisitRangeEarlyStop) {
  RbTree tree;
  for (int i = 0; i < 10; ++i) {
    tree.insert(static_cast<sim::Addr>(i) * 0x100 + 0x1000, 64, 0);
  }
  int visits = 0;
  tree.visit_range(0, ~0ULL, [&](const HeapBlockNode&) {
    return ++visits < 3;
  });
  EXPECT_EQ(visits, 3);
}

TEST(RbTree, ShadowAllocCallbackAssignsAddresses) {
  sim::Addr next = 0x2'0000'0000ULL;
  RbTree tree([&](std::uint64_t size) {
    const sim::Addr a = next;
    next += size;
    return a;
  });
  tree.insert(0x1000, 64, 0);
  tree.insert(0x2000, 64, 1);
  const auto hit = tree.find_containing(0x1000);
  ASSERT_NE(hit.node, nullptr);
  EXPECT_GE(hit.node->shadow, 0x2'0000'0000ULL);
  // The lookup path reports the shadow addresses it visited.
  EXPECT_FALSE(hit.path.empty());
  for (auto a : hit.path) EXPECT_GE(a, 0x2'0000'0000ULL);
}

TEST(RbTree, LookupPathLengthIsLogarithmic) {
  RbTree tree;
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    tree.insert(static_cast<sim::Addr>(i) * 128, 64, 0);
  }
  EXPECT_TRUE(tree.validate());
  // Red-black height bound: <= 2*log2(n+1).
  EXPECT_LE(tree.height(), 2 * 13);
  const auto hit = tree.find_containing(2048 * 128);
  EXPECT_LE(hit.path.size(), 2 * 13 + 1);
}

struct RandomOpsParam {
  std::uint64_t seed;
  int operations;
  std::uint64_t key_space;  // number of possible block slots
};

class RbTreeRandomOps : public ::testing::TestWithParam<RandomOpsParam> {};

// Property test: a shadowing std::map must agree with the tree after every
// operation, and the red-black invariants must hold throughout.
TEST_P(RbTreeRandomOps, MatchesStdMapReference) {
  const auto param = GetParam();
  util::Xoshiro256 rng(param.seed);
  RbTree tree;
  std::map<sim::Addr, std::uint64_t> reference;

  for (int op = 0; op < param.operations; ++op) {
    const sim::Addr base =
        0x1000 + rng.next_below(param.key_space) * 0x100;
    if (rng.next_below(100) < 60) {
      if (reference.find(base) == reference.end()) {
        const std::uint64_t size = 0x40 + rng.next_below(3) * 0x40;
        tree.insert(base, size, static_cast<std::uint32_t>(op));
        reference[base] = size;
      }
    } else {
      const bool erased = tree.erase(base);
      EXPECT_EQ(erased, reference.erase(base) == 1);
    }
    if (op % 64 == 0) {
      ASSERT_TRUE(tree.validate()) << "op " << op;
      ASSERT_EQ(tree.size(), reference.size());
    }
  }
  ASSERT_TRUE(tree.validate());
  ASSERT_EQ(tree.size(), reference.size());

  // Containment queries agree on random probe points.
  for (int probe = 0; probe < 500; ++probe) {
    const sim::Addr addr = 0x1000 + rng.next_below(param.key_space * 0x100);
    const auto hit = tree.find_containing(addr);
    auto it = reference.upper_bound(addr);
    const bool ref_hit = it != reference.begin() &&
                         ((--it)->first + it->second > addr);
    if (ref_hit) {
      ASSERT_NE(hit.node, nullptr) << std::hex << addr;
      EXPECT_EQ(hit.node->base, it->first);
    } else {
      EXPECT_EQ(hit.node, nullptr) << std::hex << addr;
    }
  }

  // In-order traversal equals the reference key order.
  std::vector<sim::Addr> in_tree;
  tree.visit_range(0, ~0ULL, [&](const HeapBlockNode& n) {
    in_tree.push_back(n.base);
    return true;
  });
  std::vector<sim::Addr> in_ref;
  for (const auto& [k, v] : reference) in_ref.push_back(k);
  EXPECT_EQ(in_tree, in_ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RbTreeRandomOps,
    ::testing::Values(RandomOpsParam{1, 2000, 256},
                      RandomOpsParam{2, 2000, 32},    // high collision rate
                      RandomOpsParam{3, 5000, 1024},
                      RandomOpsParam{4, 500, 8},      // tiny, heavy churn
                      RandomOpsParam{5, 8000, 4096},
                      RandomOpsParam{6, 3000, 64}));

TEST(RbTree, AscendingInsertStaysBalanced) {
  RbTree tree;
  for (int i = 0; i < 10'000; ++i) {
    tree.insert(static_cast<sim::Addr>(i) * 64, 64, 0);
  }
  EXPECT_TRUE(tree.validate());
  EXPECT_LE(tree.height(), 2 * 14);  // 2*log2(10001) ~ 26.6
}

TEST(RbTree, DescendingInsertStaysBalanced) {
  RbTree tree;
  for (int i = 10'000; i > 0; --i) {
    tree.insert(static_cast<sim::Addr>(i) * 64, 64, 0);
  }
  EXPECT_TRUE(tree.validate());
  EXPECT_LE(tree.height(), 2 * 14);
}

TEST(RbTree, DrainToEmptyAndReuse) {
  RbTree tree;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      tree.insert(static_cast<sim::Addr>(i) * 64 + 0x1000, 64, 0);
    }
    EXPECT_TRUE(tree.validate());
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(tree.erase(static_cast<sim::Addr>(i) * 64 + 0x1000));
    }
    EXPECT_TRUE(tree.empty());
    EXPECT_TRUE(tree.validate());
  }
}

}  // namespace
}  // namespace hpm::objmap
