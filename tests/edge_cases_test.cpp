// Small edge cases not covered elsewhere: AddrRange algebra, Report rvalue
// access, interrupt corner cases, tool interfaces.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "sim/machine.hpp"
#include "sim/types.hpp"

namespace hpm {
namespace {

TEST(AddrRange, ContainsAndOverlaps) {
  const sim::AddrRange r{0x100, 0x200};
  EXPECT_TRUE(r.contains(0x100));
  EXPECT_TRUE(r.contains(0x1ff));
  EXPECT_FALSE(r.contains(0x200));
  EXPECT_FALSE(r.contains(0xff));
  EXPECT_EQ(r.size(), 0x100u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.overlaps({0x1ff, 0x300}));
  EXPECT_TRUE(r.overlaps({0x0, 0x101}));
  EXPECT_FALSE(r.overlaps({0x200, 0x300}));  // adjacent, half-open
  EXPECT_FALSE(r.overlaps({0x0, 0x100}));
  EXPECT_TRUE(r.overlaps({0x150, 0x160}));   // contained
}

TEST(AddrRange, EmptyRanges) {
  const sim::AddrRange empty{0x100, 0x100};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_FALSE(empty.contains(0x100));
  EXPECT_FALSE(empty.overlaps({0x0, 0x1000}));
  const sim::AddrRange inverted{0x200, 0x100};
  EXPECT_TRUE(inverted.empty());
}

TEST(Report, RvalueRowsMovesSafely) {
  auto make = [] {
    std::vector<core::ReportRow> rows = {{"x", {}, 10, 100.0}};
    return core::Report(std::move(rows), 10);
  };
  // Calling rows() on a temporary must yield an owned vector, not a
  // dangling reference (the bug class caught by ASan during development).
  auto rows = make().rows();
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "x");
  for (const auto& row : make().rows()) {
    EXPECT_EQ(row.percent, 100.0);
  }
}

TEST(Machine, TimerWithoutHandlerIsInert) {
  sim::Machine machine;
  machine.arm_timer_in(100);
  machine.exec(10'000);  // no handler installed: nothing fires, no crash
  EXPECT_EQ(machine.stats().interrupts, 0u);
  EXPECT_TRUE(machine.timer_armed());  // still pending until a handler polls
}

TEST(Machine, OverflowWithoutHandlerStaysPending) {
  sim::Machine machine;
  machine.arm_miss_overflow(1);
  const sim::Addr a = machine.address_space().define_static("a", 64);
  machine.touch(a);
  EXPECT_TRUE(machine.pmu().overflow_pending());
  // Installing a handler later delivers on the next poll point.
  struct H : sim::InterruptHandler {
    int fired = 0;
    void on_interrupt(sim::Machine&, sim::InterruptKind) override {
      ++fired;
    }
  } handler;
  machine.set_handler(&handler);
  machine.exec(1);
  EXPECT_EQ(handler.fired, 1);
}

TEST(Machine, DisarmTimerCancelsDelivery) {
  sim::Machine machine;
  struct H : sim::InterruptHandler {
    int fired = 0;
    void on_interrupt(sim::Machine&, sim::InterruptKind) override {
      ++fired;
    }
  } handler;
  machine.set_handler(&handler);
  machine.arm_timer_in(100);
  machine.disarm_timer();
  machine.exec(10'000);
  EXPECT_EQ(handler.fired, 0);
}

TEST(Machine, TouchWritesAreRefsWithoutDataMovement) {
  sim::Machine machine;
  const sim::Addr a = machine.address_space().define_static("a", 64);
  machine.store<std::uint64_t>(a, 42);
  machine.touch(a, /*write=*/true);  // no data change
  EXPECT_EQ(machine.load<std::uint64_t>(a), 42u);
  EXPECT_EQ(machine.stats().app_refs, 3u);
}

TEST(MachineStats, TotalsAreSums) {
  sim::Machine machine;
  const sim::Addr a = machine.address_space().define_static("a", 1 << 16);
  const sim::Addr t = machine.address_space().alloc_instr(1 << 12);
  for (int i = 0; i < 16; ++i) {
    machine.touch(a + static_cast<sim::Addr>(i) * 64);
  }
  for (int i = 0; i < 4; ++i) {
    machine.tool_touch(t + static_cast<sim::Addr>(i) * 64);
  }
  const auto& s = machine.stats();
  EXPECT_EQ(s.total_misses(), s.app_misses + s.tool_misses);
  EXPECT_EQ(s.total_cycles(), s.app_cycles + s.tool_cycles);
  EXPECT_EQ(s.app_misses, 16u);
  EXPECT_EQ(s.tool_misses, 4u);
}

}  // namespace
}  // namespace hpm
