// The determinism contract that makes parallelism safe: the same specs run
// with 1 worker and with N workers produce byte-identical reports and
// MachineStats, and re-running with the same seed is bit-stable.
#include "harness/batch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "harness/json_export.hpp"
#include "harness/thread_pool.hpp"

namespace hpm::harness {
namespace {

/// A reduced-scale Table-1-style sweep: several workloads under both
/// tools, sized so the whole batch takes ~a second.
std::vector<RunSpec> small_sweep() {
  RunConfig sample_cfg;
  sample_cfg.machine.cache.size_bytes = 128 * 1024;
  sample_cfg.tool = ToolKind::kSampler;
  sample_cfg.sampler.period = 1'999;

  RunConfig search_cfg;
  search_cfg.machine.cache.size_bytes = 128 * 1024;
  search_cfg.tool = ToolKind::kSearch;
  search_cfg.search.n = 10;
  search_cfg.search.initial_interval = 250'000;

  return cross_specs({"tomcatv", "mgrid", "applu"},
                     {{"sample", sample_cfg}, {"search", search_cfg}},
                     [](const std::string&) {
                       workloads::WorkloadOptions options;
                       options.scale = 0.25;
                       options.iterations = 3;
                       return options;
                     });
}

void expect_stats_equal(const sim::MachineStats& a,
                        const sim::MachineStats& b) {
  EXPECT_EQ(a.app_instructions, b.app_instructions);
  EXPECT_EQ(a.app_refs, b.app_refs);
  EXPECT_EQ(a.app_misses, b.app_misses);
  EXPECT_EQ(a.filtered_hits, b.filtered_hits);
  EXPECT_EQ(a.tool_refs, b.tool_refs);
  EXPECT_EQ(a.tool_misses, b.tool_misses);
  EXPECT_EQ(a.app_cycles, b.app_cycles);
  EXPECT_EQ(a.tool_cycles, b.tool_cycles);
  EXPECT_EQ(a.interrupts, b.interrupts);
}

void expect_reports_equal(const core::Report& a, const core::Report& b) {
  EXPECT_EQ(a.total_count(), b.total_count());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rows()[i].name, b.rows()[i].name);
    EXPECT_EQ(a.rows()[i].count, b.rows()[i].count);
    EXPECT_DOUBLE_EQ(a.rows()[i].percent, b.rows()[i].percent);
  }
}

void expect_batches_equal(const BatchResult& a, const BatchResult& b) {
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    SCOPED_TRACE(a.items[i].spec.name);
    EXPECT_EQ(a.items[i].ok, b.items[i].ok);
    expect_stats_equal(a.items[i].result.stats, b.items[i].result.stats);
    expect_reports_equal(a.items[i].result.actual, b.items[i].result.actual);
    expect_reports_equal(a.items[i].result.estimated,
                         b.items[i].result.estimated);
    EXPECT_EQ(a.items[i].result.samples, b.items[i].result.samples);
    EXPECT_EQ(a.items[i].result.unattributed_misses,
              b.items[i].result.unattributed_misses);
    EXPECT_EQ(a.items[i].result.search_done, b.items[i].result.search_done);
    EXPECT_EQ(a.items[i].result.search_stats.iterations,
              b.items[i].result.search_stats.iterations);
  }
  // The strongest form of the contract: the timing-free JSON documents are
  // byte-identical.
  JsonExportOptions no_timing;
  no_timing.include_timing = false;
  std::string json_a = to_json(a, no_timing);
  std::string json_b = to_json(b, no_timing);
  // jobs is the one legitimate difference between serial and parallel.
  EXPECT_EQ(JsonValue::parse(json_a).at("runs").uint(),
            JsonValue::parse(json_b).at("runs").uint());
  const auto strip_jobs = [](std::string text) {
    const auto pos = text.find("\"jobs\":");
    const auto end = text.find('\n', pos);
    return text.erase(pos, end - pos);
  };
  EXPECT_EQ(strip_jobs(std::move(json_a)), strip_jobs(std::move(json_b)));
}

TEST(BatchRunner, ParallelMatchesSerialByteForByte) {
  const auto specs = small_sweep();

  BatchRunner::Options serial;
  serial.jobs = 1;
  const auto one = BatchRunner(serial).run(specs);

  BatchRunner::Options parallel;
  parallel.jobs = 4;
  const auto four = BatchRunner(parallel).run(specs);

  EXPECT_EQ(one.metrics.jobs, 1u);
  EXPECT_EQ(four.metrics.jobs, 4u);
  expect_batches_equal(one, four);
}

TEST(BatchRunner, RerunWithSameSeedIsBitStable) {
  const auto specs = small_sweep();
  BatchRunner::Options options;
  options.jobs = 4;
  const auto first = BatchRunner(options).run(specs);
  const auto second = BatchRunner(options).run(specs);
  expect_batches_equal(first, second);
}

TEST(BatchRunner, ResultsArriveInSubmissionOrder) {
  const auto specs = small_sweep();
  BatchRunner::Options options;
  options.jobs = 4;
  const auto batch = BatchRunner(options).run(specs);
  ASSERT_EQ(batch.items.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(batch.items[i].spec.name, specs[i].name);
    EXPECT_TRUE(batch.items[i].ok) << batch.items[i].error;
    EXPECT_GT(batch.items[i].wall_seconds, 0.0);
  }
  EXPECT_EQ(batch.metrics.runs, specs.size());
  EXPECT_EQ(batch.metrics.failed, 0u);
  EXPECT_GT(batch.metrics.virtual_cycles, 0u);
  EXPECT_GT(batch.metrics.app_misses, 0u);
}

TEST(BatchRunner, FailedRunIsIsolated) {
  auto specs = small_sweep();
  RunSpec bad;
  bad.name = "bogus/none";
  bad.workload = "gcc";  // not a paper workload
  specs.insert(specs.begin() + 1, bad);

  BatchRunner::Options options;
  options.jobs = 3;
  const auto batch = BatchRunner(options).run(specs);
  ASSERT_EQ(batch.items.size(), specs.size());
  EXPECT_FALSE(batch.items[1].ok);
  EXPECT_FALSE(batch.items[1].error.empty());
  EXPECT_EQ(batch.metrics.failed, 1u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i == 1) continue;
    EXPECT_TRUE(batch.items[i].ok) << batch.items[i].error;
  }
}

TEST(BatchRunner, ProgressCallbackSeesEveryCompletion) {
  const auto specs = small_sweep();
  std::size_t calls = 0;
  std::size_t last_done = 0;
  std::set<std::string> seen;
  BatchRunner::Options options;
  options.jobs = 4;
  options.on_progress = [&](std::size_t done, std::size_t total,
                            const BatchItem& item) {
    // Serialized by the runner's mutex, so plain state is fine here.
    ++calls;
    EXPECT_EQ(done, last_done + 1);
    last_done = done;
    EXPECT_EQ(total, 6u);
    seen.insert(item.spec.name);
  };
  const auto batch = BatchRunner(options).run(specs);
  EXPECT_EQ(calls, specs.size());
  EXPECT_EQ(seen.size(), specs.size());
  EXPECT_EQ(batch.metrics.runs, specs.size());
}

TEST(BatchRunner, DerivedSeedsAreDeterministicAndDecorrelated) {
  EXPECT_EQ(BatchRunner::derived_seed(42, 0), BatchRunner::derived_seed(42, 0));
  EXPECT_NE(BatchRunner::derived_seed(42, 0), BatchRunner::derived_seed(42, 1));
  EXPECT_NE(BatchRunner::derived_seed(42, 0), BatchRunner::derived_seed(43, 0));
  EXPECT_NE(BatchRunner::derived_seed(0, 0), 0u);

  // With derive_seeds on, the spec echoed back carries the derived seed.
  auto specs = small_sweep();
  specs.resize(2);
  BatchRunner::Options options;
  options.jobs = 2;
  options.derive_seeds = true;
  const auto batch = BatchRunner(options).run(specs);
  EXPECT_EQ(batch.items[0].spec.options.seed,
            BatchRunner::derived_seed(specs[0].options.seed, 0));
  EXPECT_EQ(batch.items[1].spec.options.seed,
            BatchRunner::derived_seed(specs[1].options.seed, 1));
  EXPECT_NE(batch.items[0].spec.options.seed,
            batch.items[1].spec.options.seed);
}

TEST(BatchRunner, EmptyBatchCompletesImmediately) {
  const auto batch = BatchRunner().run({});
  EXPECT_TRUE(batch.items.empty());
  EXPECT_EQ(batch.metrics.runs, 0u);
  EXPECT_EQ(batch.metrics.failed, 0u);
}

TEST(ThreadPool, RunsEveryTaskAndIsReusable) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100 * (round + 1));
  }
}

TEST(ThreadPool, ZeroResolvesToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_jobs(7), 7u);
}

TEST(ThreadPool, SurvivesThrowingTasksAndDrainsDeterministically) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  for (int i = 0; i < 100; ++i) {
    if (i == 10) {
      pool.submit([] { throw std::runtime_error("task blew up"); });
    } else {
      pool.submit([&completed] { completed.fetch_add(1); });
    }
  }
  // The throwing task neither terminates the process nor wedges a worker:
  // every other task still runs, and wait_idle surfaces the exception.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 99);

  // The pool stays usable and a clean wait_idle no longer throws.
  pool.submit([&completed] { completed.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(completed.load(), 100);
}

TEST(ThreadPool, WaitIdleOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted — must not hang
  pool.submit([] {});
  pool.wait_idle();
}

}  // namespace
}  // namespace hpm::harness
