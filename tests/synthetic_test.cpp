#include "workloads/synthetic.hpp"

#include <gtest/gtest.h>

#include "core/exact_profiler.hpp"
#include "harness/experiment.hpp"
#include "objmap/object_map.hpp"
#include "sim/machine.hpp"

namespace hpm::workloads {
namespace {

sim::MachineConfig test_machine() {
  sim::MachineConfig c;
  c.cache.size_bytes = 128 * 1024;
  return c;
}

TEST(SyntheticSpecValidation, SweepVectorSizeMustMatch) {
  SyntheticSpec spec;
  spec.arrays = {{"A", 1024}, {"B", 1024}};
  spec.phases.push_back({{1}, 1});
  EXPECT_THROW(SyntheticWorkload w(spec), std::invalid_argument);
}

TEST(SyntheticSpecValidation, LockstepRequiresBinarySweeps) {
  SyntheticSpec spec;
  spec.lockstep = true;
  spec.arrays = {{"A", 1024}};
  spec.phases.push_back({{2}, 1});
  EXPECT_THROW(SyntheticWorkload w(spec), std::invalid_argument);
}

TEST(SyntheticWorkload, ExpectedSharesSequential) {
  auto spec = hotspot_spec(4, 1 << 20, 60.0);
  SyntheticWorkload workload(spec);
  const auto shares = workload.expected_shares();
  ASSERT_EQ(shares.size(), 4u);
  EXPECT_NEAR(shares[0], 60.0, 5.0);
  double sum = 0;
  for (double s : shares) sum += s;
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(SyntheticWorkload, UniformSpecIsUniform) {
  SyntheticWorkload workload(uniform_spec(5, 1 << 20));
  for (double s : workload.expected_shares()) EXPECT_NEAR(s, 20.0, 1e-9);
}

TEST(SyntheticWorkload, Figure2SharesMatchTheFigure) {
  SyntheticWorkload workload(figure2_spec(1 << 20));
  const auto shares = workload.expected_shares();
  ASSERT_EQ(shares.size(), 6u);
  EXPECT_NEAR(shares[0], 10.0, 0.1);  // A
  EXPECT_NEAR(shares[2], 20.0, 0.1);  // C
  EXPECT_NEAR(shares[3], 17.5, 0.1);  // D
  EXPECT_NEAR(shares[4], 35.0, 0.1);  // E
  EXPECT_NEAR(shares[5], 7.5, 0.1);   // F
}

struct ShareParam {
  const char* name;
  SyntheticSpec (*make)();
};

SyntheticSpec make_hotspot() { return hotspot_spec(4, 1 << 20, 60.0, 6); }
SyntheticSpec make_uniform() { return uniform_spec(5, 768 * 1024, 6); }
SyntheticSpec make_figure2() { return figure2_spec(512 * 1024, 8); }

class MeasuredShares : public ::testing::TestWithParam<ShareParam> {};

// Property: the ground-truth profiler's measured shares match the spec's
// analytic expectation for every canned scenario.
TEST_P(MeasuredShares, ActualMatchesExpected) {
  SyntheticWorkload workload(GetParam().make());
  harness::RunConfig config;
  config.machine = test_machine();
  const auto result = harness::run_experiment(config, workload);
  const auto expected = workload.expected_shares();
  ASSERT_EQ(result.actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& name = workload.spec().arrays[i].name;
    const auto measured = result.actual.percent_of(name);
    ASSERT_TRUE(measured.has_value()) << name;
    EXPECT_NEAR(*measured, expected[i], 1.5) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, MeasuredShares,
                         ::testing::Values(ShareParam{"hotspot", make_hotspot},
                                           ShareParam{"uniform", make_uniform},
                                           ShareParam{"figure2",
                                                      make_figure2}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(SyntheticWorkload, LockstepKeepsAllArraysConcurrentlyActive) {
  // In lockstep mode every array incurs misses in every time slice; in
  // sequential mode activity is bursty.  Verify via the profiler series.
  auto run = [&](bool lockstep) {
    SyntheticSpec spec;
    spec.lockstep = lockstep;
    spec.arrays = {{"P", 512 * 1024}, {"Q", 512 * 1024}};
    spec.phases.push_back({{1, 1}, 1});
    spec.iterations = 8;
    SyntheticWorkload workload(spec);
    harness::RunConfig config;
    config.machine = test_machine();
    config.series_interval = 500'000;
    return harness::run_experiment(config, workload);
  };
  const auto lockstep = run(true);
  std::size_t lockstep_zero_intervals = 0;
  for (const auto& series : lockstep.series) {
    for (auto v : series.misses_per_interval) {
      lockstep_zero_intervals += v == 0 ? 1 : 0;
    }
  }
  const auto sequential = run(false);
  std::size_t sequential_zero_intervals = 0;
  for (const auto& series : sequential.series) {
    for (auto v : series.misses_per_interval) {
      sequential_zero_intervals += v == 0 ? 1 : 0;
    }
  }
  EXPECT_EQ(lockstep_zero_intervals, 0u);
  EXPECT_GT(sequential_zero_intervals, 0u);
}

TEST(SyntheticWorkload, GapBeforeControlsLayout) {
  SyntheticSpec spec;
  spec.arrays = {{"A", 4096}, {"B", 4096, false, sim::kNoSite,
                               /*gap_before=*/1 << 20}};
  spec.phases.push_back({{1, 1}, 1});
  SyntheticWorkload workload(spec);
  sim::Machine machine(test_machine());
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  workload.setup(machine);
  EXPECT_GE(workload.array_base(1), workload.array_base(0) + (1 << 20));
}

TEST(SyntheticWorkload, HeapArraysRegisterAsHeapObjects) {
  SyntheticSpec spec;
  spec.arrays = {{"H", 64 * 1024, /*on_heap=*/true, /*site=*/3}};
  spec.phases.push_back({{1}, 1});
  SyntheticWorkload workload(spec);
  sim::Machine machine(test_machine());
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  workload.setup(machine);
  const auto hit = map.resolve(workload.array_base(0));
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.ref.kind, objmap::ObjectKind::kHeap);
  EXPECT_EQ(map.info(hit.ref).site, 3u);
}

TEST(SyntheticWorkload, DeterministicMissCounts) {
  auto run = [] {
    SyntheticWorkload workload(hotspot_spec(3, 512 * 1024, 50.0, 4));
    harness::RunConfig config;
    config.machine = test_machine();
    return harness::run_experiment(config, workload).stats.app_misses;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hpm::workloads
