// Fuzz tests for the JSON ingestion path: JsonValue::parse,
// parse_batch_document/parse_batch_result and the analysis-layer file
// loaders must never crash on adversarial input — they either parse or
// throw a clean std::runtime_error carrying the byte offset of the first
// bad character (and, through analysis::load_batch_file, the file name).
//
// Two sources of hostility: a checked-in corpus (tests/corpus/*.json —
// truncation, duplicate keys, 64-bit edge values, deep nesting, bad
// schemas, trailing garbage) and seeded deterministic mutation of a valid
// document (byte flips, deletions, insertions, truncations).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/document.hpp"
#include "harness/batch.hpp"
#include "harness/json_export.hpp"
#include "util/prng.hpp"

#ifndef HPM_CORPUS_DIR
#error "HPM_CORPUS_DIR must point at tests/corpus"
#endif

namespace hpm::harness {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(HPM_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// The only acceptable outcomes for hostile input: a parsed value or a
/// std::runtime_error.  Anything else (other exception types, crashes)
/// fails the test.
enum class Outcome { kParsed, kRejected };

Outcome try_parse_value(const std::string& text) {
  try {
    (void)JsonValue::parse(text);
    return Outcome::kParsed;
  } catch (const std::runtime_error&) {
    return Outcome::kRejected;
  }
}

Outcome try_parse_batch(const std::string& text) {
  try {
    (void)parse_batch_result(text);
    return Outcome::kParsed;
  } catch (const std::runtime_error&) {
    return Outcome::kRejected;
  }
}

/// A small valid hpm.batch document to mutate.
std::string valid_document() {
  RunSpec spec;
  spec.name = "synthetic/search";
  spec.workload = "synthetic";
  spec.config.tool = ToolKind::kSearch;
  spec.options.scale = 0.25;
  spec.options.iterations = 2;
  const BatchResult batch = BatchRunner().run({spec});
  EXPECT_TRUE(batch.items[0].ok) << batch.items[0].error;
  JsonExportOptions options;
  options.include_timing = false;
  return to_json(batch, options);
}

// -- Corpus ------------------------------------------------------------------

TEST(JsonFuzzCorpus, EveryFileParsesOrIsRejectedCleanly) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 10u) << "corpus missing from " << HPM_CORPUS_DIR;
  for (const auto& file : files) {
    const std::string text = read_file(file);
    (void)try_parse_value(text);   // must not crash
    (void)try_parse_batch(text);   // must not crash
    SUCCEED() << file;
  }
}

TEST(JsonFuzzCorpus, SyntaxErrorsCarryByteOffsets) {
  for (const char* name : {"truncated.json", "not_json.json", "empty.json",
                           "trailing_garbage.json", "deep_nesting.json",
                           "bad_escapes.json"}) {
    const std::string path = std::string(HPM_CORPUS_DIR) + "/" + name;
    try {
      (void)JsonValue::parse(read_file(path));
      FAIL() << name << " unexpectedly parsed";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << name << ": " << e.what();
    }
  }
}

TEST(JsonFuzzCorpus, LoaderErrorsNameTheFile) {
  for (const char* name : {"truncated.json", "bad_schema.json",
                           "not_json.json", "empty.json"}) {
    const std::string path = std::string(HPM_CORPUS_DIR) + "/" + name;
    try {
      (void)analysis::load_batch_file(path);
      FAIL() << name << " unexpectedly loaded as a batch document";
    } catch (const analysis::DocumentError& e) {
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
          << "error must name the file: " << e.what();
    }
  }
  try {
    (void)analysis::load_batch_file("/nonexistent/no_such_file.json");
    FAIL() << "missing file unexpectedly loaded";
  } catch (const analysis::DocumentError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_file.json"),
              std::string::npos)
        << e.what();
  }
}

TEST(JsonFuzzCorpus, DuplicateKeysKeepTheFirstValue) {
  const std::string path =
      std::string(HPM_CORPUS_DIR) + "/duplicate_keys.json";
  const JsonValue doc = JsonValue::parse(read_file(path));
  EXPECT_EQ(doc.at("schema").str(), "hpm.batch.v2");
  EXPECT_EQ(doc.at("runs").uint(), 0u);
}

TEST(JsonFuzzCorpus, Uint64EdgeValuesRoundTripExactly) {
  const std::string path = std::string(HPM_CORPUS_DIR) + "/uint64_edges.json";
  const JsonValue doc = JsonValue::parse(read_file(path));
  EXPECT_EQ(doc.at("seed").uint(), 18446744073709551615ull);
  EXPECT_EQ(doc.at("precise").uint(), 9007199254740993ull);
  // One past uint64 max cannot be exact; it degrades to the double value
  // instead of crashing or wrapping.
  EXPECT_GT(doc.at("overflow").number(), 1.8e19);
  EXPECT_LT(doc.at("negative").number(), 0.0);
}

// -- Nesting depth ------------------------------------------------------------

TEST(JsonFuzzNesting, DepthBelowTheCapParses) {
  const int depth = 200;
  std::string text(static_cast<std::size_t>(depth), '[');
  text.append(static_cast<std::size_t>(depth), ']');
  EXPECT_EQ(try_parse_value(text), Outcome::kParsed);
}

TEST(JsonFuzzNesting, AdversarialDepthIsRejectedNotOverflowed) {
  // Without the parser's depth cap this input would overflow the stack —
  // the recursive parser would recurse 100k frames deep.
  for (const int depth : {300, 100'000}) {
    std::string text(static_cast<std::size_t>(depth), '[');
    try {
      (void)JsonValue::parse(text);
      FAIL() << "depth " << depth << " unexpectedly parsed";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("nesting too deep"),
                std::string::npos)
          << e.what();
    }
    // Objects recurse through the same path.
    std::string objects;
    for (int i = 0; i < depth; ++i) objects += "{\"k\":";
    EXPECT_EQ(try_parse_value(objects), Outcome::kRejected);
  }
}

// -- Seeded mutation fuzzing ---------------------------------------------------

TEST(JsonFuzzMutation, TruncationAtEveryLengthIsHandled) {
  std::string doc = valid_document();
  ASSERT_EQ(try_parse_batch(doc), Outcome::kParsed);
  // Strip trailing whitespace: a truncation that only drops the final
  // newline leaves a complete document, so the invariant below holds for
  // the stripped form (whose last byte is the root's closing brace).
  while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
    doc.pop_back();
  }
  // Every strict prefix is malformed; all must be rejected cleanly.
  const std::size_t step = doc.size() < 512 ? 1 : doc.size() / 512;
  for (std::size_t len = 0; len < doc.size(); len += step) {
    EXPECT_EQ(try_parse_batch(doc.substr(0, len)), Outcome::kRejected)
        << "prefix of length " << len << " parsed as a complete document";
  }
}

TEST(JsonFuzzMutation, SeededByteMutationsNeverCrashTheParser) {
  const std::string doc = valid_document();
  util::Xoshiro256 rng(0xf022ed5ull);
  int parsed = 0;
  int rejected = 0;
  for (int round = 0; round < 500; ++round) {
    std::string mutated = doc;
    const int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t at = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:  // flip
          mutated[at] = static_cast<char>(rng.next_below(256));
          break;
        case 1:  // delete
          mutated.erase(at, 1);
          break;
        default:  // insert
          mutated.insert(at, 1, static_cast<char>(rng.next_below(256)));
          break;
      }
    }
    (try_parse_batch(mutated) == Outcome::kParsed ? parsed : rejected) += 1;
  }
  // The exact split is platform-stable but uninteresting; what matters is
  // that all 500 rounds ended in one of the two clean outcomes.
  EXPECT_EQ(parsed + rejected, 500);
}

}  // namespace
}  // namespace hpm::harness
