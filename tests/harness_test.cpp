#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace hpm::harness {
namespace {

TEST(PaperMachine, MatchesThePaperSimulator) {
  const auto config = paper_machine();
  EXPECT_EQ(config.cache.size_bytes, 2ULL * 1024 * 1024);  // §3: 2 MB
  EXPECT_EQ(config.cache.line_size, 64u);
  EXPECT_TRUE(config.cache.valid());
  // Enough counters for a 10-way search plus the global counter.
  EXPECT_GE(config.num_miss_counters, 11u);
  EXPECT_EQ(config.cycles.interrupt_cost, 8'800u);  // §3.3 SGI measurement
}

workloads::SyntheticWorkload small_workload() {
  workloads::SyntheticSpec spec;
  spec.lockstep = true;
  spec.arrays = {{"BIG", 512 * 1024}, {"SMALL", 256 * 1024}};
  spec.phases.push_back({{1, 1}, 1});
  spec.iterations = 20;
  return workloads::SyntheticWorkload(spec);
}

RunConfig small_config() {
  RunConfig config;
  config.machine.cache.size_bytes = 64 * 1024;
  return config;
}

TEST(RunExperiment, NoToolProducesActualOnly) {
  auto workload = small_workload();
  const auto result = run_experiment(small_config(), workload);
  EXPECT_FALSE(result.actual.empty());
  EXPECT_TRUE(result.estimated.empty());
  EXPECT_EQ(result.samples, 0u);
  EXPECT_EQ(result.stats.interrupts, 0u);
  EXPECT_EQ(result.stats.tool_cycles, 0u);
  EXPECT_GT(result.stats.app_misses, 0u);
}

TEST(RunExperiment, SamplerPathProducesEstimates) {
  auto workload = small_workload();
  auto config = small_config();
  config.tool = ToolKind::kSampler;
  config.sampler.period = 500;
  const auto result = run_experiment(config, workload);
  EXPECT_GT(result.samples, 0u);
  EXPECT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "BIG");
  EXPECT_GT(result.stats.interrupts, 0u);
}

TEST(RunExperiment, SearchPathProducesEstimatesAndStats) {
  auto workload = small_workload();
  auto config = small_config();
  config.tool = ToolKind::kSearch;
  config.search.n = 4;
  config.search.initial_interval = 100'000;
  const auto result = run_experiment(config, workload);
  EXPECT_GT(result.search_stats.iterations, 0u);
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "BIG");
}

TEST(RunExperiment, ExactProfileCanBeDisabled) {
  auto workload = small_workload();
  auto config = small_config();
  config.exact_profile = false;
  const auto result = run_experiment(config, workload);
  EXPECT_TRUE(result.actual.empty());
  EXPECT_TRUE(result.series.empty());
}

TEST(RunExperiment, SeriesIntervalEnablesTimeSeries) {
  auto workload = small_workload();
  auto config = small_config();
  config.series_interval = 200'000;
  const auto result = run_experiment(config, workload);
  ASSERT_FALSE(result.series.empty());
  EXPECT_FALSE(result.series.front().misses_per_interval.empty());
}

TEST(RunExperiment, ByNameOverloadMatchesDirectConstruction) {
  auto config = small_config();
  config.machine.cache.size_bytes = 128 * 1024;
  workloads::WorkloadOptions options;
  options.scale = 0.25;
  const auto by_name = run_experiment(config, "mgrid", options);
  auto direct = workloads::make_workload("mgrid", options);
  const auto by_object = run_experiment(config, *direct);
  EXPECT_EQ(by_name.stats.app_misses, by_object.stats.app_misses);
  EXPECT_EQ(by_name.stats.app_cycles, by_object.stats.app_cycles);
}

TEST(RunExperiment, UnknownWorkloadThrows) {
  EXPECT_THROW((void)run_experiment(small_config(), "gcc", {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hpm::harness
