// JSON exporter unit tests: escaping, nested reports, and round-trips of
// the special values the harness can legitimately produce (0 samples,
// unattributed misses, empty estimated report).
#include "harness/json_export.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hpm::harness {
namespace {

// -- Escaping ----------------------------------------------------------------

TEST(JsonEscape, PassesPlainTextThrough)
{
  EXPECT_EQ(json_escape("tomcatv/search10"), "tomcatv/search10");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\0!", 5)), "nul\\u0000!");
  EXPECT_EQ(json_escape("\x01\x1f"), "\\u0001\\u001f");
  EXPECT_EQ(json_escape("\b\f\r"), "\\b\\f\\r");
}

TEST(JsonEscape, Utf8BytesPassThroughUntouched) {
  EXPECT_EQ(json_escape("caché"), "caché");
}

TEST(JsonEscape, RoundTripsThroughParser) {
  const std::string nasty = "q\"b\\s\nn\tt\x01u caché";
  const auto doc = JsonValue::parse("\"" + json_escape(nasty) + "\"");
  EXPECT_EQ(doc.str(), nasty);
}

// -- Writer ------------------------------------------------------------------

TEST(JsonWriter, CompactAndIndentedFormsParseIdentically) {
  const auto build = [](int indent) {
    std::ostringstream out;
    JsonWriter w(out, indent);
    w.begin_object();
    w.key("name").value("x");
    w.key("flag").value(true);
    w.key("none").null();
    w.key("list").begin_array().value(1).value(2.5).end_array();
    w.key("nested").begin_object().key("k").value(std::uint64_t{7})
        .end_object();
    w.key("empty_list").begin_array().end_array();
    w.key("empty_obj").begin_object().end_object();
    w.end_object();
    return std::move(out).str();
  };
  const auto compact = JsonValue::parse(build(0));
  const auto pretty = JsonValue::parse(build(2));
  EXPECT_EQ(compact.at("name").str(), "x");
  EXPECT_TRUE(compact.at("flag").boolean());
  EXPECT_TRUE(compact.at("none").is_null());
  ASSERT_EQ(compact.at("list").array().size(), 2u);
  EXPECT_EQ(compact.at("list").array()[0].uint(), 1u);
  EXPECT_DOUBLE_EQ(compact.at("list").array()[1].number(), 2.5);
  EXPECT_EQ(compact.at("nested").at("k").uint(), 7u);
  EXPECT_TRUE(compact.at("empty_list").array().empty());
  EXPECT_TRUE(compact.at("empty_obj").object().empty());
  EXPECT_EQ(pretty.at("name").str(), compact.at("name").str());
  EXPECT_EQ(pretty.at("list").array().size(),
            compact.at("list").array().size());
}

TEST(JsonWriter, DoublesRoundTripExactly) {
  for (const double v : {0.0, -1.5, 39.915244073082, 1e-9, 123456789.25}) {
    std::ostringstream out;
    JsonWriter(out, 0).value(v);
    EXPECT_EQ(JsonValue::parse(out.str()).number(), v) << out.str();
  }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter(out, 0).value(std::nan(""));
  EXPECT_TRUE(JsonValue::parse(out.str()).is_null());
}

// -- Parser edge cases -------------------------------------------------------

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("--1"), std::runtime_error);
}

TEST(JsonParser, ParsesNumbersAndUnicodeEscapes) {
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e3").number(), -2500.0);
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").str(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").str(), "\xc3\xa9");
  EXPECT_THROW((void)JsonValue::parse("1.5").uint(), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("-1").uint(), std::runtime_error);
}

// -- Harness-type exports ----------------------------------------------------

TEST(JsonExport, EmptyReportExportsCleanly) {
  const auto doc = JsonValue::parse(to_json(core::Report{}));
  EXPECT_EQ(doc.at("total_count").uint(), 0u);
  EXPECT_TRUE(doc.at("rows").array().empty());
}

TEST(JsonExport, ReportRowsCarryNameCountPercent) {
  core::Report report({{"BIG", {}, 900, 90.0}, {"SMALL", {}, 100, 10.0}},
                      1000);
  const auto doc = JsonValue::parse(to_json(report));
  EXPECT_EQ(doc.at("total_count").uint(), 1000u);
  ASSERT_EQ(doc.at("rows").array().size(), 2u);
  const auto& first = doc.at("rows").array()[0];
  EXPECT_EQ(first.at("name").str(), "BIG");
  EXPECT_EQ(first.at("count").uint(), 900u);
  EXPECT_DOUBLE_EQ(first.at("percent").number(), 90.0);
}

TEST(JsonExport, DefaultRunResultExportsSpecialValues) {
  // A tool-less run: 0 samples, empty estimated report — all fields must
  // still be present and well-typed.
  RunResult result;
  result.stats.app_misses = 5;
  result.unattributed_misses = 3;
  const auto doc = JsonValue::parse(to_json(result));
  EXPECT_EQ(doc.at("samples").uint(), 0u);
  EXPECT_EQ(doc.at("unattributed_misses").uint(), 3u);
  EXPECT_FALSE(doc.at("search_done").boolean());
  EXPECT_EQ(doc.at("stats").at("app_misses").uint(), 5u);
  EXPECT_EQ(doc.at("stats").at("total_cycles").uint(), 0u);
  EXPECT_TRUE(doc.at("estimated").at("rows").array().empty());
  EXPECT_EQ(doc.find("series"), nullptr);  // none captured -> omitted
}

TEST(JsonExport, MachineStatsTotalsAreDerived) {
  sim::MachineStats stats;
  stats.app_cycles = 70;
  stats.tool_cycles = 30;
  stats.app_misses = 9;
  stats.tool_misses = 1;
  const auto doc = JsonValue::parse(to_json(stats));
  EXPECT_EQ(doc.at("total_cycles").uint(), 100u);
  EXPECT_EQ(doc.at("app_cycles").uint(), 70u);
  EXPECT_EQ(doc.at("tool_misses").uint(), 1u);
}

TEST(JsonExport, FailedItemCarriesErrorAndOmitsResult) {
  BatchItem item;
  item.spec.name = "bad \"run\"";
  item.spec.workload = "gcc";
  item.error = "unknown workload: gcc";
  const auto doc = JsonValue::parse(to_json(item));
  EXPECT_FALSE(doc.at("ok").boolean());
  EXPECT_EQ(doc.at("name").str(), "bad \"run\"");
  EXPECT_EQ(doc.at("error").str(), "unknown workload: gcc");
  EXPECT_EQ(doc.find("result"), nullptr);
}

TEST(JsonExport, BatchDocumentHasSchemaAndHonoursTimingFlag) {
  BatchResult batch;
  batch.metrics.jobs = 8;
  batch.metrics.runs = 0;
  batch.metrics.wall_seconds = 1.25;

  const auto with_timing = JsonValue::parse(to_json(batch));
  EXPECT_EQ(with_timing.at("schema").str(), "hpm.batch.v2");
  EXPECT_EQ(with_timing.at("jobs").uint(), 8u);
  EXPECT_DOUBLE_EQ(with_timing.at("wall_seconds").number(), 1.25);
  EXPECT_TRUE(with_timing.at("items").array().empty());

  JsonExportOptions no_timing;
  no_timing.include_timing = false;
  const auto without = JsonValue::parse(to_json(batch, no_timing));
  EXPECT_EQ(without.find("wall_seconds"), nullptr);
}

TEST(JsonExport, SeriesIncludedOnlyWhenRequested) {
  RunResult result;
  core::ExactProfiler::Series series;
  series.name = "BIG";
  series.misses_per_interval = {3, 0, 7};
  result.series.push_back(series);

  const auto with = JsonValue::parse(to_json(result));
  ASSERT_NE(with.find("series"), nullptr);
  const auto& entry = with.at("series").array().at(0);
  EXPECT_EQ(entry.at("name").str(), "BIG");
  ASSERT_EQ(entry.at("misses_per_interval").array().size(), 3u);
  EXPECT_EQ(entry.at("misses_per_interval").array()[2].uint(), 7u);

  JsonExportOptions no_series;
  no_series.include_series = false;
  EXPECT_EQ(JsonValue::parse(to_json(result, no_series)).find("series"),
            nullptr);
}

// -- v2 metrics block and the batch-document reader --------------------------

BatchResult tiny_batch(bool with_metrics) {
  BatchResult batch;
  batch.metrics.jobs = 2;
  batch.metrics.runs = 1;
  BatchItem item;
  item.spec.name = "synthetic/t";
  item.spec.workload = "synthetic";
  item.spec.config.tool = ToolKind::kSampler;
  item.ok = true;
  if (with_metrics) {
    auto& m = item.result.metrics;
    m.enabled = true;
    m.counters = {{"sampler.interrupts", 42}, {"sampler.samples.attributed", 40}};
    m.gauges = {{"sampler.rate", 1.5}};
    m.histograms.push_back({"sampler.period", {100.0, 1000.0}, {3, 2, 1}, 6,
                            12345.0});
    m.timeline_every = 1000;
    m.timeline_snapshots = 1;
    telemetry::PhaseSample sample;
    sample.at = 1000;
    sample.app_refs = 10;
    sample.app_misses = 5;
    m.timeline.push_back(sample);
  }
  batch.items.push_back(std::move(item));
  return batch;
}

TEST(JsonExport, MetricsBlockAppearsOnlyWhenTelemetryRan) {
  const auto bare = JsonValue::parse(to_json(tiny_batch(false)));
  EXPECT_EQ(bare.at("items").array()[0].at("result").find("metrics"), nullptr);

  const auto doc = JsonValue::parse(to_json(tiny_batch(true)));
  const auto& metrics =
      doc.at("items").array()[0].at("result").at("metrics");
  EXPECT_EQ(metrics.at("counters").at("sampler.interrupts").uint(), 42u);
  EXPECT_DOUBLE_EQ(metrics.at("gauges").at("sampler.rate").number(), 1.5);
  const auto& histogram = metrics.at("histograms").array()[0];
  EXPECT_EQ(histogram.at("name").str(), "sampler.period");
  ASSERT_EQ(histogram.at("counts").array().size(), 3u);
  EXPECT_EQ(histogram.at("count").uint(), 6u);
  const auto& timeline = metrics.at("timeline");
  EXPECT_EQ(timeline.at("every").uint(), 1000u);
  const auto& slice = timeline.at("samples").array()[0];
  EXPECT_EQ(slice.at("app_misses").uint(), 5u);
  EXPECT_DOUBLE_EQ(slice.at("miss_rate").number(), 0.5);
}

TEST(JsonExport, MetricsCompanionDocument) {
  std::ostringstream out;
  export_metrics_json(out, tiny_batch(true));
  const auto doc = JsonValue::parse(out.str());
  EXPECT_EQ(doc.at("schema").str(), "hpm.metrics.v1");
  const auto& run = doc.at("runs").array().at(0);
  EXPECT_EQ(run.at("name").str(), "synthetic/t");
  EXPECT_EQ(run.at("tool").str(), "sample");
  EXPECT_EQ(run.at("metrics").at("counters").at("sampler.interrupts").uint(),
            42u);
}

TEST(ParseBatchDocument, ReadsV2Export) {
  const auto summary = parse_batch_document(to_json(tiny_batch(true)));
  EXPECT_EQ(summary.schema_version, 2);
  EXPECT_EQ(summary.jobs, 2u);
  EXPECT_EQ(summary.runs, 1u);
  EXPECT_EQ(summary.failed, 0u);
  ASSERT_EQ(summary.items.size(), 1u);
  EXPECT_EQ(summary.items[0].name, "synthetic/t");
  EXPECT_EQ(summary.items[0].workload, "synthetic");
  EXPECT_EQ(summary.items[0].tool, "sample");
  EXPECT_TRUE(summary.items[0].ok);
  EXPECT_TRUE(summary.items[0].has_metrics);

  const auto bare = parse_batch_document(to_json(tiny_batch(false)));
  EXPECT_FALSE(bare.items[0].has_metrics);
}

TEST(ParseBatchDocument, StillReadsLegacyV1Documents) {
  // A pre-telemetry export, as written before the v2 schema: no "metrics"
  // anywhere.  Kept inline so this contract cannot rot silently.
  const std::string v1 = R"({
    "schema": "hpm.batch.v1",
    "jobs": 4,
    "runs": 2,
    "failed": 1,
    "items": [
      {"name": "tomcatv/sample", "workload": "tomcatv", "tool": "sample",
       "ok": true,
       "result": {"samples": 7, "search_done": false}},
      {"name": "gcc/sample", "workload": "gcc", "tool": "sample",
       "ok": false, "error": "unknown workload: gcc"}
    ]
  })";
  const auto summary = parse_batch_document(v1);
  EXPECT_EQ(summary.schema_version, 1);
  EXPECT_EQ(summary.jobs, 4u);
  EXPECT_EQ(summary.runs, 2u);
  EXPECT_EQ(summary.failed, 1u);
  ASSERT_EQ(summary.items.size(), 2u);
  EXPECT_TRUE(summary.items[0].ok);
  EXPECT_FALSE(summary.items[0].has_metrics);
  EXPECT_FALSE(summary.items[1].ok);
}

TEST(JsonExport, HierarchyBatchRoundTripsThroughV3) {
  // A batch whose item carries per-level counters must export as v3 with a
  // "levels" block, survive parse_batch_result, and re-export byte for
  // byte.  A batch without levels must stay on v2 untouched.
  BatchResult batch = tiny_batch(false);
  auto& result = batch.items[0].result;
  result.observe_level = 1;
  sim::LevelSnapshot l1;
  l1.name = "L1";
  l1.size_bytes = 32 * 1024;
  l1.line_size = 64;
  l1.associativity = 2;
  l1.accesses = 1000;
  l1.hits = 900;
  l1.misses = 100;
  l1.writebacks = 7;
  l1.resident_lines = 512;
  sim::LevelSnapshot llc = l1;
  llc.name = "LLC";
  llc.size_bytes = 2ULL * 1024 * 1024;
  llc.associativity = 8;
  llc.accesses = 100;
  llc.hits = 80;
  llc.misses = 20;
  llc.writebacks = 0;
  result.levels = {l1, llc};

  const std::string exported = to_json(batch);
  const auto doc = JsonValue::parse(exported);
  EXPECT_EQ(doc.at("schema").str(), "hpm.batch.v3");
  const auto& item = doc.at("items").array().at(0);
  EXPECT_EQ(item.at("result").at("observe_level").uint(), 1u);
  const auto& levels = item.at("result").at("levels").array();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].at("name").str(), "L1");
  EXPECT_EQ(levels[0].at("misses").uint(), 100u);
  EXPECT_EQ(levels[0].at("writebacks").uint(), 7u);
  EXPECT_EQ(levels[0].at("resident_lines").uint(), 512u);
  EXPECT_EQ(levels[1].at("name").str(), "LLC");
  EXPECT_EQ(levels[1].at("size_bytes").uint(), 2ULL * 1024 * 1024);

  const BatchResult reparsed = parse_batch_result(exported);
  ASSERT_EQ(reparsed.items.size(), 1u);
  ASSERT_EQ(reparsed.items[0].result.levels.size(), 2u);
  EXPECT_EQ(reparsed.items[0].result.levels[1].hits, 80u);
  EXPECT_EQ(reparsed.items[0].result.observe_level, 1u);
  EXPECT_EQ(to_json(reparsed), exported);

  const auto summary = parse_batch_document(exported);
  EXPECT_EQ(summary.schema_version, 3);

  // Single-level batches keep the v2 schema string byte-for-byte.
  EXPECT_EQ(JsonValue::parse(to_json(tiny_batch(false))).at("schema").str(),
            "hpm.batch.v2");
}

TEST(JsonExport, MulticoreBatchRoundTripsThroughV4) {
  // A batch whose item carries multi-core results must export as v4 with a
  // "multicore" block and a per-item "cores" spec key, survive
  // parse_batch_result, and re-export byte for byte.  A single-core batch
  // must never gain either.
  BatchResult batch = tiny_batch(false);
  auto& item = batch.items[0];
  item.spec.config.machine.cores = 2;
  auto& result = item.result;
  sim::MachineStats core0;
  core0.app_refs = 600;
  core0.app_misses = 60;
  core0.interrupts = 3;
  core0.tool_cycles = 111;
  sim::MachineStats core1;
  core1.app_refs = 400;
  core1.app_misses = 40;
  core1.interrupts = 2;
  core1.tool_cycles = 99;
  result.core_stats = {core0, core1};
  result.core_samples = {5, 4};
  sim::CoherenceStats l1;
  l1.invalidations_sent = 17;
  l1.invalidations_received = 17;
  l1.upgrades = 9;
  l1.sharing_transitions = 12;
  l1.forced_writebacks = 6;
  result.coherence = {l1, sim::CoherenceStats{}};
  result.coherence_samples = 9;
  result.coherence_events = 44;
  result.coherence_actual =
      core::Report({{"HOT", {}, 40, 90.9090909090909}, {"COLD", {}, 4, 9.0}},
                   44);
  result.coherence_estimated = core::Report({{"HOT", {}, 9, 100.0}}, 9);

  const std::string exported = to_json(batch);
  const auto doc = JsonValue::parse(exported);
  EXPECT_EQ(doc.at("schema").str(), "hpm.batch.v4");
  const auto& exported_item = doc.at("items").array().at(0);
  EXPECT_EQ(exported_item.at("cores").uint(), 2u);
  const auto& multicore = exported_item.at("result").at("multicore");
  EXPECT_EQ(multicore.at("cores").uint(), 2u);
  ASSERT_EQ(multicore.at("core_stats").array().size(), 2u);
  EXPECT_EQ(multicore.at("core_stats").array()[1].at("app_refs").uint(),
            400u);
  ASSERT_EQ(multicore.at("coherence").array().size(), 2u);
  EXPECT_EQ(
      multicore.at("coherence").array()[0].at("invalidations_sent").uint(),
      17u);
  EXPECT_EQ(multicore.at("coherence_events").uint(), 44u);
  EXPECT_EQ(multicore.at("coherence_actual").at("rows").array().size(), 2u);

  const BatchResult reparsed = parse_batch_result(exported);
  ASSERT_EQ(reparsed.items.size(), 1u);
  const auto& rr = reparsed.items[0].result;
  EXPECT_EQ(reparsed.items[0].spec.config.machine.cores, 2u);
  ASSERT_EQ(rr.core_stats.size(), 2u);
  EXPECT_EQ(rr.core_stats[0].app_refs, 600u);
  EXPECT_EQ(rr.core_stats[1].interrupts, 2u);
  EXPECT_EQ(rr.core_samples, (std::vector<std::uint64_t>{5, 4}));
  ASSERT_EQ(rr.coherence.size(), 2u);
  EXPECT_EQ(rr.coherence[0].upgrades, 9u);
  EXPECT_EQ(rr.coherence[0].forced_writebacks, 6u);
  EXPECT_EQ(rr.coherence_samples, 9u);
  EXPECT_EQ(rr.coherence_events, 44u);
  EXPECT_EQ(rr.coherence_actual.size(), 2u);
  EXPECT_DOUBLE_EQ(rr.coherence_estimated.percent_of("HOT").value_or(0.0),
                   100.0);
  EXPECT_EQ(to_json(reparsed), exported);

  const auto summary = parse_batch_document(exported);
  EXPECT_EQ(summary.schema_version, 4);

  // Single-core batches keep the v2 schema string and carry no "cores"
  // key or "multicore" block.
  const auto v2 = JsonValue::parse(to_json(tiny_batch(false)));
  EXPECT_EQ(v2.at("schema").str(), "hpm.batch.v2");
  EXPECT_EQ(v2.at("items").array().at(0).find("cores"), nullptr);
  EXPECT_EQ(v2.at("items").array().at(0).at("result").find("multicore"),
            nullptr);
}

TEST(ParseBatchDocument, RejectsUnknownSchemaAndGarbage) {
  EXPECT_THROW((void)parse_batch_document("{\"schema\":\"hpm.batch.v9\"}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_batch_document("not json"), std::runtime_error);
}

}  // namespace
}  // namespace hpm::harness
