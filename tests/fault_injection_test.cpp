// The fault layer's contract: a null plan installs nothing (bit-identical
// to builds predating fault injection), every knob perturbs exactly the
// event it documents, faulted runs stay deterministic at any --jobs level,
// and the hardened sampler recovers from dropped interrupts.
#include "sim/fault_injection.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "harness/json_export.hpp"
#include "sim/machine.hpp"

namespace hpm {
namespace {

using harness::RunConfig;
using harness::ToolKind;

/// A sampler run small enough for a test but big enough to overflow the
/// period many times.
RunConfig small_sampler_config() {
  RunConfig config;
  config.machine.cache.size_bytes = 128 * 1024;
  config.tool = ToolKind::kSampler;
  config.sampler.period = 1'999;
  return config;
}

workloads::WorkloadOptions small_options() {
  workloads::WorkloadOptions options;
  options.scale = 0.25;
  options.iterations = 3;
  return options;
}

TEST(FaultPlan, ValidationRejectsOutOfRangeRates) {
  sim::FaultPlan plan;
  EXPECT_NO_THROW(sim::validate(plan));
  plan.drop_rate = 1.5;
  EXPECT_THROW(sim::validate(plan), std::invalid_argument);
  plan.drop_rate = -0.1;
  EXPECT_THROW(sim::validate(plan), std::invalid_argument);
  plan.drop_rate = 0.0;
  plan.jitter_rate = 2.0;
  EXPECT_THROW(sim::validate(plan), std::invalid_argument);
}

TEST(FaultPlan, DescribeSummarizesKnobs) {
  EXPECT_EQ(sim::describe(sim::FaultPlan{}), "none");
  sim::FaultPlan plan;
  plan.skid_refs = 4;
  plan.drop_rate = 0.01;
  const std::string text = sim::describe(plan);
  EXPECT_NE(text.find("skid=4"), std::string::npos);
  EXPECT_NE(text.find("drop=0.01"), std::string::npos);
}

TEST(FaultPlan, NullPlanInstallsNoLayer) {
  sim::MachineConfig config;
  config.faults.seed = 1234;  // seed alone does not make a plan non-null
  sim::Machine clean(config);
  EXPECT_EQ(clean.fault_injector(), nullptr);

  config.faults.skid_refs = 1;
  sim::Machine faulted(config);
  ASSERT_NE(faulted.fault_injector(), nullptr);
  EXPECT_EQ(faulted.fault_injector()->plan().skid_refs, 1u);
}

// The acceptance bar for the whole layer: a plan whose knobs are all at
// their neutral values adds zero attribution error — the run is
// byte-identical to one with no fault layer configured at all.
TEST(FaultInjection, ZeroPerturbationPlanMatchesNoFaultRun) {
  const auto baseline =
      harness::run_experiment(small_sampler_config(), "tomcatv",
                              small_options());

  RunConfig faulted_config = small_sampler_config();
  faulted_config.machine.faults.seed = 99;  // different seed, neutral knobs
  const auto faulted =
      harness::run_experiment(faulted_config, "tomcatv", small_options());

  const harness::JsonExportOptions stable{.include_timing = false};
  EXPECT_EQ(harness::to_json(baseline, stable),
            harness::to_json(faulted, stable));
  EXPECT_EQ(faulted.fault_stats.interrupts_dropped, 0u);
  EXPECT_EQ(faulted.sampler_rearms, 0u);
}

/// Machine-level handler that records the application-ref clock at each
/// delivery.
class RefRecorder : public sim::InterruptHandler {
 public:
  void on_interrupt(sim::Machine& machine, sim::InterruptKind kind) override {
    if (kind == sim::InterruptKind::kMissOverflow) {
      deliveries.push_back(machine.stats().app_refs);
    }
  }
  std::vector<std::uint64_t> deliveries;
};

TEST(FaultInjection, SkidDefersDeliveryByExactlyKRefs) {
  sim::MachineConfig config;
  config.faults.skid_refs = 7;
  sim::Machine machine(config);
  RefRecorder recorder;
  machine.set_handler(&recorder);
  machine.arm_miss_overflow(1);

  // Cold, line-strided touches: every reference misses.
  for (unsigned i = 0; i < 32; ++i) {
    machine.touch(0x10'0000 + i * 4096);
  }

  // The overflow fires on the first miss (ref 1) but is delivered only
  // once seven further application references have retired.
  ASSERT_EQ(recorder.deliveries.size(), 1u);
  EXPECT_EQ(recorder.deliveries[0], 8u);
  ASSERT_NE(machine.fault_injector(), nullptr);
  EXPECT_EQ(machine.fault_injector()->stats().skid_events, 1u);
  EXPECT_EQ(machine.fault_injector()->stats().skid_refs, 7u);
  EXPECT_EQ(machine.stats().interrupts, 1u);
}

TEST(FaultInjection, DroppedOverflowIsNeverDelivered) {
  sim::MachineConfig config;
  config.faults.drop_rate = 1.0;  // drop every overflow, PRNG-free
  sim::Machine machine(config);
  RefRecorder recorder;
  machine.set_handler(&recorder);
  machine.arm_miss_overflow(1);

  for (unsigned i = 0; i < 16; ++i) {
    machine.touch(0x10'0000 + i * 4096);
  }

  EXPECT_TRUE(recorder.deliveries.empty());
  EXPECT_EQ(machine.stats().interrupts, 0u);
  ASSERT_NE(machine.fault_injector(), nullptr);
  // Only one drop: nothing re-armed the counter afterwards (that is the
  // sampler watchdog's job, tested below).
  EXPECT_EQ(machine.fault_injector()->stats().interrupts_dropped, 1u);
}

TEST(FaultInjection, SamplerWatchdogRearmsAfterDrops) {
  RunConfig config = small_sampler_config();
  config.machine.faults.drop_rate = 0.5;
  config.machine.faults.seed = 7;
  // run_experiment auto-hardens a faulted sampler (watchdog on, discard
  // on), so no explicit sampler tweaks are needed here.
  const auto result =
      harness::run_experiment(config, "tomcatv", small_options());

  EXPECT_GT(result.fault_stats.interrupts_dropped, 0u);
  EXPECT_GT(result.sampler_rearms, 0u);
  // Every drop is eventually recovered by a watchdog re-arm, so sampling
  // continues for the whole run and still produces samples.
  EXPECT_GT(result.samples, 0u);
  // Each drop is recovered by exactly one re-arm, except a drop in the
  // final watchdog window (the workload may finish before the timer).
  EXPECT_LE(result.sampler_rearms, result.fault_stats.interrupts_dropped);
  EXPECT_GE(result.sampler_rearms + 1,
            result.fault_stats.interrupts_dropped);
}

TEST(FaultInjection, ReprogramDelayHoldsOldConfiguration) {
  sim::FaultPlan plan;
  plan.reprogram_delay_misses = 3;
  sim::FaultInjector injector(plan);
  sim::PerfMonitor pmu(4);
  pmu.set_fault_injector(&injector);

  pmu.configure(0, 0x1000, 0x2000);
  EXPECT_FALSE(pmu.enabled(0));  // still in the latency window
  pmu.record_miss(0x1800);       // window: 3 -> 2 (not counted)
  pmu.record_miss(0x1800);       // 2 -> 1
  pmu.record_miss(0x1800);       // 1 -> 0, configuration applies
  EXPECT_TRUE(pmu.enabled(0));
  EXPECT_EQ(pmu.read(0), 0u);
  pmu.record_miss(0x1800);  // first counted miss
  EXPECT_EQ(pmu.read(0), 1u);
  EXPECT_EQ(injector.stats().reprograms_delayed, 1u);
}

TEST(FaultInjection, JitterAndSaturationPerturbReads) {
  sim::FaultPlan jitter_plan;
  jitter_plan.jitter_rate = 1.0;
  jitter_plan.jitter_magnitude = 5;
  sim::FaultInjector jitter(jitter_plan);
  const std::uint64_t value = jitter.perturb_read(100);
  EXPECT_GE(value, 95u);
  EXPECT_LE(value, 105u);
  EXPECT_EQ(jitter.stats().reads_jittered, 1u);

  sim::FaultPlan sat_plan;
  sat_plan.saturate_at = 50;
  sim::FaultInjector saturating(sat_plan);
  EXPECT_EQ(saturating.perturb_read(100), 50u);
  EXPECT_EQ(saturating.perturb_read(10), 10u);
  EXPECT_EQ(saturating.stats().reads_saturated, 1u);
}

TEST(FaultInjection, FaultedSweepIsDeterministicAcrossJobs) {
  RunConfig config = small_sampler_config();
  config.machine.faults.skid_refs = 3;
  config.machine.faults.drop_rate = 0.2;
  config.machine.faults.jitter_rate = 0.1;
  config.machine.faults.jitter_magnitude = 2;
  config.machine.faults.seed = 42;

  const auto specs = harness::cross_specs(
      {"tomcatv", "mgrid", "applu"}, {{"faulted", config}},
      [](const std::string&) { return small_options(); });

  harness::BatchRunner::Options serial;
  serial.jobs = 1;
  harness::BatchRunner::Options wide;
  wide.jobs = 4;
  const auto a = harness::BatchRunner(serial).run(specs);
  const auto b = harness::BatchRunner(wide).run(specs);

  // Compare per-item documents: the batch header legitimately differs in
  // its "jobs" field.
  const harness::JsonExportOptions stable{.include_timing = false};
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(harness::to_json(a.items[i], stable),
              harness::to_json(b.items[i], stable));
  }
  // The faults actually fired (this is not vacuous determinism).
  EXPECT_GT(a.items.at(0).result.fault_stats.interrupts_dropped, 0u);
}

TEST(FaultInjection, JitteredReadsOnWriteThroughHierarchyStayDeterministic) {
  // Fault-injected jittered counter reads on a multi-level machine whose
  // L1 is write-through/no-allocate: the faults must fire, the per-level
  // counters must be populated, and two identical runs must agree bit for
  // bit.  Jitter only perturbs PMU region-counter reads, so drive the
  // n-way search tool rather than the sampler.
  RunConfig config = small_sampler_config();
  config.tool = ToolKind::kSearch;
  sim::CacheConfig wt_l1;
  wt_l1.size_bytes = 8 * 1024;
  wt_l1.line_size = 64;
  wt_l1.associativity = 2;
  wt_l1.write_policy = sim::WritePolicy::kWriteThroughNoAllocate;
  config.machine.hierarchy.levels = {{"L1", wt_l1},
                                     {"LLC", config.machine.cache}};
  config.machine.faults.jitter_rate = 0.5;
  config.machine.faults.jitter_magnitude = 3;
  config.machine.faults.seed = 7;

  const auto a = harness::run_experiment(config, "tomcatv", small_options());
  const auto b = harness::run_experiment(config, "tomcatv", small_options());

  EXPECT_GT(a.fault_stats.reads_jittered, 0u);
  ASSERT_EQ(a.levels.size(), 2u);
  EXPECT_EQ(a.levels[0].name, "L1");
  EXPECT_EQ(a.levels[0].writebacks, 0u);  // write-through lines stay clean
  EXPECT_GT(a.levels[0].misses, a.levels[1].misses);

  EXPECT_EQ(a.fault_stats.reads_jittered, b.fault_stats.reads_jittered);
  EXPECT_EQ(a.stats.app_misses, b.stats.app_misses);
  const harness::JsonExportOptions stable{.include_timing = false};
  EXPECT_EQ(harness::to_json(a.estimated, stable),
            harness::to_json(b.estimated, stable));
}

TEST(FaultInjection, DiscardFilterIsNoOpOnCleanRuns) {
  const auto baseline =
      harness::run_experiment(small_sampler_config(), "mgrid",
                              small_options());

  RunConfig filtered = small_sampler_config();
  filtered.sampler.discard_out_of_range = true;
  const auto guarded =
      harness::run_experiment(filtered, "mgrid", small_options());

  // Every simulated miss address lies in the application span, so the
  // filter discards nothing and the estimate is unchanged.
  EXPECT_EQ(guarded.samples_discarded, 0u);
  const harness::JsonExportOptions stable{.include_timing = false};
  EXPECT_EQ(harness::to_json(baseline.estimated, stable),
            harness::to_json(guarded.estimated, stable));
  EXPECT_EQ(baseline.samples, guarded.samples);
}

}  // namespace
}  // namespace hpm
