// Tests for sim::MemoryHierarchy: the level-spec grammar and presets, the
// innermost-first walk, the configurable PMU observation level, and the
// compatibility contracts the refactor rests on — an explicit 1-level
// hierarchy is bit-identical to the implicit single-level machine, and a
// 2-level hierarchy observing the last level reproduces the old L1-filter
// behaviour exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/cycle_model.hpp"
#include "sim/machine.hpp"
#include "sim/memory_hierarchy.hpp"
#include "util/prng.hpp"

namespace hpm::sim {
namespace {

// -- Size and spec parsing ---------------------------------------------------

TEST(ParseSize, AcceptsPlainAndSuffixedSizes) {
  EXPECT_EQ(parse_size_bytes("12345"), 12345u);
  EXPECT_EQ(parse_size_bytes("32k"), 32u * 1024);
  EXPECT_EQ(parse_size_bytes("32K"), 32u * 1024);
  EXPECT_EQ(parse_size_bytes("2m"), 2u * 1024 * 1024);
  EXPECT_EQ(parse_size_bytes("1g"), 1ull * 1024 * 1024 * 1024);
}

TEST(ParseSize, RejectsMalformedSizes) {
  EXPECT_THROW((void)parse_size_bytes(""), std::invalid_argument);
  EXPECT_THROW((void)parse_size_bytes("k"), std::invalid_argument);
  EXPECT_THROW((void)parse_size_bytes("32q"), std::invalid_argument);
  EXPECT_THROW((void)parse_size_bytes("3.5k"), std::invalid_argument);
  EXPECT_THROW((void)parse_size_bytes("32kb"), std::invalid_argument);
}

TEST(ParseHierarchySpec, FullSpecFromTheIssue) {
  const auto config =
      parse_hierarchy_spec("L1:32k:64:2,L2:256k:64:8,LLC:2m:64:8");
  ASSERT_EQ(config.levels.size(), 3u);
  EXPECT_EQ(config.levels[0].name, "L1");
  EXPECT_EQ(config.levels[0].cache.size_bytes, 32u * 1024);
  EXPECT_EQ(config.levels[0].cache.associativity, 2u);
  EXPECT_EQ(config.levels[1].name, "L2");
  EXPECT_EQ(config.levels[1].cache.size_bytes, 256u * 1024);
  EXPECT_EQ(config.levels[2].name, "LLC");
  EXPECT_EQ(config.levels[2].cache.size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(config.levels[2].cache.line_size, 64u);
  EXPECT_EQ(config.observe_level, kObserveLast);
}

TEST(ParseHierarchySpec, LineAndAssociativityDefault) {
  const auto config = parse_hierarchy_spec("L1:8k");
  ASSERT_EQ(config.levels.size(), 1u);
  EXPECT_EQ(config.levels[0].cache.line_size, 64u);
  EXPECT_EQ(config.levels[0].cache.associativity, 8u);
}

TEST(ParseHierarchySpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_hierarchy_spec(""), std::invalid_argument);
  EXPECT_THROW((void)parse_hierarchy_spec("L1"), std::invalid_argument);
  EXPECT_THROW((void)parse_hierarchy_spec(":32k"), std::invalid_argument);
  EXPECT_THROW((void)parse_hierarchy_spec("L1:32k:64:2:9"),
               std::invalid_argument);
  // Geometry that is not a power of two fails at parse time, not run time.
  EXPECT_THROW((void)parse_hierarchy_spec("L1:3000"), std::invalid_argument);
}

TEST(HierarchyPresets, KnownPresetsResolve) {
  HierarchyConfig config;
  ASSERT_TRUE(hierarchy_preset("paper", config));
  ASSERT_EQ(config.levels.size(), 1u);
  EXPECT_EQ(config.levels[0].cache.size_bytes, 2u * 1024 * 1024);

  ASSERT_TRUE(hierarchy_preset("single", config));
  EXPECT_EQ(config.levels.size(), 1u);

  ASSERT_TRUE(hierarchy_preset("2level", config));
  ASSERT_EQ(config.levels.size(), 2u);
  EXPECT_EQ(config.levels[0].cache.size_bytes, 32u * 1024);
  EXPECT_EQ(config.levels[1].cache.size_bytes, 2u * 1024 * 1024);

  ASSERT_TRUE(hierarchy_preset("3level", config));
  ASSERT_EQ(config.levels.size(), 3u);
  EXPECT_EQ(config.levels[1].cache.size_bytes, 256u * 1024);

  EXPECT_FALSE(hierarchy_preset("4level", config));
  EXPECT_FALSE(hierarchy_preset("", config));
}

TEST(ResolveLevels, EmptyConfigFallsBackToSingleLevel) {
  CacheConfig fallback;
  fallback.size_bytes = 128 * 1024;
  const auto levels = resolve_levels(HierarchyConfig{}, fallback);
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0].name, "L1");
  EXPECT_EQ(levels[0].cache.size_bytes, 128u * 1024);
}

TEST(ResolveLevels, EmptyNamesGetPositionalDefaults) {
  HierarchyConfig config;
  config.levels.resize(2);
  config.levels[0].cache.size_bytes = 8 * 1024;
  const auto levels = resolve_levels(config, CacheConfig{});
  EXPECT_EQ(levels[0].name, "L1");
  EXPECT_EQ(levels[1].name, "L2");
}

TEST(ResolveObserveLevel, SentinelMeansLastLevel) {
  HierarchyConfig config;
  EXPECT_EQ(resolve_observe_level(config, 3), 2u);
  config.observe_level = 0;
  EXPECT_EQ(resolve_observe_level(config, 3), 0u);
}

// -- Construction validation -------------------------------------------------

TEST(MemoryHierarchyValidation, RejectsBadConfigurations) {
  EXPECT_THROW(MemoryHierarchy({}, kObserveLast), std::invalid_argument);

  LevelConfig level;
  level.name = "L1";
  level.cache.size_bytes = 8 * 1024;
  EXPECT_THROW(MemoryHierarchy({level}, 1), std::invalid_argument);
  EXPECT_THROW(MemoryHierarchy({level, level}, kObserveLast),
               std::invalid_argument);

  LevelConfig bad = level;
  bad.cache.size_bytes = 3000;  // not a power of two
  EXPECT_THROW(MemoryHierarchy({bad}, kObserveLast), std::invalid_argument);
}

// -- Walk semantics ----------------------------------------------------------

MemoryHierarchy three_level() {
  LevelConfig l1{"L1", {}};
  l1.cache.size_bytes = 4 * 1024;
  l1.cache.associativity = 2;
  LevelConfig l2{"L2", {}};
  l2.cache.size_bytes = 32 * 1024;
  LevelConfig llc{"LLC", {}};
  llc.cache.size_bytes = 256 * 1024;
  return MemoryHierarchy({l1, l2, llc}, kObserveLast);
}

TEST(MemoryHierarchyWalk, ColdMissFillsEveryLevelOnThePath) {
  auto hierarchy = three_level();
  const auto cold = hierarchy.access(0x1000, /*write=*/false);
  EXPECT_EQ(cold.hit_level, MemoryHierarchy::kMissedAll);
  EXPECT_TRUE(cold.observed_miss);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hierarchy.level(i).accesses(), 1u);
    EXPECT_EQ(hierarchy.level(i).misses(), 1u);
    EXPECT_TRUE(hierarchy.level(i).probe(0x1000));
  }

  // The re-reference hits innermost and never reaches the outer levels.
  const auto warm = hierarchy.access(0x1000, /*write=*/false);
  EXPECT_EQ(warm.hit_level, 0u);
  EXPECT_FALSE(warm.observed_miss);
  EXPECT_EQ(hierarchy.level(0).accesses(), 2u);
  EXPECT_EQ(hierarchy.level(1).accesses(), 1u);
  EXPECT_EQ(hierarchy.level(2).accesses(), 1u);
}

TEST(MemoryHierarchyWalk, InnerEvictionCanStillHitOuterLevels) {
  auto hierarchy = three_level();
  // Fill one L1 set (2 ways, 4 KB / 64 B / 2 = 32 sets) past capacity:
  // three lines mapping to the same set evict the first from L1 while the
  // 32 KB L2 keeps all of them.
  const Addr stride = 32 * 64;  // one L1 set apart
  hierarchy.access(0 * stride, false);
  hierarchy.access(1 * stride, false);
  hierarchy.access(2 * stride, false);
  const auto outcome = hierarchy.access(0, false);
  EXPECT_EQ(outcome.hit_level, 1u);  // evicted from L1, resident in L2
  EXPECT_FALSE(outcome.observed_miss);
}

TEST(MemoryHierarchyWalk, SnapshotReportsGeometryAndCounters) {
  auto hierarchy = three_level();
  hierarchy.access(0, false);
  hierarchy.access(0, false);
  const auto levels = hierarchy.snapshot();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].name, "L1");
  EXPECT_EQ(levels[0].size_bytes, 4u * 1024);
  EXPECT_EQ(levels[0].associativity, 2u);
  EXPECT_EQ(levels[0].accesses, 2u);
  EXPECT_EQ(levels[0].hits, 1u);
  EXPECT_EQ(levels[0].misses, 1u);
  EXPECT_EQ(levels[0].resident_lines, 1u);
  EXPECT_DOUBLE_EQ(levels[0].miss_rate(), 0.5);
  EXPECT_EQ(levels[2].name, "LLC");
  EXPECT_EQ(levels[2].accesses, 1u);
}

TEST(MemoryHierarchyWalk, FlushInvalidatesEveryLevel) {
  auto hierarchy = three_level();
  hierarchy.access(0, false);
  hierarchy.flush();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(hierarchy.level(i).probe(0));
    EXPECT_EQ(hierarchy.level(i).resident_lines(), 0u);
  }
}

// -- Observation level -------------------------------------------------------

TEST(ObservationLevel, ObservingTheInnermostLevelCountsItsMisses) {
  MachineConfig config;
  CacheConfig l1;
  l1.size_bytes = 8 * 1024;
  l1.associativity = 2;
  CacheConfig llc;
  llc.size_bytes = 256 * 1024;
  config.hierarchy.levels = {{"L1", l1}, {"LLC", llc}};
  config.hierarchy.observe_level = 0;
  Machine machine(config);

  const Addr a = machine.address_space().define_static("a", 64 * 1024);
  // Two sweeps over 64 KB: every line misses the 8 KB L1 both times, so
  // the PMU observing level 0 sees 2x the line count.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (Addr off = 0; off < 64 * 1024; off += 64) machine.touch(a + off);
  }
  const std::uint64_t lines = 64 * 1024 / 64;
  EXPECT_EQ(machine.stats().app_misses, 2 * lines);
  EXPECT_EQ(machine.pmu().global_misses(), 2 * lines);
  // Nothing hits below the observed level, so no filtered hits.
  EXPECT_EQ(machine.stats().filtered_hits, 0u);
  // The outer level stayed warm behind the observation point: the second
  // sweep hit the 256 KB LLC on every reference.
  EXPECT_EQ(machine.hierarchy().level(1).misses(), lines);
  EXPECT_EQ(machine.hierarchy().level(1).hits(), lines);
}

TEST(ObservationLevel, ObservingTheLastLevelReproducesTheL1Filter) {
  // The historical MachineConfig::l1 filter: hits below the measured cache
  // count as filtered_hits, PMU sees only last-level misses.
  MachineConfig config;
  CacheConfig l1;
  l1.size_bytes = 8 * 1024;
  l1.associativity = 2;
  CacheConfig measured;
  measured.size_bytes = 256 * 1024;
  config.hierarchy.levels = {{"L1", l1}, {"L2", measured}};
  Machine machine(config);

  const Addr a = machine.address_space().define_static("a", 4096);
  machine.touch(a);       // misses both levels
  machine.touch(a + 8);   // L1 hit
  machine.touch(a + 16);  // L1 hit
  EXPECT_EQ(machine.stats().app_misses, 1u);
  EXPECT_EQ(machine.stats().filtered_hits, 2u);
  EXPECT_EQ(machine.pmu().global_misses(), 1u);
}

// -- Single-level identity ---------------------------------------------------

TEST(SingleLevelIdentity, ExplicitOneLevelHierarchyMatchesImplicitMachine) {
  const auto run = [](bool explicit_hierarchy) {
    MachineConfig config;
    config.cache.size_bytes = 64 * 1024;
    if (explicit_hierarchy) {
      config.hierarchy.levels = {{"L1", config.cache}};
    }
    Machine machine(config);
    const Addr a = machine.address_space().define_static("a", 256 * 1024);
    for (int sweep = 0; sweep < 3; ++sweep) {
      for (Addr off = 0; off < 256 * 1024; off += 32) {
        machine.touch(a + off, /*write=*/(off % 128) == 0);
      }
    }
    return machine.stats();
  };
  const MachineStats implicit_stats = run(false);
  const MachineStats explicit_stats = run(true);
  EXPECT_EQ(implicit_stats.app_refs, explicit_stats.app_refs);
  EXPECT_EQ(implicit_stats.app_misses, explicit_stats.app_misses);
  EXPECT_EQ(implicit_stats.app_cycles, explicit_stats.app_cycles);
  EXPECT_EQ(implicit_stats.filtered_hits, explicit_stats.filtered_hits);
  EXPECT_EQ(implicit_stats.interrupts, explicit_stats.interrupts);
}

// -- Per-level cycle costs ---------------------------------------------------

TEST(CycleModelHierarchy, DefaultCostsReproduceTheOldModel) {
  CycleModel cycles;
  // Single level: a hit at the only (= last) level costs cpi + hit_extra;
  // a full miss costs cpi + miss_penalty.  Matches the old ref_cost.
  EXPECT_EQ(cycles.hierarchy_ref_cost(0, 1),
            cycles.cycles_per_instruction + cycles.cache_hit_extra);
  EXPECT_EQ(cycles.hierarchy_ref_cost(MemoryHierarchy::kMissedAll, 1),
            cycles.cycles_per_instruction + cycles.cache_miss_penalty);
  // Two levels: the old L1-filter model — an L1 hit costs bare cpi.
  EXPECT_EQ(cycles.hierarchy_ref_cost(0, 2), cycles.cycles_per_instruction);
  EXPECT_EQ(cycles.hierarchy_ref_cost(1, 2),
            cycles.cycles_per_instruction + cycles.cache_hit_extra);
}

TEST(CycleModelHierarchy, PerLevelHitExtrasOverrideTheDefaults) {
  CycleModel cycles;
  cycles.level_hit_extra = {0, 4, 12};
  EXPECT_EQ(cycles.hierarchy_ref_cost(0, 3), cycles.cycles_per_instruction);
  EXPECT_EQ(cycles.hierarchy_ref_cost(1, 3),
            cycles.cycles_per_instruction + 4);
  EXPECT_EQ(cycles.hierarchy_ref_cost(2, 3),
            cycles.cycles_per_instruction + 12);
  EXPECT_EQ(cycles.hierarchy_ref_cost(MemoryHierarchy::kMissedAll, 3),
            cycles.cycles_per_instruction + cycles.cache_miss_penalty);
}

// -- Canonical formatting (the calibration search keys its dedup on it) ------

TEST(FormatSize, RendersTheShortestSuffixedToken) {
  EXPECT_EQ(format_size_bytes(32 * 1024), "32k");
  EXPECT_EQ(format_size_bytes(2 * 1024 * 1024), "2m");
  EXPECT_EQ(format_size_bytes(1ull * 1024 * 1024 * 1024), "1g");
  EXPECT_EQ(format_size_bytes(12345), "12345");   // not a whole multiple
  EXPECT_EQ(format_size_bytes(1536), "1536");     // 1.5k stays decimal
}

TEST(FormatHierarchySpec, RoundTripsThroughTheParser) {
  for (const char* spec :
       {"L1:32k:64:2,L2:256k:64:8,LLC:2m:64:8", "LLC:2m:64:8",
        "L1:16k:32:1,LLC:1m:32:4"}) {
    const HierarchyConfig config = parse_hierarchy_spec(spec);
    EXPECT_EQ(format_hierarchy_spec(config), spec);
    // Reparse of the canonical form is geometry-identical.
    const HierarchyConfig again =
        parse_hierarchy_spec(format_hierarchy_spec(config));
    EXPECT_EQ(format_hierarchy_spec(again), format_hierarchy_spec(config));
  }
}

TEST(FormatHierarchySpec, PresetsAndAliasesFormatIdentically) {
  HierarchyConfig paper;
  HierarchyConfig single;
  ASSERT_TRUE(hierarchy_preset("paper", paper));
  ASSERT_TRUE(hierarchy_preset("single", single));
  EXPECT_EQ(format_hierarchy_spec(paper), format_hierarchy_spec(single));
  EXPECT_EQ(format_hierarchy_spec(paper), "LLC:2m:64:8");

  const auto& names = hierarchy_preset_names();
  EXPECT_EQ(names, (std::vector<std::string>{"paper", "2level", "3level"}));
  for (const auto& name : names) {
    HierarchyConfig config;
    EXPECT_TRUE(hierarchy_preset(name, config)) << name;
  }
}

// -- Randomized differential: 1-level hierarchy == bare Cache ----------------

TEST(HierarchyDifferential, OneLevelHierarchyIsCounterIdenticalToBareCache) {
  struct Geometry {
    std::uint64_t size;
    std::uint32_t line;
    std::uint32_t assoc;
  };
  for (const Geometry g : {Geometry{32 * 1024, 64, 2},
                           Geometry{128 * 1024, 32, 8},
                           Geometry{64 * 1024, 64, 1}}) {
    for (const std::uint64_t seed : {7ull, 1234ull, 0xabcdefull}) {
      CacheConfig config;
      config.size_bytes = g.size;
      config.line_size = g.line;
      config.associativity = g.assoc;

      Cache bare(config);
      MemoryHierarchy one({{"L1", config}}, 0);
      util::Xoshiro256 rng(seed);
      for (int i = 0; i < 20'000; ++i) {
        // Mix sequential and random traffic over ~4x the cache size so
        // the stream has both reuse and capacity misses.
        const Addr addr = rng.next_below(2) == 0
                              ? static_cast<Addr>(i) * g.line
                              : static_cast<Addr>(rng.next_below(4 * g.size));
        const bool write = rng.next_below(4) == 0;
        const bool bare_hit = bare.access(addr, write).hit;
        const auto outcome = one.access(addr, write);
        ASSERT_EQ(outcome.hit_level == 0, bare_hit) << "ref " << i;
        ASSERT_EQ(outcome.observed_miss, !bare_hit) << "ref " << i;
      }
      const Cache& observed = one.observed_cache();
      EXPECT_EQ(observed.accesses(), bare.accesses());
      EXPECT_EQ(observed.hits(), bare.hits());
      EXPECT_EQ(observed.misses(), bare.misses());
      EXPECT_EQ(observed.writebacks(), bare.writebacks());
      EXPECT_EQ(observed.resident_lines(), bare.resident_lines());
    }
  }
}

// -- Writeback accounting under mixed write-through / write-back stacks ------

// Every WT/WB combination over a 3-level stack, driven by a seeded random
// mix of sequential and random reads/writes.  Per-level conservation:
// a write-through level never holds dirty lines so it can never write
// back; a write-back level evicts (and hence writes back) only on an
// allocating miss; and the walk never injects writeback traffic into the
// next level, so inter-level accesses reconcile with misses exactly.
TEST(HierarchyWritebacks, MixedPolicyStacksConserveWritebacksPerLevel) {
  for (int mask = 0; mask < 8; ++mask) {
    const std::uint64_t sizes[3] = {1024, 4096, 32768};
    std::vector<LevelConfig> levels;
    for (int i = 0; i < 3; ++i) {
      CacheConfig config;
      config.size_bytes = sizes[i];
      config.line_size = 64;
      config.associativity = 2;
      config.write_policy = ((mask >> i) & 1) != 0
                                ? WritePolicy::kWriteThroughNoAllocate
                                : WritePolicy::kWriteBackAllocate;
      levels.push_back({"L" + std::to_string(i + 1), config});
    }
    MemoryHierarchy hierarchy(levels, kObserveLast);
    util::Xoshiro256 rng(0x5eedull + static_cast<std::uint64_t>(mask));
    const int kRefs = 20'000;
    for (int i = 0; i < kRefs; ++i) {
      const Addr addr =
          rng.next_below(2) == 0
              ? static_cast<Addr>(i) * 64
              : static_cast<Addr>(rng.next_below(8 * sizes[2]));
      hierarchy.access(addr, rng.next_below(3) == 0);
    }
    const auto snapshot = hierarchy.snapshot();
    ASSERT_EQ(snapshot.size(), 3u);
    EXPECT_EQ(snapshot[0].accesses, static_cast<std::uint64_t>(kRefs))
        << "mask " << mask;
    for (int i = 0; i < 3; ++i) {
      const auto& level = snapshot[i];
      EXPECT_EQ(level.accesses, level.hits + level.misses)
          << "mask " << mask << " level " << i;
      if (((mask >> i) & 1) != 0) {
        EXPECT_EQ(level.writebacks, 0u)
            << "write-through level " << i << " wrote back (mask " << mask
            << ")";
      } else {
        EXPECT_LE(level.writebacks, level.misses)
            << "mask " << mask << " level " << i;
      }
      if (i > 0) {
        EXPECT_EQ(level.accesses, snapshot[i - 1].misses)
            << "mask " << mask << " level " << i;
      }
    }
  }
}

// The multi-core variant: mixed-policy private stacks (write-back L1 in
// front of a write-through L2) under a shared write-back LLC.  The same
// per-level conservation holds on the aggregated snapshot, the
// write-through private level can never be the source of a *forced*
// (coherence-induced) writeback either, and shared-level traffic still
// reconciles with private-outer misses plus upgrades.
TEST(HierarchyWritebacks, MixedPolicyPrivateStacksConserveUnderCoherence) {
  std::vector<LevelConfig> levels;
  CacheConfig l1;
  l1.size_bytes = 1024;
  l1.line_size = 64;
  l1.associativity = 2;
  levels.push_back({"L1", l1});
  CacheConfig l2 = l1;
  l2.size_bytes = 4096;
  l2.write_policy = WritePolicy::kWriteThroughNoAllocate;
  levels.push_back({"L2", l2});
  CacheConfig llc = l1;
  llc.size_bytes = 32768;
  llc.associativity = 4;
  levels.push_back({"LLC", llc});

  const unsigned kCores = 4;
  MemoryHierarchy hierarchy(levels, kObserveLast, kCores);
  util::Xoshiro256 rng(0xc0ffee);
  // 96 shared lines: hot enough that invalidations and forced writebacks
  // actually fire.
  for (int i = 0; i < 30'000; ++i) {
    const unsigned core = static_cast<unsigned>(rng.next_below(kCores));
    const Addr addr = 0x4000 + 64 * static_cast<Addr>(rng.next_below(96));
    hierarchy.access_mc(core, addr, rng.next_below(3) == 0);
  }

  const auto snapshot = hierarchy.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // L2 is write-through: no capacity writebacks and no forced writebacks.
  EXPECT_EQ(snapshot[1].writebacks, 0u);
  EXPECT_EQ(hierarchy.coherence_stats()[1].forced_writebacks, 0u);
  // L1 is write-back: capacity writebacks bounded by allocating misses.
  EXPECT_LE(snapshot[0].writebacks, snapshot[0].misses);
  EXPECT_GT(hierarchy.coherence_stats()[0].forced_writebacks, 0u)
      << "contended write-back L1 should force dirty lines out";
  // Private-chain conservation per core, and shared-level reconciliation
  // including the upgrade bus transactions.
  std::uint64_t outer_private_misses = 0;
  for (unsigned core = 0; core < kCores; ++core) {
    const auto per_core = hierarchy.core_snapshot(core);
    EXPECT_EQ(per_core[1].accesses, per_core[0].misses) << "core " << core;
    outer_private_misses += per_core[1].misses;
  }
  std::uint64_t upgrades = 0;
  for (const auto& level : hierarchy.coherence_stats()) {
    upgrades += level.upgrades;
  }
  EXPECT_EQ(snapshot[2].accesses, outer_private_misses + upgrades);
}

}  // namespace
}  // namespace hpm::sim
