// Tests for the multi-core machine: the MESI-style directory in
// MemoryHierarchy (invalidations, upgrades, forced writebacks, sharing
// transitions), its conservation invariants under randomized differential
// sweeps, the per-core stats mirrors, and end-to-end per-object coherence
// attribution on the sharing kernels (false_sharing must pin nearly all
// coherence traffic on SHARED_SLOTS).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "sim/machine.hpp"
#include "sim/memory_hierarchy.hpp"
#include "util/prng.hpp"
#include "workloads/workload.hpp"

namespace hpm {
namespace {

using sim::CoherenceStats;
using sim::MemoryHierarchy;

MemoryHierarchy make_hierarchy(unsigned cores, const std::string& spec,
                               std::size_t shared_levels = 1) {
  const sim::HierarchyConfig config = sim::parse_hierarchy_spec(spec);
  return MemoryHierarchy(sim::resolve_levels(config, sim::CacheConfig{}),
                         sim::kObserveLast, cores, shared_levels);
}

std::uint64_t total_upgrades(const MemoryHierarchy& hier) {
  std::uint64_t upgrades = 0;
  for (const CoherenceStats& level : hier.coherence_stats()) {
    upgrades += level.upgrades;
  }
  return upgrades;
}

/// The two core invariants of the coherence plane: every invalidation sent
/// was received at the same level, and every access the first shared level
/// saw was either a full private miss or an upgrade transaction.
void expect_conserved(const MemoryHierarchy& hier) {
  const auto& coh = hier.coherence_stats();
  for (std::size_t i = 0; i < coh.size(); ++i) {
    EXPECT_EQ(coh[i].invalidations_sent, coh[i].invalidations_received)
        << "level " << i;
  }
  const std::size_t outer_private = hier.first_shared_level() - 1;
  std::uint64_t private_outer_misses = 0;
  for (unsigned c = 0; c < hier.num_cores(); ++c) {
    private_outer_misses +=
        hier.core_snapshot(c)[outer_private].misses;
  }
  const std::uint64_t shared_accesses =
      hier.snapshot()[hier.first_shared_level()].accesses;
  EXPECT_EQ(shared_accesses, private_outer_misses + total_upgrades(hier));
}

// -- Directory unit tests -----------------------------------------------------

TEST(CoherenceDirectory, WriteInvalidatesRemoteCopiesAndUpgrades) {
  MemoryHierarchy hier = make_hierarchy(2, "L1:1k:64:2,LLC:16k:64:4");
  const sim::Addr addr = 0x1000;

  (void)hier.access_mc(0, addr, /*write=*/false);  // core 0 pulls the line
  (void)hier.access_mc(1, addr, /*write=*/false);  // core 1 shares it
  const auto& coh = hier.coherence_stats();
  EXPECT_EQ(coh[0].sharing_transitions, 1u);
  EXPECT_EQ(coh[0].invalidations_sent, 0u);

  (void)hier.access_mc(1, addr, /*write=*/true);  // upgrade + invalidate
  EXPECT_EQ(coh[0].upgrades, 1u);
  EXPECT_EQ(coh[0].invalidations_sent, 1u);
  EXPECT_EQ(coh[0].invalidations_received, 1u);
  EXPECT_EQ(coh[0].forced_writebacks, 0u);  // core 0's copy was clean

  // Core 0's private copy is gone; core 1 still hits locally.
  EXPECT_FALSE(hier.private_level(0, 0).probe(addr));
  EXPECT_TRUE(hier.private_level(1, 0).probe(addr));
  expect_conserved(hier);
}

TEST(CoherenceDirectory, ReadOfRemoteModifiedForcesWriteback) {
  MemoryHierarchy hier = make_hierarchy(2, "L1:1k:64:2,LLC:16k:64:4");
  const sim::Addr addr = 0x2000;

  (void)hier.access_mc(0, addr, /*write=*/true);   // core 0: Modified
  (void)hier.access_mc(1, addr, /*write=*/false);  // core 1 reads it
  const auto& coh = hier.coherence_stats();
  EXPECT_EQ(coh[0].forced_writebacks, 1u);
  EXPECT_EQ(coh[0].sharing_transitions, 1u);
  // The owner's copy survives the downgrade, now clean.
  EXPECT_TRUE(hier.private_level(0, 0).probe(addr));

  // A later write by core 1 invalidates the (clean) remote copy without a
  // second forced writeback.
  (void)hier.access_mc(1, addr, /*write=*/true);
  EXPECT_EQ(coh[0].invalidations_received, 1u);
  EXPECT_EQ(coh[0].forced_writebacks, 1u);
  expect_conserved(hier);
}

TEST(CoherenceDirectory, DisjointWorkingSetsProduceNoEvents) {
  MemoryHierarchy hier = make_hierarchy(4, "L1:1k:64:2,LLC:32k:64:4");
  for (unsigned c = 0; c < 4; ++c) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      const sim::Addr addr = 0x10000 * (c + 1) + i * 64;
      (void)hier.access_mc(c, addr, /*write=*/(i % 2) == 0);
      (void)hier.access_mc(c, addr, /*write=*/true);
    }
  }
  for (const CoherenceStats& level : hier.coherence_stats()) {
    EXPECT_EQ(level.total(), 0u);
    EXPECT_EQ(level.invalidations_sent, 0u);
  }
  expect_conserved(hier);
}

// -- Conservation under randomized sweeps ------------------------------------

TEST(CoherenceConservation, RandomSweepInvariants) {
  const std::vector<std::string> specs = {
      "L1:1k:64:2,LLC:16k:64:4",          // one private level
      "L1:1k:64:2,L2:4k:64:4,LLC:32k:64:4"  // two private levels
  };
  for (const std::string& spec : specs) {
    for (unsigned cores : {2u, 3u, 4u}) {
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        MemoryHierarchy hier = make_hierarchy(cores, spec);
        util::Xoshiro256 rng(seed);
        // A small line pool so cores collide constantly — the hostile case
        // for directory bookkeeping.
        constexpr std::uint64_t kLines = 96;
        for (int op = 0; op < 20'000; ++op) {
          const unsigned core =
              static_cast<unsigned>(rng.next_below(cores));
          const sim::Addr addr = 0x4000 + rng.next_below(kLines) * 64;
          const bool write = rng.next_below(3) == 0;
          (void)hier.access_mc(core, addr, write);
        }
        SCOPED_TRACE(spec + " cores=" + std::to_string(cores) +
                     " seed=" + std::to_string(seed));
        expect_conserved(hier);
        EXPECT_GT(total_upgrades(hier) +
                      hier.coherence_stats()[0].invalidations_sent,
                  0u);
      }
    }
  }
}

TEST(CoherenceConservation, WriteThroughPrivateStackNeverForcesWritebacks) {
  // A write-through private level never holds Modified data, so the
  // directory must never mark an owner dirty and no snoop can force a
  // writeback — while invalidations and upgrades still flow.
  sim::LevelConfig l1;
  l1.name = "L1";
  l1.cache.size_bytes = 1024;
  l1.cache.associativity = 2;
  l1.cache.write_policy = sim::WritePolicy::kWriteThroughNoAllocate;
  sim::LevelConfig llc;
  llc.name = "LLC";
  llc.cache.size_bytes = 16 * 1024;
  llc.cache.associativity = 4;
  MemoryHierarchy hier({l1, llc}, sim::kObserveLast, 2, 1);

  util::Xoshiro256 rng(7);
  for (int op = 0; op < 10'000; ++op) {
    const unsigned core = static_cast<unsigned>(rng.next_below(2));
    const sim::Addr addr = 0x8000 + rng.next_below(48) * 64;
    (void)hier.access_mc(core, addr, rng.next_below(2) == 0);
  }
  const auto& coh = hier.coherence_stats();
  EXPECT_EQ(coh[0].forced_writebacks, 0u);
  EXPECT_EQ(coh[0].invalidations_sent, coh[0].invalidations_received);
  expect_conserved(hier);
}

// -- Machine-level multi-core behaviour ---------------------------------------

harness::RunConfig sharing_run(unsigned cores) {
  harness::RunConfig config;
  config.machine.hierarchy = sim::parse_hierarchy_spec("L1:1k:64:2,LLC:16k:64:4");
  config.machine.cores = cores;
  config.tool = harness::ToolKind::kSampler;
  config.sampler.period = 64;
  config.sampler.coherence_period = 31;
  return config;
}

workloads::WorkloadOptions sharing_options() {
  workloads::WorkloadOptions options;
  options.scale = 0.02;
  options.iterations = 300;
  return options;
}

TEST(MulticoreMachine, PerCoreStatsSumToAggregate) {
  const harness::RunConfig config = sharing_run(4);
  const harness::RunResult result =
      run_experiment(config, "false_sharing", sharing_options());
  ASSERT_EQ(result.core_stats.size(), 4u);
  sim::MachineStats sum{};
  for (const sim::MachineStats& core : result.core_stats) {
    sum.app_instructions += core.app_instructions;
    sum.app_refs += core.app_refs;
    sum.app_misses += core.app_misses;
    sum.filtered_hits += core.filtered_hits;
    sum.tool_refs += core.tool_refs;
    sum.tool_misses += core.tool_misses;
    sum.app_cycles += core.app_cycles;
    sum.tool_cycles += core.tool_cycles;
    sum.interrupts += core.interrupts;
  }
  EXPECT_EQ(sum.app_instructions, result.stats.app_instructions);
  EXPECT_EQ(sum.app_refs, result.stats.app_refs);
  EXPECT_EQ(sum.app_misses, result.stats.app_misses);
  EXPECT_EQ(sum.filtered_hits, result.stats.filtered_hits);
  EXPECT_EQ(sum.tool_refs, result.stats.tool_refs);
  EXPECT_EQ(sum.tool_misses, result.stats.tool_misses);
  EXPECT_EQ(sum.app_cycles, result.stats.app_cycles);
  EXPECT_EQ(sum.tool_cycles, result.stats.tool_cycles);
  EXPECT_EQ(sum.interrupts, result.stats.interrupts);
}

TEST(MulticoreMachine, DeterministicAcrossRuns) {
  const harness::RunConfig config = sharing_run(4);
  const harness::RunResult a =
      run_experiment(config, "false_sharing", sharing_options());
  const harness::RunResult b =
      run_experiment(config, "false_sharing", sharing_options());
  EXPECT_EQ(a.stats.app_refs, b.stats.app_refs);
  EXPECT_EQ(a.stats.app_misses, b.stats.app_misses);
  EXPECT_EQ(a.stats.tool_cycles, b.stats.tool_cycles);
  EXPECT_EQ(a.stats.interrupts, b.stats.interrupts);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.coherence_samples, b.coherence_samples);
  ASSERT_EQ(a.coherence.size(), b.coherence.size());
  for (std::size_t i = 0; i < a.coherence.size(); ++i) {
    EXPECT_EQ(a.coherence[i].invalidations_sent,
              b.coherence[i].invalidations_sent);
    EXPECT_EQ(a.coherence[i].upgrades, b.coherence[i].upgrades);
    EXPECT_EQ(a.coherence[i].sharing_transitions,
              b.coherence[i].sharing_transitions);
    EXPECT_EQ(a.coherence[i].forced_writebacks,
              b.coherence[i].forced_writebacks);
  }
  ASSERT_EQ(a.estimated.size(), b.estimated.size());
  for (std::size_t i = 0; i < a.estimated.size(); ++i) {
    EXPECT_EQ(a.estimated.rows()[i].name, b.estimated.rows()[i].name);
    EXPECT_EQ(a.estimated.rows()[i].count, b.estimated.rows()[i].count);
  }
}

TEST(MulticoreMachine, SingleCoreHasNoCoherencePlane) {
  harness::RunConfig config = sharing_run(1);
  config.sampler.coherence_period = 0;  // the multi-core default must not kick in
  const harness::RunResult result =
      run_experiment(config, "synthetic", sharing_options());
  EXPECT_TRUE(result.core_stats.empty());
  EXPECT_TRUE(result.core_samples.empty());
  EXPECT_TRUE(result.coherence.empty());
  EXPECT_TRUE(result.coherence_actual.empty());
  EXPECT_TRUE(result.coherence_estimated.empty());
  EXPECT_EQ(result.coherence_samples, 0u);
  EXPECT_EQ(result.coherence_events, 0u);
}

TEST(MulticoreMachine, RunLevelsReconcileWithCoherence) {
  const harness::RunConfig config = sharing_run(4);
  const harness::RunResult result =
      run_experiment(config, "false_sharing", sharing_options());
  ASSERT_EQ(result.levels.size(), 2u);
  ASSERT_EQ(result.coherence.size(), 2u);
  EXPECT_EQ(result.coherence[0].invalidations_sent,
            result.coherence[0].invalidations_received);
  EXPECT_GT(result.coherence[0].invalidations_sent, 0u);
  // Shared-level accesses == private misses + upgrade transactions.
  EXPECT_EQ(result.levels[1].accesses,
            result.levels[0].misses + result.coherence[0].upgrades);
  // Shared levels carry no coherence counters of their own.
  EXPECT_EQ(result.coherence[1].total(), 0u);
}

// -- Per-object coherence attribution -----------------------------------------

TEST(FalseSharingAttribution, ContendedObjectDominatesCoherenceEvents) {
  const harness::RunConfig config = sharing_run(4);
  const harness::RunResult result =
      run_experiment(config, "false_sharing", sharing_options());

  ASSERT_GT(result.coherence_events, 0u);
  ASSERT_GT(result.coherence_samples, 50u);
  ASSERT_GT(result.samples, 0u);

  // Ground truth: virtually every coherence event lands on the falsely
  // shared counter line, none on the private lanes.
  const auto actual = result.coherence_actual.percent_of("SHARED_SLOTS");
  ASSERT_TRUE(actual.has_value());
  EXPECT_GE(*actual, 80.0);
  EXPECT_EQ(result.coherence_actual.percent_of("PRIVATE_LANES").value_or(0.0),
            0.0);

  // The sampled estimate must agree (the Table 7 acceptance gate).
  const auto estimated =
      result.coherence_estimated.percent_of("SHARED_SLOTS");
  ASSERT_TRUE(estimated.has_value());
  EXPECT_GE(*estimated, 80.0);

  // The regular miss profile tells the opposite story: the streaming lanes
  // dominate misses.  Both signals are needed to isolate the bottleneck.
  const auto lane_misses = result.actual.percent_of("PRIVATE_LANES");
  ASSERT_TRUE(lane_misses.has_value());
  EXPECT_GT(*lane_misses, 50.0);
}

TEST(SharingKernels, ProducerConsumerForcesWritebacks) {
  const harness::RunConfig config = sharing_run(2);
  const harness::RunResult result =
      run_experiment(config, "producer_consumer", sharing_options());
  ASSERT_EQ(result.coherence.size(), 2u);
  EXPECT_GT(result.coherence[0].forced_writebacks, 0u);
  EXPECT_GT(result.coherence[0].sharing_transitions, 0u);
  const auto buffer = result.coherence_actual.percent_of("RING_BUFFER");
  ASSERT_TRUE(buffer.has_value());
  EXPECT_GE(*buffer, 80.0);
}

TEST(SharingKernels, TrueSharingContendsOnHotCounter) {
  // A roomier L1 than the other tests: true_sharing fills two fresh lines
  // (table + lane) between counter touches, and in a 1 KB 2-way L1 those
  // can evict the hot line from its set before the next core's slice —
  // leaving nothing for the directory to contend on.
  harness::RunConfig config = sharing_run(4);
  config.machine.hierarchy =
      sim::parse_hierarchy_spec("L1:4k:64:4,LLC:32k:64:4");
  const harness::RunResult result =
      run_experiment(config, "true_sharing", sharing_options());
  ASSERT_EQ(result.coherence.size(), 2u);
  EXPECT_GT(result.coherence[0].upgrades + result.coherence[0].invalidations_sent,
            0u);
  const auto counter = result.coherence_actual.percent_of("HOT_COUNTER");
  ASSERT_TRUE(counter.has_value());
  EXPECT_GT(*counter, 15.0);
  // The two genuinely shared objects between them account for essentially
  // all coherence traffic — the private lanes none.
  const auto table = result.coherence_actual.percent_of("SHARED_TABLE");
  ASSERT_TRUE(table.has_value());
  EXPECT_GT(*counter + *table, 95.0);
}

}  // namespace
}  // namespace hpm
