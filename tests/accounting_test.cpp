// Virtual-cycle and perturbation accounting invariants — the bookkeeping
// behind Figures 3 and 4.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "workloads/synthetic.hpp"

namespace hpm {
namespace {

workloads::SyntheticWorkload streaming_workload(std::uint32_t iterations) {
  workloads::SyntheticSpec spec;
  spec.lockstep = true;
  spec.arrays = {{"S", 512 * 1024}, {"T", 512 * 1024}};
  spec.phases.push_back({{1, 1}, 1});
  spec.iterations = iterations;
  return workloads::SyntheticWorkload(spec);
}

harness::RunConfig base_config() {
  harness::RunConfig config;
  config.machine.cache.size_bytes = 128 * 1024;
  return config;
}

TEST(CycleAccounting, RefCostDecomposition) {
  sim::Machine machine;
  const auto& cycles = machine.config().cycles;
  const sim::Addr a = machine.address_space().define_static("a", 128);
  machine.touch(a);  // miss
  EXPECT_EQ(machine.stats().app_cycles,
            cycles.cycles_per_instruction + cycles.cache_miss_penalty);
  machine.touch(a);  // hit
  EXPECT_EQ(machine.stats().app_cycles,
            2 * cycles.cycles_per_instruction + cycles.cache_miss_penalty +
                cycles.cache_hit_extra);
}

TEST(CycleAccounting, ToolAndAppPlanesAreSeparate) {
  sim::Machine machine;
  const sim::Addr a = machine.address_space().define_static("a", 128);
  const sim::Addr t = machine.address_space().alloc_instr(128);
  machine.touch(a);
  const auto app_cycles = machine.stats().app_cycles;
  machine.tool_touch(t);
  machine.tool_exec(500);
  EXPECT_EQ(machine.stats().app_cycles, app_cycles);  // unchanged
  EXPECT_EQ(machine.stats().tool_cycles,
            500 + machine.config().cycles.ref_cost(false));
  EXPECT_EQ(machine.stats().total_cycles(),
            app_cycles + machine.stats().tool_cycles);
}

TEST(CycleAccounting, SamplingOverheadMatchesInterruptModel) {
  // Figure 4's model: slowdown ~= interrupts x (interrupt_cost + handler).
  auto workload = streaming_workload(20);
  auto config = base_config();
  config.tool = harness::ToolKind::kSampler;
  config.sampler.period = 1'000;
  const auto result = harness::run_experiment(config, workload);

  auto baseline_workload = streaming_workload(20);
  const auto baseline =
      harness::run_experiment(base_config(), baseline_workload);

  const auto tool_cycles = result.stats.tool_cycles;
  const auto interrupts = result.stats.interrupts;
  ASSERT_GT(interrupts, 0u);
  const double per_interrupt =
      static_cast<double>(tool_cycles) / static_cast<double>(interrupts);
  // ~8,800 delivery + a small handler: the paper's ~9,000 cycles.
  EXPECT_GT(per_interrupt, 8'800.0);
  EXPECT_LT(per_interrupt, 11'000.0);
  // Total slowdown = tool cycles plus perturbation-induced app misses.
  EXPECT_GE(result.stats.total_cycles(),
            baseline.stats.total_cycles() + tool_cycles -
                tool_cycles / 10);
}

TEST(CycleAccounting, SearchUsesFarFewerInterruptsThanSampling) {
  // §3.3: "The search algorithm achieves its efficiency by requiring very
  // few interrupts."
  auto sampled_workload = streaming_workload(30);
  auto sample_cfg = base_config();
  sample_cfg.tool = harness::ToolKind::kSampler;
  sample_cfg.sampler.period = 1'000;
  const auto sampled = harness::run_experiment(sample_cfg, sampled_workload);

  auto searched_workload = streaming_workload(30);
  auto search_cfg = base_config();
  search_cfg.tool = harness::ToolKind::kSearch;
  search_cfg.search.n = 8;
  search_cfg.search.initial_interval = 500'000;
  const auto searched =
      harness::run_experiment(search_cfg, searched_workload);

  EXPECT_LT(searched.stats.interrupts * 10, sampled.stats.interrupts);
  // ...but each search interrupt costs much more than a sampling one.
  const double search_per =
      static_cast<double>(searched.stats.tool_cycles) /
      static_cast<double>(searched.stats.interrupts);
  const double sample_per =
      static_cast<double>(sampled.stats.tool_cycles) /
      static_cast<double>(sampled.stats.interrupts);
  EXPECT_GT(search_per, sample_per * 1.3);
}

TEST(Perturbation, IdenticalAppStreamAcrossConfigs) {
  // Figure 3's precondition: "the applications were allowed to execute for
  // the same number of application instructions."
  std::uint64_t app_instructions[3];
  int i = 0;
  for (auto tool : {harness::ToolKind::kNone, harness::ToolKind::kSampler,
                    harness::ToolKind::kSearch}) {
    auto workload = streaming_workload(10);
    auto config = base_config();
    config.tool = tool;
    config.sampler.period = 2'000;
    config.search.initial_interval = 300'000;
    app_instructions[i++] =
        harness::run_experiment(config, workload).stats.app_instructions;
  }
  EXPECT_EQ(app_instructions[0], app_instructions[1]);
  EXPECT_EQ(app_instructions[0], app_instructions[2]);
}

TEST(Perturbation, ToolTrafficCanEvictApplicationLines) {
  // Measure app-plane misses (not just totals): instrumentation cache
  // pollution shows up as extra *application* misses.
  auto run = [&](bool instrumented) {
    auto workload = streaming_workload(10);
    auto config = base_config();
    if (instrumented) {
      config.tool = harness::ToolKind::kSampler;
      config.sampler.period = 5'000;
    }
    return harness::run_experiment(config, workload).stats;
  };
  const auto base = run(false);
  const auto inst = run(true);
  EXPECT_GE(inst.app_misses + inst.tool_misses, base.app_misses);
  // And the increase is tiny, as in Figure 3 (well under 1%).
  const double increase =
      100.0 *
      (static_cast<double>(inst.total_misses()) -
       static_cast<double>(base.app_misses)) /
      static_cast<double>(base.app_misses);
  EXPECT_LT(increase, 1.0);
}

TEST(Perturbation, InterruptCostIsConfigurable) {
  auto workload = streaming_workload(5);
  auto config = base_config();
  config.tool = harness::ToolKind::kSampler;
  config.sampler.period = 1'000;
  config.machine.cycles.interrupt_cost = 100;  // hypothetical fast interrupts
  const auto cheap = harness::run_experiment(config, workload);
  auto workload2 = streaming_workload(5);
  config.machine.cycles.interrupt_cost = 8'800;
  const auto paper = harness::run_experiment(config, workload2);
  EXPECT_EQ(cheap.stats.interrupts, paper.stats.interrupts);
  EXPECT_LT(cheap.stats.tool_cycles, paper.stats.tool_cycles);
  const auto delta = paper.stats.tool_cycles - cheap.stats.tool_cycles;
  EXPECT_EQ(delta, (8'800 - 100) * paper.stats.interrupts);
}

TEST(Perturbation, MissPenaltyAffectsCyclesNotMisses) {
  auto run = [&](sim::Cycles penalty) {
    auto workload = streaming_workload(5);
    auto config = base_config();
    config.machine.cycles.cache_miss_penalty = penalty;
    return harness::run_experiment(config, workload).stats;
  };
  const auto fast = run(10);
  const auto slow = run(200);
  EXPECT_EQ(fast.app_misses, slow.app_misses);
  EXPECT_LT(fast.app_cycles, slow.app_cycles);
  EXPECT_EQ(slow.app_cycles - fast.app_cycles,
            (200 - 10) * fast.app_misses);
}

}  // namespace
}  // namespace hpm
