#include "core/nway_search.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "harness/experiment.hpp"
#include "workloads/synthetic.hpp"

namespace hpm::core {
namespace {

using harness::RunConfig;
using harness::RunResult;
using harness::ToolKind;
using workloads::SyntheticPhase;
using workloads::SyntheticSpec;
using workloads::SyntheticWorkload;

// Test machine: a small cache so modest arrays behave like the paper's
// multi-megabyte ones against its 2 MB cache.
sim::MachineConfig test_machine() {
  sim::MachineConfig c;
  c.cache.size_bytes = 256 * 1024;
  c.num_miss_counters = 16;
  return c;
}

SearchConfig fast_search(unsigned n = 8) {
  SearchConfig c;
  c.n = n;
  c.initial_interval = 200'000;
  return c;
}

RunResult run_search(SyntheticSpec spec, const SearchConfig& search) {
  SyntheticWorkload workload(std::move(spec));
  RunConfig config;
  config.machine = test_machine();
  config.tool = ToolKind::kSearch;
  config.search = search;
  return harness::run_experiment(config, workload);
}

SyntheticSpec lockstep_spec(std::vector<std::uint64_t> sizes_kb,
                            std::uint32_t iterations = 40) {
  SyntheticSpec spec;
  spec.name = "weighted";
  spec.iterations = iterations;
  spec.lockstep = true;
  SyntheticPhase phase;
  for (std::size_t i = 0; i < sizes_kb.size(); ++i) {
    spec.arrays.push_back(
        {"ARR" + std::to_string(i), sizes_kb[i] * 1024});
    phase.sweeps.push_back(1);
  }
  spec.phases.push_back(std::move(phase));
  return spec;
}

TEST(NWaySearchConfig, Validation) {
  sim::Machine machine(test_machine());
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  SearchConfig bad;
  bad.n = 1;
  EXPECT_THROW(NWaySearch(machine, map, bad), std::invalid_argument);
  bad = SearchConfig{};
  bad.n = 17;  // machine has 16 counters
  EXPECT_THROW(NWaySearch(machine, map, bad), std::invalid_argument);
  bad = SearchConfig{};
  bad.initial_interval = 0;
  EXPECT_THROW(NWaySearch(machine, map, bad), std::invalid_argument);
}

TEST(NWaySearch, FindsDominantObject) {
  const auto result =
      run_search(lockstep_spec({2048, 256, 256}), fast_search());
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "ARR0");
  EXPECT_TRUE(result.search_done);
  // ~80% of misses; refinement should be close.
  EXPECT_NEAR(result.estimated.rows()[0].percent, 80.0, 8.0);
}

TEST(NWaySearch, RanksMultipleObjects) {
  // 40 / 30 / 20 / 10 percent by size.
  const auto result =
      run_search(lockstep_spec({1600, 1200, 800, 400}), fast_search());
  const auto& est = result.estimated;
  ASSERT_GE(est.size(), 4u);
  EXPECT_EQ(est.rows()[0].name, "ARR0");
  EXPECT_EQ(est.rows()[1].name, "ARR1");
  EXPECT_EQ(est.rows()[2].name, "ARR2");
  EXPECT_EQ(est.rows()[3].name, "ARR3");
  const auto comparison = Report::compare(result.actual, est, 4);
  EXPECT_LT(comparison.max_abs_error, 6.0);
}

TEST(NWaySearch, EstimatesMatchGroundTruth) {
  const auto result =
      run_search(lockstep_spec({1024, 1024, 512, 512, 256}), fast_search(10));
  const auto comparison = Report::compare(result.actual, result.estimated, 5);
  EXPECT_EQ(comparison.missing, 0u);
  EXPECT_LT(comparison.max_abs_error, 6.0);
  EXPECT_GT(comparison.order_agreement, 0.85);
}

TEST(NWaySearch, TwoWayFindsTopObject) {
  // The paper's Table 2 headline: with the priority queue, even a 2-way
  // search identifies the top object.
  const auto result =
      run_search(lockstep_spec({1536, 512, 384, 256}), fast_search(2));
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "ARR0");
}

TEST(NWaySearch, GreedyFailsOnFigure2Layout) {
  // Figure 2: greedy descends into the 60% half and reports a 20% array.
  SearchConfig greedy = fast_search(2);
  greedy.use_priority_queue = false;
  greedy.search_whole_space = false;
  const auto greedy_result =
      run_search(workloads::figure2_spec(512 * 1024, 40), greedy);
  ASSERT_FALSE(greedy_result.estimated.empty());
  EXPECT_NE(greedy_result.estimated.rows()[0].name, "E");

  SearchConfig with_queue = fast_search(2);
  with_queue.search_whole_space = false;
  const auto pq_result =
      run_search(workloads::figure2_spec(512 * 1024, 40), with_queue);
  ASSERT_FALSE(pq_result.estimated.empty());
  EXPECT_EQ(pq_result.estimated.rows()[0].name, "E");
}

TEST(NWaySearch, BoundaryAdjustmentPreventsSplitObjects) {
  // HOT (40%) spans the first 2-way split point of the occupied span.
  SyntheticSpec spec;
  spec.name = "spanning";
  spec.iterations = 50;
  spec.lockstep = true;
  spec.arrays = {{"A", 768 * 1024}, {"HOT", 1024 * 1024}, {"B", 768 * 1024}};
  spec.phases.push_back({{1, 1, 1}, 1});

  SearchConfig adjusted = fast_search(2);
  adjusted.search_whole_space = false;
  const auto good = run_search(spec, adjusted);
  ASSERT_FALSE(good.estimated.empty());
  EXPECT_EQ(good.estimated.rows()[0].name, "HOT");

  SearchConfig raw = fast_search(2);
  raw.search_whole_space = false;
  raw.adjust_boundaries = false;
  const auto bad = run_search(spec, raw);
  // Without adjustment HOT's misses split across regions: either it loses
  // the top rank outright, or its estimate is far off its true ~40%.
  const bool hot_first =
      !bad.estimated.empty() && bad.estimated.rank_of("HOT") == 1;
  const double hot_actual = bad.actual.percent_of("HOT").value_or(40.0);
  const double hot_est = bad.estimated.percent_of("HOT").value_or(0.0);
  EXPECT_TRUE(!hot_first || std::abs(hot_est - hot_actual) > 4.0)
      << "rank1=" << hot_first << " est=" << hot_est
      << " actual=" << hot_actual;
}

TEST(NWaySearch, RetireModeReturnsMoreObjects) {
  // §6 variant: retiring measured single-object regions lets a small-n
  // search enumerate more objects than n-1.
  auto spec = lockstep_spec({512, 512, 512, 512, 512, 512}, 60);
  SearchConfig retire = fast_search(4);
  retire.retire_measured = true;
  retire.search_whole_space = false;
  const auto result = run_search(spec, retire);
  EXPECT_GE(result.estimated.size(), 4u);  // > n-1 objects
}

TEST(NWaySearch, ContinuationRevisitsDiscardedRegions) {
  // A bursty sequential workload: arrays go idle for long stretches, so
  // some object-bearing regions get discarded during the search.  With the
  // §6 continuation the search re-seeds from them after refinement.
  SyntheticSpec spec;
  spec.name = "bursty";
  spec.iterations = 40;
  spec.arrays = {{"P", 1024 * 1024}, {"Q", 512 * 1024}, {"R", 512 * 1024}};
  spec.phases.push_back({{2, 1, 1}, 1});

  SearchConfig continued = fast_search(4);
  continued.continue_into_discarded = true;
  continued.zero_retention_limit = 1;  // provoke discards
  const auto with = run_search(spec, continued);

  SearchConfig plain = continued;
  plain.continue_into_discarded = false;
  const auto without = run_search(spec, plain);

  EXPECT_GT(with.search_stats.continuations, 0u);
  EXPECT_EQ(without.search_stats.continuations, 0u);
  // Continuation can only add objects, never lose them.
  EXPECT_GE(with.estimated.size(), without.estimated.size());
}

TEST(NWaySearch, HarvestsBestEffortWhenRunEndsEarly) {
  // Far too little runtime to converge: report from current knowledge.
  SearchConfig slow = fast_search(8);
  slow.initial_interval = 2'000'000;
  const auto result = run_search(lockstep_spec({1024, 768}, 2), slow);
  EXPECT_FALSE(result.search_done);
  // Whatever was isolated must still carry sane estimates (<= 100%).
  for (const auto& row : result.estimated.rows()) {
    EXPECT_LE(row.percent, 100.0);
    EXPECT_GE(row.percent, 0.0);
  }
}

TEST(NWaySearch, StatsAreCoherent) {
  const auto result =
      run_search(lockstep_spec({1024, 512, 256}), fast_search());
  const auto& stats = result.search_stats;
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.splits, 0u);
  EXPECT_GT(result.stats.interrupts, 0u);
  EXPECT_GE(result.stats.interrupts, stats.iterations);
  EXPECT_GT(result.stats.tool_cycles, 0u);
  // Per-interrupt handler cost is far above a sampling handler's (§3.3).
  EXPECT_GT(result.stats.tool_cycles / result.stats.interrupts, 9'000u);
}

TEST(NWaySearch, DoesNotPerturbApplicationStream) {
  auto run = [&](bool with_search) {
    SyntheticWorkload workload(lockstep_spec({1024, 512}, 20));
    RunConfig config;
    config.machine = test_machine();
    config.tool = with_search ? ToolKind::kSearch : ToolKind::kNone;
    config.search = fast_search();
    return harness::run_experiment(config, workload);
  };
  const auto base = run(false);
  const auto inst = run(true);
  EXPECT_EQ(base.stats.app_refs, inst.stats.app_refs);
  EXPECT_EQ(base.stats.app_instructions, inst.stats.app_instructions);
  EXPECT_GE(inst.stats.total_misses(), base.stats.total_misses());
  EXPECT_GT(inst.stats.total_cycles(), base.stats.total_cycles());
}

struct LayoutParam {
  std::string name;
  std::vector<std::uint64_t> sizes_kb;
  unsigned n;
};

class SearchLayoutSweep : public ::testing::TestWithParam<LayoutParam> {};

// Property: across layouts and counter budgets, the search's top result is
// the true top object and estimates are within a few percent.
TEST_P(SearchLayoutSweep, TopObjectIsCorrect) {
  const auto& param = GetParam();
  const auto result =
      run_search(lockstep_spec(param.sizes_kb, 50), fast_search(param.n));
  ASSERT_FALSE(result.estimated.empty()) << param.name;
  ASSERT_FALSE(result.actual.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, result.actual.rows()[0].name)
      << param.name;
  const auto comparison = Report::compare(result.actual, result.estimated, 1);
  EXPECT_LT(comparison.max_abs_error, 8.0) << param.name;
}

// -- Counter timesharing (§2.2 / §3.4) ---------------------------------------

TEST(NWaySearchMux, ValidatesPhysicalCounterCount) {
  sim::Machine machine(test_machine());
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  SearchConfig config;
  config.n = 8;
  config.physical_counters = 9;  // more than n
  EXPECT_THROW(NWaySearch(machine, map, config), std::invalid_argument);
}

TEST(NWaySearchMux, WorksWithFewPhysicalCountersOnMachineWithFew) {
  // An 8-way *logical* search on a machine with only 4 PMU counters.
  sim::MachineConfig mc = test_machine();
  mc.num_miss_counters = 4;
  sim::Machine machine(mc);
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  SearchConfig config = fast_search(8);
  config.physical_counters = 4;
  EXPECT_NO_THROW(NWaySearch(machine, map, config));
  // Without timesharing, 8 logical counters cannot fit.
  EXPECT_THROW(NWaySearch(machine, map, fast_search(8)),
               std::invalid_argument);
}

class MuxSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MuxSweep, TimesharedSearchStillFindsTheTopObject) {
  SearchConfig config = fast_search(8);
  config.physical_counters = GetParam();
  const auto result =
      run_search(lockstep_spec({2048, 512, 512, 256}, 60), config);
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "ARR0");
  // Steady lockstep traffic: even heavy timesharing stays accurate.
  const auto comparison = Report::compare(result.actual, result.estimated, 1);
  EXPECT_LT(comparison.max_abs_error, 10.0);
}

INSTANTIATE_TEST_SUITE_P(PhysicalCounters, MuxSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(NWaySearchMux, TimesharingLosesAccuracyOnPhasedTraffic) {
  // The §3.4 warning: with one physical counter each region sees only a
  // sliver of the interval, so bursty traffic mis-ranks.  Compare max
  // error on a sequential (bursty) workload, averaged over both modes.
  SyntheticSpec spec;
  spec.name = "bursty";
  spec.iterations = 30;
  spec.arrays = {{"P", 1024 * 1024}, {"Q", 768 * 1024}, {"R", 512 * 1024}};
  spec.phases.push_back({{1, 1, 1}, 1});

  SearchConfig dedicated = fast_search(8);
  const auto full = run_search(spec, dedicated);
  SearchConfig mux = fast_search(8);
  mux.physical_counters = 1;
  const auto shared = run_search(spec, mux);

  const auto full_cmp = Report::compare(full.actual, full.estimated, 3);
  const auto shared_cmp = Report::compare(shared.actual, shared.estimated, 3);
  // Timesharing is never better here, and both still return something.
  EXPECT_GE(shared_cmp.max_abs_error + 1e-9, full_cmp.max_abs_error);
  EXPECT_FALSE(shared.estimated.empty());
}

TEST(NWaySearch, MinMissesPerIntervalGrowsInterval) {
  // §5 auto-tuning: a far-too-short interval is doubled until iterations
  // carry enough misses.
  SearchConfig config = fast_search(8);
  config.initial_interval = 10'000;  // absurdly short
  config.min_misses_per_interval = 2'000;
  const auto result = run_search(lockstep_spec({1024, 512}, 40), config);
  EXPECT_GT(result.search_stats.final_interval, 10'000u);
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "ARR0");
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, SearchLayoutSweep,
    ::testing::Values(
        LayoutParam{"dominant", {4096, 128, 128, 128}, 10},
        LayoutParam{"two_big", {2048, 1536, 256}, 10},
        LayoutParam{"many_equalish", {640, 576, 512, 448, 384, 320}, 10},
        LayoutParam{"two_way_budget", {2048, 512, 512}, 2},
        LayoutParam{"four_way_budget", {1024, 768, 512, 256}, 4},
        LayoutParam{"single_object", {2048}, 8},
        LayoutParam{"sixteen_small", {256, 256, 256, 256, 256, 256, 256, 256,
                                      512, 256, 256, 256, 256, 256, 256, 256},
                    10}),
    [](const ::testing::TestParamInfo<LayoutParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hpm::core
