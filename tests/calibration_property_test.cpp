// Property and differential tests for the calibration subsystem.
//
// Three families:
//   * differential — an explicit 1-level MemoryHierarchy must be
//     counter-identical to the implicit single-cache machine under seeded
//     randomized workloads (the equivalence ModelSearch's replay step
//     silently relies on);
//   * self-calibration — calibrating an UNFAULTED observation against the
//     default candidate grid must rank the generating spec #1 with zero
//     inconsistency, for every hierarchy preset;
//   * refutation & determinism — a wrong cycle model or hierarchy must be
//     REFUTED by the expected named metric, and the full search must be
//     byte-identical at any worker count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "calibrate/candidates.hpp"
#include "calibrate/model_search.hpp"
#include "calibrate/report.hpp"
#include "harness/batch.hpp"
#include "harness/json_export.hpp"
#include "harness/replay.hpp"
#include "sim/memory_hierarchy.hpp"

namespace hpm {
namespace {

/// One small, fast observation batch: the synthetic kernel under the
/// n-way search tool on `machine`.  Everything (tool parameters, seeds)
/// is left at the defaults ModelSearch replays with, so the generating
/// machine spec must reproduce the observation bit for bit.
harness::BatchResult observe(const sim::MachineConfig& machine,
                             std::uint64_t seed = 0x5ca1ab1e) {
  harness::RunSpec spec;
  spec.name = "synthetic/search";
  spec.workload = "synthetic";
  spec.config.machine = machine;
  spec.config.tool = harness::ToolKind::kSearch;
  spec.options.scale = 0.25;
  spec.options.iterations = 4;
  spec.options.seed = seed;
  return harness::BatchRunner().run({spec});
}

sim::MachineConfig preset_machine(const std::string& preset) {
  sim::MachineConfig machine;
  const bool known = sim::hierarchy_preset(preset, machine.hierarchy);
  EXPECT_TRUE(known) << preset;
  return machine;
}

// -- Differential: explicit 1-level hierarchy == implicit single cache ------

TEST(HierarchyDifferential, OneLevelMachineMatchesImplicitCacheExactly) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xfeedf00dull}) {
    sim::MachineConfig implicit;  // hierarchy empty: the paper's setup
    implicit.cache.size_bytes = 256 * 1024;

    sim::MachineConfig explicit_one = implicit;
    explicit_one.hierarchy.levels = {{"L1", implicit.cache}};
    explicit_one.hierarchy.observe_level = 0;

    const harness::BatchResult a = observe(implicit, seed);
    const harness::BatchResult b = observe(explicit_one, seed);
    ASSERT_TRUE(a.items[0].ok) << a.items[0].error;
    ASSERT_TRUE(b.items[0].ok) << b.items[0].error;

    const sim::MachineStats& sa = a.items[0].result.stats;
    const sim::MachineStats& sb = b.items[0].result.stats;
    EXPECT_EQ(sa.app_refs, sb.app_refs) << seed;
    EXPECT_EQ(sa.app_misses, sb.app_misses) << seed;
    EXPECT_EQ(sa.interrupts, sb.interrupts) << seed;
    EXPECT_EQ(sa.total_cycles(), sb.total_cycles()) << seed;

    // Scoring one against the other must find zero inconsistency on
    // every metric — this is the invariant replay-based scoring rests on.
    const auto deltas =
        analysis::consistency_deltas(a.items[0], b.items[0].result);
    EXPECT_GT(deltas.size(), 0u);
    EXPECT_EQ(analysis::worst_severity(deltas), 0.0) << seed;
  }
}

// -- Replay point extraction -------------------------------------------------

TEST(ReplayPoints, SkipsFailedAndUnknownWorkloadItems) {
  harness::BatchResult observed = observe(preset_machine("paper"));
  // A failed item and a foreign workload must degrade to partial
  // coverage, never throw.
  harness::BatchItem failed;
  failed.spec.name = "broken";
  failed.spec.workload = "synthetic";
  failed.ok = false;
  observed.items.push_back(failed);
  harness::BatchItem foreign;
  foreign.spec.name = "foreign";
  foreign.spec.workload = "not_a_workload";
  foreign.ok = true;
  observed.items.push_back(foreign);

  std::vector<std::size_t> skipped;
  const auto points = harness::replay_points(observed, &skipped);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].name, "synthetic/search");
  EXPECT_EQ(points[0].item_index, 0u);
  EXPECT_EQ(skipped, (std::vector<std::size_t>{1, 2}));
}

// -- Self-calibration: the generating spec wins, for every preset ------------

TEST(SelfCalibration, GeneratingPresetRanksFirstWithZeroInconsistency) {
  for (const std::string preset : {"paper", "single", "2level", "3level"}) {
    const harness::BatchResult observed = observe(preset_machine(preset));
    ASSERT_TRUE(observed.items[0].ok) << observed.items[0].error;

    calibrate::ModelSearchOptions options;
    options.jobs = 2;
    const calibrate::CalibrationResult result = calibrate::calibrate(
        observed, calibrate::candidate_grid({}, {}), options);

    // "single" is an alias of "paper"; the grid lists it as "paper".
    const std::string expected =
        (preset == "single" ? "paper" : preset) + "/p50";
    EXPECT_TRUE(result.explained) << preset;
    ASSERT_FALSE(result.ranked.empty());
    EXPECT_EQ(result.ranked.front().candidate.name, expected) << preset;
    EXPECT_EQ(result.ranked.front().inconsistency, 0.0) << preset;
    EXPECT_TRUE(result.ranked.front().consistent) << preset;
  }
}

// -- Refutation: wrong models are named and blamed ----------------------------

TEST(Refutation, WrongMissPenaltyIsRefutedByTheCyclesMetric) {
  const harness::BatchResult observed = observe(preset_machine("paper"));
  const auto grid = calibrate::candidate_grid({"paper"}, {100});
  const calibrate::CalibrationResult result =
      calibrate::calibrate(observed, grid, {});

  EXPECT_FALSE(result.explained);
  ASSERT_EQ(result.ranked.size(), 1u);
  const calibrate::CandidateVerdict& verdict = result.ranked.front();
  EXPECT_FALSE(verdict.consistent);
  EXPECT_GT(verdict.inconsistency, 1.0);

  // The doubled penalty must blow the cycles tolerance directly...
  bool cycles_violated = false;
  for (const auto& delta : verdict.deltas) {
    if (delta.metric == "cycles") cycles_violated = !delta.within;
  }
  EXPECT_TRUE(cycles_violated);
  // ...and the worst metric is one of the clock-driven counters (a slower
  // virtual clock also moves the search tool's interval boundaries, so the
  // interrupt count can drift even further than total cycles).
  ASSERT_LT(verdict.worst, verdict.deltas.size());
  const std::string& worst = verdict.deltas[verdict.worst].metric;
  EXPECT_TRUE(worst == "cycles" || worst == "interrupts") << worst;
}

TEST(Refutation, WrongLevelCountIsStructurallyRefuted) {
  // A 3-level observation carries per-level counters (hpm.batch.v3), so a
  // 2-level candidate is refuted structurally, at kStructuralSeverity.
  const harness::BatchResult observed = observe(preset_machine("3level"));
  ASSERT_FALSE(observed.items[0].result.levels.empty());

  const auto grid = calibrate::candidate_grid({"2level"}, {50});
  const calibrate::CalibrationResult result =
      calibrate::calibrate(observed, grid, {});

  EXPECT_FALSE(result.explained);
  ASSERT_EQ(result.ranked.size(), 1u);
  const calibrate::CandidateVerdict& verdict = result.ranked.front();
  EXPECT_FALSE(verdict.consistent);
  EXPECT_EQ(verdict.inconsistency, analysis::kStructuralSeverity);
  ASSERT_LT(verdict.worst, verdict.deltas.size());
  EXPECT_EQ(verdict.deltas[verdict.worst].metric, "level_count");
}

TEST(Refutation, SingleLevelObservationCannotRefuteStructure) {
  // CounterPoint semantics: absent counters are absent evidence.  A v2
  // observation (no per-level block) must not structurally refute a
  // multi-level candidate with the same observed geometry and latency.
  const harness::BatchResult observed = observe(preset_machine("paper"));
  ASSERT_TRUE(observed.items[0].result.levels.empty());

  const auto grid = calibrate::candidate_grid({"2level"}, {50});
  const calibrate::CalibrationResult result =
      calibrate::calibrate(observed, grid, {});
  for (const auto& delta : result.ranked.front().deltas) {
    EXPECT_NE(delta.metric, "level_count");
  }
}

// -- Determinism: byte-identical reports at any worker count -----------------

TEST(Determinism, CalibrationReportIsByteIdenticalAcrossJobs) {
  const harness::BatchResult observed = observe(preset_machine("paper"));

  auto run_with_jobs = [&](unsigned jobs) {
    calibrate::ModelSearchOptions options;
    options.jobs = jobs;
    options.refine_rounds = 1;  // exercise the multi-round path too
    const calibrate::CalibrationResult result = calibrate::calibrate(
        observed, calibrate::candidate_grid({}, {}), options);
    std::ostringstream json;
    calibrate::export_json(json, result);
    std::ostringstream html;
    calibrate::render_html(html, result);
    return std::move(json).str() + "\n---\n" + std::move(html).str();
  };

  const std::string serial = run_with_jobs(1);
  const std::string parallel = run_with_jobs(4);
  EXPECT_EQ(serial, parallel);
}

// -- Candidate space invariants -----------------------------------------------

TEST(Candidates, GridIsDedupedAndNamedCanonically) {
  // "paper" and its explicit spelling collapse to one candidate per
  // penalty; the preset spelling (listed first) wins the name.
  const auto grid =
      calibrate::candidate_grid({"paper", "LLC:2m:64:8"}, {25, 50});
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].name, "paper/p25");
  EXPECT_EQ(grid[1].name, "paper/p50");
  EXPECT_EQ(calibrate::candidate_key(grid[0]), "LLC:2m:64:8/p25");
}

TEST(Candidates, NeighborsAreValidDistinctAndLabeled) {
  const auto grid = calibrate::candidate_grid({"2level"}, {50});
  const auto neighbors = calibrate::candidate_neighbors(grid[0], 1);
  ASSERT_FALSE(neighbors.empty());
  for (const auto& neighbor : neighbors) {
    EXPECT_FALSE(neighbor.name.empty());
    EXPECT_EQ(neighbor.round, 1u);
    EXPECT_NE(calibrate::candidate_key(neighbor),
              calibrate::candidate_key(grid[0]));
    for (const auto& level : sim::resolve_levels(neighbor.hierarchy, {})) {
      EXPECT_TRUE(level.cache.valid()) << neighbor.name;
    }
  }
}

}  // namespace
}  // namespace hpm
