#include "sim/perf_monitor.hpp"

#include <gtest/gtest.h>

namespace hpm::sim {
namespace {

TEST(PerfMonitor, CountsGlobalMissesAndLastAddress) {
  PerfMonitor pmu(4);
  pmu.record_miss(0x100);
  pmu.record_miss(0x200);
  EXPECT_EQ(pmu.global_misses(), 2u);
  EXPECT_EQ(pmu.last_miss_address(), 0x200u);
  pmu.clear_global();
  EXPECT_EQ(pmu.global_misses(), 0u);
  // Clearing the global counter does not clear the last-miss register.
  EXPECT_EQ(pmu.last_miss_address(), 0x200u);
}

TEST(PerfMonitor, RegionCountersRespectBaseBounds) {
  PerfMonitor pmu(4);
  pmu.configure(0, 0x1000, 0x2000);
  pmu.record_miss(0x0fff);  // below
  pmu.record_miss(0x1000);  // first in-range byte
  pmu.record_miss(0x1fff);  // last in-range byte
  pmu.record_miss(0x2000);  // bound is exclusive
  EXPECT_EQ(pmu.read(0), 2u);
  EXPECT_EQ(pmu.global_misses(), 4u);
}

TEST(PerfMonitor, MultipleCountersCanOverlap) {
  PerfMonitor pmu(4);
  pmu.configure(0, 0x0, 0x10000);
  pmu.configure(1, 0x8000, 0x9000);
  pmu.record_miss(0x8500);
  EXPECT_EQ(pmu.read(0), 1u);
  EXPECT_EQ(pmu.read(1), 1u);
}

TEST(PerfMonitor, ConfigureResetsCount) {
  PerfMonitor pmu(2);
  pmu.configure(0, 0, 0x1000);
  pmu.record_miss(0x10);
  EXPECT_EQ(pmu.read(0), 1u);
  pmu.configure(0, 0, 0x1000);
  EXPECT_EQ(pmu.read(0), 0u);
}

TEST(PerfMonitor, DisableStopsCounting) {
  PerfMonitor pmu(2);
  pmu.configure(0, 0, 0x1000);
  pmu.record_miss(0x10);
  pmu.disable(0);
  pmu.record_miss(0x10);
  EXPECT_EQ(pmu.read(0), 1u);
  EXPECT_FALSE(pmu.enabled(0));
}

TEST(PerfMonitor, ClearKeepsConfiguration) {
  PerfMonitor pmu(2);
  pmu.configure(0, 0x100, 0x200);
  pmu.record_miss(0x150);
  pmu.clear(0);
  EXPECT_EQ(pmu.read(0), 0u);
  pmu.record_miss(0x150);
  EXPECT_EQ(pmu.read(0), 1u);
  EXPECT_EQ(pmu.region(0), (AddrRange{0x100, 0x200}));
}

TEST(PerfMonitor, OverflowFiresAfterExactlyPeriodMisses) {
  PerfMonitor pmu(2);
  pmu.arm_overflow(3);
  pmu.record_miss(1);
  pmu.record_miss(2);
  EXPECT_FALSE(pmu.overflow_pending());
  pmu.record_miss(3);
  EXPECT_TRUE(pmu.overflow_pending());
  EXPECT_EQ(pmu.last_miss_address(), 3u);
  // One-shot until re-armed.
  pmu.acknowledge_overflow();
  pmu.record_miss(4);
  EXPECT_FALSE(pmu.overflow_pending());
}

TEST(PerfMonitor, OverflowRearmRestartsCountdown) {
  PerfMonitor pmu(2);
  pmu.arm_overflow(2);
  pmu.record_miss(1);
  pmu.arm_overflow(2);  // restart
  pmu.record_miss(2);
  EXPECT_FALSE(pmu.overflow_pending());
  pmu.record_miss(3);
  EXPECT_TRUE(pmu.overflow_pending());
}

TEST(PerfMonitor, DisarmClearsPending) {
  PerfMonitor pmu(2);
  pmu.arm_overflow(1);
  pmu.record_miss(1);
  EXPECT_TRUE(pmu.overflow_pending());
  pmu.disarm_overflow();
  EXPECT_FALSE(pmu.overflow_pending());
}

TEST(PerfMonitor, ArmZeroDisarms) {
  PerfMonitor pmu(2);
  pmu.arm_overflow(0);
  for (int i = 0; i < 10; ++i) pmu.record_miss(static_cast<Addr>(i));
  EXPECT_FALSE(pmu.overflow_pending());
}

TEST(PerfMonitor, IndexValidation) {
  PerfMonitor pmu(2);
  EXPECT_THROW(pmu.configure(2, 0, 1), std::out_of_range);
  EXPECT_THROW((void)pmu.read(5), std::out_of_range);
  EXPECT_THROW(pmu.configure(0, 10, 5), std::invalid_argument);
  EXPECT_THROW(PerfMonitor bad(0), std::invalid_argument);
  EXPECT_THROW(PerfMonitor bad(PerfMonitor::kMaxCounters + 1),
               std::invalid_argument);
}

TEST(PerfMonitor, TenCountersPlusGlobalLikeThePaper) {
  // The paper's 10-way search: ten region counters plus the global one.
  PerfMonitor pmu(10);
  for (unsigned i = 0; i < 10; ++i) {
    pmu.configure(i, i * 0x1000, (i + 1) * 0x1000);
  }
  for (Addr a = 0; a < 0xa000; a += 0x800) pmu.record_miss(a);
  std::uint64_t sum = 0;
  for (unsigned i = 0; i < 10; ++i) sum += pmu.read(i);
  EXPECT_EQ(sum, pmu.global_misses());
  EXPECT_EQ(pmu.read(0), 2u);
}

}  // namespace
}  // namespace hpm::sim
