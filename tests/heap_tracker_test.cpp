#include "objmap/heap_tracker.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace hpm::objmap {
namespace {

TEST(HeapTracker, NamesBlocksByHexBase) {
  HeapTracker tracker;
  tracker.on_alloc(0x141020000ULL, 4096, sim::kNoSite);
  const auto hit = tracker.find_containing(0x141020800ULL);
  ASSERT_NE(hit.info, nullptr);
  EXPECT_EQ(hit.info->name, "0x141020000");  // the paper's naming style
  EXPECT_EQ(hit.info->kind, ObjectKind::kHeap);
  EXPECT_TRUE(hit.info->live);
}

TEST(HeapTracker, FreeRetiresButKeepsObjectRecord) {
  HeapTracker tracker;
  const auto id = tracker.on_alloc(0x141000000ULL, 256, sim::kNoSite);
  tracker.on_free(0x141000000ULL);
  EXPECT_EQ(tracker.find_containing(0x141000000ULL).info, nullptr);
  // The record survives so sampled counts attributed to it stay reportable.
  EXPECT_EQ(tracker.object(id).name, "0x141000000");
  EXPECT_FALSE(tracker.object(id).live);
  EXPECT_EQ(tracker.object_count(), 1u);
  EXPECT_EQ(tracker.live_count(), 0u);
}

TEST(HeapTracker, ReusedAddressGetsFreshObject) {
  HeapTracker tracker;
  const auto first = tracker.on_alloc(0x141000000ULL, 256, 1);
  tracker.on_free(0x141000000ULL);
  const auto second = tracker.on_alloc(0x141000000ULL, 512, 2);
  EXPECT_NE(first, second);
  const auto hit = tracker.find_containing(0x141000100ULL);
  ASSERT_NE(hit.info, nullptr);
  EXPECT_EQ(hit.index, second);
  EXPECT_EQ(hit.info->size, 512u);
  EXPECT_EQ(hit.info->site, 2u);
}

TEST(HeapTracker, FreeOfUnknownAddressIsIgnored) {
  HeapTracker tracker;
  tracker.on_alloc(0x141000000ULL, 256, sim::kNoSite);
  tracker.on_free(0x141000040ULL);  // interior, not a block base
  EXPECT_EQ(tracker.live_count(), 1u);
  EXPECT_EQ(tracker.free_events(), 1u);
}

TEST(HeapTracker, SiteNames) {
  HeapTracker tracker;
  tracker.set_site_name(3, "tree_nodes");
  EXPECT_EQ(tracker.site_name(3) != nullptr, true);
  EXPECT_EQ(*tracker.site_name(3), "tree_nodes");
  EXPECT_EQ(tracker.site_name(4), nullptr);
}

TEST(HeapTracker, VisitLiveRange) {
  HeapTracker tracker;
  tracker.on_alloc(0x141000000ULL, 64, sim::kNoSite);
  tracker.on_alloc(0x141001000ULL, 64, sim::kNoSite);
  tracker.on_alloc(0x141002000ULL, 64, sim::kNoSite);
  tracker.on_free(0x141001000ULL);
  int seen = 0;
  tracker.visit_live_range(0x141000000ULL, 0x141003000ULL,
                           [&](const ObjectInfo& info, std::uint32_t) {
                             EXPECT_TRUE(info.live);
                             ++seen;
                             return true;
                           });
  EXPECT_EQ(seen, 2);
}

TEST(HeapTracker, ChurnKeepsTreeConsistent) {
  HeapTracker tracker;
  util::Xoshiro256 rng(77);
  std::vector<sim::Addr> live;
  for (int i = 0; i < 3000; ++i) {
    if (rng.next_below(100) < 55 || live.empty()) {
      const sim::Addr base =
          0x141000000ULL + rng.next_below(100'000) * 0x80;
      if (tracker.find_containing(base).info == nullptr) {
        tracker.on_alloc(base, 0x80, sim::kNoSite);
        live.push_back(base);
      }
    } else {
      const std::size_t pick = rng.next_below(live.size());
      tracker.on_free(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  EXPECT_TRUE(tracker.tree().validate());
  EXPECT_EQ(tracker.live_count(), live.size());
  for (sim::Addr base : live) {
    EXPECT_NE(tracker.find_containing(base + 0x40).info, nullptr);
  }
}

TEST(HeapTracker, EventCountsAreMonotonic) {
  HeapTracker tracker;
  tracker.on_alloc(0x141000000ULL, 64, sim::kNoSite);
  tracker.on_alloc(0x141000040ULL, 64, sim::kNoSite);
  tracker.on_free(0x141000000ULL);
  EXPECT_EQ(tracker.alloc_events(), 2u);
  EXPECT_EQ(tracker.free_events(), 1u);
}

}  // namespace
}  // namespace hpm::objmap
