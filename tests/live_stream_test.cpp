// Monitor tree reducers/rollup and the hpm.live.v1 streaming contract:
// deterministic across worker counts, invisible in exported documents.
#include "harness/live_stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json_export.hpp"
#include "telemetry/monitor_tree.hpp"

namespace hpm::harness {
namespace {

using telemetry::MonitorNode;
using telemetry::MonitorTree;
using telemetry::Reducer;

// -- Reducer math ------------------------------------------------------------

TEST(MonitorTree, SumReducerSplitsCumulativeIntoWindows) {
  MonitorTree tree("root", "test");
  tree.root().metric("refs", Reducer::kSum);
  tree.root().input("refs", 10.0);
  tree.sample();
  EXPECT_DOUBLE_EQ(tree.root().find("refs")->value, 10.0);
  EXPECT_DOUBLE_EQ(tree.root().find("refs")->window, 10.0);
  tree.root().input("refs", 25.0);
  tree.sample();
  EXPECT_DOUBLE_EQ(tree.root().find("refs")->value, 25.0);  // cumulative
  EXPECT_DOUBLE_EQ(tree.root().find("refs")->window, 15.0);  // delta
  EXPECT_EQ(tree.samples(), 2u);
}

TEST(MonitorTree, DeltaReducerReportsPerWindowChange) {
  MonitorTree tree("root", "test");
  tree.root().metric("ints", Reducer::kDelta);
  tree.root().input("ints", 4.0);
  tree.sample();
  tree.root().input("ints", 9.0);
  tree.sample();
  EXPECT_DOUBLE_EQ(tree.root().find("ints")->value, 5.0);
  EXPECT_DOUBLE_EQ(tree.root().find("ints")->window, 5.0);
}

TEST(MonitorTree, EmaReducerSmoothsWindowDeltas) {
  MonitorTree tree("root", "test");
  tree.root().metric("rate", Reducer::kEma, /*alpha=*/0.5);
  tree.root().input("rate", 10.0);
  tree.sample();
  EXPECT_DOUBLE_EQ(tree.root().find("rate")->value, 10.0);  // seeds the EMA
  tree.root().input("rate", 30.0);  // delta 20
  tree.sample();
  EXPECT_DOUBLE_EQ(tree.root().find("rate")->value, 0.5 * 20.0 + 0.5 * 10.0);
}

TEST(MonitorTree, MaxReducerKeepsRunningMaximum) {
  MonitorTree tree("root", "test");
  tree.root().metric("resident", Reducer::kMax);
  tree.root().input("resident", 5.0);
  tree.sample();
  tree.root().input("resident", 3.0);
  tree.sample();
  EXPECT_DOUBLE_EQ(tree.root().find("resident")->value, 5.0);
  EXPECT_DOUBLE_EQ(tree.root().find("resident")->window, 3.0);  // latest
}

TEST(MonitorTree, RatioDerivesFromSiblingWindowsWithScale) {
  MonitorTree tree("root", "test");
  tree.root().metric("misses", Reducer::kSum);
  tree.root().metric("refs", Reducer::kSum);
  tree.root().ratio("per_kref", "misses", "refs", /*scale=*/1000.0,
                    /*alpha=*/1.0);  // alpha 1: no smoothing, exact values
  tree.root().input("misses", 5.0);
  tree.root().input("refs", 1000.0);
  tree.sample();
  EXPECT_DOUBLE_EQ(tree.root().find("per_kref")->window, 5.0);
  tree.root().input("misses", 25.0);  // window 20
  tree.root().input("refs", 2000.0);  // window 1000
  tree.sample();
  EXPECT_DOUBLE_EQ(tree.root().find("per_kref")->window, 20.0);
}

TEST(MonitorTree, RatioWithZeroDenominatorIsZeroNotNan) {
  MonitorTree tree("root", "test");
  tree.root().metric("misses", Reducer::kSum);
  tree.root().metric("refs", Reducer::kSum);
  tree.root().ratio("miss_rate", "misses", "refs");
  tree.sample();  // nothing fed: both windows are 0
  EXPECT_DOUBLE_EQ(tree.root().find("miss_rate")->window, 0.0);
  EXPECT_DOUBLE_EQ(tree.root().find("miss_rate")->value, 0.0);
}

TEST(MonitorTree, InputOnUndeclaredMetricThrows) {
  MonitorTree tree("root", "test");
  EXPECT_THROW(tree.root().input("nope", 1.0), std::invalid_argument);
}

// -- Bottom-to-top rollup ----------------------------------------------------

TEST(MonitorTree, RollupSumsChildrenAndAdoptsDeclarations) {
  MonitorTree tree("batch", "batch");
  MonitorNode& a = tree.root().child("a", "run");
  MonitorNode& b = tree.root().child("b", "run");
  for (MonitorNode* node : {&a, &b}) {
    node->metric("refs", Reducer::kSum);
    node->metric("resident", Reducer::kMax);
  }
  a.input("refs", 100.0);
  a.input("resident", 7.0);
  b.input("refs", 40.0);
  b.input("resident", 9.0);
  tree.sample();
  // The root never declared anything: declarations propagate up, sums roll
  // up bottom-to-top, kMax takes the max over children.
  EXPECT_DOUBLE_EQ(tree.root().find("refs")->value, 140.0);
  EXPECT_DOUBLE_EQ(tree.root().find("resident")->value, 9.0);
  // Children iterate in insertion order.
  ASSERT_EQ(tree.root().children().size(), 2u);
  EXPECT_EQ(tree.root().children()[0]->name(), "a");
  EXPECT_EQ(tree.root().children()[1]->name(), "b");
}

TEST(MonitorTree, RollupRecomputesRatiosInsteadOfSummingThem) {
  MonitorTree tree("batch", "batch");
  MonitorNode& a = tree.root().child("a", "run");
  MonitorNode& b = tree.root().child("b", "run");
  for (MonitorNode* node : {&a, &b}) {
    node->metric("misses", Reducer::kSum);
    node->metric("refs", Reducer::kSum);
    node->ratio("miss_rate", "misses", "refs", 1.0, /*alpha=*/1.0);
  }
  a.input("misses", 50.0);
  a.input("refs", 100.0);  // child rate 0.5
  b.input("misses", 10.0);
  b.input("refs", 900.0);  // child rate ~0.011
  tree.sample();
  // 60/1000, not 0.5 + 0.011 and not their mean.
  EXPECT_DOUBLE_EQ(tree.root().find("miss_rate")->window, 0.06);
  EXPECT_DOUBLE_EQ(tree.root().find("misses")->value, 60.0);
}

TEST(MonitorTree, OpenMetricsExpositionIsStable) {
  MonitorTree tree("batch", "batch");
  MonitorNode& run = tree.root().child("run0", "run");
  run.metric("refs", Reducer::kSum);
  run.input("refs", 42.0);
  tree.sample();
  std::ostringstream out;
  telemetry::write_openmetrics(out, tree);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE hpm_monitor gauge"), std::string::npos);
  EXPECT_NE(
      text.find("hpm_monitor{node=\"batch\",kind=\"batch\",metric=\"refs\","
                "reducer=\"sum\"} 42"),
      std::string::npos);
  EXPECT_NE(
      text.find("hpm_monitor{node=\"batch/run0\",kind=\"run\",metric=\"refs\","
                "reducer=\"sum\"} 42"),
      std::string::npos);
  // OpenMetrics text expositions end with the EOF marker.
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

// -- hpm.live.v1 streaming ---------------------------------------------------

std::vector<RunSpec> tiny_sweep() {
  RunConfig sample_cfg;
  sample_cfg.machine.cache.size_bytes = 128 * 1024;
  sample_cfg.tool = ToolKind::kSampler;
  sample_cfg.sampler.period = 1'999;

  RunConfig none_cfg;
  none_cfg.machine.cache.size_bytes = 128 * 1024;

  return cross_specs({"synthetic"},
                     {{"none", none_cfg}, {"sample", sample_cfg}},
                     [](const std::string&) {
                       workloads::WorkloadOptions options;
                       options.scale = 0.25;
                       options.iterations = 4;
                       return options;
                     });
}

struct LiveCapture {
  std::string jsonl;
  BatchResult batch;
};

LiveCapture run_live(unsigned jobs, std::uint64_t every_refs) {
  const auto specs = tiny_sweep();
  std::ostringstream out;
  JsonlSink sink(out);
  LiveStreamer streamer(
      {.sink = &sink, .every_refs = every_refs, .include_build_meta = false});
  BatchRunner::Options options;
  options.jobs = jobs;
  options.observer = &streamer;
  options.live_sink = &sink;
  options.live_every_refs = every_refs;
  LiveCapture capture;
  capture.batch = BatchRunner(options).run(specs);
  capture.jsonl = out.str();
  return capture;
}

std::vector<std::string> live_lines(const std::string& jsonl) {
  std::vector<std::string> lines;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"hpm.live.v1\"") != std::string::npos) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(LiveStream, SortedStreamIsIdenticalAcrossWorkerCounts) {
  const auto specs = tiny_sweep();
  constexpr std::uint64_t kEvery = 20'000;

  auto capture = [&](unsigned jobs) {
    std::ostringstream out;
    JsonlSink sink(out);
    LiveStreamer streamer(
        {.sink = &sink, .every_refs = kEvery, .include_build_meta = false});
    BatchRunner::Options options;
    options.jobs = jobs;
    options.observer = &streamer;
    options.live_sink = &sink;
    options.live_every_refs = kEvery;
    const auto batch = BatchRunner(options).run(specs);
    EXPECT_EQ(batch.metrics.failed, 0u);
    return live_lines(out.str());
  };

  auto serial = capture(1);
  auto parallel = capture(4);
  ASSERT_FALSE(serial.empty());
  // Live lines carry no worker identity, so the streams are permutations
  // of each other: sorted, they must match byte for byte.
  std::sort(serial.begin(), serial.end());
  std::sort(parallel.begin(), parallel.end());
  EXPECT_EQ(serial, parallel);
}

TEST(LiveStream, StreamingLeavesExportsByteIdentical) {
  const auto specs = tiny_sweep();

  BatchRunner::Options silent_options;
  silent_options.jobs = 2;
  const auto silent = BatchRunner(silent_options).run(specs);

  std::ostringstream out;
  JsonlSink sink(out);
  LiveStreamer streamer({.sink = &sink, .every_refs = 20'000});
  BatchRunner::Options live_options;
  live_options.jobs = 2;
  live_options.observer = &streamer;
  live_options.live_sink = &sink;
  live_options.live_every_refs = 20'000;
  const auto live = BatchRunner(live_options).run(specs);

  JsonExportOptions no_timing;
  no_timing.include_timing = false;
  EXPECT_EQ(to_json(silent, no_timing), to_json(live, no_timing));
  EXPECT_FALSE(live_lines(out.str()).empty());
}

TEST(LiveStream, StreamStartCarriesVersionedMeta) {
  const auto lines = live_lines(run_live(1, 50'000).jsonl);
  ASSERT_FALSE(lines.empty());
  const auto start = JsonValue::parse(lines.front());
  EXPECT_EQ(start.at("type").str(), "hpm.live.v1");
  EXPECT_EQ(start.at("event").str(), "stream_start");
  EXPECT_EQ(start.at("every_refs").uint(), 50'000u);
  const auto& schemas = start.at("meta").at("schemas");
  EXPECT_EQ(schemas.at("hpm.live").uint(), 1u);
  EXPECT_EQ(schemas.at("hpm.batch").uint(), 4u);
  // include_build_meta=false keeps the volatile build block out.
  EXPECT_EQ(start.at("meta").find("build"), nullptr);
}

TEST(LiveStream, WindowsAreMonotoneAndTotalsMatchTheBatch) {
  const auto capture = run_live(1, 20'000);
  ASSERT_EQ(capture.batch.metrics.failed, 0u);

  std::map<std::size_t, std::uint64_t> last_seq;
  std::map<std::size_t, double> last_refs;
  std::map<std::size_t, const JsonValue*> totals;
  std::vector<JsonValue> events;
  for (const auto& line : live_lines(capture.jsonl)) {
    events.push_back(JsonValue::parse(line));
  }
  bool saw_rollup = false;
  for (const auto& event : events) {
    const std::string kind = event.at("event").str();
    if (kind == "window") {
      const auto index = static_cast<std::size_t>(event.at("index").uint());
      EXPECT_EQ(event.at("seq").uint(), last_seq[index] + 1);
      last_seq[index] = event.at("seq").uint();
      EXPECT_GT(event.at("refs").number(), last_refs[index]);
      last_refs[index] = event.at("refs").number();
      const auto& window = event.at("window");
      EXPECT_GE(window.at("miss_rate").number(), 0.0);
      EXPECT_LE(window.at("miss_rate").number(), 1.0);
    } else if (kind == "run_total") {
      const auto index = static_cast<std::size_t>(event.at("index").uint());
      totals[index] = &event;
    } else if (kind == "batch_rollup") {
      saw_rollup = true;
      // The rollup sums every run's cumulative counters.
      double expected_refs = 0.0;
      for (const auto& item : capture.batch.items) {
        expected_refs += static_cast<double>(item.result.stats.app_refs);
      }
      EXPECT_DOUBLE_EQ(event.at("refs").number(), expected_refs);
      EXPECT_EQ(event.at("runs").uint(), capture.batch.items.size());
    }
  }
  EXPECT_TRUE(saw_rollup);
  ASSERT_EQ(totals.size(), capture.batch.items.size());
  for (std::size_t i = 0; i < capture.batch.items.size(); ++i) {
    const auto& stats = capture.batch.items[i].result.stats;
    const JsonValue& total = *totals.at(i);
    EXPECT_EQ(total.at("refs").uint(), stats.app_refs);
    EXPECT_EQ(total.at("interrupts").uint(), stats.interrupts);
    EXPECT_GE(total.at("windows").uint(), 1u);
  }
}

TEST(LiveStream, BatchTreeRollsUpEveryRunForOpenMetrics) {
  const auto specs = tiny_sweep();
  std::ostringstream out;
  JsonlSink sink(out);
  LiveStreamer streamer({.sink = &sink, .every_refs = 50'000});
  BatchRunner::Options options;
  options.observer = &streamer;
  options.live_sink = &sink;
  options.live_every_refs = 50'000;
  const auto batch = BatchRunner(options).run(specs);
  ASSERT_EQ(batch.metrics.failed, 0u);

  double expected_refs = 0.0;
  for (const auto& item : batch.items) {
    expected_refs += static_cast<double>(item.result.stats.app_refs);
  }
  const auto& root = streamer.batch_tree().root();
  ASSERT_NE(root.find("refs"), nullptr);
  EXPECT_DOUBLE_EQ(root.find("refs")->value, expected_refs);
  EXPECT_EQ(root.children().size(), batch.items.size());

  std::ostringstream exposition;
  telemetry::write_openmetrics(exposition, streamer.batch_tree());
  EXPECT_NE(exposition.str().find("metric=\"miss_rate\""), std::string::npos);
}

TEST(ObserverList, ForwardsToEveryObserverInOrder) {
  struct Recorder final : BatchObserver {
    std::vector<std::string>* events;
    std::string tag;
    void on_batch_start(std::size_t, std::size_t, unsigned) override {
      events->push_back(tag + ":batch_start");
    }
    void on_batch_finish(const BatchMetrics&) override {
      events->push_back(tag + ":batch_finish");
    }
  };
  std::vector<std::string> events;
  Recorder first;
  first.events = &events;
  first.tag = "a";
  Recorder second;
  second.events = &events;
  second.tag = "b";
  ObserverList list;
  list.add(&first);
  list.add(nullptr);  // ignored
  list.add(&second);
  list.on_batch_start(1, 0, 1);
  list.on_batch_finish({});
  EXPECT_EQ(events, (std::vector<std::string>{
                        "a:batch_start", "b:batch_start",
                        "a:batch_finish", "b:batch_finish"}));
}

}  // namespace
}  // namespace hpm::harness
