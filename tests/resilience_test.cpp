// Hardened-harness contract: outcomes classify how each run ended, only
// TransientError is retried, budget exhaustion maps to kTimedOut, and an
// interrupted sweep resumes from its checkpoint journal to a final JSON
// document byte-identical to the uninterrupted run's.
#include "harness/resilience.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/batch.hpp"
#include "harness/experiment.hpp"
#include "harness/json_export.hpp"

namespace hpm::harness {
namespace {

std::vector<RunSpec> tiny_sweep() {
  RunConfig config;
  config.machine.cache.size_bytes = 128 * 1024;
  config.tool = ToolKind::kSampler;
  config.sampler.period = 1'999;
  return cross_specs({"tomcatv", "mgrid"}, {{"sample", config}},
                     [](const std::string&) {
                       workloads::WorkloadOptions options;
                       options.scale = 0.25;
                       options.iterations = 2;
                       return options;
                     });
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

TEST(RunOutcomeNames, RoundTrip) {
  for (const RunOutcome outcome :
       {RunOutcome::kOk, RunOutcome::kFailed, RunOutcome::kTimedOut,
        RunOutcome::kRetried}) {
    EXPECT_EQ(parse_run_outcome(run_outcome_name(outcome)), outcome);
  }
  EXPECT_THROW((void)parse_run_outcome("bogus"), std::invalid_argument);
}

TEST(RetryPolicy, BackoffGrowsExponentially) {
  RetryPolicy policy;
  policy.backoff_base_seconds = 0.05;
  policy.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1), 0.05);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(2), 0.10);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(3), 0.20);
}

TEST(BatchResilience, TransientErrorIsRetriedUntilSuccess) {
  auto specs = tiny_sweep();
  std::atomic<unsigned> failures{0};
  BatchRunner::Options options;
  options.jobs = 2;
  options.resilience.retry.max_attempts = 3;
  options.resilience.retry.backoff_base_seconds = 0.0;  // no test sleeps
  options.runner = [&](const RunSpec& spec, std::size_t index) {
    if (index == 0 && failures.fetch_add(1) == 0) {
      throw TransientError("injected blip");
    }
    return run_experiment(spec.config, spec.workload, spec.options);
  };

  const auto batch = BatchRunner(options).run(specs);
  ASSERT_EQ(batch.items.size(), specs.size());
  EXPECT_TRUE(batch.items[0].ok);
  EXPECT_EQ(batch.items[0].outcome, RunOutcome::kRetried);
  EXPECT_EQ(batch.items[0].attempts, 2u);
  EXPECT_TRUE(batch.items[0].error.empty());
  EXPECT_EQ(batch.items[1].outcome, RunOutcome::kOk);
  EXPECT_EQ(batch.items[1].attempts, 1u);
  EXPECT_EQ(batch.metrics.failed, 0u);
}

TEST(BatchResilience, TransientErrorExhaustsIntoFailure) {
  auto specs = tiny_sweep();
  BatchRunner::Options options;
  options.jobs = 1;
  options.resilience.retry.max_attempts = 2;
  options.resilience.retry.backoff_base_seconds = 0.0;
  options.runner = [&](const RunSpec& spec, std::size_t index) {
    if (index == 0) throw TransientError("always down");
    return run_experiment(spec.config, spec.workload, spec.options);
  };

  const auto batch = BatchRunner(options).run(specs);
  EXPECT_FALSE(batch.items[0].ok);
  EXPECT_EQ(batch.items[0].outcome, RunOutcome::kFailed);
  EXPECT_EQ(batch.items[0].attempts, 2u);
  EXPECT_NE(batch.items[0].error.find("always down"), std::string::npos);
}

TEST(BatchResilience, NonTransientErrorFailsWithoutRetry) {
  auto specs = tiny_sweep();
  BatchRunner::Options options;
  options.jobs = 1;
  options.resilience.retry.max_attempts = 5;
  options.runner = [&](const RunSpec& spec, std::size_t index) {
    if (index == 1) throw std::runtime_error("deterministic bug");
    return run_experiment(spec.config, spec.workload, spec.options);
  };

  const auto batch = BatchRunner(options).run(specs);
  EXPECT_FALSE(batch.items[1].ok);
  EXPECT_EQ(batch.items[1].outcome, RunOutcome::kFailed);
  EXPECT_EQ(batch.items[1].attempts, 1u);
}

TEST(BatchResilience, CycleBudgetMapsToTimedOutAndIsNeverRetried) {
  auto specs = tiny_sweep();
  specs[0].config.machine.max_cycles = 10'000;  // far below the run's cost
  BatchRunner::Options options;
  options.jobs = 1;
  options.resilience.retry.max_attempts = 3;  // must NOT apply to budgets

  const auto batch = BatchRunner(options).run(specs);
  EXPECT_FALSE(batch.items[0].ok);
  EXPECT_EQ(batch.items[0].outcome, RunOutcome::kTimedOut);
  EXPECT_EQ(batch.items[0].attempts, 1u);
  EXPECT_NE(batch.items[0].error.find("cycle"), std::string::npos);
  EXPECT_TRUE(batch.items[1].ok);
}

TEST(Checkpoint, JournalRoundTripsItems) {
  const auto specs = tiny_sweep();
  const std::string path = temp_path("journal_roundtrip.jsonl");
  BatchRunner::Options options;
  options.jobs = 1;
  options.resilience.checkpoint_path = path;

  const auto batch = BatchRunner(options).run(specs);
  const auto load = load_checkpoint(path);
  EXPECT_EQ(load.fingerprint, spec_fingerprint(specs));
  EXPECT_EQ(load.total, specs.size());
  ASSERT_EQ(load.entries.size(), specs.size());
  for (const auto& entry : load.entries) {
    EXPECT_EQ(entry.key, checkpoint_key(specs[entry.index]));
    // Each journal line round-trips to the item the runner produced.
    const BatchItem parsed = parse_batch_item(entry.item_json);
    const JsonExportOptions stable{.include_timing = false};
    EXPECT_EQ(to_json(parsed, stable),
              to_json(batch.items[entry.index], stable));
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedTrailingLineIsTolerated) {
  const auto specs = tiny_sweep();
  const std::string path = temp_path("journal_truncated.jsonl");
  BatchRunner::Options options;
  options.jobs = 1;
  options.resilience.checkpoint_path = path;
  (void)BatchRunner(options).run(specs);

  // Chop the file mid-way through its final line (a mid-write kill).
  std::string contents = read_file(path);
  ASSERT_GT(contents.size(), 40u);
  contents.resize(contents.size() - 25);
  std::ofstream(path, std::ios::trunc) << contents;

  const auto load = load_checkpoint(path);
  EXPECT_EQ(load.entries.size(), specs.size() - 1);
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadRejectsMissingOrForeignFiles) {
  EXPECT_THROW((void)load_checkpoint(temp_path("nonexistent.jsonl")),
               std::runtime_error);
  const std::string path = temp_path("journal_foreign.jsonl");
  std::ofstream(path) << "{\"schema\":\"other.v9\"}\n";
  EXPECT_THROW((void)load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeProducesIdenticalFinalJson) {
  const auto specs = tiny_sweep();
  const JsonExportOptions stable{.include_timing = false};

  // Ground truth: the uninterrupted sweep.
  const std::string full_path = temp_path("journal_full.jsonl");
  BatchRunner::Options full_options;
  full_options.jobs = 1;
  full_options.resilience.checkpoint_path = full_path;
  const auto full = BatchRunner(full_options).run(specs);
  const std::string expected = to_json(full, stable);

  // Simulate a kill after the first completed run: keep the header and
  // the first journal line only.
  const std::string partial_path = temp_path("journal_partial.jsonl");
  {
    std::istringstream in(read_file(full_path));
    std::ofstream out(partial_path, std::ios::trunc);
    std::string line;
    for (int kept = 0; kept < 2 && std::getline(in, line); ++kept) {
      out << line << '\n';
    }
  }

  const auto load = load_checkpoint(partial_path);
  ASSERT_EQ(load.entries.size(), 1u);
  BatchRunner::Options resume_options;
  resume_options.jobs = 1;
  resume_options.resilience.checkpoint_path = partial_path;
  resume_options.resume = &load;
  const auto resumed = BatchRunner(resume_options).run(specs);

  EXPECT_EQ(to_json(resumed, stable), expected);
  // The journal was extended in place and now replays to the full sweep.
  const auto reload = load_checkpoint(partial_path);
  EXPECT_EQ(reload.entries.size(), specs.size());
  std::remove(full_path.c_str());
  std::remove(partial_path.c_str());
}

TEST(Checkpoint, AppendAfterMidLineKillRepairsJournal) {
  const auto specs = tiny_sweep();
  const JsonExportOptions stable{.include_timing = false};
  const std::string path = temp_path("journal_midline.jsonl");
  BatchRunner::Options options;
  options.jobs = 1;
  options.resilience.checkpoint_path = path;
  const auto full = BatchRunner(options).run(specs);

  // Kill mid-write: the final line loses its tail AND its newline.
  std::string contents = read_file(path);
  contents.resize(contents.size() - 25);
  std::ofstream(path, std::ios::trunc) << contents;

  const auto load = load_checkpoint(path);
  ASSERT_EQ(load.entries.size(), specs.size() - 1);
  BatchRunner::Options resume_options;
  resume_options.jobs = 1;
  resume_options.resilience.checkpoint_path = path;
  resume_options.resume = &load;
  const auto resumed = BatchRunner(resume_options).run(specs);
  EXPECT_EQ(to_json(resumed, stable), to_json(full, stable));

  // The repaired journal replays every run despite the half-line mid-file.
  const auto reload = load_checkpoint(path);
  EXPECT_EQ(reload.entries.size(), specs.size());
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeRejectsFingerprintMismatch) {
  const auto specs = tiny_sweep();
  const std::string path = temp_path("journal_mismatch.jsonl");
  BatchRunner::Options options;
  options.jobs = 1;
  options.resilience.checkpoint_path = path;
  (void)BatchRunner(options).run(specs);

  auto other = tiny_sweep();
  other[0].options.seed ^= 0xdead;
  const auto load = load_checkpoint(path);
  BatchRunner::Options resume_options;
  resume_options.resume = &load;
  EXPECT_THROW((void)BatchRunner(resume_options).run(other),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(JsonRoundTrip, ExactSixtyFourBitSeedsSurvive) {
  auto specs = tiny_sweep();
  specs.resize(1);
  // A seed above 2^53 would be corrupted by a double-typed JSON reader.
  specs[0].options.seed = (std::uint64_t{1} << 60) + 7;
  BatchRunner::Options options;
  options.jobs = 1;
  const auto batch = BatchRunner(options).run(specs);

  const JsonExportOptions compact{.include_timing = true, .indent = 0};
  const std::string once = to_json(batch.items[0], compact);
  const BatchItem parsed = parse_batch_item(once);
  EXPECT_EQ(parsed.spec.options.seed, specs[0].options.seed);
  EXPECT_EQ(to_json(parsed, compact), once);
}

}  // namespace
}  // namespace hpm::harness
