#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/prng.hpp"
#include "workloads/synthetic.hpp"

namespace hpm::trace {
namespace {

sim::MachineConfig small_machine() {
  sim::MachineConfig c;
  c.cache.size_bytes = 32 * 1024;
  return c;
}

TEST(Trace, AppendAndCounts) {
  Trace trace;
  trace.append_load(0x100);
  trace.append_store(0x140);
  trace.append_exec(10);
  trace.append_exec(5);  // coalesces
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.reference_count(), 2u);
  EXPECT_EQ(trace.instruction_count(), 17u);  // 2 refs + 15 exec
  EXPECT_EQ(trace.events()[2].count, 15u);
}

TEST(Trace, SaveLoadRoundTrip) {
  Trace trace;
  util::Xoshiro256 rng(5);
  sim::Addr addr = 0x141000000ULL;
  for (int i = 0; i < 5000; ++i) {
    addr += rng.next_below(4096);
    addr -= rng.next_below(2048);
    if (rng.next_below(2) == 0) {
      trace.append_load(addr);
    } else {
      trace.append_store(addr);
    }
    if (i % 7 == 0) trace.append_exec(rng.next_below(100) + 1);
  }
  std::stringstream ss;
  trace.save(ss);
  const Trace loaded = Trace::load(ss);
  EXPECT_EQ(trace, loaded);
}

TEST(Trace, CompactEncoding) {
  // Sequential streaming should cost ~2-3 bytes per event.
  Trace trace;
  for (int i = 0; i < 10'000; ++i) {
    trace.append_load(0x141000000ULL + static_cast<sim::Addr>(i) * 64);
  }
  std::stringstream ss;
  trace.save(ss);
  EXPECT_LT(ss.str().size(), 10'000u * 4);
}

TEST(Trace, RejectsGarbage) {
  std::stringstream ss("not a trace");
  EXPECT_THROW((void)Trace::load(ss), std::runtime_error);
  std::stringstream truncated;
  Trace t;
  t.append_load(1);
  t.save(truncated);
  std::string bytes = truncated.str();
  bytes.resize(bytes.size() - 1);
  std::stringstream cut(bytes);
  EXPECT_THROW((void)Trace::load(cut), std::runtime_error);
}

TEST(Trace, FileRoundTrip) {
  Trace trace;
  trace.append_load(0x1000);
  trace.append_exec(3);
  trace.append_store(0x2000);
  const std::string path = ::testing::TempDir() + "/hpm_trace_test.bin";
  trace.save_file(path);
  EXPECT_EQ(Trace::load_file(path), trace);
  std::remove(path.c_str());
  EXPECT_THROW((void)Trace::load_file(path), std::runtime_error);
}

TEST(Recorder, CapturesApplicationEvents) {
  sim::Machine machine(small_machine());
  const sim::Addr a = machine.address_space().define_static("a", 4096);
  Recorder recorder(machine);
  recorder.start();
  machine.store<double>(a, 1.0);
  machine.exec(25);
  (void)machine.load<double>(a);
  recorder.stop();
  machine.exec(99);  // not recorded

  const Trace& trace = recorder.trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.events()[0].kind, EventKind::kStore);
  EXPECT_EQ(trace.events()[0].addr, a);
  EXPECT_EQ(trace.events()[1].kind, EventKind::kExec);
  EXPECT_EQ(trace.events()[1].count, 25u);
  EXPECT_EQ(trace.events()[2].kind, EventKind::kLoad);
}

TEST(Recorder, LifetimeContractIsEnforced) {
  sim::Machine machine(small_machine());
  const sim::Addr a = machine.address_space().define_static("a", 4096);
  Recorder recorder(machine);
  recorder.start();
  EXPECT_TRUE(recorder.running());
  EXPECT_THROW(recorder.start(), std::logic_error);  // already recording

  machine.store<double>(a, 1.0);
  const Trace trace = recorder.take();  // take() implies stop()
  EXPECT_FALSE(recorder.running());
  EXPECT_EQ(trace.size(), 1u);
  machine.store<double>(a, 2.0);  // not observed: hooks are gone
  EXPECT_TRUE(recorder.trace().empty());

  // The trace was moved out; re-recording into the same Recorder would
  // silently produce a partial trace, so it is an error.
  EXPECT_THROW(recorder.start(), std::logic_error);
}

TEST(Recorder, StopIsIdempotentAndDestructionWhileRecordingIsSafe) {
  sim::Machine machine(small_machine());
  const sim::Addr a = machine.address_space().define_static("a", 4096);
  {
    Recorder recorder(machine);
    recorder.stop();  // never started: no-op
    recorder.start();
    machine.store<double>(a, 1.0);
    recorder.stop();
    recorder.stop();  // second stop: no-op
    recorder.start();  // stop() (unlike take()) permits re-recording
    // Destroyed mid-recording while the machine still lives: the
    // destructor must detach the observers.
  }
  // A dangling observer would fault (or record into freed memory) here.
  machine.store<double>(a, 2.0);
  (void)machine.load<double>(a);
}

TEST(Recorder, IgnoresToolPlaneTraffic) {
  sim::Machine machine(small_machine());
  const sim::Addr shadow = machine.address_space().alloc_instr(64);
  Recorder recorder(machine);
  recorder.start();
  machine.tool_touch(shadow);
  machine.tool_exec(100);
  recorder.stop();
  EXPECT_TRUE(recorder.trace().empty());
}

TEST(Replay, ReproducesCacheBehaviourExactly) {
  // Record a real workload; replaying the trace on a fresh machine with the
  // same cache must produce identical miss/cycle counts.
  workloads::SyntheticSpec spec;
  spec.lockstep = true;
  spec.arrays = {{"P", 128 * 1024}, {"Q", 64 * 1024}};
  spec.phases.push_back({{1, 1}, 1});
  spec.iterations = 4;

  sim::Machine recording_machine(small_machine());
  workloads::SyntheticWorkload workload(spec);
  workload.setup(recording_machine);
  Recorder recorder(recording_machine);
  recorder.start();
  workload.run(recording_machine);
  recorder.stop();
  const Trace trace = recorder.take();
  EXPECT_GT(trace.reference_count(), 0u);

  sim::Machine replay_machine(small_machine());
  replay(trace, replay_machine);
  EXPECT_EQ(replay_machine.stats().app_refs,
            recording_machine.stats().app_refs);
  EXPECT_EQ(replay_machine.stats().app_misses,
            recording_machine.stats().app_misses);
  EXPECT_EQ(replay_machine.stats().app_cycles,
            recording_machine.stats().app_cycles);
}

TEST(Replay, DifferentCacheGeometryChangesMisses) {
  // The point of traces: re-measure one run under another configuration.
  Trace trace;
  for (int sweep = 0; sweep < 4; ++sweep) {
    for (sim::Addr off = 0; off < (64 << 10); off += 64) {
      trace.append_load(0x120000000ULL + off);
    }
  }
  sim::MachineConfig small = small_machine();  // 32 KB: array thrashes
  sim::Machine m_small(small);
  replay(trace, m_small);
  sim::MachineConfig big = small_machine();
  big.cache.size_bytes = 256 * 1024;  // array fits
  sim::Machine m_big(big);
  replay(trace, m_big);
  EXPECT_GT(m_small.stats().app_misses, 3u * m_big.stats().app_misses);
}

TEST(Replay, DrivesPmuAndInterrupts) {
  Trace trace;
  for (sim::Addr off = 0; off < (32 << 10); off += 64) {
    trace.append_load(0x120000000ULL + off);
  }
  sim::Machine machine(small_machine());
  struct Count : sim::InterruptHandler {
    int fired = 0;
    void on_interrupt(sim::Machine& m, sim::InterruptKind) override {
      ++fired;
      m.arm_miss_overflow(100);
    }
  } handler;
  machine.set_handler(&handler);
  machine.arm_miss_overflow(100);
  replay(trace, machine);
  EXPECT_EQ(handler.fired, 5);  // 512 misses / 100
}

}  // namespace
}  // namespace hpm::trace
