// Tests for the PRNGs, table rendering, and CLI parsing.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace hpm::util {
namespace {

// -- PRNG ---------------------------------------------------------------

TEST(SplitMix64, DeterministicAndSeedSensitive) {
  SplitMix64 a(1);
  SplitMix64 b(1);
  SplitMix64 c(2);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 a2(1);
  EXPECT_NE(a2.next(), c.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference value for seed 1234567 (standard splitmix64).
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng.next(), 6457827717110365317ULL);
}

TEST(Xoshiro256, ReproducibleStreams) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextBelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

// -- Table ---------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"}, {Align::kLeft, Align::kRight});
  t.row().cell("alpha").cell(std::uint64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha |    42 |"), std::string::npos);
  EXPECT_NE(s.find("| b     |  3.14 |"), std::string::npos);
}

TEST(Table, BlankCellsAndSeparators) {
  Table t({"a", "b"});
  t.row().cell("x").blank();
  t.separator();
  t.row().cell("y").cell("z");
  const std::string s = t.to_string();
  // Header rule + separator + bottom = at least 4 rules.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_GE(rules, 4u);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "note"});
  t.row().cell("plain").cell("with,comma");
  t.row().cell("q\"uote").cell("line");
  std::ostringstream os;
  t.write_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"q\"\"uote\""), std::string::npos);
  EXPECT_NE(s.find("name,note\n"), std::string::npos);
}

TEST(Table, MissingTrailingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.row().cell("only");
  EXPECT_NO_THROW((void)t.to_string());
}

TEST(LogBar, ScalesLogarithmically) {
  const auto tiny = log_bar(0.001, 0.001, 10.0, 40);
  const auto mid = log_bar(0.1, 0.001, 10.0, 40);
  const auto big = log_bar(10.0, 0.001, 10.0, 40);
  EXPECT_LT(tiny.size(), mid.size());
  EXPECT_LT(mid.size(), big.size());
  EXPECT_EQ(big.size(), 40u);
  EXPECT_TRUE(log_bar(0.0, 0.001, 10.0, 40).empty());
  EXPECT_TRUE(log_bar(-1.0, 0.001, 10.0, 40).empty());
}

// -- CLI ---------------------------------------------------------------

TEST(Cli, ParsesFlagsInBothForms) {
  const char* argv[] = {"prog", "--alpha=5", "--beta", "7", "--gamma"};
  Cli cli(5, argv, {"alpha", "beta", "gamma"});
  ASSERT_TRUE(cli.ok());
  EXPECT_EQ(cli.get_int("alpha", 0), 5);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("gamma", false));
  EXPECT_FALSE(cli.has("delta"));
  EXPECT_EQ(cli.get_int("delta", 9), 9);
}

TEST(Cli, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "--oops=1"};
  Cli cli(2, argv, {"alpha"});
  EXPECT_FALSE(cli.ok());
  EXPECT_NE(cli.error().find("oops"), std::string::npos);
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "one", "--alpha=2", "two"};
  Cli cli(4, argv, {"alpha"});
  ASSERT_TRUE(cli.ok());
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
  EXPECT_EQ(cli.positional()[1], "two");
}

TEST(Cli, TypedGetters) {
  const char* argv[] = {"prog", "--u=18446744073709551615", "--d=2.5",
                        "--b=off", "--hex=0x40"};
  Cli cli(5, argv, {"u", "d", "b", "hex"});
  ASSERT_TRUE(cli.ok());
  EXPECT_EQ(cli.get_uint("u", 0), ~0ULL);
  EXPECT_EQ(cli.get_double("d", 0), 2.5);
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_EQ(cli.get_uint("hex", 0), 0x40u);
  EXPECT_EQ(cli.get("missing", "fallback"), "fallback");
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=on",
                        "--e=false"};
  Cli cli(6, argv, {"a", "b", "c", "d", "e"});
  ASSERT_TRUE(cli.ok());
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_TRUE(cli.get_bool("d", false));
  EXPECT_FALSE(cli.get_bool("e", true));
}

}  // namespace
}  // namespace hpm::util
