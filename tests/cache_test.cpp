#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/memory_hierarchy.hpp"
#include "util/prng.hpp"

namespace hpm::sim {
namespace {

CacheConfig small_config(ReplacementPolicy policy = ReplacementPolicy::kLru) {
  CacheConfig c;
  c.size_bytes = 8 * 1024;  // 8 KB: 16 sets x 8 ways x 64 B
  c.line_size = 64;
  c.associativity = 8;
  c.policy = policy;
  return c;
}

TEST(CacheConfig, ValidatesGeometry) {
  EXPECT_TRUE(CacheConfig{}.valid());  // the paper's 2 MB default
  CacheConfig c = small_config();
  EXPECT_TRUE(c.valid());
  c.line_size = 48;
  EXPECT_FALSE(c.valid());
  c = small_config();
  c.size_bytes = 3000;
  EXPECT_FALSE(c.valid());
  c = small_config();
  c.associativity = 0;
  EXPECT_FALSE(c.valid());
}

TEST(CacheConfig, NumSets) {
  CacheConfig c;
  EXPECT_EQ(c.num_sets(), 2ULL * 1024 * 1024 / (64 * 8));
  EXPECT_EQ(small_config().num_sets(), 16u);
}

TEST(Cache, RejectsBadConfig) {
  CacheConfig c = small_config();
  c.line_size = 100;
  EXPECT_THROW(Cache cache(c), std::invalid_argument);
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(small_config());
  EXPECT_FALSE(cache.access(0x1000, false).hit);
  EXPECT_TRUE(cache.access(0x1000, false).hit);
  EXPECT_TRUE(cache.access(0x103f, false).hit);   // same line
  EXPECT_FALSE(cache.access(0x1040, false).hit);  // next line
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, FillsAllWaysBeforeEvicting) {
  auto config = small_config();
  Cache cache(config);
  const std::uint64_t set_stride = config.num_sets() * config.line_size;
  // 8 distinct lines mapping to set 0: all cold misses, no eviction.
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto r = cache.access(i * set_stride, false);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.evicted);
  }
  // All 8 hit now.
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(cache.access(i * set_stride, false).hit);
  }
  // A 9th line evicts.
  EXPECT_TRUE(cache.access(8 * set_stride, false).evicted);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  auto config = small_config();
  Cache cache(config);
  const std::uint64_t stride = config.num_sets() * config.line_size;
  for (std::uint32_t i = 0; i < 8; ++i) (void)cache.access(i * stride, false);
  // Touch 0..6, leaving 7 least recently used.
  for (std::uint32_t i = 0; i < 7; ++i) (void)cache.access(i * stride, false);
  const auto r = cache.access(8 * stride, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 7 * stride);
  EXPECT_FALSE(cache.probe(7 * stride));
  EXPECT_TRUE(cache.probe(0));
}

TEST(Cache, FifoIgnoresHits) {
  auto config = small_config(ReplacementPolicy::kFifo);
  Cache cache(config);
  const std::uint64_t stride = config.num_sets() * config.line_size;
  for (std::uint32_t i = 0; i < 8; ++i) (void)cache.access(i * stride, false);
  // Re-touch line 0 many times; FIFO still evicts it first.
  for (int k = 0; k < 10; ++k) (void)cache.access(0, false);
  const auto r = cache.access(8 * stride, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 0u);
}

TEST(Cache, WritebackOnlyForDirtyVictims) {
  auto config = small_config();
  Cache cache(config);
  const std::uint64_t stride = config.num_sets() * config.line_size;
  (void)cache.access(0, true);  // dirty line
  for (std::uint32_t i = 1; i < 8; ++i) (void)cache.access(i * stride, false);
  const auto r = cache.access(8 * stride, false);  // evicts line 0 (LRU)
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(cache.writebacks(), 1u);
  // Clean evictions do not write back.
  for (std::uint32_t i = 9; i < 17; ++i) {
    const auto rr = cache.access(i * stride, false);
    EXPECT_FALSE(rr.writeback) << i;
  }
}

TEST(Cache, WriteHitMarksLineDirty) {
  auto config = small_config();
  Cache cache(config);
  const std::uint64_t stride = config.num_sets() * config.line_size;
  (void)cache.access(0, false);       // clean fill
  (void)cache.access(0x20, true);     // write hit dirties it
  for (std::uint32_t i = 1; i < 8; ++i) (void)cache.access(i * stride, false);
  EXPECT_TRUE(cache.access(8 * stride, false).writeback);
}

TEST(Cache, FlushEmptiesCache) {
  Cache cache(small_config());
  for (int i = 0; i < 100; ++i) (void)cache.access(i * 64, false);
  EXPECT_GT(cache.resident_lines(), 0u);
  cache.flush();
  EXPECT_EQ(cache.resident_lines(), 0u);
  EXPECT_FALSE(cache.probe(0));
}

TEST(Cache, StreamingLargerThanCacheMissesEveryLine) {
  // The workload design relies on this: an array bigger than the cache,
  // swept repeatedly, misses every line on every sweep.
  auto config = small_config();
  Cache cache(config);
  const std::uint64_t lines = 4 * config.size_bytes / config.line_size;
  for (int sweep = 0; sweep < 3; ++sweep) {
    const std::uint64_t before = cache.misses();
    for (std::uint64_t i = 0; i < lines; ++i) {
      (void)cache.access(i * config.line_size, false);
    }
    EXPECT_EQ(cache.misses() - before, lines) << "sweep " << sweep;
  }
}

TEST(Cache, WorkingSetWithinCacheHitsAfterWarmup) {
  auto config = small_config();
  Cache cache(config);
  const std::uint64_t lines = config.size_bytes / config.line_size / 2;
  for (std::uint64_t i = 0; i < lines; ++i) {
    (void)cache.access(i * config.line_size, false);
  }
  const std::uint64_t before = cache.misses();
  for (int sweep = 0; sweep < 5; ++sweep) {
    for (std::uint64_t i = 0; i < lines; ++i) {
      (void)cache.access(i * config.line_size, false);
    }
  }
  EXPECT_EQ(cache.misses(), before);
}

class CachePolicyTest
    : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(CachePolicyTest, HitRateIsSaneOnRandomTraffic) {
  auto config = small_config(GetParam());
  Cache cache(config);
  util::Xoshiro256 rng(123);
  // Working set of 2x the cache: every policy should land strictly between
  // "all miss" and "all hit".
  const std::uint64_t span = 2 * config.size_bytes;
  for (int i = 0; i < 50'000; ++i) {
    (void)cache.access(rng.next_below(span), (i & 3) == 0);
  }
  EXPECT_GT(cache.hits(), 10'000u);
  EXPECT_GT(cache.misses(), 5'000u);
}

TEST_P(CachePolicyTest, ResidentLinesNeverExceedCapacity) {
  auto config = small_config(GetParam());
  Cache cache(config);
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 20'000; ++i) {
    (void)cache.access(rng.next_below(1 << 20), false);
  }
  EXPECT_LE(cache.resident_lines(), config.size_bytes / config.line_size);
}

TEST_P(CachePolicyTest, EvictionTargetsTheAccessedSetOnly) {
  auto config = small_config(GetParam());
  Cache cache(config);
  const std::uint64_t stride = config.num_sets() * config.line_size;
  // Fill set 0 and set 1.
  for (std::uint32_t i = 0; i < 8; ++i) {
    (void)cache.access(i * stride, false);
    (void)cache.access(64 + i * stride, false);
  }
  // Thrash set 0; set 1 lines stay resident.
  for (std::uint32_t i = 8; i < 32; ++i) (void)cache.access(i * stride, false);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(cache.probe(64 + i * stride)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyTest,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kFifo,
                                           ReplacementPolicy::kRandom,
                                           ReplacementPolicy::kTreePlru));

TEST(Cache, PlruRequiresPow2Associativity) {
  CacheConfig c = small_config(ReplacementPolicy::kTreePlru);
  EXPECT_NO_THROW(Cache cache(c));
  // 8 KB with 3-way associativity is not even a valid geometry; use a
  // geometry that is valid but has non-pow2 ways? Sets must be pow2, so
  // pick size accordingly: 16 sets * 3 ways * 64 B = 3072 B (not pow2 size)
  // -> invalid anyway. PLRU's constraint is therefore covered by valid().
  c.associativity = 3;
  EXPECT_THROW(Cache cache(c), std::invalid_argument);
}

TEST(Cache, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    auto config = small_config(ReplacementPolicy::kRandom);
    config.random_seed = seed;
    Cache cache(config);
    util::Xoshiro256 rng(42);
    std::uint64_t misses = 0;
    for (int i = 0; i < 30'000; ++i) {
      misses += cache.access(rng.next_below(1 << 18), false).hit ? 0 : 1;
    }
    return misses;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));  // different replacement randomness
}

// -- Incremental resident-line counter ---------------------------------------

TEST(Cache, ResidentLinesTracksFillsEvictionsAndFlush) {
  auto config = small_config();  // 8 KB = 128 lines capacity
  Cache cache(config);
  const std::uint64_t capacity = config.size_bytes / config.line_size;
  // Sequential distinct lines: the first `capacity` fills land in empty
  // ways, every later fill replaces a valid line, so the counter rises to
  // capacity and stays there.
  for (std::uint64_t i = 0; i < 2 * capacity; ++i) {
    (void)cache.access(i * config.line_size, false);
    EXPECT_EQ(cache.resident_lines(), std::min(i + 1, capacity)) << i;
  }
  cache.flush();
  EXPECT_EQ(cache.resident_lines(), 0u);
  (void)cache.access(0, false);
  EXPECT_EQ(cache.resident_lines(), 1u);
}

// -- Write-through / no-allocate ---------------------------------------------

TEST(WriteThroughNoAllocate, StoreMissesBypassTheCache) {
  auto config = small_config();
  config.write_policy = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(config);
  EXPECT_FALSE(cache.access(0, true).hit);  // store miss: no fill
  EXPECT_FALSE(cache.probe(0));
  EXPECT_EQ(cache.resident_lines(), 0u);
  (void)cache.access(0, false);              // load miss fills
  EXPECT_TRUE(cache.access(0x20, true).hit); // store hit writes through
  EXPECT_EQ(cache.resident_lines(), 1u);
}

TEST(WriteThroughNoAllocate, NeverHoldsDirtyLinesSoNeverWritesBack) {
  auto config = small_config();
  config.write_policy = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(config);
  const std::uint64_t stride = config.num_sets() * config.line_size;
  (void)cache.access(0, false);    // fill clean
  (void)cache.access(0x20, true);  // store hit: written through, stays clean
  // Thrash the set far past capacity: every eviction must be clean.
  for (std::uint32_t i = 1; i < 32; ++i) {
    EXPECT_FALSE(cache.access(i * stride, false).writeback) << i;
  }
  EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(WriteThroughNoAllocate, MultiLevelWritebacksStayAtTheWriteBackLevel) {
  // Write-through L1 in front of a write-back LLC: a store miss skips the
  // L1 fill but still dirties the LLC; evicting that line later writes
  // back from the LLC only.
  CacheConfig wt = small_config();
  wt.write_policy = WritePolicy::kWriteThroughNoAllocate;
  CacheConfig wb = small_config();
  MemoryHierarchy hierarchy({{"L1", wt}, {"LLC", wb}}, kObserveLast);

  const auto miss = hierarchy.access(0, /*write=*/true);
  EXPECT_EQ(miss.hit_level, MemoryHierarchy::kMissedAll);
  EXPECT_EQ(hierarchy.level(0).resident_lines(), 0u);  // no-allocate
  EXPECT_EQ(hierarchy.level(1).resident_lines(), 1u);  // allocated dirty

  // Fill the LLC set past capacity with clean loads; the dirty store line
  // is the LRU victim and must write back exactly once, from the LLC.
  const std::uint64_t stride = wb.num_sets() * wb.line_size;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    (void)hierarchy.access(i * stride, /*write=*/false);
  }
  EXPECT_EQ(hierarchy.level(1).writebacks(), 1u);
  EXPECT_EQ(hierarchy.level(0).writebacks(), 0u);
  const auto snapshot = hierarchy.snapshot();
  EXPECT_EQ(snapshot[1].writebacks, 1u);
}

}  // namespace
}  // namespace hpm::sim
