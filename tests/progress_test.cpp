// BatchObserver / ProgressReporter: structured live-progress events and
// the guarantee that observing a sweep never changes its results.
#include "harness/progress.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "harness/json_export.hpp"

namespace hpm::harness {
namespace {

std::vector<RunSpec> tiny_sweep() {
  RunConfig sample_cfg;
  sample_cfg.machine.cache.size_bytes = 128 * 1024;
  sample_cfg.tool = ToolKind::kSampler;
  sample_cfg.sampler.period = 1'999;

  RunConfig none_cfg;
  none_cfg.machine.cache.size_bytes = 128 * 1024;

  return cross_specs({"synthetic"},
                     {{"none", none_cfg}, {"sample", sample_cfg}},
                     [](const std::string&) {
                       workloads::WorkloadOptions options;
                       options.scale = 0.25;
                       options.iterations = 4;
                       return options;
                     });
}

std::vector<JsonValue> parse_events(const std::string& jsonl) {
  std::vector<JsonValue> events;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) events.push_back(JsonValue::parse(line));
  }
  return events;
}

TEST(ProgressReporter, EmitsOneEventPerRunPhase) {
  const auto specs = tiny_sweep();
  std::ostringstream jsonl;
  ProgressReporter reporter({.jsonl_out = &jsonl});
  BatchRunner::Options options;
  options.jobs = 2;
  options.observer = &reporter;
  const auto batch = BatchRunner(options).run(specs);
  ASSERT_EQ(batch.metrics.failed, 0u);

  const auto events = parse_events(jsonl.str());
  ASSERT_EQ(events.size(), 2 + 2 * specs.size());
  EXPECT_EQ(events.front().at("event").str(), "batch_start");
  EXPECT_EQ(events.front().at("total").uint(), specs.size());
  EXPECT_EQ(events.front().at("jobs").uint(), 2u);
  EXPECT_EQ(events.back().at("event").str(), "batch_finish");
  EXPECT_EQ(events.back().at("runs").uint(), specs.size());
  EXPECT_EQ(events.back().at("failed").uint(), 0u);

  std::size_t starts = 0;
  std::size_t finishes = 0;
  std::size_t last_done = 0;
  for (const auto& event : events) {
    const std::string kind = event.at("event").str();
    if (kind == "run_start") ++starts;
    if (kind == "run_finish") {
      ++finishes;
      const std::size_t done = event.at("done").uint();
      // done is monotonically increasing under the progress mutex.
      EXPECT_GT(done, last_done);
      last_done = done;
      EXPECT_TRUE(event.at("ok").boolean());
      EXPECT_EQ(event.at("outcome").str(), "ok");
    }
  }
  EXPECT_EQ(starts, specs.size());
  EXPECT_EQ(finishes, specs.size());
  EXPECT_EQ(last_done, specs.size());
}

TEST(ProgressReporter, RetriesAreCountedAndStreamed) {
  const auto specs = tiny_sweep();
  std::ostringstream jsonl;
  ProgressReporter reporter({.jsonl_out = &jsonl});
  BatchRunner::Options options;
  options.observer = &reporter;
  options.resilience.retry.max_attempts = 3;
  options.resilience.retry.backoff_base_seconds = 0.0;
  int failures_left = 2;
  options.runner = [&](const RunSpec& spec, std::size_t index) {
    if (index == 0 && failures_left-- > 0) {
      throw TransientError("injected blip");
    }
    return run_experiment(spec.config, spec.workload, spec.options);
  };
  const auto batch = BatchRunner(options).run(specs);
  ASSERT_EQ(batch.metrics.failed, 0u);
  EXPECT_EQ(batch.items[0].outcome, RunOutcome::kRetried);
  EXPECT_EQ(batch.items[0].attempts, 3u);
  EXPECT_EQ(reporter.retries(), 2u);

  std::size_t retry_events = 0;
  for (const auto& event : parse_events(jsonl.str())) {
    if (event.at("event").str() != "run_retry") continue;
    ++retry_events;
    EXPECT_EQ(event.at("name").str(), specs[0].name);
    EXPECT_EQ(event.at("error").str(), "injected blip");
    EXPECT_EQ(event.at("attempts").uint(), retry_events);
  }
  EXPECT_EQ(retry_events, 2u);
}

TEST(ProgressReporter, StatusLineRendersAndFinishes) {
  const auto specs = tiny_sweep();
  std::ostringstream line;
  ProgressReporter reporter({.line_out = &line});
  BatchRunner::Options options;
  options.observer = &reporter;
  const auto batch = BatchRunner(options).run(specs);
  ASSERT_EQ(batch.metrics.failed, 0u);
  const std::string text = line.str();
  EXPECT_NE(text.find('\r'), std::string::npos);
  EXPECT_NE(text.find("[0/2]"), std::string::npos);
  EXPECT_NE(text.find("done in"), std::string::npos);
  // The final line is newline-terminated so the shell prompt is clean.
  EXPECT_EQ(text.back(), '\n');
}

// EMA/ETA math, driven directly so the values are exact.
TEST(ProgressReporter, EtaIsEmaTimesRemainingOverWorkers) {
  ProgressReporter reporter({.ema_alpha = 0.3});
  reporter.on_batch_start(4, 0, 2);
  EXPECT_DOUBLE_EQ(reporter.eta_seconds(), 0.0);  // no sample yet

  BatchItem item;
  item.ok = true;
  item.wall_seconds = 2.0;
  reporter.on_run_finish(1, 4, 0, item, 1);
  // First sample seeds the EMA: 2.0 * 3 remaining / 2 workers.
  EXPECT_DOUBLE_EQ(reporter.eta_seconds(), 3.0);

  item.wall_seconds = 4.0;
  reporter.on_run_finish(2, 4, 1, item, 2);
  // ema = 0.3*4 + 0.7*2 = 2.6; eta = 2.6 * 2 / 2.
  EXPECT_DOUBLE_EQ(reporter.eta_seconds(), 2.6);

  item.wall_seconds = 2.6;
  reporter.on_run_finish(3, 4, 2, item, 1);
  reporter.on_run_finish(4, 4, 3, item, 2);
  EXPECT_DOUBLE_EQ(reporter.eta_seconds(), 0.0);  // nothing remaining
}

namespace {
/// Last status line the reporter rendered (text after the final '\r').
std::string last_status_line(const std::ostringstream& out) {
  const std::string text = out.str();
  const auto pos = text.rfind('\r');
  return pos == std::string::npos ? text : text.substr(pos + 1);
}
}  // namespace

// Rendered-line pins for the ETA display fixes: minutes used to be
// *rounded* independently of the seconds remainder, so 100s rendered as
// "2m40s" and 3599.7s as "60m60s".
TEST(ProgressReporter, EtaRendersMinutesBySplittingNotRounding) {
  std::ostringstream out;
  ProgressReporter reporter({.line_out = &out, .ema_alpha = 0.3});
  reporter.on_batch_start(2, 0, 1);
  BatchItem item;
  item.ok = true;
  item.wall_seconds = 100.0;  // eta = 100 * 1 remaining / 1 worker
  reporter.on_run_finish(1, 2, 0, item, 1);
  EXPECT_NE(last_status_line(out).find("eta 1m40s"), std::string::npos)
      << last_status_line(out);
}

TEST(ProgressReporter, EtaSecondsRemainderNeverRendersSixty) {
  std::ostringstream out;
  ProgressReporter reporter({.line_out = &out, .ema_alpha = 0.3});
  reporter.on_batch_start(2, 0, 1);
  BatchItem item;
  item.ok = true;
  item.wall_seconds = 3599.7;  // rounds to 3600s: exactly 60 minutes
  reporter.on_run_finish(1, 2, 0, item, 1);
  EXPECT_NE(last_status_line(out).find("eta 60m00s"), std::string::npos)
      << last_status_line(out);
}

TEST(ProgressReporter, ZeroItemBatchRendersCleanly) {
  std::ostringstream out;
  ProgressReporter reporter({.line_out = &out});
  reporter.on_batch_start(0, 0, 1);
  // No percent (division by zero) and no "eta 0.0s" noise.
  EXPECT_EQ(last_status_line(out), "[0/0]");
}

TEST(ProgressReporter, SingleItemBatchShowsNoEtaBeforeTheFirstFinish) {
  std::ostringstream out;
  ProgressReporter reporter({.line_out = &out});
  reporter.on_batch_start(1, 0, 1);
  EXPECT_EQ(last_status_line(out), "[0/1] 0%");
  BatchItem item;
  item.ok = true;
  item.wall_seconds = 5.0;
  reporter.on_run_finish(1, 1, 0, item, 1);
  // The run was the whole batch: done == total, so still no ETA.
  EXPECT_EQ(last_status_line(out).find("eta"), std::string::npos);
}

// The acceptance gate for the whole progress feature: enabling every
// observer output leaves the exported document byte-identical to a silent
// serial run (modulo the jobs field).
TEST(ProgressReporter, ObservedParallelRunMatchesSilentSerialByteForByte) {
  const auto specs = tiny_sweep();

  BatchRunner::Options silent_options;
  silent_options.jobs = 1;
  const auto silent = BatchRunner(silent_options).run(specs);

  std::ostringstream line;
  std::ostringstream jsonl;
  ProgressReporter reporter({.line_out = &line, .jsonl_out = &jsonl});
  BatchRunner::Options observed_options;
  observed_options.jobs = 4;
  observed_options.observer = &reporter;
  const auto observed = BatchRunner(observed_options).run(specs);

  JsonExportOptions no_timing;
  no_timing.include_timing = false;
  const auto strip_jobs = [](std::string text) {
    const auto pos = text.find("\"jobs\":");
    const auto end = text.find('\n', pos);
    return text.erase(pos, end - pos);
  };
  EXPECT_EQ(strip_jobs(to_json(silent, no_timing)),
            strip_jobs(to_json(observed, no_timing)));
  EXPECT_FALSE(jsonl.str().empty());
}

}  // namespace
}  // namespace hpm::harness
