// ThreadPool shutdown semantics.  The serve drain path leans on the
// destructor contract ("queued-but-unstarted tasks still run"), so these
// pin it down explicitly, along with wait_idle racing enqueue and the
// drain-before-report exception ordering.  The whole file is label
// "property" so CI also runs it under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/thread_pool.hpp"

namespace {

using hpm::harness::ThreadPool;

TEST(ThreadPoolShutdown, DestructionRunsQueuedButUnstartedTasks) {
  // One worker, blocked on a gate, with a backlog behind it: destroying
  // the pool must execute the backlog, not drop it.  This is what lets
  // Server drain admitted jobs by resetting its pool.
  std::atomic<int> ran{0};
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  {
    ThreadPool pool(1);
    pool.submit([&, open] {
      open.wait();
      ran.fetch_add(1);
    });
    for (int i = 0; i < 32; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
    EXPECT_LT(ran.load(), 33);  // backlog cannot have finished yet
    gate.set_value();
  }  // ~ThreadPool joins after the queue is empty
  EXPECT_EQ(ran.load(), 33);
}

TEST(ThreadPoolShutdown, DestructionSurvivesThrowingQueuedTask) {
  // A task that throws during the destructor drain is captured (and then
  // discarded — nobody calls wait_idle again), never std::terminate.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("mid-drain failure"); });
    pool.submit([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolShutdown, WaitIdleRacingEnqueueNeverHangsOrDropsWork) {
  // A producer thread enqueues while the main thread repeatedly waits.
  // wait_idle only promises to cover tasks submitted before the call, so
  // the invariant under race is: no deadlock, no lost task, and a final
  // wait after the producer joins observes everything.
  constexpr int kTasks = 500;
  std::atomic<int> ran{0};
  ThreadPool pool(4);
  std::thread producer([&] {
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
      if (i % 64 == 0) std::this_thread::yield();
    }
  });
  for (int i = 0; i < 16; ++i) pool.wait_idle();
  producer.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolShutdown, ExceptionReportedOnlyAfterQueueDrains) {
  // Drain-before-report: a throwing task must not short-circuit the tasks
  // queued behind it.  wait_idle rethrows the first error once, and the
  // pool stays usable afterwards.
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("first failure wins"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  pool.submit([] { throw std::runtime_error("second failure is dropped"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle should rethrow the first task exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first failure wins");
  }
  EXPECT_EQ(ran.load(), 8);  // everything behind the thrower still ran

  // The error slot is cleared and the pool accepts new work.
  pool.submit([&] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPoolShutdown, WaitIdleCoversInFlightNotJustQueued) {
  // A popped-but-running task must still hold wait_idle: "queue empty" is
  // not "idle".  The task parks mid-execution until after wait_idle has
  // started blocking on it.
  std::atomic<bool> finished{false};
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> go = release.get_future().share();
  ThreadPool pool(2);
  pool.submit([&, go] {
    started.set_value();
    go.wait();
    finished.store(true);
  });
  started.get_future().wait();  // task is in flight, queue is empty
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.set_value();
  });
  pool.wait_idle();
  EXPECT_TRUE(finished.load());
  releaser.join();
}

}  // namespace
