// hpm::telemetry unit tests plus end-to-end checks that the telemetry
// layer observes runs without changing them: histogram bucket edges, the
// phase-timeline ring buffer, the exact Chrome trace_event serialization
// (golden snippet), tool event emission, and the batch determinism
// contract extended to exported metrics (jobs=1 == jobs=N).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "harness/batch.hpp"
#include "harness/json_export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeline.hpp"
#include "telemetry/trace_sink.hpp"

namespace hpm::telemetry {
namespace {

// -- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.counts().size(), 4u);  // 3 bounds + overflow

  h.record(0.5);  // <= 1       -> bucket 0
  h.record(1.0);  // == 1 ("le") -> bucket 0
  h.record(1.5);  //            -> bucket 1
  h.record(2.0);  // == 2       -> bucket 1
  h.record(4.0);  // == 4       -> bucket 2
  h.record(4.1);  // past last  -> overflow
  h.record(100);  //            -> overflow

  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1 + 100.0);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, NegativeAndExtremeValuesLand) {
  Histogram h({0.0, 10.0});
  h.record(-5.0);  // below first bound -> bucket 0
  h.record(1e300);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[2], 1u);  // overflow
}

// -- Registry ----------------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& b = reg.counter("b");
  Counter& a = reg.counter("a");
  b.inc(3);
  EXPECT_EQ(&reg.counter("b"), &b);  // find, not create
  EXPECT_EQ(reg.counter("b").value(), 3u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  ASSERT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_counter("a"), &a);
}

TEST(MetricsRegistry, IterationFollowsRegistrationOrderNotName) {
  MetricsRegistry reg;
  reg.counter("zebra");
  reg.counter("apple");
  reg.counter("mango");
  std::vector<std::string> order;
  reg.for_each_counter(
      [&](const std::string& name, const Counter&) { order.push_back(name); });
  EXPECT_EQ(order, (std::vector<std::string>{"zebra", "apple", "mango"}));
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstCreation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  Histogram& again = reg.histogram("h", {99.0});  // bounds ignored
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

// -- PhaseTimeline -----------------------------------------------------------

sim::MachineStats stats_at(std::uint64_t step) {
  sim::MachineStats s;
  s.app_instructions = 1000 * step;
  s.app_refs = 100 * step;
  s.app_misses = 10 * step;
  s.tool_refs = 5 * step;
  s.tool_misses = step;
  s.interrupts = step;
  s.app_cycles = 2000 * step;
  s.tool_cycles = 50 * step;
  return s;
}

TEST(PhaseTimeline, SnapshotsAreDeltasNotCumulative) {
  PhaseTimeline tl(100, 8);
  tl.snapshot(stats_at(1));
  tl.snapshot(stats_at(3));  // uneven stride on purpose
  const auto samples = tl.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].app_misses, 10u);
  EXPECT_EQ(samples[1].app_misses, 20u);  // 30 - 10
  EXPECT_EQ(samples[1].app_cycles, 4000u);
  EXPECT_EQ(samples[1].at, stats_at(3).total_cycles());
}

TEST(PhaseTimeline, RingWrapsKeepingTheMostRecentSlices) {
  PhaseTimeline tl(100, 4);
  for (std::uint64_t step = 1; step <= 7; ++step) tl.snapshot(stats_at(step));
  EXPECT_EQ(tl.size(), 4u);
  EXPECT_EQ(tl.total_snapshots(), 7u);
  EXPECT_EQ(tl.dropped(), 3u);
  const auto samples = tl.samples();
  ASSERT_EQ(samples.size(), 4u);
  // Chronological order, oldest surviving slice first: steps 4..7.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].at, stats_at(4 + i).total_cycles()) << i;
    EXPECT_EQ(samples[i].app_misses, 10u) << i;  // every delta is one step
  }
}

TEST(PhaseTimeline, DerivedRatesHandleIdleSlices) {
  PhaseSample idle;
  EXPECT_DOUBLE_EQ(idle.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(idle.ipc(), 0.0);
  PhaseSample busy;
  busy.app_refs = 100;
  busy.app_misses = 25;
  busy.app_instructions = 500;
  busy.app_cycles = 900;
  busy.tool_cycles = 100;
  EXPECT_DOUBLE_EQ(busy.miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(busy.ipc(), 0.5);
}

// -- Trace sinks -------------------------------------------------------------

// The exact serialization is a contract (external viewers parse it);
// golden strings, not structural checks.
TEST(TraceSink, GoldenEventJson) {
  std::ostringstream out;
  TraceEvent instant;
  instant.category = "search";
  instant.name = "backtrack";
  instant.phase = 'i';
  instant.ts = 12345;
  instant.args = {{"from_depth", std::uint64_t{7}},
                  {"to_depth", std::uint64_t{2}},
                  {"why", std::string("pq \"jump\"")}};
  write_event_json(out, instant);
  EXPECT_EQ(out.str(),
            R"({"name":"backtrack","cat":"search","ph":"i","ts":12345,)"
            R"("pid":0,"tid":0,"s":"t",)"
            R"("args":{"from_depth":7,"to_depth":2,"why":"pq \"jump\""}})");

  out.str("");
  TraceEvent complete;
  complete.category = "batch";
  complete.name = "tomcatv/search";
  complete.phase = 'X';
  complete.ts = 10;
  complete.dur = 250;
  complete.pid = 1;
  complete.tid = 3;
  write_event_json(out, complete);
  EXPECT_EQ(out.str(),
            R"({"name":"tomcatv/search","cat":"batch","ph":"X","ts":10,)"
            R"("dur":250,"pid":1,"tid":3})");
}

TEST(TraceSink, ChromeSinkWrapsEventsInTraceEventsArray) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    TraceEvent e;
    e.category = "c";
    e.name = "a";
    e.ts = 1;
    sink.event(e);
    e.name = "b";
    e.ts = 2;
    sink.event(e);
    sink.close();
    sink.event(e);  // after close: dropped, not appended
  }
  EXPECT_EQ(out.str(),
            "{\"traceEvents\":[\n"
            R"({"name":"a","cat":"c","ph":"i","ts":1,"pid":0,"tid":0,"s":"t"})"
            ",\n"
            R"({"name":"b","cat":"c","ph":"i","ts":2,"pid":0,"tid":0,"s":"t"})"
            "\n]}\n");
}

TEST(TraceSink, ChromeSinkEmptyTraceIsValid) {
  std::ostringstream out;
  { ChromeTraceSink sink(out); }  // destructor closes
  EXPECT_EQ(out.str(), "{\"traceEvents\":[]}\n");
}

TEST(TraceSink, JsonlSinkWritesOneObjectPerLine) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  TraceEvent e;
  e.category = "c";
  e.name = "n";
  sink.event(e);
  sink.event(e);
  EXPECT_EQ(out.str(),
            R"({"name":"n","cat":"c","ph":"i","ts":0,"pid":0,"tid":0,"s":"t"})"
            "\n"
            R"({"name":"n","cat":"c","ph":"i","ts":0,"pid":0,"tid":0,"s":"t"})"
            "\n");
}

// -- End-to-end through the harness ------------------------------------------

harness::RunSpec small_spec(harness::ToolKind tool) {
  harness::RunSpec spec;
  spec.name = "synthetic/t";
  spec.workload = "synthetic";
  spec.config.machine.cache.size_bytes = 128 * 1024;
  spec.config.tool = tool;
  spec.config.sampler.period = 2'000;
  spec.config.search.n = 4;
  spec.config.search.initial_interval = 200'000;
  spec.options.scale = 0.25;
  spec.options.iterations = 4;
  return spec;
}

TEST(TelemetryEndToEnd, SamplerRegistersCountersAndEmitsEvents) {
  auto spec = small_spec(harness::ToolKind::kSampler);
  spec.config.telemetry.enabled = true;
  spec.config.telemetry.timeline_every = 500'000;
  CountingTraceSink sink;
  spec.config.trace_sink = &sink;

  const auto batch = harness::BatchRunner().run({spec});
  ASSERT_TRUE(batch.items[0].ok) << batch.items[0].error;
  const auto& metrics = batch.items[0].result.metrics;
  ASSERT_TRUE(metrics.enabled);

  const auto interrupts = metrics.counter_value("sampler.interrupts");
  EXPECT_GT(interrupts, 0u);
  EXPECT_EQ(interrupts,
            metrics.counter_value("machine.interrupts.miss_overflow"));
  EXPECT_EQ(interrupts, batch.items[0].result.samples);
  EXPECT_EQ(metrics.counter_value("sampler.samples.attributed") +
                metrics.counter_value("sampler.samples.unresolved"),
            interrupts);
  // The attributed tool_cycles sites must sum to at most the machine's
  // total tool plane (delivery cost is charged by the machine itself).
  std::uint64_t site_total = 0;
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind("tool_cycles.", 0) == 0) site_total += value;
  }
  EXPECT_GT(site_total, 0u);
  EXPECT_LE(site_total, batch.items[0].result.stats.tool_cycles);

  EXPECT_EQ(sink.count("sampler", "interrupt"), interrupts);
  EXPECT_EQ(sink.count("sim", "pmu.overflow"), interrupts);
  EXPECT_GT(sink.count("sampler", "attribute"), 0u);
  EXPECT_GT(metrics.timeline.size(), 0u);
}

TEST(TelemetryEndToEnd, SearchEmitsSplitAndQueueEvents) {
  auto spec = small_spec(harness::ToolKind::kSearch);
  spec.config.telemetry.enabled = true;
  CountingTraceSink sink;
  spec.config.trace_sink = &sink;

  const auto batch = harness::BatchRunner().run({spec});
  ASSERT_TRUE(batch.items[0].ok) << batch.items[0].error;
  const auto& metrics = batch.items[0].result.metrics;
  const auto& search_stats = batch.items[0].result.search_stats;

  EXPECT_EQ(metrics.counter_value("search.iterations"),
            search_stats.iterations);
  EXPECT_EQ(metrics.counter_value("search.splits"), search_stats.splits);
  EXPECT_EQ(sink.count("search", "region.split"), search_stats.splits);
  EXPECT_EQ(sink.count("search", "pq.enqueue"),
            metrics.counter_value("search.pq.enqueues"));
  EXPECT_EQ(sink.count("search", "backtrack"),
            metrics.counter_value("search.backtracks"));
  // Phase spans open/close in pairs ('B' on open, 'E' on close); the
  // search phase may reopen after a continuation, so require balance,
  // not an exact count.
  const auto search_phase_events = sink.count("search", "search");
  EXPECT_GE(search_phase_events, 2u);
  EXPECT_EQ(search_phase_events % 2, 0u);
}

TEST(TelemetryEndToEnd, DisabledRunCarriesNoMetrics) {
  const auto batch =
      harness::BatchRunner().run({small_spec(harness::ToolKind::kSampler)});
  ASSERT_TRUE(batch.items[0].ok) << batch.items[0].error;
  EXPECT_FALSE(batch.items[0].result.metrics.enabled);
  EXPECT_TRUE(batch.items[0].result.metrics.counters.empty());
}

TEST(TelemetryEndToEnd, TelemetryDoesNotPerturbTheSimulation) {
  // Observability must be free *inside* the simulation: the virtual
  // machine's numbers are identical with telemetry on and off.
  auto plain = small_spec(harness::ToolKind::kSearch);
  auto instrumented = plain;
  instrumented.config.telemetry.enabled = true;
  instrumented.config.telemetry.timeline_every = 250'000;
  const auto off = harness::BatchRunner().run({plain});
  const auto on = harness::BatchRunner().run({instrumented});
  ASSERT_TRUE(off.items[0].ok && on.items[0].ok);
  harness::JsonExportOptions options;
  options.include_timing = false;
  // Compare everything except the metrics block itself.
  EXPECT_EQ(to_json(off.items[0].result.stats, options),
            to_json(on.items[0].result.stats, options));
  EXPECT_EQ(to_json(off.items[0].result.estimated, options),
            to_json(on.items[0].result.estimated, options));
}

TEST(TelemetryEndToEnd, MetricsExportIsIdenticalAcrossJobCounts) {
  std::vector<harness::RunSpec> specs;
  for (int i = 0; i < 4; ++i) {
    auto spec = small_spec(i % 2 == 0 ? harness::ToolKind::kSampler
                                      : harness::ToolKind::kSearch);
    spec.name = "synthetic/run" + std::to_string(i);
    spec.config.telemetry.enabled = true;
    spec.config.telemetry.timeline_every = 500'000;
    specs.push_back(std::move(spec));
  }
  harness::JsonExportOptions options;
  options.include_timing = false;

  harness::BatchRunner::Options serial;
  serial.jobs = 1;
  harness::BatchRunner::Options parallel;
  parallel.jobs = 4;
  const auto a = harness::BatchRunner(serial).run(specs);
  const auto b = harness::BatchRunner(parallel).run(specs);

  std::ostringstream ja, jb;
  harness::export_metrics_json(ja, a, options);
  harness::export_metrics_json(jb, b, options);
  EXPECT_EQ(ja.str(), jb.str());
  // The full batch document differs only in its "jobs" header field;
  // every item (including each metrics block) must be byte-identical.
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(to_json(a.items[i], options), to_json(b.items[i], options)) << i;
  }
}

}  // namespace
}  // namespace hpm::telemetry
