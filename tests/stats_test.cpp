#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hpm::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 3.5);
  EXPECT_EQ(acc.max(), 3.5);
  EXPECT_EQ(acc.sum(), 3.5);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of that set is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, NegativeValues) {
  Accumulator acc;
  acc.add(-5.0);
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), -5.0);
  EXPECT_EQ(acc.max(), 5.0);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(percentile({}, 50), 0.0);
  const double one[] = {42.0};
  EXPECT_EQ(percentile(one, 0), 42.0);
  EXPECT_EQ(percentile(one, 100), 42.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const double xs[] = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_EQ(percentile(xs, 0), 10.0);
  EXPECT_EQ(percentile(xs, 100), 50.0);
  EXPECT_EQ(percentile(xs, 50), 30.0);
  EXPECT_EQ(percentile(xs, 25), 20.0);
  EXPECT_NEAR(percentile(xs, 10), 14.0, 1e-12);
}

TEST(Percentile, UnsortedInput) {
  const double xs[] = {50.0, 10.0, 40.0, 20.0, 30.0};
  EXPECT_EQ(percentile(xs, 50), 30.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const double xs[] = {1.0, 2.0};
  EXPECT_EQ(percentile(xs, -5), 1.0);
  EXPECT_EQ(percentile(xs, 200), 2.0);
}

TEST(ToPercentages, Normalises) {
  const std::uint64_t counts[] = {25, 50, 25};
  const auto p = to_percentages(counts);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 25.0);
  EXPECT_DOUBLE_EQ(p[1], 50.0);
  EXPECT_DOUBLE_EQ(p[2], 25.0);
}

TEST(ToPercentages, AllZeroSafe) {
  const std::uint64_t counts[] = {0, 0};
  const auto p = to_percentages(counts);
  EXPECT_EQ(p, (std::vector<double>{0.0, 0.0}));
  EXPECT_TRUE(to_percentages({}).empty());
}

TEST(PairwiseOrderAgreement, PerfectAgreement) {
  const double a[] = {5.0, 3.0, 1.0};
  const double b[] = {50.0, 30.0, 10.0};
  EXPECT_EQ(pairwise_order_agreement(a, b), 1.0);
}

TEST(PairwiseOrderAgreement, TotalDisagreement) {
  const double a[] = {3.0, 2.0, 1.0};
  const double b[] = {1.0, 2.0, 3.0};
  // Ties count as consistent; here every pair is strictly reversed.
  EXPECT_EQ(pairwise_order_agreement(a, b), 0.0);
}

TEST(PairwiseOrderAgreement, PartialAndDegenerate) {
  const double a[] = {3.0, 2.0, 1.0};
  const double b[] = {3.0, 1.0, 2.0};
  EXPECT_NEAR(pairwise_order_agreement(a, b), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(pairwise_order_agreement({}, {}), 1.0);
  const double single[] = {1.0};
  EXPECT_EQ(pairwise_order_agreement(single, single), 1.0);
}

}  // namespace
}  // namespace hpm::util
