// Deeper cache-model validation: write policies, and an equivalence proof
// of the LRU implementation against an independent reference model (an
// explicit recency list per set).
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "sim/cache.hpp"
#include "util/prng.hpp"

namespace hpm::sim {
namespace {

CacheConfig small_config() {
  CacheConfig c;
  c.size_bytes = 8 * 1024;
  c.line_size = 64;
  c.associativity = 8;
  return c;
}

// -- Write policies ----------------------------------------------------------

TEST(WritePolicyModel, WriteThroughNeverWritesBack) {
  CacheConfig config = small_config();
  config.write_policy = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(config);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 50'000; ++i) {
    (void)cache.access(rng.next_below(1 << 20), (i & 1) == 0);
  }
  EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(WritePolicyModel, StoreMissDoesNotAllocate) {
  CacheConfig config = small_config();
  config.write_policy = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(config);
  EXPECT_FALSE(cache.access(0x1000, true).hit);   // store miss: no fill
  EXPECT_FALSE(cache.probe(0x1000));
  EXPECT_FALSE(cache.access(0x1000, false).hit);  // load miss: fills
  EXPECT_TRUE(cache.probe(0x1000));
  EXPECT_TRUE(cache.access(0x1000, true).hit);    // store hit: stays clean
}

TEST(WritePolicyModel, WriteBackAllocatesOnStoreMiss) {
  Cache cache(small_config());  // default write-back/allocate
  EXPECT_FALSE(cache.access(0x1000, true).hit);
  EXPECT_TRUE(cache.probe(0x1000));
  EXPECT_TRUE(cache.access(0x1000, false).hit);
}

TEST(WritePolicyModel, StreamingStoresMissEveryLineUnderBothPolicies) {
  // The workload design's miss arithmetic (one miss per line per pass)
  // holds under either policy for store sweeps.
  for (auto policy : {WritePolicy::kWriteBackAllocate,
                      WritePolicy::kWriteThroughNoAllocate}) {
    CacheConfig config = small_config();
    config.write_policy = policy;
    Cache cache(config);
    for (int pass = 0; pass < 3; ++pass) {
      const std::uint64_t before = cache.misses();
      for (Addr a = 0; a < (64 << 10); a += 64) (void)cache.access(a, true);
      EXPECT_EQ(cache.misses() - before, (64u << 10) / 64);
    }
  }
}

// -- LRU reference model -------------------------------------------------------

// Independent LRU: per-set std::list of tags, most recent at front.
class ReferenceLru {
 public:
  explicit ReferenceLru(const CacheConfig& config)
      : config_(config), sets_(config.num_sets()) {}

  bool access(Addr addr) {
    const std::uint64_t line = addr / config_.line_size;
    const std::uint64_t set = line % config_.num_sets();
    const std::uint64_t tag = line / config_.num_sets();
    auto& recency = sets_[set];
    for (auto it = recency.begin(); it != recency.end(); ++it) {
      if (*it == tag) {
        recency.erase(it);
        recency.push_front(tag);
        return true;  // hit
      }
    }
    recency.push_front(tag);
    if (recency.size() > config_.associativity) recency.pop_back();
    return false;
  }

 private:
  CacheConfig config_;
  std::vector<std::list<std::uint64_t>> sets_;
};

class LruEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruEquivalence, MatchesReferenceModelOnRandomTraffic) {
  const CacheConfig config = small_config();
  Cache cache(config);
  ReferenceLru reference(config);
  util::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100'000; ++i) {
    // A mix of hot (small range) and cold (large range) addresses.
    const Addr addr = (i % 3 == 0) ? rng.next_below(4 << 10)
                                   : rng.next_below(1 << 20);
    const bool expected_hit = reference.access(addr);
    const bool actual_hit = cache.access(addr, (i & 7) == 0).hit;
    ASSERT_EQ(actual_hit, expected_hit) << "ref " << i << " addr " << addr;
  }
}

TEST_P(LruEquivalence, MatchesReferenceModelOnStridedTraffic) {
  const CacheConfig config = small_config();
  Cache cache(config);
  ReferenceLru reference(config);
  util::Xoshiro256 rng(GetParam() * 977);
  Addr addr = 0;
  for (int i = 0; i < 50'000; ++i) {
    addr += 64 * (1 + rng.next_below(5));
    if (i % 100 == 99) addr = rng.next_below(1 << 16);  // occasional jump
    ASSERT_EQ(cache.access(addr, false).hit, reference.access(addr)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruEquivalence,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(LruEquivalence, DirectMappedDegenerateCase) {
  CacheConfig config;
  config.size_bytes = 4096;
  config.line_size = 64;
  config.associativity = 1;  // direct mapped
  Cache cache(config);
  ReferenceLru reference(config);
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 50'000; ++i) {
    const Addr addr = rng.next_below(32 << 10);
    ASSERT_EQ(cache.access(addr, false).hit, reference.access(addr)) << i;
  }
}

TEST(LruEquivalence, FullyAssociativeDegenerateCase) {
  CacheConfig config;
  config.size_bytes = 4096;
  config.line_size = 64;
  config.associativity = 64;  // one set
  Cache cache(config);
  ReferenceLru reference(config);
  util::Xoshiro256 rng(10);
  for (int i = 0; i < 30'000; ++i) {
    const Addr addr = rng.next_below(16 << 10);
    ASSERT_EQ(cache.access(addr, false).hit, reference.access(addr)) << i;
  }
}

}  // namespace
}  // namespace hpm::sim
