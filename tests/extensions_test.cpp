// Tests for the optional-hardware / §5 extensions: the L1 filter cache and
// the related-block grouping arenas.
#include <gtest/gtest.h>

#include "core/nway_search.hpp"
#include "core/sampler.hpp"
#include "harness/experiment.hpp"
#include "objmap/object_map.hpp"
#include "sim/machine.hpp"

namespace hpm {
namespace {

// A 2-level hierarchy with the PMU observing the last level: the modern
// spelling of the historical `MachineConfig::l1` filter cache.
sim::MachineConfig l1_machine() {
  sim::MachineConfig c;
  sim::CacheConfig l1;
  l1.size_bytes = 8 * 1024;
  l1.associativity = 2;
  sim::CacheConfig measured;
  measured.size_bytes = 256 * 1024;
  c.hierarchy.levels = {{"L1", l1}, {"L2", measured}};
  return c;
}

TEST(L1Filter, HitsAreFilteredFromTheMeasuredCache) {
  sim::Machine machine(l1_machine());
  const sim::Addr a = machine.address_space().define_static("a", 4096);
  machine.touch(a);       // misses both levels
  machine.touch(a + 8);   // L1 hit: measured cache untouched
  machine.touch(a + 16);  // L1 hit
  EXPECT_EQ(machine.stats().app_misses, 1u);
  EXPECT_EQ(machine.stats().filtered_hits, 2u);
  EXPECT_EQ(machine.pmu().global_misses(), 1u);
}

TEST(L1Filter, RepeatedSmallWorkingSetNeverReachesL2) {
  sim::Machine machine(l1_machine());
  const sim::Addr a = machine.address_space().define_static("a", 4096);
  for (int sweep = 0; sweep < 10; ++sweep) {
    for (sim::Addr off = 0; off < 4096; off += 64) machine.touch(a + off);
  }
  // 64 cold misses; the other 576 references hit the 8 KB L1.
  EXPECT_EQ(machine.stats().app_misses, 64u);
  EXPECT_EQ(machine.stats().filtered_hits, 9u * 64);
}

TEST(L1Filter, L1HitsAreCheaper) {
  auto cycles = [](bool with_l1) {
    sim::MachineConfig c = l1_machine();
    if (!with_l1) {
      // Drop the filter level, keeping only the measured cache.
      c.cache = c.hierarchy.levels.back().cache;
      c.hierarchy.levels.clear();
    }
    sim::Machine machine(c);
    const sim::Addr a = machine.address_space().define_static("a", 4096);
    for (int sweep = 0; sweep < 4; ++sweep) {
      for (sim::Addr off = 0; off < 4096; off += 64) machine.touch(a + off);
    }
    return machine.stats().app_cycles;
  };
  // Without L1 the re-sweeps cost hit_extra per ref at least as much.
  EXPECT_LE(cycles(true), cycles(false));
}

TEST(L1Filter, SamplingStillAttributesL2Misses) {
  sim::Machine machine(l1_machine());
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  const sim::Addr hot =
      machine.address_space().define_static("hot", 1 << 20);
  core::Sampler sampler(machine, map, {.period = 64});
  sampler.start();
  for (int s = 0; s < 2; ++s) {
    for (sim::Addr off = 0; off < (1 << 20); off += 8) {
      machine.touch(hot + off);  // 8 refs per line; 7 are L1 hits
    }
  }
  sampler.stop();
  const auto report = sampler.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.rows()[0].name, "hot");
  // Misses seen = lines only, despite 8x more references.
  EXPECT_EQ(machine.stats().app_misses, 2 * (1u << 20) / 64);
}

// -- Grouping arenas (§5) ----------------------------------------------------

class ArenaTest : public ::testing::Test {
 protected:
  ArenaTest() {
    config_.cache.size_bytes = 128 * 1024;
    machine_ = std::make_unique<sim::Machine>(config_);
    map_.attach(machine_->address_space());
  }
  sim::MachineConfig config_;
  std::unique_ptr<sim::Machine> machine_;
  objmap::ObjectMap map_;
};

TEST_F(ArenaTest, SiteAllocationsAreContiguous) {
  auto& as = machine_->address_space();
  map_.set_site_name(4, "tree_nodes");
  const auto arena = as.create_site_arena(4, 1 << 20);
  const sim::Addr n1 = as.malloc(256, 4);
  const sim::Addr decoy = as.malloc(1 << 16, 0);  // unrelated block
  const sim::Addr n2 = as.malloc(256, 4);
  EXPECT_TRUE(arena.contains(n1));
  EXPECT_TRUE(arena.contains(n2));
  EXPECT_FALSE(arena.contains(decoy));
  EXPECT_EQ(n2, n1 + 256);  // contiguous despite the interleaved malloc
}

TEST_F(ArenaTest, ArenaResolvesAsOneObject) {
  auto& as = machine_->address_space();
  map_.set_site_name(4, "tree_nodes");
  (void)as.create_site_arena(4, 1 << 20);
  const sim::Addr n1 = as.malloc(256, 4);
  const sim::Addr n2 = as.malloc(256, 4);
  const auto r1 = map_.resolve(n1);
  const auto r2 = map_.resolve(n2 + 128);
  ASSERT_TRUE(r1.found && r2.found);
  EXPECT_EQ(r1.ref, r2.ref);
  EXPECT_EQ(r1.ref.kind, objmap::ObjectKind::kHeapGroup);
  EXPECT_EQ(map_.display_name(r1.ref), "tree_nodes");
}

TEST_F(ArenaTest, RegionGeometryTreatsArenaAsUnit) {
  auto& as = machine_->address_space();
  (void)as.create_site_arena(7, 1 << 20);
  for (int i = 0; i < 64; ++i) (void)as.malloc(4096, 7);
  const auto span = map_.occupied_span();
  // The arena counts as exactly one object.
  EXPECT_EQ(map_.count_objects_overlapping(span), 1u);
  const auto single = map_.single_object_in(span);
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->kind, objmap::ObjectKind::kHeapGroup);
  // A split point inside the arena snaps to its edge (here: no split).
  EXPECT_EQ(map_.snap_split_point(span.base + span.size() / 2, span),
            span.base);
}

TEST_F(ArenaTest, SearchFindsTheGroupAsOneBottleneck) {
  auto& as = machine_->address_space();
  map_.set_site_name(9, "linked_list");
  (void)as.create_site_arena(9, 2 << 20);
  // 512 list nodes of 4 KB, plus one big unrelated array.
  std::vector<sim::Addr> nodes;
  for (int i = 0; i < 512; ++i) nodes.push_back(as.malloc(4096, 9));
  const sim::Addr big = as.define_static("big", 1 << 20);

  core::SearchConfig search_config;
  search_config.n = 4;
  search_config.initial_interval = 200'000;
  search_config.search_whole_space = false;
  core::NWaySearch search(*machine_, map_, search_config);
  search.start();
  for (int iter = 0; iter < 60 && !search.done(); ++iter) {
    // Nodes dominate: 2 MB of node traffic vs 1 MB of array traffic.
    for (sim::Addr node : nodes) {
      for (sim::Addr off = 0; off < 4096; off += 64) {
        machine_->touch(node + off);
      }
    }
    for (sim::Addr off = 0; off < (1 << 20); off += 64) {
      machine_->touch(big + off);
    }
  }
  search.stop();
  const auto report = search.report();
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.rows()[0].name, "linked_list");
  EXPECT_GT(report.rows()[0].percent, 50.0);
}

TEST_F(ArenaTest, FreedArenaBlocksAreNotRecycledOutsideTheSite) {
  auto& as = machine_->address_space();
  const auto arena = as.create_site_arena(2, 1 << 16);
  const sim::Addr n = as.malloc(4096, 2);
  as.free(n);
  // An unrelated allocation must not land in the arena hole.
  const sim::Addr other = as.malloc(4096, 0);
  EXPECT_FALSE(arena.contains(other));
}

TEST_F(ArenaTest, ArenaValidation) {
  auto& as = machine_->address_space();
  EXPECT_THROW((void)as.create_site_arena(sim::kNoSite, 4096),
               std::invalid_argument);
  (void)as.create_site_arena(3, 4096);
  EXPECT_THROW((void)as.create_site_arena(3, 4096), std::invalid_argument);
  EXPECT_TRUE(as.has_site_arena(3));
  EXPECT_FALSE(as.has_site_arena(5));
}

TEST_F(ArenaTest, FullArenaFallsBackToGeneralHeap) {
  auto& as = machine_->address_space();
  const auto arena = as.create_site_arena(6, 8192);
  const sim::Addr a = as.malloc(4096, 6);
  const sim::Addr b = as.malloc(4096, 6);
  const sim::Addr c = as.malloc(4096, 6);  // no room left
  EXPECT_TRUE(arena.contains(a));
  EXPECT_TRUE(arena.contains(b));
  EXPECT_FALSE(arena.contains(c));
  EXPECT_NE(c, sim::kNullAddr);
}

}  // namespace
}  // namespace hpm
