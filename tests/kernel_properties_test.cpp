// Quantitative property tests on the kernel miss structure: exact per-pass
// miss counts, the periodicity that drives the §3.1 aliasing experiment,
// and the phase geometry behind Figure 5.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/exact_profiler.hpp"
#include "harness/experiment.hpp"
#include "workloads/tomcatv.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {
namespace {

sim::MachineConfig cache_of(std::uint64_t bytes) {
  sim::MachineConfig c;
  c.cache.size_bytes = bytes;
  return c;
}

TEST(TomcatvStructure, PerIterationMissCountIsExact) {
  // 40 array passes per iteration, each missing N*N/8 lines: the miss
  // count per iteration is exactly 40 * N^2 / 8.  This exactness is what
  // makes the per-iteration miss count a multiple of the 50,000 sampling
  // period at full scale — the root of the aliasing result.
  WorkloadOptions options;
  options.scale = 0.25;  // N = 150 -> 22500 elements per array
  auto misses_for = [&](std::uint64_t iters) {
    options.iterations = iters;
    Tomcatv workload(options);
    harness::RunConfig config;
    config.machine = cache_of(128 * 1024);
    return harness::run_experiment(config, workload).stats.app_misses;
  };
  const std::uint64_t one = misses_for(1);
  const std::uint64_t two = misses_for(2);
  const std::uint64_t n = 150;
  // Each pass touches ceil(N*N*8 / 64) lines (the last line is partial at
  // this N).
  const std::uint64_t lines = (n * n * 8 + 63) / 64;
  EXPECT_EQ(one, 40 * lines);
  EXPECT_EQ(two, 2 * one);  // perfectly periodic, zero drift
}

TEST(TomcatvStructure, FullScaleIterationAligitsWithSamplingPeriod) {
  // At scale 1.0 (N = 600): 40 * 600^2 / 8 = 1,800,000 misses/iteration —
  // an exact multiple of the paper's 50,000 sampling interval, and not of
  // the prime 50,111.
  Tomcatv workload{WorkloadOptions{}};
  EXPECT_EQ(workload.n(), 600u);
  const std::uint64_t per_iteration = 40 * 600 * 600 / 8;
  EXPECT_EQ(per_iteration % 50'000, 0u);
  EXPECT_NE(per_iteration % 50'111, 0u);
}

TEST(SwimStructure, MissesSplitEquallyAcrossArrays) {
  WorkloadOptions options;
  options.scale = 0.25;
  options.iterations = 2;
  harness::RunConfig config;
  config.machine = cache_of(128 * 1024);
  const auto result = harness::run_experiment(config, "swim", options);
  ASSERT_EQ(result.actual.size(), 13u);
  const auto expected = static_cast<double>(result.actual.total_count()) / 13;
  for (const auto& row : result.actual.rows()) {
    EXPECT_NEAR(static_cast<double>(row.count), expected, expected * 0.12)
        << row.name;
  }
}

TEST(AppluStructure, PhaseGeometryMatchesFigure5) {
  WorkloadOptions options;
  options.scale = 0.25;
  options.iterations = 4;
  harness::RunConfig config;
  config.machine = cache_of(128 * 1024);
  config.series_interval = 300'000;
  const auto result = harness::run_experiment(config, "applu", options);

  const core::ExactProfiler::Series* a = nullptr;
  const core::ExactProfiler::Series* b = nullptr;
  const core::ExactProfiler::Series* rsd = nullptr;
  for (const auto& s : result.series) {
    if (s.name == "a") a = &s;
    if (s.name == "b") b = &s;
    if (s.name == "rsd") rsd = &s;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(rsd, nullptr);

  // Figure 5: a and b have "almost exactly the same access pattern".
  ASSERT_EQ(a->misses_per_interval.size(), b->misses_per_interval.size());
  std::uint64_t diff = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < a->misses_per_interval.size(); ++i) {
    const auto av = a->misses_per_interval[i];
    const auto bv = b->misses_per_interval[i];
    diff += av > bv ? av - bv : bv - av;
    total += av + bv;
  }
  ASSERT_GT(total, 0u);
  EXPECT_LT(static_cast<double>(diff) / static_cast<double>(total), 0.05);

  // a dips to zero while rsd is active in those very windows.
  bool a_zero_with_rsd_active = false;
  for (std::size_t i = 0; i < a->misses_per_interval.size() &&
                          i < rsd->misses_per_interval.size();
       ++i) {
    if (a->misses_per_interval[i] == 0 && rsd->misses_per_interval[i] > 0) {
      a_zero_with_rsd_active = true;
    }
  }
  EXPECT_TRUE(a_zero_with_rsd_active);
}

TEST(Su2corStructure, LatePhaseDominance) {
  // U's misses concentrate in the second (intact) half of each
  // super-iteration — the property that breaks phase-naive searches.
  WorkloadOptions options;
  options.scale = 0.25;
  options.iterations = 1;
  harness::RunConfig config;
  config.machine = cache_of(128 * 1024);
  config.series_interval = 250'000;
  const auto result = harness::run_experiment(config, "su2cor", options);
  for (const auto& s : result.series) {
    if (s.name != "U") continue;
    const auto& v = s.misses_per_interval;
    ASSERT_GT(v.size(), 3u);
    std::uint64_t first_half = 0;
    std::uint64_t second_half = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      (i < v.size() / 2 ? first_half : second_half) += v[i];
    }
    EXPECT_GT(second_half, first_half * 2);
    return;
  }
  FAIL() << "no series for U";
}

TEST(MgridStructure, CoarseGridsAreCacheResident) {
  WorkloadOptions options;
  options.scale = 0.25;
  options.iterations = 3;
  harness::RunConfig config;
  config.machine = cache_of(128 * 1024);
  const auto result = harness::run_experiment(config, "mgrid", options);
  // The coarse arrays are touched 6+ times per cycle yet miss almost never
  // after warm-up: their share must be far below a proportional one.
  const double u2 = result.actual.percent_of("U2").value_or(0.0);
  EXPECT_LT(u2, 3.0);
}

TEST(KernelScaling, ArraysScaleQuadraticallyWithScaleFactor) {
  WorkloadOptions half;
  half.scale = 0.5;
  half.iterations = 1;
  WorkloadOptions quarter;
  quarter.scale = 0.25;
  quarter.iterations = 1;
  harness::RunConfig config;
  config.machine = cache_of(64 * 1024);
  const auto big = harness::run_experiment(config, "tomcatv", half);
  const auto small = harness::run_experiment(config, "tomcatv", quarter);
  const double ratio = static_cast<double>(big.stats.app_misses) /
                       static_cast<double>(small.stats.app_misses);
  EXPECT_NEAR(ratio, 4.0, 0.3);  // linear scale -> quadratic misses
}

}  // namespace
}  // namespace hpm::workloads
