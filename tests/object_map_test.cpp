#include "objmap/object_map.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace hpm::objmap {
namespace {

class ObjectMapTest : public ::testing::Test {
 protected:
  ObjectMapTest() { map_.attach(machine_.address_space()); }
  sim::Machine machine_;
  ObjectMap map_;
};

TEST_F(ObjectMapTest, ResolvesStatics) {
  const sim::Addr a = machine_.address_space().define_static("alpha", 4096);
  const auto hit = map_.resolve(a + 100);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.ref.kind, ObjectKind::kStatic);
  EXPECT_EQ(map_.display_name(hit.ref), "alpha");
  EXPECT_EQ(map_.info(hit.ref).base, a);
  EXPECT_EQ(map_.info(hit.ref).size, 4096u);
}

TEST_F(ObjectMapTest, ResolvesHeapBlocksViaMallocHook) {
  const sim::Addr block = machine_.address_space().malloc(1 << 16);
  const auto hit = map_.resolve(block + 0x8000);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(hit.ref.kind, ObjectKind::kHeap);
  EXPECT_EQ(map_.display_name(hit.ref), "0x141000000");
  machine_.address_space().free(block);
  EXPECT_FALSE(map_.resolve(block + 0x8000).found);
}

TEST_F(ObjectMapTest, ResolveMissesGapsAndForeignSegments) {
  (void)machine_.address_space().define_static("alpha", 64);
  EXPECT_FALSE(map_.resolve(0x0).found);
  EXPECT_FALSE(
      map_.resolve(machine_.address_space().layout().heap.base).found);
  // Instrumentation data is not an application object.
  const sim::Addr shadow = machine_.address_space().alloc_instr(64);
  EXPECT_FALSE(map_.resolve(shadow).found);
}

TEST_F(ObjectMapTest, ResolveReportsShadowFootprint) {
  for (int i = 0; i < 32; ++i) {
    (void)machine_.address_space().define_static("s" + std::to_string(i), 64);
  }
  (void)machine_.address_space().malloc(64);
  const auto& symbols = map_.symbols();
  const auto hit = map_.resolve(symbols.entry(17).base);
  ASSERT_TRUE(hit.found);
  EXPECT_FALSE(hit.shadow_path.empty());
  for (auto a : hit.shadow_path) {
    EXPECT_TRUE(machine_.address_space().layout().instr.contains(a));
  }
}

TEST_F(ObjectMapTest, StackLocalsAggregateByFunctionAndName) {
  auto& as = machine_.address_space();
  as.push_frame("work");
  const sim::Addr x1 = as.define_local("buf", 128);
  const auto first = map_.resolve(x1 + 5);
  ASSERT_TRUE(first.found);
  EXPECT_EQ(first.ref.kind, ObjectKind::kStackLocal);
  EXPECT_EQ(map_.display_name(first.ref), "work::buf");
  as.pop_frame();

  // A second activation of the same function maps to the same aggregate.
  as.push_frame("work");
  const sim::Addr x2 = as.define_local("buf", 128);
  const auto second = map_.resolve(x2 + 5);
  ASSERT_TRUE(second.found);
  EXPECT_EQ(second.ref, first.ref);
  as.pop_frame();
  // After the frame pops, the address no longer resolves.
  EXPECT_FALSE(map_.resolve(x2 + 5).found);
}

TEST_F(ObjectMapTest, InnermostLocalWinsOnRecursion) {
  auto& as = machine_.address_space();
  as.push_frame("rec");
  (void)as.define_local("buf", 64);
  as.push_frame("rec");
  const sim::Addr inner = as.define_local("buf", 64);
  const auto hit = map_.resolve(inner);
  ASSERT_TRUE(hit.found);
  EXPECT_EQ(map_.display_name(hit.ref), "rec::buf");
  as.pop_frame();
  as.pop_frame();
}

TEST_F(ObjectMapTest, SiteGroupNames) {
  map_.set_site_name(9, "list_nodes");
  const sim::Addr a = machine_.address_space().malloc(64, 9);
  const sim::Addr b = machine_.address_space().malloc(64, 9);
  const sim::Addr c = machine_.address_space().malloc(64, 0);
  const auto ra = map_.resolve(a);
  const auto rb = map_.resolve(b);
  const auto rc = map_.resolve(c);
  ASSERT_TRUE(ra.found && rb.found && rc.found);
  EXPECT_EQ(map_.site_group_name(ra.ref).value_or(""), "list_nodes");
  EXPECT_EQ(map_.site_group_name(rb.ref).value_or(""), "list_nodes");
  EXPECT_FALSE(map_.site_group_name(rc.ref).has_value());
}

// -- Region geometry ---------------------------------------------------------

TEST_F(ObjectMapTest, SnapSplitPointInGapIsUnchanged) {
  const sim::Addr a = machine_.address_space().define_static("a", 64);
  machine_.address_space().reserve_data_gap(1 << 20);
  const sim::Addr b = machine_.address_space().define_static("b", 64);
  const sim::Addr mid = (a + b) / 2;
  const sim::AddrRange region{a, b + 64};
  EXPECT_EQ(map_.snap_split_point(mid, region), mid);
}

TEST_F(ObjectMapTest, SnapSplitPointInsideObjectMovesToNearerEdge) {
  const sim::Addr a = machine_.address_space().define_static("a", 1 << 20);
  const sim::AddrRange region{a - 0x1000, a + (1 << 20) + 0x1000};
  // Near the start: snaps to the base.
  EXPECT_EQ(map_.snap_split_point(a + 0x100, region), a);
  // Near the end: snaps to one past the end.
  EXPECT_EQ(map_.snap_split_point(a + (1 << 20) - 0x100, region),
            a + (1 << 20));
}

TEST_F(ObjectMapTest, SnapSplitPointOnBoundaryIsKept) {
  const sim::Addr a = machine_.address_space().define_static("a", 0x1000);
  const sim::Addr b = machine_.address_space().define_static("b", 0x1000);
  const sim::AddrRange region{a, b + 0x1000};
  EXPECT_EQ(map_.snap_split_point(b, region), b);
}

TEST_F(ObjectMapTest, SnapInsideObjectSpanningWholeRegionSignalsNoSplit) {
  const sim::Addr a = machine_.address_space().define_static("a", 1 << 20);
  const sim::AddrRange region{a + 0x1000, a + 0x9000};  // strictly inside a
  EXPECT_EQ(map_.snap_split_point(a + 0x5000, region), region.base);
}

TEST_F(ObjectMapTest, SnapWorksOnHeapBlocksToo) {
  const sim::Addr block = machine_.address_space().malloc(1 << 20);
  const sim::AddrRange region{block - 0x1000, block + (1 << 20) + 0x1000};
  EXPECT_EQ(map_.snap_split_point(block + 0x40, region), block);
}

TEST_F(ObjectMapTest, CountObjectsOverlapping) {
  auto& as = machine_.address_space();
  const sim::Addr a = as.define_static("a", 0x1000);
  const sim::Addr b = as.define_static("b", 0x1000);
  const sim::Addr c = as.define_static("c", 0x1000);
  const sim::Addr h = as.malloc(0x1000);
  EXPECT_EQ(map_.count_objects_overlapping({a, c + 0x1000}), 3u);
  EXPECT_EQ(map_.count_objects_overlapping({a, c + 0x1000}, 2), 2u);  // cap
  EXPECT_EQ(map_.count_objects_overlapping({b + 0x10, b + 0x20}), 1u);
  EXPECT_EQ(map_.count_objects_overlapping({a, h + 0x1000}), 4u);
  EXPECT_EQ(map_.count_objects_overlapping({c + 0x1000, h}), 0u);
}

TEST_F(ObjectMapTest, CountIncludesObjectsSpanningRegionStart) {
  const sim::Addr a = machine_.address_space().define_static("a", 0x10000);
  // Region begins strictly inside `a`.
  EXPECT_EQ(map_.count_objects_overlapping({a + 0x100, a + 0x200}), 1u);
  const sim::Addr h = machine_.address_space().malloc(0x10000);
  EXPECT_EQ(map_.count_objects_overlapping({h + 0x100, h + 0x200}), 1u);
}

TEST_F(ObjectMapTest, SingleObjectIn) {
  auto& as = machine_.address_space();
  const sim::Addr a = as.define_static("a", 0x1000);
  const sim::Addr b = as.define_static("b", 0x1000);
  const auto single = map_.single_object_in({a, a + 0x1000});
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(map_.display_name(*single), "a");
  EXPECT_FALSE(map_.single_object_in({a, b + 0x1000}).has_value());
  EXPECT_FALSE(map_.single_object_in({b + 0x1000, b + 0x2000}).has_value());
}

TEST_F(ObjectMapTest, ForEachOverlappingVisitsAddressOrderAcrossKinds) {
  auto& as = machine_.address_space();
  (void)as.define_static("s0", 64);
  (void)as.define_static("s1", 64);
  (void)as.malloc(64);
  (void)as.malloc(64);
  std::vector<std::string> names;
  map_.for_each_overlapping(
      as.layout().application_span(),
      [&](ObjectRef, const ObjectInfo& info) {
        names.push_back(info.name);
        return true;
      });
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "s0");
  EXPECT_EQ(names[1], "s1");
  EXPECT_EQ(names[2], "0x141000000");
  EXPECT_EQ(names[3], "0x141000040");
}

TEST_F(ObjectMapTest, OccupiedSpanCoversStaticsAndHeap) {
  auto& as = machine_.address_space();
  const sim::Addr s = as.define_static("s", 4096);
  const sim::Addr h = as.malloc(4096);
  const auto span = map_.occupied_span();
  EXPECT_EQ(span.base, s);
  EXPECT_EQ(span.bound, h + 4096);
}

TEST_F(ObjectMapTest, OccupiedSpanEmptyWithoutObjects) {
  EXPECT_TRUE(map_.occupied_span().empty());
}

TEST(ObjectMapStandalone, WorksWithoutAttachedAddressSpace) {
  ObjectMap map;
  map.add_static("g", 0x1000, 0x100);
  map.add_heap_block(0x141000000ULL, 0x100, sim::kNoSite);
  EXPECT_TRUE(map.resolve(0x1010).found);
  EXPECT_TRUE(map.resolve(0x141000010ULL).found);
  EXPECT_FALSE(map.resolve(0x5000).found);
  map.remove_heap_block(0x141000000ULL);
  EXPECT_FALSE(map.resolve(0x141000010ULL).found);
}

}  // namespace
}  // namespace hpm::objmap
