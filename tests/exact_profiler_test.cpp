#include "core/exact_profiler.hpp"

#include <gtest/gtest.h>

#include "objmap/object_map.hpp"
#include "sim/machine.hpp"

namespace hpm::core {
namespace {

sim::MachineConfig small_machine() {
  sim::MachineConfig c;
  c.cache.size_bytes = 8 * 1024;
  return c;
}

class ExactProfilerTest : public ::testing::Test {
 protected:
  ExactProfilerTest() : machine_(small_machine()) {
    map_.attach(machine_.address_space());
  }
  void sweep(sim::Addr base, std::uint64_t bytes) {
    for (std::uint64_t off = 0; off < bytes; off += 64) {
      machine_.touch(base + off);
    }
  }
  sim::Machine machine_;
  objmap::ObjectMap map_;
};

TEST_F(ExactProfilerTest, AttributesMissesToObjects) {
  const sim::Addr a = machine_.address_space().define_static("a", 64 * 1024);
  const sim::Addr b = machine_.address_space().define_static("b", 64 * 1024);
  ExactProfiler profiler(machine_, map_);
  profiler.start();
  sweep(a, 64 * 1024);  // 1024 misses
  sweep(b, 32 * 1024);  // 512 misses
  profiler.stop();

  const auto report = profiler.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report.rows()[0].name, "a");
  EXPECT_EQ(report.rows()[0].count, 1024u);
  EXPECT_EQ(report.rows()[1].count, 512u);
  EXPECT_NEAR(report.rows()[0].percent, 100.0 * 1024 / 1536, 1e-9);
  EXPECT_EQ(profiler.attributed_misses(), 1536u);
  EXPECT_EQ(profiler.unattributed_misses(), 0u);
}

TEST_F(ExactProfilerTest, HitsAreNotCounted) {
  const sim::Addr a = machine_.address_space().define_static("a", 1024);
  ExactProfiler profiler(machine_, map_);
  profiler.start();
  sweep(a, 1024);
  sweep(a, 1024);  // fits in cache: all hits
  profiler.stop();
  EXPECT_EQ(profiler.report().rows()[0].count, 1024 / 64);
}

TEST_F(ExactProfilerTest, UnattributedMissesTracked) {
  ExactProfiler profiler(machine_, map_);
  profiler.start();
  // Touch a gap address belonging to no object.
  machine_.touch(machine_.address_space().layout().heap.base + 0x100000);
  profiler.stop();
  EXPECT_EQ(profiler.attributed_misses(), 0u);
  EXPECT_EQ(profiler.unattributed_misses(), 1u);
  EXPECT_TRUE(profiler.report().empty());
}

TEST_F(ExactProfilerTest, ToolMissesExcluded) {
  const sim::Addr shadow = machine_.address_space().alloc_instr(4096);
  ExactProfiler profiler(machine_, map_);
  profiler.start();
  machine_.tool_touch(shadow);
  profiler.stop();
  EXPECT_EQ(profiler.attributed_misses(), 0u);
  EXPECT_EQ(profiler.unattributed_misses(), 0u);
}

TEST_F(ExactProfilerTest, NothingRecordedBeforeStartOrAfterStop) {
  const sim::Addr a = machine_.address_space().define_static("a", 4096);
  ExactProfiler profiler(machine_, map_);
  machine_.touch(a);  // before start
  profiler.start();
  machine_.touch(a + 64);
  profiler.stop();
  machine_.touch(a + 128);  // after stop
  EXPECT_EQ(profiler.attributed_misses(), 1u);
}

TEST_F(ExactProfilerTest, TimeSeriesCapturesPhases) {
  const sim::Addr early =
      machine_.address_space().define_static("early", 64 * 1024);
  const sim::Addr late =
      machine_.address_space().define_static("late", 64 * 1024);
  // ~1024 misses per sweep; each ref costs ~51 cycles -> a sweep is ~52k
  // cycles.  Use 16k-cycle intervals for several intervals per sweep.
  ExactProfiler profiler(machine_, map_, /*series_interval=*/16'384);
  profiler.start();
  sweep(early, 64 * 1024);
  sweep(late, 64 * 1024);
  profiler.stop();

  const auto series = profiler.series();
  ASSERT_EQ(series.size(), 2u);
  // Alphabetical order: "early" then "late".
  EXPECT_EQ(series[0].name, "early");
  const auto& e = series[0].misses_per_interval;
  const auto& l = series[1].misses_per_interval;
  ASSERT_EQ(e.size(), l.size());
  ASSERT_GE(e.size(), 4u);
  // Early misses concentrate in the first half, late in the second.
  std::uint64_t e_first = 0;
  std::uint64_t e_second = 0;
  for (std::size_t i = 0; i < e.size(); ++i) {
    (i < e.size() / 2 ? e_first : e_second) += e[i];
  }
  EXPECT_GT(e_first, e_second);
  std::uint64_t l_first = 0;
  std::uint64_t l_second = 0;
  for (std::size_t i = 0; i < l.size(); ++i) {
    (i < l.size() / 2 ? l_first : l_second) += l[i];
  }
  EXPECT_LT(l_first, l_second);
  // Totals across intervals match the report counts.
  EXPECT_EQ(e_first + e_second, 1024u);
  EXPECT_EQ(l_first + l_second, 1024u);
}

TEST_F(ExactProfilerTest, SeriesDisabledWhenIntervalZero) {
  const sim::Addr a = machine_.address_space().define_static("a", 4096);
  ExactProfiler profiler(machine_, map_);
  profiler.start();
  sweep(a, 4096);
  profiler.stop();
  for (const auto& s : profiler.series()) {
    EXPECT_TRUE(s.misses_per_interval.empty());
  }
  EXPECT_EQ(profiler.interval_count(), 0u);
}

}  // namespace
}  // namespace hpm::core
