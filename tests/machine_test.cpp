#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hpm::sim {
namespace {

MachineConfig small_machine() {
  MachineConfig c;
  c.cache.size_bytes = 8 * 1024;
  c.cache.line_size = 64;
  c.cache.associativity = 8;
  c.num_miss_counters = 12;
  return c;
}

TEST(Machine, LoadStoreRoundTrip) {
  Machine m(small_machine());
  const Addr a = m.address_space().define_static("v", 8);
  m.store<double>(a, 2.5);
  EXPECT_EQ(m.load<double>(a), 2.5);
  EXPECT_EQ(m.stats().app_refs, 2u);
}

TEST(Machine, CountsInstructionsAndCycles) {
  Machine m(small_machine());
  m.exec(100);
  EXPECT_EQ(m.stats().app_instructions, 100u);
  EXPECT_EQ(m.stats().app_cycles, 100u);  // 1 cycle per instruction
  const Addr a = m.address_space().define_static("v", 8);
  m.store<std::uint64_t>(a, 1);  // 1 instr + miss penalty
  EXPECT_EQ(m.stats().app_instructions, 101u);
  EXPECT_EQ(m.stats().app_cycles,
            101u + m.config().cycles.cache_miss_penalty);
}

TEST(Machine, MissesFeedThePmu) {
  Machine m(small_machine());
  const Addr a = m.address_space().define_static("v", 4096);
  m.pmu().configure(0, a, a + 4096);
  for (int i = 0; i < 4; ++i) m.touch(a + static_cast<Addr>(i) * 64);
  EXPECT_EQ(m.pmu().read(0), 4u);
  EXPECT_EQ(m.pmu().global_misses(), 4u);
  EXPECT_EQ(m.pmu().last_miss_address(), a + 3 * 64);
  m.touch(a);  // hit: no PMU activity
  EXPECT_EQ(m.pmu().global_misses(), 4u);
}

struct CountingHandler : InterruptHandler {
  int overflow = 0;
  int timer = 0;
  Addr last_addr = 0;
  std::uint64_t rearm = 0;
  void on_interrupt(Machine& m, InterruptKind kind) override {
    if (kind == InterruptKind::kMissOverflow) {
      ++overflow;
      last_addr = m.pmu().last_miss_address();
      if (rearm) m.arm_miss_overflow(rearm);
    } else {
      ++timer;
    }
  }
};

TEST(Machine, MissOverflowInterruptDelivery) {
  Machine m(small_machine());
  CountingHandler handler;
  handler.rearm = 5;
  m.set_handler(&handler);
  m.arm_miss_overflow(5);
  const Addr a = m.address_space().define_static("v", 1 << 16);
  for (int i = 0; i < 20; ++i) m.touch(a + static_cast<Addr>(i) * 64);
  EXPECT_EQ(handler.overflow, 4);  // 20 misses / period 5
  EXPECT_EQ(m.stats().interrupts, 4u);
}

TEST(Machine, InterruptCostIsCharged) {
  Machine m(small_machine());
  CountingHandler handler;
  m.set_handler(&handler);
  m.arm_miss_overflow(1);
  const Addr a = m.address_space().define_static("v", 4096);
  m.touch(a);
  EXPECT_EQ(handler.overflow, 1);
  EXPECT_EQ(m.stats().tool_cycles, m.config().cycles.interrupt_cost);
}

TEST(Machine, TimerFiresOnce) {
  Machine m(small_machine());
  CountingHandler handler;
  m.set_handler(&handler);
  m.arm_timer_in(1000);
  m.exec(999);
  EXPECT_EQ(handler.timer, 0);
  m.exec(10);
  EXPECT_EQ(handler.timer, 1);
  m.exec(10'000);
  EXPECT_EQ(handler.timer, 1);  // one-shot
  EXPECT_FALSE(m.timer_armed());
}

struct RearmTimerHandler : InterruptHandler {
  int fired = 0;
  void on_interrupt(Machine& m, InterruptKind kind) override {
    if (kind == InterruptKind::kCycleTimer) {
      ++fired;
      m.arm_timer_in(1000);
    }
  }
};

TEST(Machine, TimerCanBePeriodicViaRearm) {
  Machine m(small_machine());
  RearmTimerHandler handler;
  m.set_handler(&handler);
  m.arm_timer_in(1000);
  for (int i = 0; i < 100; ++i) m.exec(100);
  // ~10k cycles plus interrupt costs; allow the drift from interrupt cost.
  EXPECT_GE(handler.fired, 1);
  EXPECT_LE(handler.fired, 10);
}

struct ToolTouchHandler : InterruptHandler {
  Addr target = 0;
  void on_interrupt(Machine& m, InterruptKind kind) override {
    if (kind == InterruptKind::kMissOverflow) {
      m.tool_touch(target);
      m.arm_miss_overflow(50);
    }
  }
};

TEST(Machine, ToolAccessesPerturbTheCache) {
  // Two identical app runs; the instrumented one sees extra (tool) misses
  // and its tool accesses can evict app lines — the Figure 3 mechanism.
  auto run = [](bool instrumented) {
    Machine m(small_machine());
    ToolTouchHandler handler;
    handler.target = m.address_space().alloc_instr(64);
    if (instrumented) {
      m.set_handler(&handler);
      m.arm_miss_overflow(50);
    }
    const Addr a = m.address_space().define_static("v", 64 * 1024);
    for (int sweep = 0; sweep < 4; ++sweep) {
      for (Addr off = 0; off < 64 * 1024; off += 64) m.touch(a + off);
    }
    return m.stats();
  };
  const auto base = run(false);
  const auto inst = run(true);
  EXPECT_EQ(base.app_refs, inst.app_refs);
  EXPECT_EQ(base.app_instructions, inst.app_instructions);
  EXPECT_GT(inst.tool_refs, 0u);
  EXPECT_GE(inst.total_misses(), base.total_misses());
  EXPECT_GT(inst.interrupts, 0u);
}

TEST(Machine, ToolPlaneRunsWithInterruptsMasked) {
  // A tool miss must not recursively trigger the overflow handler.
  struct Recurse : InterruptHandler {
    int depth = 0;
    int max_depth = 0;
    Addr instr_data = 0;
    void on_interrupt(Machine& m, InterruptKind) override {
      ++depth;
      max_depth = std::max(max_depth, depth);
      // This tool access misses and bumps the global counter past the
      // (re-armed) threshold, but no nested interrupt may fire.
      m.arm_miss_overflow(1);
      m.tool_touch(instr_data);
      --depth;
    }
  };
  Machine m(small_machine());
  Recurse handler;
  handler.instr_data = m.address_space().alloc_instr(1 << 16);
  m.set_handler(&handler);
  m.arm_miss_overflow(1);
  const Addr a = m.address_space().define_static("v", 1 << 16);
  for (int i = 0; i < 32; ++i) m.touch(a + static_cast<Addr>(i) * 64);
  EXPECT_EQ(handler.max_depth, 1);
}

TEST(Machine, MissObserverSeesEveryAppMiss) {
  Machine m(small_machine());
  std::vector<Addr> observed;
  m.set_miss_observer([&](Addr addr, bool is_tool) {
    if (!is_tool) observed.push_back(addr);
  });
  const Addr a = m.address_space().define_static("v", 8 * 64);
  for (int i = 0; i < 8; ++i) m.touch(a + static_cast<Addr>(i) * 64);
  for (int i = 0; i < 8; ++i) m.touch(a + static_cast<Addr>(i) * 64);  // hits
  ASSERT_EQ(observed.size(), 8u);
  EXPECT_EQ(observed.front(), a);
  EXPECT_EQ(m.stats().app_misses, 8u);
}

TEST(Machine, MissObserverDistinguishesToolMisses) {
  Machine m(small_machine());
  int tool_misses = 0;
  m.set_miss_observer([&](Addr, bool is_tool) { tool_misses += is_tool; });
  const Addr t = m.address_space().alloc_instr(64);
  m.tool_touch(t);
  EXPECT_EQ(tool_misses, 1);
  EXPECT_EQ(m.stats().tool_misses, 1u);
  EXPECT_EQ(m.stats().app_misses, 0u);
}

TEST(Machine, DeterministicReplay) {
  auto run = [] {
    Machine m(small_machine());
    const Addr a = m.address_space().define_static("v", 1 << 18);
    for (Addr off = 0; off < (1 << 18); off += 64) m.touch(a + off);
    m.exec(12345);
    return m.stats();
  };
  const auto s1 = run();
  const auto s2 = run();
  EXPECT_EQ(s1.app_misses, s2.app_misses);
  EXPECT_EQ(s1.app_cycles, s2.app_cycles);
  EXPECT_EQ(s1.total_cycles(), s2.total_cycles());
}

}  // namespace
}  // namespace hpm::sim
