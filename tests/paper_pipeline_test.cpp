// End-to-end reproduction assertions: reduced-scale versions of the paper's
// headline results, one test per claim.  These are the repository's "does
// the reproduction still reproduce?" regression gates.
#include <gtest/gtest.h>

#include "core/primes.hpp"
#include "harness/experiment.hpp"

namespace hpm {
namespace {

sim::MachineConfig quarter_machine() {
  sim::MachineConfig c;
  c.cache.size_bytes = 128 * 1024;  // workloads run at scale 0.25
  return c;
}

workloads::WorkloadOptions quarter_options(const std::string& name) {
  workloads::WorkloadOptions o;
  o.scale = 0.25;
  // Iterations chosen so each run has a few hundred thousand misses.
  if (name == "tomcatv") o.iterations = 6;
  if (name == "swim") o.iterations = 6;
  if (name == "su2cor") o.iterations = 4;
  if (name == "mgrid") o.iterations = 5;
  if (name == "applu") o.iterations = 8;
  return o;
}

// The default sampling period is a prime: several kernels interleave array
// touches with small even periods, so an even sampling period would alias
// (the §3.1 effect — demonstrated deliberately in the tomcatv test below).
harness::RunResult run_tool(const std::string& workload,
                            harness::ToolKind tool,
                            std::uint64_t period = 1'999) {
  harness::RunConfig config;
  config.machine = quarter_machine();
  config.tool = tool;
  config.sampler.period = period;
  config.search.n = 10;
  config.search.initial_interval = 250'000;
  return harness::run_experiment(config, workload,
                                 quarter_options(workload));
}

// -- Table 1 claims ----------------------------------------------------------

TEST(PaperPipeline, SamplingRanksConsistentlyOnMgrid) {
  const auto result = run_tool("mgrid", harness::ToolKind::kSampler);
  const auto comparison =
      core::Report::compare(result.actual.filtered(1.0), result.estimated, 3);
  EXPECT_EQ(comparison.missing, 0u);
  EXPECT_GT(comparison.order_agreement, 0.99);
  EXPECT_LT(comparison.max_abs_error, 5.0);
}

TEST(PaperPipeline, SearchRanksConsistentlyOnMgrid) {
  const auto result = run_tool("mgrid", harness::ToolKind::kSearch);
  const auto comparison =
      core::Report::compare(result.actual.filtered(1.0), result.estimated, 3);
  EXPECT_EQ(comparison.missing, 0u);
  EXPECT_GT(comparison.order_agreement, 0.99);
  EXPECT_LT(comparison.max_abs_error, 7.0);
}

TEST(PaperPipeline, SearchFindsAppluJacobiansDespitePhases) {
  const auto result = run_tool("applu", harness::ToolKind::kSearch);
  for (const char* name : {"a", "b", "c", "d"}) {
    EXPECT_GT(result.estimated.rank_of(name), 0u) << name;
  }
  const auto comparison =
      core::Report::compare(result.actual.filtered(1.0), result.estimated, 4);
  EXPECT_LT(comparison.max_abs_error, 8.0);
}

TEST(PaperPipeline, SearchFindsSu2corLattice) {
  const auto result = run_tool("su2cor", harness::ToolKind::kSearch);
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "U");
}

harness::RunConfig compress_config(unsigned n) {
  // compress needs a cache that keeps its ~550 KB hash tables resident, as
  // the paper's 2 MB cache does; pair a half-scale input with a 1 MB cache.
  harness::RunConfig config;
  config.machine.cache.size_bytes = 1024 * 1024;
  config.tool = harness::ToolKind::kSearch;
  config.search.n = n;
  config.search.initial_interval = 500'000;
  return config;
}

workloads::WorkloadOptions compress_options() {
  workloads::WorkloadOptions o;
  o.scale = 0.5;
  o.iterations = 3;
  return o;
}

TEST(PaperPipeline, SearchFindsCompressBuffers) {
  const auto result = harness::run_experiment(compress_config(10), "compress",
                                              compress_options());
  ASSERT_GE(result.estimated.size(), 2u);
  EXPECT_EQ(result.estimated.rows()[0].name, "orig_text_buffer");
  EXPECT_EQ(result.estimated.rows()[1].name, "comp_text_buffer");
}

TEST(PaperPipeline, SearchFindsIjpegImageBlock) {
  const auto result = run_tool("ijpeg", harness::ToolKind::kSearch);
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "0x141020000");
}

// -- §3.1: the aliasing claim ------------------------------------------------

TEST(PaperPipeline, TomcatvSamplingAliasesAtEvenPeriodOnly) {
  // Scale 0.25: misses/iteration = 40 * 150^2 / 8 = 112,500.  An even
  // divisor-friendly period aliases; the next prime does not.
  const std::uint64_t period = 1'250;  // divides 112,500
  const auto aliased =
      run_tool("tomcatv", harness::ToolKind::kSampler, period);
  const auto clean = run_tool("tomcatv", harness::ToolKind::kSampler,
                              core::next_prime(period));
  const auto bad = core::Report::compare(aliased.actual.filtered(1.0),
                                         aliased.estimated, 7);
  const auto good = core::Report::compare(clean.actual.filtered(1.0),
                                          clean.estimated, 7);
  EXPECT_GT(bad.max_abs_error, 8.0);
  EXPECT_LT(good.max_abs_error, 4.0);
  EXPECT_GT(bad.max_abs_error, good.max_abs_error * 2);
}

// -- Table 2: 2-way vs 10-way ------------------------------------------------

TEST(PaperPipeline, TwoWaySearchStillFindsCompressTop) {
  const auto result = harness::run_experiment(compress_config(2), "compress",
                                              compress_options());
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "orig_text_buffer");
}

// -- Figure 4: overhead ordering ----------------------------------------------

TEST(PaperPipeline, OverheadOrderingMatchesFigure4) {
  // sampling 1/1,000 >> sampling 1/10,000 >> search, as in the figure.
  auto slowdown = [&](harness::ToolKind tool, std::uint64_t period) {
    harness::RunConfig config;
    config.machine = quarter_machine();
    const auto base = harness::run_experiment(config, "tomcatv",
                                              quarter_options("tomcatv"));
    config.tool = tool;
    config.sampler.period = period;
    config.search.n = 10;
    config.search.initial_interval = 250'000;
    const auto run = harness::run_experiment(config, "tomcatv",
                                             quarter_options("tomcatv"));
    return static_cast<double>(run.stats.total_cycles()) /
               static_cast<double>(base.stats.total_cycles()) -
           1.0;
  };
  const double fast_sampling = slowdown(harness::ToolKind::kSampler, 1'000);
  const double slow_sampling = slowdown(harness::ToolKind::kSampler, 10'000);
  const double search = slowdown(harness::ToolKind::kSearch, 0);
  EXPECT_GT(fast_sampling, 5 * slow_sampling);
  EXPECT_GT(slow_sampling, search);
  EXPECT_LT(search, 0.01);  // well under 1%
}

}  // namespace
}  // namespace hpm
