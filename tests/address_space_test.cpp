#include "sim/address_space.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hpm::sim {
namespace {

TEST(AddressSpace, StaticAllocationIsBumpAndAligned) {
  AddressSpace as;
  const Addr a = as.define_static("A", 100);
  const Addr b = as.define_static("B", 100);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_TRUE(as.layout().data.contains(a));
  EXPECT_TRUE(as.layout().data.contains(b));
}

TEST(AddressSpace, StaticHookFires) {
  AddressSpace as;
  std::vector<std::string> names;
  AddressSpace::Hooks hooks;
  hooks.on_static = [&](std::string_view name, Addr, std::uint64_t) {
    names.emplace_back(name);
  };
  as.set_hooks(std::move(hooks));
  (void)as.define_static("X", 8);
  (void)as.define_static("Y", 8);
  EXPECT_EQ(names, (std::vector<std::string>{"X", "Y"}));
}

TEST(AddressSpace, RejectsBadStatic) {
  AddressSpace as;
  EXPECT_THROW((void)as.define_static("Z", 0), std::invalid_argument);
  EXPECT_THROW((void)as.define_static("Z", 8, 3), std::invalid_argument);
}

TEST(AddressSpace, HeapBaseMatchesPaperLayout) {
  AddressSpace as;
  // The first heap block lands at 0x141000000 — the address family the
  // paper uses as object names for ijpeg.
  EXPECT_EQ(as.malloc(64), 0x141000000ULL);
}

TEST(AddressSpace, IjpegAllocationSequenceReproducesPaperNames) {
  AddressSpace as;
  (void)as.malloc(0x1e000);              // work buffer
  const Addr second = as.malloc(0x2000); // row pointers
  const Addr third = as.malloc(1 << 20); // image
  EXPECT_EQ(second, 0x14101e000ULL);
  EXPECT_EQ(third, 0x141020000ULL);
}

TEST(AddressSpace, MallocAlignsTo64) {
  AddressSpace as;
  const Addr a = as.malloc(1);
  const Addr b = as.malloc(1);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_EQ(b - a, 64u);  // blocks never share a cache line
}

TEST(AddressSpace, FreeReusesSpaceFirstFit) {
  AddressSpace as;
  const Addr a = as.malloc(128);
  const Addr b = as.malloc(128);
  (void)b;
  as.free(a);
  // First fit: the freed hole is reused for a block that fits.
  EXPECT_EQ(as.malloc(128), a);
}

TEST(AddressSpace, FreeCoalescesNeighbours) {
  AddressSpace as;
  const Addr a = as.malloc(64);
  const Addr b = as.malloc(64);
  const Addr c = as.malloc(64);
  (void)as.malloc(64);  // guard so the tail free block is separate
  as.free(a);
  as.free(c);
  as.free(b);  // merges a+b+c into one hole
  EXPECT_EQ(as.malloc(192), a);
}

TEST(AddressSpace, HeapAccounting) {
  AddressSpace as;
  EXPECT_EQ(as.heap_bytes_in_use(), 0u);
  const Addr a = as.malloc(100);  // rounded to 128
  EXPECT_EQ(as.heap_bytes_in_use(), 128u);
  EXPECT_EQ(as.heap_block_size(a), 128u);
  as.free(a);
  EXPECT_EQ(as.heap_bytes_in_use(), 0u);
  EXPECT_EQ(as.heap_block_size(a), 0u);
}

TEST(AddressSpace, FreeOfNonBlockThrows) {
  AddressSpace as;
  const Addr a = as.malloc(64);
  EXPECT_THROW(as.free(a + 64), std::invalid_argument);
  as.free(a);
  EXPECT_THROW(as.free(a), std::invalid_argument);  // double free
  as.free(kNullAddr);                               // free(NULL) is a no-op
}

TEST(AddressSpace, AllocFreeHooksFire) {
  AddressSpace as;
  int allocs = 0;
  int frees = 0;
  AllocSite seen_site = kNoSite;
  AddressSpace::Hooks hooks;
  hooks.on_alloc = [&](Addr, std::uint64_t, AllocSite site) {
    ++allocs;
    seen_site = site;
  };
  hooks.on_free = [&](Addr) { ++frees; };
  as.set_hooks(std::move(hooks));
  const Addr a = as.malloc(64, /*site=*/7);
  as.free(a);
  EXPECT_EQ(allocs, 1);
  EXPECT_EQ(frees, 1);
  EXPECT_EQ(seen_site, 7u);
}

TEST(AddressSpace, MallocChurnStaysDeterministic) {
  auto run = [] {
    AddressSpace as;
    std::vector<Addr> live;
    std::uint64_t sig = 0;
    for (int i = 0; i < 2000; ++i) {
      if (i % 3 == 2 && !live.empty()) {
        as.free(live[static_cast<std::size_t>(i) % live.size()]);
        live.erase(live.begin() +
                   static_cast<std::ptrdiff_t>(
                       static_cast<std::size_t>(i) % live.size()));
      } else {
        live.push_back(as.malloc(64 + (static_cast<std::uint64_t>(i) % 17) * 64));
      }
      sig = sig * 1315423911u + (live.empty() ? 0 : live.back());
    }
    return sig;
  };
  EXPECT_EQ(run(), run());
}

TEST(AddressSpace, StackFramesAndLocals) {
  AddressSpace as;
  const Addr sp0 = as.stack_pointer();
  as.push_frame("main");
  const Addr x = as.define_local("x", 64);
  EXPECT_LT(x, sp0);
  EXPECT_TRUE(as.layout().stack.contains(x));
  as.push_frame("callee");
  const Addr y = as.define_local("y", 32);
  EXPECT_LT(y, x);
  as.pop_frame();
  as.pop_frame();
  EXPECT_EQ(as.stack_pointer(), sp0);
  EXPECT_EQ(as.frame_depth(), 0u);
}

TEST(AddressSpace, StackHooksFire) {
  AddressSpace as;
  std::vector<std::string> events;
  AddressSpace::Hooks hooks;
  hooks.on_frame_push = [&](std::string_view f) {
    events.push_back("push:" + std::string(f));
  };
  hooks.on_frame_local = [&](std::string_view v, Addr, std::uint64_t) {
    events.push_back("local:" + std::string(v));
  };
  hooks.on_frame_pop = [&]() { events.emplace_back("pop"); };
  as.set_hooks(std::move(hooks));
  as.push_frame("f");
  (void)as.define_local("buf", 16);
  as.pop_frame();
  EXPECT_EQ(events,
            (std::vector<std::string>{"push:f", "local:buf", "pop"}));
}

TEST(AddressSpace, LocalOutsideFrameThrows) {
  AddressSpace as;
  EXPECT_THROW((void)as.define_local("x", 8), std::logic_error);
  EXPECT_THROW(as.pop_frame(), std::logic_error);
}

TEST(AddressSpace, InstrSegmentIsSeparate) {
  AddressSpace as;
  const Addr t = as.alloc_instr(4096);
  EXPECT_TRUE(as.layout().instr.contains(t));
  EXPECT_FALSE(as.layout().application_span().contains(t));
  EXPECT_EQ(as.instr_bytes_in_use(), 4096u);
}

TEST(AddressSpace, ReserveDataGapSkipsAddresses) {
  AddressSpace as;
  const Addr a = as.define_static("A", 64);
  as.reserve_data_gap(1 << 20);
  const Addr b = as.define_static("B", 64);
  EXPECT_GE(b, a + (1 << 20));
}

TEST(AddressSpace, SegmentsDoNotOverlap) {
  const SegmentLayout layout;
  EXPECT_FALSE(layout.data.overlaps(layout.heap));
  EXPECT_FALSE(layout.data.overlaps(layout.stack));
  EXPECT_FALSE(layout.data.overlaps(layout.instr));
  EXPECT_FALSE(layout.heap.overlaps(layout.instr));
  EXPECT_FALSE(layout.stack.overlaps(layout.heap));
  // The application span covers stack, data and heap but not instr.
  EXPECT_TRUE(layout.application_span().contains(layout.data.base));
  EXPECT_TRUE(layout.application_span().contains(layout.heap.base));
  EXPECT_TRUE(layout.application_span().contains(layout.stack.base));
  EXPECT_FALSE(layout.application_span().contains(layout.instr.base));
}

}  // namespace
}  // namespace hpm::sim
