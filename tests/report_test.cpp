#include "core/report.hpp"

#include <gtest/gtest.h>

#include "core/primes.hpp"

namespace hpm::core {
namespace {

Report make_report() {
  std::vector<ReportRow> rows = {
      {"B", {}, 300, 30.0},
      {"A", {}, 500, 50.0},
      {"C", {}, 150, 15.0},
      {"D", {}, 50, 5.0},
  };
  return Report(std::move(rows), 1000);
}

TEST(Report, SortsByPercentDescending) {
  const auto r = make_report();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r.rows()[0].name, "A");
  EXPECT_EQ(r.rows()[1].name, "B");
  EXPECT_EQ(r.rows()[2].name, "C");
  EXPECT_EQ(r.rows()[3].name, "D");
  EXPECT_EQ(r.total_count(), 1000u);
}

TEST(Report, TiesBreakByNameForDeterminism) {
  std::vector<ReportRow> rows = {{"z", {}, 1, 10.0}, {"a", {}, 1, 10.0}};
  const Report r(std::move(rows), 2);
  EXPECT_EQ(r.rows()[0].name, "a");
}

TEST(Report, RankAndPercentLookups) {
  const auto r = make_report();
  EXPECT_EQ(r.rank_of("A"), 1u);
  EXPECT_EQ(r.rank_of("D"), 4u);
  EXPECT_EQ(r.rank_of("nope"), 0u);
  EXPECT_EQ(r.percent_of("C").value_or(-1), 15.0);
  EXPECT_FALSE(r.percent_of("nope").has_value());
}

TEST(Report, FilteredDropsSmallRows) {
  const auto r = make_report().filtered(10.0);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.rank_of("D"), 0u);
  // The paper's tables filter at 0.01%: everything here survives that.
  EXPECT_EQ(make_report().filtered(0.01).size(), 4u);
}

TEST(Report, TopTruncates) {
  const auto r = make_report().top(2);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.rows()[1].name, "B");
  EXPECT_EQ(make_report().top(99).size(), 4u);
}

TEST(Report, EmptyReport) {
  const Report r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.rank_of("A"), 0u);
  EXPECT_TRUE(r.filtered(1.0).empty());
  EXPECT_TRUE(r.top(5).empty());
}

TEST(ReportCompare, PerfectEstimate) {
  const auto actual = make_report();
  const auto c = Report::compare(actual, make_report(), 4);
  EXPECT_EQ(c.objects_compared, 4u);
  EXPECT_EQ(c.max_abs_error, 0.0);
  EXPECT_EQ(c.mean_abs_error, 0.0);
  EXPECT_EQ(c.order_agreement, 1.0);
  EXPECT_EQ(c.missing, 0u);
}

TEST(ReportCompare, MissingObjectsCountAsFullError) {
  const auto actual = make_report();
  std::vector<ReportRow> est_rows = {{"A", {}, 1, 48.0}, {"B", {}, 1, 32.0}};
  const Report estimate(std::move(est_rows), 2);
  const auto c = Report::compare(actual, estimate, 4);
  EXPECT_EQ(c.missing, 2u);  // C and D absent
  EXPECT_EQ(c.max_abs_error, 15.0);  // C's full 15%
}

TEST(ReportCompare, TopKLimitsComparison) {
  const auto actual = make_report();
  const Report empty;
  const auto c = Report::compare(actual, empty, 2);
  EXPECT_EQ(c.objects_compared, 2u);
  EXPECT_EQ(c.missing, 2u);
  EXPECT_EQ(c.max_abs_error, 50.0);
}

TEST(ReportCompare, OrderAgreementDetectsSwaps) {
  const auto actual = make_report();
  std::vector<ReportRow> est_rows = {
      {"A", {}, 1, 20.0}, {"B", {}, 1, 40.0},  // A and B swapped
      {"C", {}, 1, 15.0}, {"D", {}, 1, 5.0},
  };
  const Report estimate(std::move(est_rows), 4);
  const auto c = Report::compare(actual, estimate, 4);
  EXPECT_LT(c.order_agreement, 1.0);
  EXPECT_GE(c.order_agreement, 5.0 / 6.0 - 1e-12);  // one bad pair of six
}

// -- primes (used by the sampling period policies) --------------------------

TEST(Primes, SmallCases) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(49));
  EXPECT_TRUE(is_prime(97));
}

TEST(Primes, PaperInterval) {
  // The paper's prime sampling interval.
  EXPECT_TRUE(is_prime(50'111));
  EXPECT_FALSE(is_prime(50'000));
  EXPECT_EQ(next_prime(50'001), 50'021u);
  EXPECT_EQ(next_prime(50'111), 50'111u);
}

TEST(Primes, NextPrimeEdges) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(1'000'000), 1'000'003u);
}

TEST(Primes, NextPrimeIsAlwaysPrimeAndMinimal) {
  for (std::uint64_t n = 2; n < 2000; ++n) {
    const auto p = next_prime(n);
    EXPECT_TRUE(is_prime(p)) << p;
    EXPECT_GE(p, n);
    for (std::uint64_t q = n; q < p; ++q) EXPECT_FALSE(is_prime(q)) << q;
  }
}

}  // namespace
}  // namespace hpm::core
