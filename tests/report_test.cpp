#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/primes.hpp"

namespace hpm::core {
namespace {

Report make_report() {
  std::vector<ReportRow> rows = {
      {"B", {}, 300, 30.0},
      {"A", {}, 500, 50.0},
      {"C", {}, 150, 15.0},
      {"D", {}, 50, 5.0},
  };
  return Report(std::move(rows), 1000);
}

TEST(Report, SortsByPercentDescending) {
  const auto r = make_report();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r.rows()[0].name, "A");
  EXPECT_EQ(r.rows()[1].name, "B");
  EXPECT_EQ(r.rows()[2].name, "C");
  EXPECT_EQ(r.rows()[3].name, "D");
  EXPECT_EQ(r.total_count(), 1000u);
}

TEST(Report, TiesBreakByNameForDeterminism) {
  std::vector<ReportRow> rows = {{"z", {}, 1, 10.0}, {"a", {}, 1, 10.0}};
  const Report r(std::move(rows), 2);
  EXPECT_EQ(r.rows()[0].name, "a");
}

TEST(Report, RankAndPercentLookups) {
  const auto r = make_report();
  EXPECT_EQ(r.rank_of("A"), 1u);
  EXPECT_EQ(r.rank_of("D"), 4u);
  EXPECT_EQ(r.rank_of("nope"), 0u);
  EXPECT_EQ(r.percent_of("C").value_or(-1), 15.0);
  EXPECT_FALSE(r.percent_of("nope").has_value());
}

TEST(Report, FilteredDropsSmallRows) {
  const auto r = make_report().filtered(10.0);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.rank_of("D"), 0u);
  // The paper's tables filter at 0.01%: everything here survives that.
  EXPECT_EQ(make_report().filtered(0.01).size(), 4u);
}

TEST(Report, TopTruncates) {
  const auto r = make_report().top(2);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.rows()[1].name, "B");
  EXPECT_EQ(make_report().top(99).size(), 4u);
}

TEST(Report, EmptyReport) {
  const Report r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.rank_of("A"), 0u);
  EXPECT_TRUE(r.filtered(1.0).empty());
  EXPECT_TRUE(r.top(5).empty());
}

TEST(ReportCompare, PerfectEstimate) {
  const auto actual = make_report();
  const auto c = Report::compare(actual, make_report(), 4);
  EXPECT_EQ(c.objects_compared, 4u);
  EXPECT_EQ(c.max_abs_error, 0.0);
  EXPECT_EQ(c.mean_abs_error, 0.0);
  EXPECT_EQ(c.order_agreement, 1.0);
  EXPECT_EQ(c.missing, 0u);
}

TEST(ReportCompare, MissingObjectsCountAsFullError) {
  const auto actual = make_report();
  std::vector<ReportRow> est_rows = {{"A", {}, 1, 48.0}, {"B", {}, 1, 32.0}};
  const Report estimate(std::move(est_rows), 2);
  const auto c = Report::compare(actual, estimate, 4);
  EXPECT_EQ(c.missing, 2u);  // C and D absent
  EXPECT_EQ(c.max_abs_error, 15.0);  // C's full 15%
}

TEST(ReportCompare, TopKLimitsComparison) {
  const auto actual = make_report();
  const Report empty;
  const auto c = Report::compare(actual, empty, 2);
  EXPECT_EQ(c.objects_compared, 2u);
  EXPECT_EQ(c.missing, 2u);
  EXPECT_EQ(c.max_abs_error, 50.0);
}

TEST(ReportCompare, OrderAgreementDetectsSwaps) {
  const auto actual = make_report();
  std::vector<ReportRow> est_rows = {
      {"A", {}, 1, 20.0}, {"B", {}, 1, 40.0},  // A and B swapped
      {"C", {}, 1, 15.0}, {"D", {}, 1, 5.0},
  };
  const Report estimate(std::move(est_rows), 4);
  const auto c = Report::compare(actual, estimate, 4);
  EXPECT_LT(c.order_agreement, 1.0);
  EXPECT_GE(c.order_agreement, 5.0 / 6.0 - 1e-12);  // one bad pair of six
}

// -- primes (used by the sampling period policies) --------------------------

TEST(Primes, SmallCases) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(49));
  EXPECT_TRUE(is_prime(97));
}

TEST(Primes, PaperInterval) {
  // The paper's prime sampling interval.
  EXPECT_TRUE(is_prime(50'111));
  EXPECT_FALSE(is_prime(50'000));
  EXPECT_EQ(next_prime(50'001), 50'021u);
  EXPECT_EQ(next_prime(50'111), 50'111u);
}

TEST(Primes, NextPrimeEdges) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(1'000'000), 1'000'003u);
}

TEST(Primes, NextPrimeIsAlwaysPrimeAndMinimal) {
  for (std::uint64_t n = 2; n < 2000; ++n) {
    const auto p = next_prime(n);
    EXPECT_TRUE(is_prime(p)) << p;
    EXPECT_GE(p, n);
    for (std::uint64_t q = n; q < p; ++q) EXPECT_FALSE(is_prime(q)) << q;
  }
}

// -- Comparison-table helper (shared by Tables 1-2, hpmrun, hpmreport) -------

Report report_from(
    const std::vector<std::pair<std::string, double>>& shares) {
  std::vector<ReportRow> rows;
  for (const auto& [name, percent] : shares) {
    rows.push_back({name, {}, static_cast<std::uint64_t>(percent * 10), percent});
  }
  return Report(std::move(rows), 1000);
}

std::string render(const util::Table& table) {
  std::ostringstream out;
  table.render(out);
  return out.str();
}

TEST(ComparisonTable, HeadersFollowEstimateNames) {
  const util::Table table = make_comparison_table("app", {"sample", "search"});
  const std::string text = render(table);
  EXPECT_NE(text.find("actual rank"), std::string::npos);
  EXPECT_NE(text.find("sample rank"), std::string::npos);
  EXPECT_NE(text.find("search %"), std::string::npos);
}

TEST(ComparisonTable, LabelPrintsOnFirstRowOnly) {
  const Report actual = report_from({{"A", 60.0}, {"B", 40.0}});
  const Report estimate = report_from({{"A", 58.0}, {"B", 42.0}});
  util::Table table = make_comparison_table("app", {"est"});
  append_comparison_rows(table, {.label = "tomcatv",
                                 .actual = &actual,
                                 .estimates = {&estimate}});
  const std::string text = render(table);
  // Exactly one occurrence of the label across both data rows.
  const auto first = text.find("tomcatv");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("tomcatv", first + 1), std::string::npos);
}

TEST(ComparisonTable, TruncatesToTopKButRanksInFullReport) {
  // 5 objects, top_k = 3: rows beyond 3 are dropped, but the rank column
  // still reflects each object's position in the FULL report.
  const Report actual = report_from(
      {{"A", 40.0}, {"B", 25.0}, {"C", 15.0}, {"D", 12.0}, {"E", 8.0}});
  // The estimate ranks C first, so A's estimate rank is > 1.
  const Report estimate = report_from(
      {{"C", 50.0}, {"A", 30.0}, {"B", 10.0}, {"D", 6.0}, {"E", 4.0}});
  util::Table table = make_comparison_table("app", {"est"});
  append_comparison_rows(table, {.label = "x",
                                 .actual = &actual,
                                 .estimates = {&estimate},
                                 .top_k = 3});
  const std::string text = render(table);
  EXPECT_NE(text.find("A"), std::string::npos);
  EXPECT_NE(text.find("C"), std::string::npos);
  EXPECT_EQ(text.find("D"), std::string::npos);  // beyond top_k
  EXPECT_EQ(text.find("E"), std::string::npos);
}

TEST(ComparisonTable, TiedSharesKeepDeterministicNameOrder) {
  // Ties sort by name (the Report constructor's contract), so the table is
  // stable across platforms and reruns.
  const Report actual =
      report_from({{"Z", 30.0}, {"M", 30.0}, {"A", 30.0}, {"Q", 10.0}});
  util::Table table = make_comparison_table("app", {});
  append_comparison_rows(
      table, {.label = "x", .actual = &actual, .estimates = {}});
  const std::string text = render(table);
  const auto a = text.find("| A");
  const auto m = text.find("| M");
  const auto z = text.find("| Z");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(ComparisonTable, ZeroMissObjectAndMissingEstimateBlankOut) {
  // An object the estimate never saw renders blank cells, not 0 — the
  // paper's tables distinguish "not found" from "found with 0%".
  const Report actual = report_from({{"A", 99.0}, {"ZERO", 0.0}});
  const Report estimate = report_from({{"A", 100.0}});
  util::Table table = make_comparison_table("app", {"est"});
  append_comparison_rows(table, {.label = "x",
                                 .actual = &actual,
                                 .estimates = {&estimate}});
  const std::string text = render(table);
  // ZERO is listed (it is in the actual report) with a blank estimate.
  EXPECT_NE(text.find("ZERO"), std::string::npos);
  std::istringstream lines(text);
  std::string line;
  bool saw_zero_row = false;
  while (std::getline(lines, line)) {
    if (line.find("ZERO") == std::string::npos) continue;
    saw_zero_row = true;
    // actual rank=2, actual %=0.0, then two blank estimate cells.
    EXPECT_NE(line.find("0.0"), std::string::npos);
    EXPECT_EQ(line.find("100.0"), std::string::npos);
  }
  EXPECT_TRUE(saw_zero_row);
}

TEST(ComparisonTable, NullActualAppendsNothing) {
  util::Table table = make_comparison_table("app", {"est"});
  const std::string before = render(table);
  append_comparison_rows(
      table, {.label = "x", .actual = nullptr, .estimates = {}});
  EXPECT_EQ(render(table), before);
}

}  // namespace
}  // namespace hpm::core
