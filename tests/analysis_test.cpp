// Unit tests for the hpmreport analysis layer: Spearman correlation,
// accuracy scoreboards, the run-to-run diff engine, located document
// errors, and the HTML renderer.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/diff.hpp"
#include "analysis/document.hpp"
#include "analysis/html_report.hpp"
#include "analysis/scoreboard.hpp"

namespace hpm::analysis {
namespace {

// -- Spearman ----------------------------------------------------------------

TEST(Spearman, PerfectAgreementIsOne) {
  const std::vector<double> a{50.0, 30.0, 15.0, 5.0};
  const std::vector<double> b{40.0, 35.0, 20.0, 5.0};  // same order
  EXPECT_DOUBLE_EQ(spearman_rank_correlation(a, b), 1.0);
}

TEST(Spearman, PerfectReversalIsMinusOne) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(spearman_rank_correlation(a, b), -1.0);
}

TEST(Spearman, TiesGetAverageRanks) {
  // a ranks: 1, 2.5, 2.5, 4 — agreement with b is high but not perfect.
  const std::vector<double> a{40.0, 20.0, 20.0, 10.0};
  const std::vector<double> b{40.0, 30.0, 20.0, 10.0};
  const double rho = spearman_rank_correlation(a, b);
  EXPECT_GT(rho, 0.9);
  EXPECT_LT(rho, 1.0);
}

TEST(Spearman, DegenerateInputs) {
  const std::vector<double> constant{5.0, 5.0, 5.0};
  const std::vector<double> varying{1.0, 2.0, 3.0};
  const std::vector<double> single{1.0};
  EXPECT_DOUBLE_EQ(spearman_rank_correlation(constant, constant), 1.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation(constant, varying), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation(single, single), 1.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({}, {}), 1.0);
}

// -- Scoreboard --------------------------------------------------------------

core::Report make_report(
    const std::vector<std::pair<std::string, double>>& shares,
    std::uint64_t total = 1000) {
  std::vector<core::ReportRow> rows;
  for (const auto& [name, percent] : shares) {
    core::ReportRow row;
    row.name = name;
    row.percent = percent;
    row.count = static_cast<std::uint64_t>(percent * 10.0);
    rows.push_back(std::move(row));
  }
  return core::Report(std::move(rows), total);
}

harness::BatchItem make_item(
    const std::string& name, harness::ToolKind tool,
    const std::vector<std::pair<std::string, double>>& actual,
    const std::vector<std::pair<std::string, double>>& estimated) {
  harness::BatchItem item;
  item.spec.name = name;
  item.spec.workload = "synthetic";
  item.spec.config.tool = tool;
  item.ok = true;
  item.outcome = harness::RunOutcome::kOk;
  item.result.actual = make_report(actual);
  item.result.estimated = make_report(estimated);
  item.result.stats.app_cycles = 900;
  item.result.stats.tool_cycles = 100;
  return item;
}

TEST(Scoreboard, ScoresEstimateAgainstOwnActual) {
  harness::BatchResult batch;
  batch.items.push_back(make_item("synthetic/sample",
                                  harness::ToolKind::kSampler,
                                  {{"A", 60.0}, {"B", 30.0}, {"C", 10.0}},
                                  {{"A", 55.0}, {"B", 35.0}, {"C", 10.0}}));
  const Scoreboard scoreboard = score_batch(batch, {.top_k = 10});
  ASSERT_EQ(scoreboard.rows.size(), 1u);
  const ScoreRow& row = scoreboard.rows[0];
  EXPECT_EQ(row.objects, 3u);
  EXPECT_EQ(row.missing, 0u);
  EXPECT_NEAR(row.mean_abs_error, (5.0 + 5.0 + 0.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(row.max_abs_error, 5.0);
  EXPECT_DOUBLE_EQ(row.topk_overlap, 1.0);
  EXPECT_DOUBLE_EQ(row.spearman, 1.0);
  EXPECT_DOUBLE_EQ(row.overhead_percent, 10.0);
}

TEST(Scoreboard, MissingObjectsCountFullError) {
  harness::BatchResult batch;
  batch.items.push_back(make_item("synthetic/sample",
                                  harness::ToolKind::kSampler,
                                  {{"A", 70.0}, {"B", 30.0}},
                                  {{"A", 70.0}}));
  const Scoreboard scoreboard = score_batch(batch, {.top_k = 10});
  ASSERT_EQ(scoreboard.rows.size(), 1u);
  EXPECT_EQ(scoreboard.rows[0].missing, 1u);
  EXPECT_DOUBLE_EQ(scoreboard.rows[0].max_abs_error, 30.0);
  EXPECT_DOUBLE_EQ(scoreboard.rows[0].topk_overlap, 0.5);
}

TEST(Scoreboard, BorrowsBaselineFromToolNoneRun) {
  harness::BatchResult batch;
  // Estimate-only run: actual profile empty (exact profiling off).
  batch.items.push_back(make_item("synthetic/sample",
                                  harness::ToolKind::kSampler, {},
                                  {{"A", 50.0}, {"B", 50.0}}));
  batch.items.push_back(make_item("synthetic/none", harness::ToolKind::kNone,
                                  {{"A", 60.0}, {"B", 40.0}}, {}));
  const Scoreboard scoreboard = score_batch(batch, {.top_k = 10});
  // The tool=none run itself is never scored; the sampler borrows its
  // profile.
  ASSERT_EQ(scoreboard.rows.size(), 1u);
  EXPECT_EQ(scoreboard.rows[0].name, "synthetic/sample");
  EXPECT_EQ(scoreboard.rows[0].objects, 2u);
  EXPECT_DOUBLE_EQ(scoreboard.rows[0].max_abs_error, 10.0);
}

TEST(Scoreboard, SkipsFailedAndUnscorableRuns) {
  harness::BatchResult batch;
  batch.items.push_back(make_item("a", harness::ToolKind::kSampler, {},
                                  {{"A", 100.0}}));  // no baseline anywhere
  auto failed = make_item("b", harness::ToolKind::kSearch,
                          {{"A", 100.0}}, {{"A", 100.0}});
  failed.ok = false;
  batch.items.push_back(std::move(failed));
  EXPECT_TRUE(score_batch(batch, {}).rows.empty());
}

TEST(Scoreboard, ExportIsValidAnalysisV1) {
  harness::BatchResult batch;
  batch.items.push_back(make_item("synthetic/sample",
                                  harness::ToolKind::kSampler,
                                  {{"A", 60.0}, {"B", 40.0}},
                                  {{"A", 61.0}, {"B", 39.0}}));
  std::ostringstream out;
  export_json(out, score_batch(batch, {.top_k = 5}));
  const auto doc = harness::JsonValue::parse(out.str());
  EXPECT_EQ(doc.at("schema").str(), "hpm.analysis.v1");
  EXPECT_EQ(doc.at("top_k").uint(), 5u);
  ASSERT_EQ(doc.at("rows").array().size(), 1u);
  EXPECT_EQ(doc.at("rows").array()[0].at("name").str(), "synthetic/sample");
  EXPECT_DOUBLE_EQ(doc.at("rows").array()[0].at("max_abs_error").number(),
                   1.0);
}

// -- Diff --------------------------------------------------------------------

harness::BatchResult two_run_batch() {
  harness::BatchResult batch;
  batch.items.push_back(make_item("synthetic/sample",
                                  harness::ToolKind::kSampler,
                                  {{"A", 60.0}, {"B", 40.0}},
                                  {{"A", 58.0}, {"B", 42.0}}));
  batch.items.push_back(make_item("synthetic/search",
                                  harness::ToolKind::kSearch,
                                  {{"A", 60.0}, {"B", 40.0}},
                                  {{"A", 60.0}, {"B", 40.0}}));
  batch.items[0].result.stats.app_misses = 1000;
  batch.items[1].result.stats.app_misses = 1000;
  return batch;
}

TEST(Diff, SelfDiffIsEmptyByConstruction) {
  const auto batch = two_run_batch();
  const DiffResult diff = diff_batches(batch, batch);
  EXPECT_TRUE(diff.clean());
  EXPECT_TRUE(diff.changed.empty());
  EXPECT_EQ(diff.runs_compared, 2u);
  EXPECT_GT(diff.metrics_compared, 0u);
}

TEST(Diff, CounterPerturbationIsARegression) {
  const auto older = two_run_batch();
  auto newer = two_run_batch();
  newer.items[0].result.stats.app_misses = 1100;  // +10%
  const DiffResult diff = diff_batches(older, newer);
  EXPECT_FALSE(diff.clean());
  ASSERT_EQ(diff.changed.size(), 1u);
  EXPECT_EQ(diff.changed[0].metric, "stats.app_misses");
  EXPECT_TRUE(diff.changed[0].regression);
}

TEST(Diff, ToleranceDowngradesRegressionToChange) {
  const auto older = two_run_batch();
  auto newer = two_run_batch();
  newer.items[0].result.stats.app_misses = 1050;  // +5%
  const DiffResult diff =
      diff_batches(older, newer, {.count_rel_tol = 0.10});
  EXPECT_TRUE(diff.clean());  // within 10%
  ASSERT_EQ(diff.changed.size(), 1u);  // still reported as changed
  EXPECT_FALSE(diff.changed[0].regression);
}

TEST(Diff, PercentShiftUsesAbsoluteTolerance) {
  const auto older = two_run_batch();
  auto newer = two_run_batch();
  newer.items[0].result.estimated =
      make_report({{"A", 57.0}, {"B", 43.0}});  // 1 point shift
  EXPECT_FALSE(diff_batches(older, newer).clean());
  EXPECT_TRUE(diff_batches(older, newer, {.percent_abs_tol = 1.5}).clean());
}

TEST(Diff, UnmatchedRunsAreRegressions) {
  const auto older = two_run_batch();
  auto newer = two_run_batch();
  newer.items.pop_back();
  auto renamed = make_item("synthetic/extra", harness::ToolKind::kSampler,
                           {{"A", 100.0}}, {{"A", 100.0}});
  newer.items.push_back(std::move(renamed));
  const DiffResult diff = diff_batches(older, newer);
  ASSERT_EQ(diff.only_old.size(), 1u);
  ASSERT_EQ(diff.only_new.size(), 1u);
  EXPECT_EQ(diff.only_old[0], "synthetic/search");
  EXPECT_EQ(diff.only_new[0], "synthetic/extra");
  EXPECT_EQ(diff.regressions, 2u);
}

TEST(Diff, SeedIsPartOfRunIdentity) {
  const auto older = two_run_batch();
  auto newer = two_run_batch();
  newer.items[0].spec.options.seed += 1;
  const DiffResult diff = diff_batches(older, newer);
  // Re-seeded run does not silently compare against the old seed's result.
  EXPECT_EQ(diff.only_old.size(), 1u);
  EXPECT_EQ(diff.only_new.size(), 1u);
}

TEST(Diff, VanishedObjectIsAShareGoingToZero) {
  const auto older = two_run_batch();
  auto newer = two_run_batch();
  newer.items[0].result.estimated = make_report({{"A", 100.0}});
  const DiffResult diff = diff_batches(older, newer);
  bool saw_b = false;
  for (const auto& delta : diff.changed) {
    if (delta.metric == "estimated.B") {
      saw_b = true;
      EXPECT_DOUBLE_EQ(delta.new_value, 0.0);
    }
  }
  EXPECT_TRUE(saw_b);
}

// -- Document loading --------------------------------------------------------

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return path;
}

TEST(Document, MissingFileNamesThePath) {
  try {
    static_cast<void>(load_batch_file("/nonexistent/never.json"));
    FAIL() << "expected DocumentError";
  } catch (const DocumentError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/never.json"),
              std::string::npos);
  }
}

TEST(Document, TruncatedJsonReportsFileAndByteOffset) {
  const std::string path =
      write_temp("truncated.json", R"({"schema": "hpm.batch.v2", "runs")");
  try {
    static_cast<void>(load_batch_file(path));
    FAIL() << "expected DocumentError";
  } catch (const DocumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
}

TEST(Document, WrongSchemaIsALocatedError) {
  const std::string path =
      write_temp("wrong_schema.json", R"({"schema": "hpm.trace.v9"})");
  try {
    static_cast<void>(load_batch_file(path));
    FAIL() << "expected DocumentError";
  } catch (const DocumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("hpm.trace.v9"), std::string::npos) << what;
  }
}

TEST(Document, MalformedMetricsReportsFileAndOffset) {
  const std::string path = write_temp(
      "bad_metrics.json", R"({"schema": "hpm.metrics.v1", "runs": [{]})");
  try {
    static_cast<void>(load_metrics_file(path));
    FAIL() << "expected DocumentError";
  } catch (const DocumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
}

// -- HTML --------------------------------------------------------------------

TEST(Html, EscapesMarkup) {
  EXPECT_EQ(html_escape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&#39;c");
}

TEST(Html, RendersRunsScoreboardAndCharts) {
  const auto batch = two_run_batch();
  const Scoreboard scoreboard = score_batch(batch, {.top_k = 10});
  std::ostringstream out;
  render_html(out, batch, &scoreboard, nullptr, {.title = "t<1>"});
  const std::string html = out.str();
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("t&lt;1&gt;"), std::string::npos);  // escaped title
  EXPECT_NE(html.find("synthetic/sample"), std::string::npos);
  EXPECT_NE(html.find("Accuracy scoreboard"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);  // bar charts
  // Deterministic: same input renders byte-identical output.
  std::ostringstream again;
  render_html(again, batch, &scoreboard, nullptr, {.title = "t<1>"});
  EXPECT_EQ(html, again.str());
}

TEST(Html, FailedRunShowsOutcomeInsteadOfCharts) {
  harness::BatchResult batch;
  auto item = make_item("bad/run", harness::ToolKind::kSampler,
                        {{"A", 100.0}}, {{"A", 100.0}});
  item.ok = false;
  item.error = "simulated <failure>";
  item.outcome = harness::RunOutcome::kFailed;
  batch.items.push_back(std::move(item));
  std::ostringstream out;
  render_html(out, batch, nullptr, nullptr, {});
  const std::string html = out.str();
  EXPECT_NE(html.find("failed"), std::string::npos);
  EXPECT_NE(html.find("simulated &lt;failure&gt;"), std::string::npos);
}

}  // namespace
}  // namespace hpm::analysis
