// Randomized-property and adversarial-robustness tests: sampling
// proportionality over random layouts, and tool behaviour under heap churn
// (blocks allocated and freed while measurement is running).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/nway_search.hpp"
#include "core/sampler.hpp"
#include "harness/experiment.hpp"
#include "objmap/object_map.hpp"
#include "util/prng.hpp"
#include "workloads/synthetic.hpp"

namespace hpm {
namespace {

sim::MachineConfig test_machine() {
  sim::MachineConfig c;
  c.cache.size_bytes = 128 * 1024;
  return c;
}

// -- Randomized sampling proportionality -------------------------------------

class SamplingProportionality : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SamplingProportionality, EstimatesTrackActualOnRandomLayouts) {
  util::Xoshiro256 rng(GetParam());
  workloads::SyntheticSpec spec;
  spec.lockstep = true;
  const int arrays = 3 + static_cast<int>(rng.next_below(6));
  workloads::SyntheticPhase phase;
  for (int i = 0; i < arrays; ++i) {
    // 256 KB .. 1.25 MB, always beyond the 128 KB cache.
    spec.arrays.push_back({"A" + std::to_string(i),
                           (256 + rng.next_below(1024)) * 1024});
    phase.sweeps.push_back(1);
  }
  spec.phases.push_back(std::move(phase));
  spec.iterations = 25;
  workloads::SyntheticWorkload workload(spec);

  harness::RunConfig config;
  config.machine = test_machine();
  config.tool = harness::ToolKind::kSampler;
  config.sampler.period = 499 + 2 * rng.next_below(500);  // odd period
  const auto result = harness::run_experiment(config, workload);

  ASSERT_GT(result.samples, 500u);
  const auto comparison = core::Report::compare(
      result.actual, result.estimated, static_cast<std::size_t>(arrays));
  EXPECT_EQ(comparison.missing, 0u);
  // Binomial noise bound: generous 4-sigma on the largest share.
  EXPECT_LT(comparison.max_abs_error,
            4.0 * 100.0 / std::sqrt(static_cast<double>(result.samples)) +
                1.0);
  EXPECT_GT(comparison.order_agreement, 0.7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingProportionality,
                         ::testing::Values(7u, 21u, 63u, 189u, 567u, 1701u));

// -- Heap churn while tools run ------------------------------------------------

// A workload that allocates, touches and frees blocks continuously, with a
// persistent hot block.
class ChurnWorkload final : public workloads::Workload {
 public:
  explicit ChurnWorkload(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "churn"; }

  void setup(sim::Machine& machine) override {
    hot_ = machine.address_space().malloc(512 * 1024, /*site=*/1);
  }

  void run(sim::Machine& machine) override {
    auto& as = machine.address_space();
    std::vector<std::pair<sim::Addr, std::uint64_t>> live;
    for (int round = 0; round < 400; ++round) {
      // Hot block dominates.
      for (sim::Addr off = 0; off < 512 * 1024; off += 64) {
        machine.touch(hot_ + off, (off & 511) == 0);
        machine.exec(1);
      }
      // Churn: allocate a few transient blocks, touch them once, free an
      // old one.
      for (int k = 0; k < 3; ++k) {
        const std::uint64_t size = (1 + rng_.next_below(64)) * 1024;
        const sim::Addr block = as.malloc(size, /*site=*/2);
        ASSERT_NE(block, sim::kNullAddr);
        for (sim::Addr off = 0; off < size; off += 64) {
          machine.touch(block + off, true);
        }
        live.emplace_back(block, size);
      }
      while (live.size() > 32) {
        const std::size_t pick = rng_.next_below(live.size());
        as.free(live[pick].first);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    for (auto& [addr, size] : live) as.free(addr);
  }

  [[nodiscard]] sim::Addr hot() const noexcept { return hot_; }

 private:
  util::Xoshiro256 rng_;
  sim::Addr hot_ = 0;
};

TEST(HeapChurn, SamplerAttributesHotBlockThroughChurn) {
  ChurnWorkload workload(11);
  harness::RunConfig config;
  config.machine = test_machine();
  config.tool = harness::ToolKind::kSampler;
  config.sampler.period = 997;
  const auto result = harness::run_experiment(config, workload);
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "0x141000000");  // the hot block
  EXPECT_GT(result.estimated.rows()[0].percent, 50.0);
  // Ground truth attributes everything (freed-block records persist).
  EXPECT_EQ(result.unattributed_misses, 0u);
}

TEST(HeapChurn, SearchSurvivesChurnAndFindsHotBlock) {
  ChurnWorkload workload(13);
  harness::RunConfig config;
  config.machine = test_machine();
  config.tool = harness::ToolKind::kSearch;
  config.search.n = 8;
  config.search.initial_interval = 400'000;
  const auto result = harness::run_experiment(config, workload);
  ASSERT_FALSE(result.estimated.empty());
  EXPECT_EQ(result.estimated.rows()[0].name, "0x141000000");
}

TEST(HeapChurn, SiteAggregationSurvivesChurn) {
  ChurnWorkload workload(17);
  harness::RunConfig config;
  config.machine = test_machine();
  config.tool = harness::ToolKind::kSampler;
  config.sampler.period = 499;
  config.sampler.aggregate_sites = true;

  // Run through the harness but name the sites first via a custom wiring.
  sim::Machine machine(config.machine);
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  map.set_site_name(1, "hot_buffer");
  map.set_site_name(2, "transients");
  workload.setup(machine);
  core::Sampler sampler(machine, map, config.sampler);
  sampler.start();
  workload.run(machine);
  sampler.stop();

  const auto report = sampler.report();
  ASSERT_GE(report.size(), 2u);
  EXPECT_EQ(report.rows()[0].name, "hot_buffer");
  // Every churn block, whichever address it landed at, folds into one row.
  EXPECT_GT(report.rank_of("transients"), 0u);
}

TEST(HeapChurn, DeterministicUnderTools) {
  auto run = [] {
    ChurnWorkload workload(23);
    harness::RunConfig config;
    config.machine = test_machine();
    config.tool = harness::ToolKind::kSearch;
    config.search.n = 4;
    config.search.initial_interval = 300'000;
    const auto r = harness::run_experiment(config, workload);
    return std::make_pair(r.stats.app_misses, r.stats.total_cycles());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hpm
