// The hpmserve observability plane, end to end over real sockets:
//
//  * every event a request triggers echoes its trace id (client-supplied
//    or server-assigned "s<N>"),
//  * the hpm.serve.events.v1 log records the full lifecycle in order,
//    replays after truncation at EVERY byte offset (kill -9 tears lines,
//    never the reader), and in determinism mode is byte-identical for a
//    given request sequence at any --executors count,
//  * the `metrics` op serves an OpenMetrics exposition whose counters
//    reconcile exactly with what the client observed,
//  * coalesce / cache-hit decisions are visible in both sinks,
//  * --trace-out produces a well-formed Chrome trace_event document.
//
// The suite carries the "property" label so CI also runs it under TSan
// (hooks fire from session and executor threads concurrently).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/json_export.hpp"
#include "serve/event_log.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace hpm::serve;
using hpm::harness::JsonValue;

std::string temp_dir(const std::string& leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

struct ServerFixture {
  std::unique_ptr<Server> server;
  std::thread thread;

  explicit ServerFixture(ServerOptions options)
      : server(std::make_unique<Server>(std::move(options))) {
    thread = std::thread([this] { server->run(); });
  }

  ~ServerFixture() { shutdown(); }

  void shutdown() {
    if (server && thread.joinable()) {
      server->stop_now();
      thread.join();
    }
  }

  std::uint16_t port() const { return server->port(); }
};

struct TestClient {
  Socket socket;
  LineReader reader;
  std::string last_raw;

  explicit TestClient(std::uint16_t port)
      : socket(connect_to("127.0.0.1", port)), reader(socket) {
    if (!socket.valid()) throw std::runtime_error("connect failed");
    const JsonValue hello = read_event();
    if (hello.at("event").str() != "hello") {
      throw std::runtime_error("expected hello, got " + last_raw);
    }
  }

  void send(const std::string& line) {
    if (!socket.send_line(line)) throw std::runtime_error("send failed");
  }

  JsonValue read_event() {
    if (!reader.read_line(last_raw)) {
      throw std::runtime_error("connection closed");
    }
    return JsonValue::parse(last_raw);
  }

  JsonValue wait_for(const std::vector<std::string>& events,
                     std::size_t limit = 10'000) {
    for (std::size_t i = 0; i < limit; ++i) {
      JsonValue event = read_event();
      const std::string& kind = event.at("event").str();
      for (const std::string& want : events) {
        if (kind == want) return event;
      }
    }
    throw std::runtime_error("event never arrived");
  }
};

SweepSpec small_sweep(std::uint64_t seed) {
  SweepSpec sweep;
  sweep.scale = 0.05;
  sweep.seed = seed;
  return sweep;
}

/// A sweep slow enough (~seconds) that a second client can act while it
/// runs (the coalescing test).
SweepSpec slow_sweep(std::uint64_t seed) {
  SweepSpec sweep;
  sweep.tools = {"none", "sample", "search"};
  sweep.scale = 2.0;
  sweep.seed = seed;
  return sweep;
}

std::string submit_op(const std::string& id, const SweepSpec& sweep,
                      const std::string& extra = "") {
  return "{\"op\":\"submit\",\"id\":\"" + id + "\"" + extra +
         ",\"sweep\":" + canonical_sweep_json(sweep) + "}";
}

std::string trace_of(const JsonValue& event) {
  const JsonValue* trace = event.find("trace");
  return trace != nullptr ? trace->str() : "<missing>";
}

template <typename Predicate>
bool poll_until(Predicate&& done, int timeout_ms = 60'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// -- tracing -----------------------------------------------------------------

TEST(ServeTracing, ClientTraceEchoedOnEveryEvent) {
  ServerOptions options;
  options.executors = 1;
  ServerFixture fixture(options);
  TestClient client(fixture.port());

  client.send(submit_op("r1", small_sweep(1),
                        ",\"trace\":\"trace-abc\",\"live_every\":2000"));
  // Pump raw events until the result: every single one for r1 must carry
  // the submitted trace (accepted, started, progress, live, result).
  std::size_t seen = 0;
  for (;;) {
    const JsonValue event = client.read_event();
    const std::string kind = event.at("event").str();
    if (kind == "hello" || kind == "stats" || kind == "pong") continue;
    ++seen;
    EXPECT_EQ(trace_of(event), "trace-abc") << client.last_raw;
    if (kind == "result") {
      // The result also reports the server-side stage spans.
      const JsonValue& stages = event.at("stages");
      const std::uint64_t queue_us = stages.at("queue_us").uint();
      const std::uint64_t run_us = stages.at("run_us").uint();
      const std::uint64_t total_us = stages.at("total_us").uint();
      EXPECT_EQ(total_us, queue_us + run_us);
      EXPECT_GT(run_us, 0u);
      break;
    }
  }
  EXPECT_GE(seen, 3u);  // accepted + started + ... + result
}

TEST(ServeTracing, ServerAssignsSequentialTraceIds) {
  ServerOptions options;
  options.executors = 1;
  ServerFixture fixture(options);
  TestClient client(fixture.port());

  client.send(submit_op("r1", small_sweep(1)));
  EXPECT_EQ(trace_of(client.wait_for({"accepted"})), "s1");
  client.wait_for({"result"});
  client.send(submit_op("r2", small_sweep(2)));
  EXPECT_EQ(trace_of(client.wait_for({"accepted"})), "s2");
  client.wait_for({"result"});
}

TEST(ServeTracing, RejectionsEchoTheTraceToo) {
  // One executor, one queue slot: the third distinct request is shed with
  // queue_full — and the rejection must still echo its trace id.
  ServerOptions options;
  options.executors = 1;
  options.max_queue = 1;
  ServerFixture fixture(options);
  TestClient client(fixture.port());
  client.send(submit_op("a", slow_sweep(1), ",\"trace\":\"runs\""));
  client.wait_for({"started"});
  client.send(submit_op("b", slow_sweep(2), ",\"trace\":\"queued\""));
  client.wait_for({"accepted"});
  client.send(submit_op("c", slow_sweep(3), ",\"trace\":\"tr\""));
  const JsonValue rejected = client.wait_for({"rejected"});
  EXPECT_EQ(trace_of(rejected), "tr");
  EXPECT_EQ(rejected.at("reason").str(), "queue_full");
  EXPECT_GT(rejected.at("retry_after_ms").uint(), 0u);
}

// -- event log ---------------------------------------------------------------

TEST(ServeEventLog, RecordsLifecycleInOrder) {
  const std::string state = temp_dir("hpm_observe_lifecycle");
  ServerOptions options;
  options.executors = 1;
  options.state_dir = state;
  {
    ServerFixture fixture(options);
    TestClient client(fixture.port());
    client.send(submit_op("r1", small_sweep(1), ",\"trace\":\"L1\""));
    client.wait_for({"result"});
  }
  std::uint64_t skipped = 0;
  const auto events = EventLog::replay(state + "/serve_events.jsonl",
                                       &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(events.size(), 3u);
  const char* expected[] = {"accept", "start", "finish"};
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at("schema").str(), "hpm.serve.events.v1");
    EXPECT_EQ(events[i].at("seq").uint(), i + 1);
    EXPECT_EQ(events[i].at("event").str(), expected[i]);
    EXPECT_EQ(events[i].at("trace").str(), "L1");
  }
  EXPECT_EQ(events[2].at("outcome").str(), "ok");
  // Timing fields are on by default and must be coherent.
  EXPECT_EQ(events[2].at("total_us").uint(),
            events[2].at("queue_wait_us").uint() +
                events[2].at("run_us").uint());
}

TEST(ServeEventLog, DeterminismModeIsByteIdenticalAcrossExecutorCounts) {
  // The same sequential request sequence, served by 1-executor and
  // 3-executor servers with --no-event-timing, must log identical bytes:
  // no wall-clock, no executor ids, same admission order.
  std::string logs[2];
  const unsigned executor_counts[] = {1, 3};
  for (int i = 0; i < 2; ++i) {
    const std::string state =
        temp_dir("hpm_observe_det_" + std::to_string(i));
    ServerOptions options;
    options.executors = executor_counts[i];
    options.state_dir = state;
    options.event_timing = false;
    {
      ServerFixture fixture(options);
      TestClient client(fixture.port());
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        client.send(submit_op("r" + std::to_string(seed), small_sweep(seed),
                              ",\"trace\":\"d" + std::to_string(seed) +
                                  "\""));
        client.wait_for({"result"});
      }
    }
    logs[i] = read_file(state + "/serve_events.jsonl");
    EXPECT_FALSE(logs[i].empty());
    EXPECT_EQ(logs[i].find("t_us"), std::string::npos);
    EXPECT_EQ(logs[i].find("executor"), std::string::npos);
  }
  EXPECT_EQ(logs[0], logs[1]);
}

TEST(ServeEventLog, ReplaySurvivesTruncationAtEveryByte) {
  // Build a real multi-record log, then replay every prefix of it: the
  // reader must never throw, must recover every complete line, and must
  // count (not propagate) the torn tail.
  const std::string dir = temp_dir("hpm_observe_trunc");
  const std::string full_path = dir + "/full.jsonl";
  {
    EventLog log(full_path, /*include_timing=*/true);
    ServeEvent accept;
    accept.event = "accept";
    accept.trace = "t\"1\\n";  // hostile trace: escapes inside the line
    accept.fingerprint = "fp";
    accept.priority = "normal";
    accept.client = "c";
    accept.queue_depth = 1;
    accept.t_us = 5;
    log.append(accept);
    ServeEvent start;
    start.event = "start";
    start.trace = "t\"1\\n";
    start.fingerprint = "fp";
    start.executor = 0;
    start.queue_wait_us = 3;
    start.t_us = 8;
    log.append(start);
    ServeEvent finish;
    finish.event = "finish";
    finish.trace = "t\"1\\n";
    finish.fingerprint = "fp";
    finish.outcome = "ok";
    finish.executor = 0;
    finish.queue_wait_us = 3;
    finish.run_us = 90;
    finish.total_us = 93;
    finish.t_us = 98;
    log.append(finish);
    EXPECT_EQ(log.count(), 3u);
  }
  const std::string full = read_file(full_path);
  ASSERT_FALSE(full.empty());
  const std::size_t total_lines = 3;

  const std::string trunc_path = dir + "/trunc.jsonl";
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    {
      std::ofstream out(trunc_path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    std::uint64_t skipped = 0;
    std::vector<JsonValue> events;
    ASSERT_NO_THROW(events = EventLog::replay(trunc_path, &skipped))
        << "cut at byte " << cut;
    const std::size_t complete_lines = static_cast<std::size_t>(
        std::count(full.begin(), full.begin() + cut, '\n'));
    // A cut landing exactly after a record's '}' (before its newline)
    // still parses, hence the +1 tolerance.
    EXPECT_GE(events.size(), complete_lines) << "cut at byte " << cut;
    EXPECT_LE(events.size(), complete_lines + 1) << "cut at byte " << cut;
    EXPECT_LE(skipped, 1u) << "cut at byte " << cut;
    for (const JsonValue& event : events) {
      EXPECT_EQ(event.at("schema").str(), "hpm.serve.events.v1");
    }
  }
  // The untruncated log replays losslessly.
  std::uint64_t skipped = 0;
  EXPECT_EQ(EventLog::replay(full_path, &skipped).size(), total_lines);
  EXPECT_EQ(skipped, 0u);
}

TEST(ServeEventLog, ReplayToleratesGarbageAndForeignLines) {
  const std::string dir = temp_dir("hpm_observe_garbage");
  const std::string path = dir + "/log.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << EventLog::format({.event = "accept", .trace = "a"}, 1, true);
    out << "not json at all\n";
    out << "{\"schema\":\"other.v1\",\"event\":\"x\"}\n";
    out << EventLog::format({.event = "finish", .trace = "a"}, 2, true);
  }
  std::uint64_t skipped = 0;
  const auto events = EventLog::replay(path, &skipped);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(events[0].at("event").str(), "accept");
  EXPECT_EQ(events[1].at("event").str(), "finish");
}

// -- metrics op + reconciliation --------------------------------------------

TEST(ServeMetrics, ExpositionReconcilesWithObservedTraffic) {
  ServerOptions options;
  options.executors = 2;
  ServerFixture fixture(options);
  TestClient client(fixture.port());

  const std::size_t kRequests = 3;
  for (std::size_t i = 0; i < kRequests; ++i) {
    client.send(submit_op("r" + std::to_string(i), small_sweep(i + 1)));
    client.wait_for({"result"});
  }

  client.send("{\"op\":\"metrics\"}");
  const JsonValue reply = client.wait_for({"metrics"});
  const std::string text = reply.at("data").str();
  EXPECT_NE(text.find("# TYPE hpm_monitor gauge"), std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);

  const auto gauge = [&text](const std::string& node,
                             const std::string& metric) {
    const std::string needle = "node=\"" + node + "\",kind=";
    std::size_t at = 0;
    while ((at = text.find(needle, at)) != std::string::npos) {
      const std::size_t eol = text.find('\n', at);
      const std::string line = text.substr(at, eol - at);
      if (line.find("metric=\"" + metric + "\"") != std::string::npos) {
        return std::stod(line.substr(line.find("} ") + 2));
      }
      at = eol;
    }
    throw std::runtime_error("no gauge " + node + "/" + metric);
  };
  EXPECT_EQ(gauge("server/queue", "accepted"), kRequests);
  EXPECT_EQ(gauge("server/queue", "shed"), 0);
  EXPECT_EQ(gauge("server/cache", "hits"), 0);
  EXPECT_EQ(gauge("server/cache", "misses"), kRequests);
  double completed = 0;
  for (unsigned slot = 0; slot < 2; ++slot) {
    completed +=
        gauge("server/executors/exec" + std::to_string(slot), "completed");
  }
  EXPECT_EQ(completed, kRequests);
  // The stats op reports the same world (counter <-> stats reconciliation).
  // completed_ ticks just AFTER the result broadcast, so allow the last
  // executor thread a beat to get there.
  EXPECT_TRUE(poll_until(
      [&] { return fixture.server->stats().completed == kRequests; }));
  const ServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.accepted, kRequests);
  EXPECT_EQ(stats.total.count, kRequests);
  EXPECT_GT(stats.total.p50, 0.0);
}

TEST(ServeMetrics, StatsEventCarriesLatencyShedClassesAndMeta) {
  ServerOptions options;
  options.executors = 1;
  ServerFixture fixture(options);
  TestClient client(fixture.port());
  client.send(submit_op("r1", small_sweep(1)));
  client.wait_for({"result"});
  client.send("{\"op\":\"stats\"}");
  const JsonValue stats = client.wait_for({"stats"});
  EXPECT_EQ(stats.at("executors").uint(), 1u);
  EXPECT_EQ(stats.at("sessions").uint(), 1u);
  EXPECT_EQ(stats.at("shed_high").uint(), 0u);
  EXPECT_EQ(stats.at("shed_normal").uint(), 0u);
  EXPECT_EQ(stats.at("shed_low").uint(), 0u);
  EXPECT_EQ(stats.at("latency").at("total").at("count").uint(), 1u);
  EXPECT_GT(stats.at("latency").at("run").at("p95_ms").number(), 0.0);
  // Provenance rides along, schema-versioned like every other export.
  EXPECT_EQ(stats.at("meta").at("schemas").at("hpm.serve.events").uint(),
            1u);
}

// -- coalesce / cache-hit visibility -----------------------------------------

TEST(ServeObserve, CoalesceAndCacheHitAreLogged) {
  const std::string state = temp_dir("hpm_observe_coalesce");
  ServerOptions options;
  options.executors = 1;
  options.state_dir = state;
  {
    ServerFixture fixture(options);
    TestClient first(fixture.port());
    TestClient second(fixture.port());
    first.send(submit_op("a", slow_sweep(7), ",\"trace\":\"origin\""));
    first.wait_for({"started"});
    // Identical request while the first runs: coalesces onto it.
    second.send(submit_op("b", slow_sweep(7), ",\"trace\":\"rider\""));
    const JsonValue accepted = second.wait_for({"accepted"});
    EXPECT_TRUE(accepted.at("coalesced").boolean());
    EXPECT_EQ(trace_of(accepted), "rider");
    first.wait_for({"result"});
    second.wait_for({"result"});
    // Identical request after completion: served from the result cache.
    second.send(submit_op("c", slow_sweep(7), ",\"trace\":\"cached\""));
    const JsonValue result = second.wait_for({"result"});
    EXPECT_TRUE(result.at("cached").boolean());
    EXPECT_EQ(trace_of(result), "cached");
  }
  const auto events = EventLog::replay(state + "/serve_events.jsonl");
  std::vector<std::string> kinds;
  bool saw_coalesce = false, saw_cache_hit = false;
  for (const JsonValue& event : events) {
    const std::string kind = event.at("event").str();
    if (kind == "coalesce") {
      saw_coalesce = true;
      EXPECT_EQ(event.at("trace").str(), "rider");
    }
    if (kind == "cache_hit") {
      saw_cache_hit = true;
      EXPECT_EQ(event.at("trace").str(), "cached");
    }
  }
  EXPECT_TRUE(saw_coalesce);
  EXPECT_TRUE(saw_cache_hit);
}

// -- Chrome trace ------------------------------------------------------------

TEST(ServeObserve, TraceOutIsWellFormedChromeTrace) {
  const std::string dir = temp_dir("hpm_observe_chrome");
  ServerOptions options;
  options.executors = 2;
  options.trace_out_path = dir + "/trace.json";
  {
    ServerFixture fixture(options);
    TestClient client(fixture.port());
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      client.send(submit_op("r" + std::to_string(seed), small_sweep(seed),
                            ",\"trace\":\"ct" + std::to_string(seed) +
                                "\""));
      client.wait_for({"result"});
    }
  }  // destructor closes the trace footer
  const JsonValue doc = JsonValue::parse(read_file(dir + "/trace.json"));
  const auto& events = doc.at("traceEvents").array();
  ASSERT_FALSE(events.empty());
  std::size_t spans = 0;
  for (const JsonValue& event : events) {
    const std::string ph = event.at("ph").str();
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C") << ph;
    if (ph == "X") {
      ++spans;
      EXPECT_EQ(event.at("pid").uint(), 0u);  // executor track group
      EXPECT_EQ(event.at("name").str(), "run");
      const std::string trace = event.at("args").at("trace").str();
      EXPECT_TRUE(trace == "ct1" || trace == "ct2") << trace;
    }
  }
  EXPECT_EQ(spans, 2u);  // one run span per executed request
}

// -- disabled plane ----------------------------------------------------------

TEST(ServeObserve, NoObserveStillServesAndAnswersMetrics) {
  ServerOptions options;
  options.executors = 1;
  options.observe = false;
  ServerFixture fixture(options);
  TestClient client(fixture.port());
  client.send(submit_op("r1", small_sweep(1), ",\"trace\":\"off\""));
  const JsonValue result = client.wait_for({"result"});
  EXPECT_EQ(trace_of(result), "off");  // tracing works even with plane off
  client.send("{\"op\":\"metrics\"}");
  const JsonValue metrics = client.wait_for({"metrics"});
  const std::string text = metrics.at("data").str();
  EXPECT_NE(text.find("# TYPE hpm_monitor gauge"), std::string::npos);
  EXPECT_EQ(text.find("hpm_monitor{"), std::string::npos);  // no samples
  const ServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.total.count, 0u);  // latency digests off with the plane
}

}  // namespace
