// Integration tests for the seven SPEC95-like kernels, run at reduced scale
// against a proportionally smaller cache.  These pin down the properties
// the paper reproduction depends on: object sets, miss-share shapes, phase
// behaviour, determinism, and (for compress) functional correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "harness/experiment.hpp"
#include "workloads/compress.hpp"
#include "workloads/ijpeg.hpp"
#include "workloads/workload.hpp"

namespace hpm::workloads {
namespace {

sim::MachineConfig test_machine() {
  sim::MachineConfig c;
  c.cache.size_bytes = 128 * 1024;  // kernels run at scale 0.25
  return c;
}

WorkloadOptions test_options(std::uint64_t iterations = 0) {
  WorkloadOptions o;
  o.scale = 0.25;
  o.iterations = iterations;
  return o;
}

harness::RunResult profile(const std::string& name,
                           const WorkloadOptions& options) {
  harness::RunConfig config;
  config.machine = test_machine();
  return harness::run_experiment(config, name, options);
}

TEST(WorkloadFactory, KnowsAllPaperWorkloads) {
  for (const auto& name : paper_workload_names()) {
    EXPECT_NO_THROW((void)make_workload(name, test_options()));
  }
  EXPECT_THROW((void)make_workload("vortex", test_options()),
               std::invalid_argument);
  EXPECT_EQ(paper_workload_names().size(), 7u);
}

TEST(Tomcatv, ActualSharesMatchPaperProfile) {
  const auto result = profile("tomcatv", test_options(2));
  // Paper Table 1: RX 22.5, RY 22.5, AA 15.0, DD/X/Y/D 10.0.
  EXPECT_NEAR(result.actual.percent_of("RX").value_or(0), 22.5, 1.5);
  EXPECT_NEAR(result.actual.percent_of("RY").value_or(0), 22.5, 1.5);
  EXPECT_NEAR(result.actual.percent_of("AA").value_or(0), 15.0, 1.5);
  EXPECT_NEAR(result.actual.percent_of("DD").value_or(0), 10.0, 1.5);
  EXPECT_NEAR(result.actual.percent_of("X").value_or(0), 10.0, 1.5);
  EXPECT_NEAR(result.actual.percent_of("Y").value_or(0), 10.0, 1.5);
  EXPECT_NEAR(result.actual.percent_of("D").value_or(0), 10.0, 1.5);
  EXPECT_EQ(result.unattributed_misses, 0u);
}

TEST(Swim, ThirteenUniformArrays) {
  const auto result = profile("swim", test_options(2));
  EXPECT_EQ(result.actual.size(), 13u);
  for (const auto& row : result.actual.rows()) {
    EXPECT_NEAR(row.percent, 100.0 / 13.0, 1.2) << row.name;
  }
}

TEST(Su2cor, DominantLatticeAndPhases) {
  harness::RunConfig config;
  config.machine = test_machine();
  config.series_interval = 500'000;
  const auto result = harness::run_experiment(config, "su2cor",
                                              test_options(2));
  ASSERT_FALSE(result.actual.empty());
  EXPECT_EQ(result.actual.rows()[0].name, "U");
  EXPECT_GT(result.actual.rows()[0].percent, 45.0);
  EXPECT_GT(result.actual.rank_of("R"), 0u);
  EXPECT_GT(result.actual.rank_of("W2-intact"), 0u);
  // Phases: U must have intervals with zero misses (the sweep phase).
  for (const auto& series : result.series) {
    if (series.name != "U") continue;
    EXPECT_TRUE(std::any_of(series.misses_per_interval.begin(),
                            series.misses_per_interval.end(),
                            [](std::uint64_t v) { return v == 0; }));
    EXPECT_TRUE(std::any_of(series.misses_per_interval.begin(),
                            series.misses_per_interval.end(),
                            [](std::uint64_t v) { return v > 0; }));
  }
}

TEST(Mgrid, ThreeSignificantArrays) {
  const auto result = profile("mgrid", test_options(2));
  // Paper: U 40.8, R 40.4, V 18.8; coarse grids are cache-resident noise.
  EXPECT_NEAR(result.actual.percent_of("U").value_or(0), 40.6, 3.0);
  EXPECT_NEAR(result.actual.percent_of("R").value_or(0), 40.6, 3.0);
  EXPECT_NEAR(result.actual.percent_of("V").value_or(0), 18.8, 3.0);
  EXPECT_LT(result.actual.percent_of("U2").value_or(0), 3.0);
  EXPECT_LT(result.actual.percent_of("U3").value_or(0), 1.0);
}

TEST(Applu, JacobianProfileAndPhases) {
  harness::RunConfig config;
  config.machine = test_machine();
  config.series_interval = 400'000;
  const auto result =
      harness::run_experiment(config, "applu", test_options(3));
  // Paper: a/b/c ~22.9, d 17.4, rsd ~6.9.
  EXPECT_NEAR(result.actual.percent_of("a").value_or(0), 23.5, 2.0);
  EXPECT_NEAR(result.actual.percent_of("b").value_or(0), 23.5, 2.0);
  EXPECT_NEAR(result.actual.percent_of("c").value_or(0), 23.5, 2.0);
  EXPECT_NEAR(result.actual.percent_of("d").value_or(0), 17.6, 2.0);
  EXPECT_NEAR(result.actual.percent_of("rsd").value_or(0), 5.9, 2.0);
  // Figure 5: the Jacobian blocks periodically dip to zero misses while
  // rsd/u stay active in those windows.
  for (const auto& series : result.series) {
    if (series.name != "a") continue;
    const auto& s = series.misses_per_interval;
    EXPECT_TRUE(std::any_of(s.begin(), s.end(),
                            [](std::uint64_t v) { return v == 0; }));
  }
}

TEST(Compress, RoundTripAndObjectProfile) {
  // compress needs a cache that keeps its ~550 KB htab resident (the
  // paper's 2 MB does); at the test's reduced input size a 1 MB cache
  // preserves that relationship.
  WorkloadOptions options;
  options.scale = 0.5;
  options.iterations = 2;
  Compress compress(options);
  harness::RunConfig config;
  config.machine.cache.size_bytes = 1024 * 1024;
  const auto result = harness::run_experiment(config, compress);
  // The LZW round-trip must reproduce the input byte-for-byte (checksum).
  EXPECT_TRUE(compress.roundtrip_ok());
  EXPECT_GT(compress.compressed_bytes(), 0u);
  EXPECT_LT(compress.compressed_bytes(), compress.input_bytes());
  // orig dominates, comp second (paper: 63.0 / 35.6).
  ASSERT_GE(result.actual.size(), 2u);
  EXPECT_EQ(result.actual.rows()[0].name, "orig_text_buffer");
  EXPECT_EQ(result.actual.rows()[1].name, "comp_text_buffer");
  EXPECT_GT(result.actual.rank_of("htab"), 0u);
}

TEST(Compress, CompressionRatioIsTextLike) {
  Compress compress(test_options(1));
  harness::RunConfig config;
  config.machine = test_machine();
  (void)harness::run_experiment(config, compress);
  const double ratio = static_cast<double>(compress.compressed_bytes()) /
                       static_cast<double>(compress.input_bytes());
  // 16-bit LZW codes on synthetic text: mild but real compression.
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 0.9);
}

TEST(Ijpeg, HeapBlockNamesMatchThePaper) {
  const auto result = profile("ijpeg", test_options(1));
  // The image block must be the paper's 0x141020000, rank 1 by a wide
  // margin, with jpeg_compressed_data second.
  ASSERT_GE(result.actual.size(), 2u);
  EXPECT_EQ(result.actual.rows()[0].name, "0x141020000");
  EXPECT_GT(result.actual.rows()[0].percent, 70.0);
  EXPECT_EQ(result.actual.rows()[1].name, "jpeg_compressed_data");
  EXPECT_GT(result.actual.rank_of("0x14101e000"), 0u);
}

TEST(Ijpeg, ProducesOutputBytes) {
  Ijpeg ijpeg(test_options(1));
  harness::RunConfig config;
  config.machine = test_machine();
  (void)harness::run_experiment(config, ijpeg);
  EXPECT_GT(ijpeg.output_bytes(), 1000u);
}

TEST(Workloads, MissRateLadderMatchesPaperOrdering) {
  // §3.2: ijpeg has by far the lowest miss rate (144 misses/Mcycle in the
  // paper), compress next (361); the HPC kernels are far above both.  Run
  // at half scale against a half-size cache so capacity relationships match
  // the full-scale configuration.
  auto rate = [&](const char* name) {
    harness::RunConfig config;
    config.machine.cache.size_bytes = 1024 * 1024;
    WorkloadOptions options;
    options.scale = 0.5;
    const auto r = harness::run_experiment(config, name, options);
    return static_cast<double>(r.stats.app_misses) * 1e6 /
           static_cast<double>(r.stats.total_cycles());
  };
  const double ijpeg = rate("ijpeg");
  const double compress = rate("compress");
  const double tomcatv = rate("tomcatv");
  EXPECT_LT(ijpeg, compress);
  EXPECT_LT(compress, tomcatv);
  EXPECT_GT(tomcatv / ijpeg, 5.0);
}

class WorkloadDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadDeterminism, IdenticalRunsProduceIdenticalStreams) {
  auto run = [&] {
    harness::RunConfig config;
    config.machine = test_machine();
    const auto r = harness::run_experiment(config, GetParam(), test_options());
    return std::make_tuple(r.stats.app_refs, r.stats.app_misses,
                           r.stats.app_cycles);
  };
  EXPECT_EQ(run(), run());
}

TEST_P(WorkloadDeterminism, ToolsDoNotAlterTheApplicationStream) {
  auto run = [&](harness::ToolKind tool) {
    harness::RunConfig config;
    config.machine = test_machine();
    config.tool = tool;
    config.sampler.period = 5'000;
    config.search.initial_interval = 500'000;
    const auto r = harness::run_experiment(config, GetParam(), test_options());
    return std::make_pair(r.stats.app_refs, r.stats.app_instructions);
  };
  const auto none = run(harness::ToolKind::kNone);
  EXPECT_EQ(none, run(harness::ToolKind::kSampler));
  EXPECT_EQ(none, run(harness::ToolKind::kSearch));
}

INSTANTIATE_TEST_SUITE_P(AllPaperWorkloads, WorkloadDeterminism,
                         ::testing::ValuesIn(paper_workload_names()),
                         [](const auto& info) { return info.param; });

TEST(Workloads, IterationsOptionScalesWork) {
  auto misses = [&](std::uint64_t iters) {
    return profile("mgrid", test_options(iters)).stats.app_misses;
  };
  const auto one = misses(1);
  const auto three = misses(3);
  EXPECT_NEAR(static_cast<double>(three), 3.0 * static_cast<double>(one),
              0.1 * static_cast<double>(three));
}

TEST(Workloads, ObjectSetsAreRegisteredBeforeRun) {
  sim::Machine machine(test_machine());
  objmap::ObjectMap map;
  map.attach(machine.address_space());
  auto workload = make_workload("tomcatv", test_options());
  workload->setup(machine);
  std::set<std::string> names;
  for (const auto& e : map.symbols().entries()) names.insert(e.name);
  const std::set<std::string> expected = {"X",  "Y",  "RX", "RY",
                                          "AA", "DD", "D"};
  EXPECT_EQ(names, expected);
}

}  // namespace
}  // namespace hpm::workloads
