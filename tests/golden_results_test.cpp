// Golden regression tests: the small paper pipeline (one sampler run and
// one N-way search run, on the synthetic kernel and a tomcatv-sized
// input) exported as hpm.batch.v1 JSON and compared against checked-in
// goldens, so future PRs cannot silently drift the paper's numbers.
//
// Tolerances (documented contract, see docs/parallel_sweeps.md):
//   * structure (run names, ok flags, report row names and their order,
//     search_done) must match EXACTLY;
//   * integer counters (misses, refs, cycles, interrupts, samples) must
//     match within 1% relative — the simulator is bit-deterministic, so
//     on any one platform these match exactly; the slack only absorbs
//     cross-platform libm differences in workload setup;
//   * percentages must match within 0.5 points absolute.
//
// Regenerating after an *intentional* change:
//   HPM_UPDATE_GOLDEN=1 ./build/tests/golden_results_test
// then commit the rewritten tests/golden/*.json with a justification.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/document.hpp"
#include "analysis/scoreboard.hpp"
#include "calibrate/candidates.hpp"
#include "calibrate/model_search.hpp"
#include "calibrate/report.hpp"
#include "harness/batch.hpp"
#include "harness/json_export.hpp"

#ifndef HPM_GOLDEN_DIR
#error "HPM_GOLDEN_DIR must point at tests/golden"
#endif

namespace hpm::harness {
namespace {

constexpr double kCountRelTolerance = 0.01;   // 1% on integer counters
constexpr double kPercentAbsTolerance = 0.5;  // 0.5 points on shares

bool update_mode() {
  const char* env = std::getenv("HPM_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string golden_path(const std::string& name) {
  return std::string(HPM_GOLDEN_DIR) + "/" + name;
}

/// The pinned pipeline: sampler + 10-way search over the synthetic kernel
/// and a quarter-scale tomcatv against a proportionally sized cache.
std::vector<RunSpec> golden_specs() {
  RunConfig sample_cfg;
  sample_cfg.machine.cache.size_bytes = 128 * 1024;
  sample_cfg.tool = ToolKind::kSampler;
  sample_cfg.sampler.period = 1'999;

  RunConfig search_cfg;
  search_cfg.machine.cache.size_bytes = 128 * 1024;
  search_cfg.tool = ToolKind::kSearch;
  search_cfg.search.n = 10;
  search_cfg.search.initial_interval = 250'000;

  return cross_specs({"synthetic", "tomcatv"},
                     {{"sample", sample_cfg}, {"search", search_cfg}},
                     [](const std::string& name) {
                       workloads::WorkloadOptions options;
                       options.scale = 0.25;
                       options.iterations = name == "synthetic" ? 6 : 4;
                       return options;
                     });
}

/// The faulted pipeline: the golden sampler runs re-run under a pinned
/// fault plan (skid=4, 1% dropped interrupts, fixed seed).  Locks in both
/// the degraded attribution numbers and the injected-fault counters, so a
/// hardening change that silently alters fault behaviour shows up as a
/// golden diff.
std::vector<RunSpec> faulted_specs() {
  std::vector<RunSpec> faulted;
  for (auto& spec : golden_specs()) {
    if (spec.config.tool != ToolKind::kSampler) continue;
    spec.name += "+faults";
    spec.config.machine.faults.seed = 0x0fa417;
    spec.config.machine.faults.skid_refs = 4;
    spec.config.machine.faults.drop_rate = 0.01;
    faulted.push_back(std::move(spec));
  }
  return faulted;
}

/// The coherence pipeline: the sharing kernels (false_sharing /
/// true_sharing / producer_consumer) sampled on a 4-core machine with
/// private L1s in front of a shared LLC.  Locks in the hpm.batch.v4
/// "multicore" blocks — per-core stats, per-level MESI counters and the
/// per-object coherence attribution — so a coherence-layer change that
/// shifts invalidation traffic or attribution shares shows up as a
/// golden diff.
std::vector<RunSpec> coherence_specs() {
  std::vector<RunSpec> specs;
  for (const std::string name :
       {"false_sharing", "true_sharing", "producer_consumer"}) {
    RunConfig config;
    // Roomy enough that the contended lines stay resident between core
    // slices: coherence events, not capacity evictions, reclaim them.
    config.machine.hierarchy = sim::parse_hierarchy_spec(
        "L1:4k:64:4,LLC:64k:64:8");
    config.machine.cores = 4;
    config.tool = ToolKind::kSampler;
    config.sampler.period = 64;
    config.sampler.coherence_period = 31;
    RunSpec spec;
    spec.name = name + "/sample+4core";
    spec.workload = name;
    spec.config = config;
    spec.options.scale = 0.05;
    spec.options.iterations = 300;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// The hierarchy pipeline: the golden sampler + search runs re-run on the
/// 2-level preset (32 KB L1 filter in front of the 2 MB LLC, PMU
/// observing the last level).  Locks in the per-level counters — the
/// hpm.batch.v3 "levels" blocks — so a hierarchy-walk change that shifts
/// inter-level traffic shows up as a golden diff.
std::vector<RunSpec> hierarchy_specs() {
  std::vector<RunSpec> specs = golden_specs();
  sim::HierarchyConfig hierarchy;
  const bool is_preset = sim::hierarchy_preset("2level", hierarchy);
  EXPECT_TRUE(is_preset);
  for (auto& spec : specs) {
    spec.name += "+2level";
    spec.config.machine.hierarchy = hierarchy;
  }
  return specs;
}

std::string export_batch(const BatchResult& batch) {
  JsonExportOptions options;
  options.include_timing = false;  // goldens must be byte-stable
  return to_json(batch, options);
}

void expect_count_close(const JsonValue& expected, const JsonValue& actual,
                        const std::string& what) {
  const double e = expected.number();
  const double a = actual.number();
  const double tolerance = e * kCountRelTolerance;
  EXPECT_NEAR(a, e, tolerance < 1.0 ? 1.0 : tolerance) << what;
}

void compare_report(const JsonValue& expected, const JsonValue& actual,
                    const std::string& what) {
  expect_count_close(expected.at("total_count"), actual.at("total_count"),
                     what + ".total_count");
  const auto& expected_rows = expected.at("rows").array();
  const auto& actual_rows = actual.at("rows").array();
  ASSERT_EQ(actual_rows.size(), expected_rows.size()) << what;
  for (std::size_t i = 0; i < expected_rows.size(); ++i) {
    const std::string row = what + ".rows[" + std::to_string(i) + "]";
    // Row identity and ORDER are exact: rank drift is a regression even
    // when the percentages stay within tolerance.
    EXPECT_EQ(actual_rows[i].at("name").str(),
              expected_rows[i].at("name").str())
        << row;
    EXPECT_NEAR(actual_rows[i].at("percent").number(),
                expected_rows[i].at("percent").number(),
                kPercentAbsTolerance)
        << row;
  }
}

void compare_stats(const JsonValue& expected, const JsonValue& actual,
                   const std::string& what) {
  for (const auto& key :
       {"app_instructions", "app_refs", "app_misses", "tool_refs",
        "tool_misses", "app_cycles", "tool_cycles", "total_cycles",
        "interrupts"}) {
    expect_count_close(expected.at(key), actual.at(key),
                       what + "." + key);
  }
}

void compare_batches(const JsonValue& expected, const JsonValue& actual) {
  EXPECT_EQ(actual.at("schema").str(), expected.at("schema").str());
  ASSERT_EQ(actual.at("runs").uint(), expected.at("runs").uint());
  EXPECT_EQ(actual.at("failed").uint(), expected.at("failed").uint());
  const auto& expected_items = expected.at("items").array();
  const auto& actual_items = actual.at("items").array();
  ASSERT_EQ(actual_items.size(), expected_items.size());
  for (std::size_t i = 0; i < expected_items.size(); ++i) {
    const auto& e = expected_items[i];
    const auto& a = actual_items[i];
    const std::string what = e.at("name").str();
    EXPECT_EQ(a.at("name").str(), e.at("name").str());
    EXPECT_EQ(a.at("tool").str(), e.at("tool").str());
    ASSERT_EQ(a.at("ok").boolean(), e.at("ok").boolean()) << what;
    const auto& er = e.at("result");
    const auto& ar = a.at("result");
    compare_stats(er.at("stats"), ar.at("stats"), what + ".stats");
    expect_count_close(er.at("samples"), ar.at("samples"), what + ".samples");
    EXPECT_EQ(ar.at("search_done").boolean(), er.at("search_done").boolean())
        << what;
    expect_count_close(er.at("unattributed_misses"),
                       ar.at("unattributed_misses"),
                       what + ".unattributed_misses");
    compare_report(er.at("actual"), ar.at("actual"), what + ".actual");
    compare_report(er.at("estimated"), ar.at("estimated"),
                   what + ".estimated");
    // Faulted items carry a "faults" block: the plan is configuration and
    // must match exactly; the injected-fault counters get the usual
    // integer tolerance.
    if (const JsonValue* ef = e.find("faults")) {
      const JsonValue* af = a.find("faults");
      ASSERT_NE(af, nullptr) << what << ".faults missing";
      const auto& ep = ef->at("plan");
      const auto& ap = af->at("plan");
      for (const auto& key : {"seed", "skid_refs", "jitter_magnitude",
                              "saturate_at", "reprogram_delay_misses"}) {
        EXPECT_EQ(ap.at(key).uint(), ep.at(key).uint())
            << what << ".faults.plan." << key;
      }
      for (const auto& key : {"drop_rate", "jitter_rate"}) {
        EXPECT_DOUBLE_EQ(ap.at(key).number(), ep.at(key).number())
            << what << ".faults.plan." << key;
      }
      for (const auto& key :
           {"interrupts_dropped", "skid_events", "skid_refs",
            "sampler_rearms", "samples_discarded"}) {
        expect_count_close(ef->at("stats").at(key), af->at("stats").at(key),
                           what + ".faults.stats." + key);
      }
    } else {
      EXPECT_EQ(a.find("faults"), nullptr) << what << " gained a faults "
                                              "block its golden lacks";
    }
    // Multi-level items carry a "levels" array (hpm.batch.v3): the level
    // geometry and observation point are configuration and must match
    // exactly; the per-level counters get the usual integer tolerance.
    if (const JsonValue* el = er.find("levels")) {
      const JsonValue* al = ar.find("levels");
      ASSERT_NE(al, nullptr) << what << ".levels missing";
      EXPECT_EQ(ar.at("observe_level").uint(), er.at("observe_level").uint())
          << what;
      const auto& expected_levels = el->array();
      const auto& actual_levels = al->array();
      ASSERT_EQ(actual_levels.size(), expected_levels.size()) << what;
      for (std::size_t j = 0; j < expected_levels.size(); ++j) {
        const auto& elv = expected_levels[j];
        const auto& alv = actual_levels[j];
        const std::string level = what + ".levels[" + std::to_string(j) + "]";
        EXPECT_EQ(alv.at("name").str(), elv.at("name").str()) << level;
        for (const auto& key : {"size_bytes", "line_size", "associativity"}) {
          EXPECT_EQ(alv.at(key).uint(), elv.at(key).uint())
              << level << "." << key;
        }
        for (const auto& key : {"accesses", "hits", "misses", "writebacks",
                                "resident_lines"}) {
          expect_count_close(elv.at(key), alv.at(key), level + "." + key);
        }
      }
    } else {
      EXPECT_EQ(ar.find("levels"), nullptr) << what << " gained a levels "
                                               "block its golden lacks";
    }
    // Multi-core items carry a "multicore" block (hpm.batch.v4): the core
    // count is configuration and must match exactly; per-core stats and
    // the MESI counters get the usual integer tolerance, and the
    // coherence attribution reports get the usual report comparison
    // (object identity and order exact, shares within tolerance).
    if (const JsonValue* em = er.find("multicore")) {
      const JsonValue* am = ar.find("multicore");
      ASSERT_NE(am, nullptr) << what << ".multicore missing";
      ASSERT_EQ(am->at("cores").uint(), em->at("cores").uint()) << what;
      const auto& expected_cores = em->at("core_stats").array();
      const auto& actual_cores = am->at("core_stats").array();
      ASSERT_EQ(actual_cores.size(), expected_cores.size()) << what;
      for (std::size_t j = 0; j < expected_cores.size(); ++j) {
        compare_stats(expected_cores[j], actual_cores[j],
                      what + ".core_stats[" + std::to_string(j) + "]");
      }
      const auto& expected_coh = em->at("coherence").array();
      const auto& actual_coh = am->at("coherence").array();
      ASSERT_EQ(actual_coh.size(), expected_coh.size()) << what;
      for (std::size_t j = 0; j < expected_coh.size(); ++j) {
        const std::string level =
            what + ".coherence[" + std::to_string(j) + "]";
        EXPECT_EQ(actual_coh[j].at("level").str(),
                  expected_coh[j].at("level").str())
            << level;
        for (const auto& key :
             {"invalidations_sent", "invalidations_received", "upgrades",
              "sharing_transitions", "forced_writebacks"}) {
          expect_count_close(expected_coh[j].at(key), actual_coh[j].at(key),
                             level + "." + key);
        }
      }
      expect_count_close(em->at("coherence_samples"),
                         am->at("coherence_samples"),
                         what + ".coherence_samples");
      expect_count_close(em->at("coherence_events"),
                         am->at("coherence_events"),
                         what + ".coherence_events");
      compare_report(em->at("coherence_actual"), am->at("coherence_actual"),
                     what + ".coherence_actual");
      compare_report(em->at("coherence_estimated"),
                     am->at("coherence_estimated"),
                     what + ".coherence_estimated");
    } else {
      EXPECT_EQ(ar.find("multicore"), nullptr)
          << what << " gained a multicore block its golden lacks";
    }
  }
}

void run_golden_case(const std::string& file,
                     const std::vector<RunSpec>& specs) {
  BatchRunner::Options options;
  options.jobs = 2;
  const auto batch = BatchRunner(options).run(specs);
  for (const auto& item : batch.items) {
    ASSERT_TRUE(item.ok) << item.spec.name << ": " << item.error;
  }
  const std::string json = export_batch(batch);

  const std::string path = golden_path(file);
  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << json;
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — run with HPM_UPDATE_GOLDEN=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  compare_batches(JsonValue::parse(buffer.str()), JsonValue::parse(json));
}

TEST(GoldenResults, PaperPipelineSamplerAndSearch) {
  run_golden_case("paper_pipeline.json", golden_specs());
}

TEST(GoldenResults, FaultedPipelineDegradationIsPinned) {
  run_golden_case("faulted_pipeline.json", faulted_specs());
}

TEST(GoldenResults, HierarchyPipelinePerLevelCountersArePinned) {
  run_golden_case("hierarchy_pipeline.json", hierarchy_specs());
}

// The Table-7 acceptance bar, asserted directly before any golden
// comparison so a regeneration can never launder an attribution
// regression: on the contended kernels the object that causes the
// sharing must carry >= 80% of the coherence events in BOTH the exact
// profile and the samplers' merged estimate.
TEST(GoldenResults, CoherencePipelineAttributionIsPinned) {
  const auto specs = coherence_specs();
  BatchRunner::Options options;
  options.jobs = 2;
  const auto batch = BatchRunner(options).run(specs);
  for (const auto& item : batch.items) {
    ASSERT_TRUE(item.ok) << item.spec.name << ": " << item.error;
  }

  const auto share = [](const core::Report& report, const char* name) {
    return report.percent_of(name).value_or(0.0);
  };
  for (const auto& item : batch.items) {
    const auto& r = item.result;
    EXPECT_GT(r.coherence_events, 0u) << item.spec.name;
    EXPECT_GT(r.coherence_samples, 0u) << item.spec.name;
    if (item.spec.workload == "false_sharing") {
      EXPECT_GE(share(r.coherence_actual, "SHARED_SLOTS"), 80.0);
      EXPECT_GE(share(r.coherence_estimated, "SHARED_SLOTS"), 80.0);
    } else if (item.spec.workload == "producer_consumer") {
      EXPECT_GE(share(r.coherence_actual, "RING_BUFFER"), 80.0);
      EXPECT_GE(share(r.coherence_estimated, "RING_BUFFER"), 80.0);
    } else if (item.spec.workload == "true_sharing") {
      // Two genuinely shared objects split the traffic; together they
      // must carry essentially all of it (the private lanes none).
      EXPECT_GE(share(r.coherence_actual, "HOT_COUNTER") +
                    share(r.coherence_actual, "SHARED_TABLE"),
                95.0);
      EXPECT_EQ(share(r.coherence_actual, "PRIVATE_LANES"), 0.0);
    }
  }

  const std::string json = export_batch(batch);
  EXPECT_NE(json.find("hpm.batch.v4"), std::string::npos);

  const std::string path = golden_path("coherence_pipeline.json");
  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << json;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — run with HPM_UPDATE_GOLDEN=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  compare_batches(JsonValue::parse(buffer.str()), JsonValue::parse(json));
}

// The deepest preset gets its own golden: three levels of inter-level
// traffic exercise the walk (and the v3 export) harder than the 2-level
// configuration, and the calibration search treats "3level" as a
// first-class candidate, so its counters must stay pinned too.
TEST(GoldenResults, Hierarchy3PipelinePerLevelCountersArePinned) {
  std::vector<RunSpec> specs = golden_specs();
  sim::HierarchyConfig hierarchy;
  const bool is_preset = sim::hierarchy_preset("3level", hierarchy);
  ASSERT_TRUE(is_preset);
  for (auto& spec : specs) {
    spec.name += "+3level";
    spec.config.machine.hierarchy = hierarchy;
  }
  run_golden_case("hierarchy3_pipeline.json", specs);
}

// -- Calibration report golden -------------------------------------------------

/// Structural comparison for hpm.calibrate.v1: ranking, names, verdicts
/// and refuting metrics are exact (rank drift is a regression); the
/// inconsistency scores get a small relative tolerance for cross-platform
/// libm noise, exactly like the pipeline counters above.
void compare_calibrate_reports(const JsonValue& expected,
                               const JsonValue& actual) {
  EXPECT_EQ(actual.at("schema").str(), expected.at("schema").str());
  EXPECT_EQ(actual.at("explained").boolean(),
            expected.at("explained").boolean());
  EXPECT_EQ(actual.at("rounds").uint(), expected.at("rounds").uint());
  EXPECT_EQ(actual.at("replays").uint(), expected.at("replays").uint());

  const auto& expected_points = expected.at("points").array();
  const auto& actual_points = actual.at("points").array();
  ASSERT_EQ(actual_points.size(), expected_points.size());
  for (std::size_t i = 0; i < expected_points.size(); ++i) {
    for (const auto& key : {"name", "workload", "tool"}) {
      EXPECT_EQ(actual_points[i].at(key).str(),
                expected_points[i].at(key).str())
          << "points[" << i << "]." << key;
    }
  }
  EXPECT_EQ(actual.at("skipped").array().size(),
            expected.at("skipped").array().size());

  const auto& expected_cands = expected.at("candidates").array();
  const auto& actual_cands = actual.at("candidates").array();
  ASSERT_EQ(actual_cands.size(), expected_cands.size());
  for (std::size_t i = 0; i < expected_cands.size(); ++i) {
    const auto& e = expected_cands[i];
    const auto& a = actual_cands[i];
    const std::string what =
        "candidates[" + std::to_string(i) + "] (" + e.at("name").str() + ")";
    EXPECT_EQ(a.at("rank").uint(), e.at("rank").uint()) << what;
    for (const auto& key : {"name", "spec", "hierarchy", "verdict"}) {
      EXPECT_EQ(a.at(key).str(), e.at(key).str()) << what << "." << key;
    }
    for (const auto& key : {"miss_penalty", "round", "metrics_total"}) {
      EXPECT_EQ(a.at(key).uint(), e.at(key).uint()) << what << "." << key;
    }
    const double inconsistency = e.at("inconsistency").number();
    EXPECT_NEAR(a.at("inconsistency").number(), inconsistency,
                inconsistency * kCountRelTolerance + 0.05)
        << what;
    if (const JsonValue* worst = e.find("worst")) {
      const JsonValue* actual_worst = a.find("worst");
      ASSERT_NE(actual_worst, nullptr) << what << ".worst missing";
      EXPECT_EQ(actual_worst->at("metric").str(), worst->at("metric").str())
          << what << ".worst.metric";
    }
  }
}

// Pins the full calibrate pipeline: a search-only observation against a
// small candidate space whose true spec (the 128 KB golden cache) must
// stay rank 1 and CONSISTENT at zero inconsistency, while the paper's
// 2 MB spec and the wrong penalties stay REFUTED, each blaming the same
// metric.  This is the `hpm.calibrate.v1` schema's regression anchor.
TEST(GoldenResults, CalibrateReportIsPinned) {
  std::vector<RunSpec> specs;
  for (auto& spec : golden_specs()) {
    if (spec.config.tool == ToolKind::kSearch) specs.push_back(spec);
  }
  BatchRunner::Options batch_options;
  batch_options.jobs = 2;
  const auto observed = BatchRunner(batch_options).run(specs);
  for (const auto& item : observed.items) {
    ASSERT_TRUE(item.ok) << item.spec.name << ": " << item.error;
  }

  calibrate::ModelSearchOptions options;
  options.jobs = 2;
  options.refine_rounds = 0;
  // Replays must use the tool parameters the observation ran with.
  options.base.search.n = 10;
  options.base.search.initial_interval = 250'000;
  const auto grid = calibrate::candidate_grid({"LLC:128k:64:8", "paper"}, {});
  const auto result = calibrate::calibrate(observed, grid, options);

  // Invariants worth asserting before any golden exists: the generating
  // spec wins outright and the observation is explained.
  EXPECT_TRUE(result.explained);
  ASSERT_FALSE(result.ranked.empty());
  EXPECT_EQ(result.ranked.front().candidate.name, "LLC:128k:64:8/p50");
  EXPECT_EQ(result.ranked.front().inconsistency, 0.0);

  std::ostringstream exported;
  calibrate::export_json(exported, result);

  const std::string path = golden_path("calibrate_report.json");
  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << exported.str();
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — run with HPM_UPDATE_GOLDEN=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  compare_calibrate_reports(JsonValue::parse(buffer.str()),
                            JsonValue::parse(exported.str()));
}

// The search must keep finding tomcatv's paper-named arrays; pinning the
// top-3 set here (not just percentages) catches ranking regressions with
// a readable failure before the JSON diff does.
TEST(GoldenResults, TomcatvSearchTopObjectsStable) {
  const auto specs = golden_specs();
  const auto batch = BatchRunner().run({specs[3]});
  ASSERT_TRUE(batch.items[0].ok) << batch.items[0].error;
  const auto& estimated = batch.items[0].result.estimated;
  ASSERT_GE(estimated.size(), 3u);
  EXPECT_GT(estimated.rank_of("RX"), 0u);
  EXPECT_GT(estimated.rank_of("RY"), 0u);
  const auto& actual = batch.items[0].result.actual;
  const auto comparison = core::Report::compare(actual.filtered(1.0),
                                                estimated, 3);
  EXPECT_EQ(comparison.missing, 0u);
  EXPECT_LT(comparison.max_abs_error, 5.0);
}

// The accuracy scoreboard is a pure function of a batch document —
// parse, IEEE double arithmetic, shortest-round-trip formatting — so
// scoring the checked-in golden pipeline must reproduce the pinned
// hpm.analysis.v1 export BIT FOR BIT on every platform.  This is the
// fixture `hpmreport scoreboard` is gated on in CI.
TEST(GoldenResults, AnalysisScoreboardIsByteStable) {
  const auto batch =
      analysis::load_batch_file(golden_path("paper_pipeline.json"));
  const auto scoreboard = analysis::score_batch(batch, {.top_k = 10});
  std::ostringstream exported;
  analysis::export_json(exported, scoreboard);

  const std::string path = golden_path("analysis_scoreboard.json");
  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << exported.str();
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — run with HPM_UPDATE_GOLDEN=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(exported.str(), buffer.str())
      << "scoreboard drifted from " << path
      << " — if intentional, regenerate with HPM_UPDATE_GOLDEN=1";
}

// The synthetic kernel's ground truth is exact by construction (lockstep
// 4:2:1 line-count weighting) — assert it directly, independent of the
// JSON plumbing, so a golden regeneration can never launder a profiler
// bug through both sides of the comparison.
TEST(GoldenResults, SyntheticActualSharesMatchConstruction) {
  const auto specs = golden_specs();
  const auto batch = BatchRunner().run({specs[0]});
  ASSERT_TRUE(batch.items[0].ok) << batch.items[0].error;
  const auto& actual = batch.items[0].result.actual;
  ASSERT_EQ(actual.size(), 3u);
  EXPECT_EQ(actual.rows()[0].name, "BIG");
  EXPECT_NEAR(*actual.percent_of("BIG"), 4.0 / 7.0 * 100.0, 1.0);
  EXPECT_NEAR(*actual.percent_of("MED"), 2.0 / 7.0 * 100.0, 1.0);
  EXPECT_NEAR(*actual.percent_of("SMALL"), 1.0 / 7.0 * 100.0, 1.0);
}

}  // namespace
}  // namespace hpm::harness
