#include "core/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact_profiler.hpp"
#include "objmap/object_map.hpp"
#include "sim/machine.hpp"
#include "workloads/sim_array.hpp"

namespace hpm::core {
namespace {

sim::MachineConfig small_machine() {
  sim::MachineConfig c;
  c.cache.size_bytes = 64 * 1024;
  return c;
}

class SamplerTest : public ::testing::Test {
 protected:
  SamplerTest() : machine_(small_machine()) {
    map_.attach(machine_.address_space());
  }
  sim::Addr make_array(const char* name, std::uint64_t bytes) {
    return machine_.address_space().define_static(name, bytes);
  }
  void sweep(sim::Addr base, std::uint64_t bytes) {
    for (std::uint64_t off = 0; off < bytes; off += 64) {
      machine_.touch(base + off);
    }
  }
  sim::Machine machine_;
  objmap::ObjectMap map_;
};

TEST_F(SamplerTest, RejectsZeroPeriod) {
  EXPECT_THROW(Sampler(machine_, map_, SamplerConfig{.period = 0}),
               std::invalid_argument);
}

TEST_F(SamplerTest, SamplesAtConfiguredRate) {
  const sim::Addr a = make_array("a", 1 << 20);
  Sampler sampler(machine_, map_, {.period = 100});
  sampler.start();
  sweep(a, 1 << 20);  // 16384 misses
  sampler.stop();
  EXPECT_EQ(sampler.samples_taken(), (1u << 20) / 64 / 100);
  EXPECT_EQ(machine_.stats().interrupts, sampler.samples_taken());
}

TEST_F(SamplerTest, ProportionalAttributionOnMixedTraffic) {
  // 3:1 miss traffic between two arrays; estimates should track it.
  const sim::Addr a = make_array("a", 1 << 20);
  const sim::Addr b = make_array("b", 1 << 20);
  Sampler sampler(machine_, map_,
                  {.period = 97, .policy = PeriodPolicy::kFixed});
  sampler.start();
  for (int k = 0; k < 3; ++k) sweep(a, 1 << 20);
  sweep(b, 1 << 20);
  sampler.stop();
  const auto report = sampler.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report.rows()[0].name, "a");
  EXPECT_NEAR(report.rows()[0].percent, 75.0, 2.0);
  EXPECT_NEAR(report.percent_of("b").value_or(0), 25.0, 2.0);
}

TEST_F(SamplerTest, StopsSamplingAfterStop) {
  const sim::Addr a = make_array("a", 1 << 20);
  Sampler sampler(machine_, map_, {.period = 50});
  sampler.start();
  sweep(a, 1 << 20);
  sampler.stop();
  const auto before = sampler.samples_taken();
  sweep(a, 1 << 20);
  EXPECT_EQ(sampler.samples_taken(), before);
}

TEST_F(SamplerTest, UnresolvedSamplesCounted) {
  Sampler sampler(machine_, map_, {.period = 1});
  sampler.start();
  // Misses in a gap that belongs to no object.
  const sim::Addr gap = machine_.address_space().layout().heap.base + 0x10000;
  for (int i = 0; i < 8; ++i) {
    machine_.touch(gap + static_cast<sim::Addr>(i) * 64);
  }
  sampler.stop();
  EXPECT_EQ(sampler.unresolved_samples(), 8u);
  EXPECT_TRUE(sampler.report().empty());
}

TEST_F(SamplerTest, HeapBlocksReportedByAddressName) {
  const sim::Addr block = machine_.address_space().malloc(1 << 20);
  Sampler sampler(machine_, map_, {.period = 64});
  sampler.start();
  sweep(block, 1 << 20);
  sampler.stop();
  const auto report = sampler.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.rows()[0].name, "0x141000000");
}

TEST_F(SamplerTest, SiteAggregationGroupsHeapBlocks) {
  map_.set_site_name(5, "matrix_tiles");
  const sim::Addr b1 = machine_.address_space().malloc(1 << 19, 5);
  const sim::Addr b2 = machine_.address_space().malloc(1 << 19, 5);
  const sim::Addr solo = machine_.address_space().malloc(1 << 19, 0);
  SamplerConfig config{.period = 64};
  config.aggregate_sites = true;
  Sampler sampler(machine_, map_, config);
  sampler.start();
  sweep(b1, 1 << 19);
  sweep(b2, 1 << 19);
  sweep(solo, 1 << 19);
  sampler.stop();
  const auto report = sampler.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report.rows()[0].name, "matrix_tiles");
  EXPECT_NEAR(report.rows()[0].percent, 66.7, 2.0);
}

TEST_F(SamplerTest, StackLocalsAggregatedAcrossActivations) {
  // The §5 extension: samples in different activations of the same local
  // accumulate under one name.
  SamplerConfig config{.period = 16};
  Sampler sampler(machine_, map_, config);
  sampler.start();
  auto& as = machine_.address_space();
  for (int call = 0; call < 8; ++call) {
    as.push_frame("kernel");
    const sim::Addr buf = as.define_local("tile", 16 * 1024);
    sweep(buf, 16 * 1024);
    as.pop_frame();
    machine_.cache().flush();  // each activation misses afresh
  }
  sampler.stop();
  const auto report = sampler.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.rows()[0].name, "kernel::tile");
  EXPECT_GE(report.rows()[0].count, 100u);  // 8 activations x ~16 samples
}

TEST_F(SamplerTest, PrimePolicyUsesNextPrime) {
  Sampler sampler(machine_, map_,
                  {.period = 100, .policy = PeriodPolicy::kPrime});
  EXPECT_EQ(sampler.current_period(), 101u);
}

TEST_F(SamplerTest, PseudoRandomPolicyVariesPeriod) {
  const sim::Addr a = make_array("a", 1 << 21);
  SamplerConfig config{.period = 64, .policy = PeriodPolicy::kPseudoRandom,
                       .seed = 3};
  Sampler sampler(machine_, map_, config);
  sampler.start();
  std::uint64_t last = sampler.current_period();
  bool varied = false;
  for (int k = 0; k < 4; ++k) {
    sweep(a, 1 << 21);
    varied = varied || sampler.current_period() != last;
    last = sampler.current_period();
  }
  sampler.stop();
  EXPECT_TRUE(varied);
  // Mean period ~= configured period, so sample count is ~misses/period.
  const double misses = static_cast<double>(machine_.stats().app_misses);
  EXPECT_NEAR(static_cast<double>(sampler.samples_taken()), misses / 64,
              misses / 64 * 0.25);
}

TEST_F(SamplerTest, AdaptivePeriodApproachesTargetRate) {
  const sim::Addr a = make_array("a", 1 << 21);
  SamplerConfig config{.period = 8};  // deliberately far too fast
  config.target_interrupts_per_gcycle = 20'000;
  Sampler sampler(machine_, map_, config);
  sampler.start();
  for (int k = 0; k < 12; ++k) sweep(a, 1 << 21);
  sampler.stop();
  // The period must have been raised substantially from 8.
  EXPECT_GT(sampler.current_period(), 64u);
  const double gcycles =
      static_cast<double>(machine_.stats().total_cycles()) / 1e9;
  const double rate = static_cast<double>(sampler.samples_taken()) / gcycles;
  EXPECT_LT(rate, 200'000.0);  // far below the un-adapted ~2.4M/Gcycle
}

TEST_F(SamplerTest, DeterministicAcrossRuns) {
  auto run = [](PeriodPolicy policy) {
    sim::Machine machine(small_machine());
    objmap::ObjectMap map;
    map.attach(machine.address_space());
    const sim::Addr a = machine.address_space().define_static("a", 1 << 20);
    const sim::Addr b = machine.address_space().define_static("b", 1 << 20);
    Sampler sampler(machine, map, {.period = 77, .policy = policy, .seed = 5});
    sampler.start();
    for (std::uint64_t off = 0; off < (1 << 20); off += 64) {
      machine.touch(a + off);
      machine.touch(b + off);
    }
    sampler.stop();
    return sampler.report().rows()[0].count;
  };
  EXPECT_EQ(run(PeriodPolicy::kFixed), run(PeriodPolicy::kFixed));
  EXPECT_EQ(run(PeriodPolicy::kPseudoRandom),
            run(PeriodPolicy::kPseudoRandom));
}

TEST_F(SamplerTest, AliasingWithLockstepPattern) {
  // Two arrays touched in strict alternation: an even period samples only
  // one of them; an odd (here prime) period samples both.  This is the
  // paper's §3.1 phenomenon in miniature.
  const sim::Addr a = make_array("a", 1 << 20);
  const sim::Addr b = make_array("b", 1 << 20);
  auto alternate = [&] {
    for (std::uint64_t off = 0; off < (1 << 20); off += 64) {
      machine_.touch(a + off);
      machine_.touch(b + off);
    }
  };
  Sampler even(machine_, map_, {.period = 100});
  even.start();
  alternate();
  even.stop();
  const auto even_report = even.report();
  // Aliased: nearly every sample lands on the same array.  (The sampler's
  // own occasional tool-plane misses can nudge the parity a few times.)
  ASSERT_GE(even_report.size(), 1u);
  EXPECT_GT(even_report.rows()[0].percent, 90.0);

  Sampler prime(machine_, map_, {.period = 101});
  prime.start();
  alternate();
  prime.stop();
  const auto prime_report = prime.report();
  ASSERT_EQ(prime_report.size(), 2u);
  EXPECT_NEAR(prime_report.rows()[0].percent, 50.0, 6.0);
}

}  // namespace
}  // namespace hpm::core
