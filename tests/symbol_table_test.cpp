#include "objmap/symbol_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/prng.hpp"

namespace hpm::objmap {
namespace {

TEST(SymbolTable, EmptyLookupMisses) {
  SymbolTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find_containing(0x1000).entry, nullptr);
  EXPECT_EQ(table.lower_bound(0), 0u);
}

TEST(SymbolTable, FindContainingExactBounds) {
  SymbolTable table;
  table.add("X", 0x1000, 0x100);
  const auto at_base = table.find_containing(0x1000);
  ASSERT_NE(at_base.entry, nullptr);
  EXPECT_EQ(at_base.entry->name, "X");
  ASSERT_NE(table.find_containing(0x10ff).entry, nullptr);
  EXPECT_EQ(table.find_containing(0x1100).entry, nullptr);
  EXPECT_EQ(table.find_containing(0x0fff).entry, nullptr);
}

TEST(SymbolTable, KeepsSortedUnderArbitraryInsertOrder) {
  SymbolTable table;
  table.add("C", 0x3000, 64);
  table.add("A", 0x1000, 64);
  table.add("B", 0x2000, 64);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.entry(0).name, "A");
  EXPECT_EQ(table.entry(1).name, "B");
  EXPECT_EQ(table.entry(2).name, "C");
  EXPECT_EQ(table.find_containing(0x2000).index, 1u);
}

TEST(SymbolTable, RejectsOverlaps) {
  SymbolTable table;
  table.add("A", 0x1000, 0x100);
  EXPECT_THROW(table.add("B", 0x10ff, 1), std::invalid_argument);
  EXPECT_THROW(table.add("C", 0x0fff, 2), std::invalid_argument);
  EXPECT_THROW(table.add("D", 0x1000, 0x100), std::invalid_argument);
  EXPECT_THROW(table.add("E", 0x0f00, 0x1000), std::invalid_argument);
  // Exactly adjacent is fine.
  EXPECT_NO_THROW(table.add("F", 0x1100, 0x100));
  EXPECT_NO_THROW(table.add("G", 0x0f00, 0x100));
}

TEST(SymbolTable, RejectsEmptySymbol) {
  SymbolTable table;
  EXPECT_THROW(table.add("Z", 0x1000, 0), std::invalid_argument);
}

TEST(SymbolTable, LowerBound) {
  SymbolTable table;
  table.add("A", 0x1000, 64);
  table.add("B", 0x3000, 64);
  EXPECT_EQ(table.lower_bound(0x0), 0u);
  EXPECT_EQ(table.lower_bound(0x1000), 0u);
  EXPECT_EQ(table.lower_bound(0x1001), 1u);
  EXPECT_EQ(table.lower_bound(0x3001), 2u);
}

TEST(SymbolTable, ShadowAddressesFollowIndexOrder) {
  SymbolTable table;
  table.add("B", 0x2000, 64);
  table.add("A", 0x1000, 64);  // inserted before B, shifting it
  table.set_shadow_storage(0x2'0000'0000ULL, 64);
  EXPECT_EQ(table.entry(0).shadow, 0x2'0000'0000ULL);
  EXPECT_EQ(table.entry(1).shadow, 0x2'0000'0040ULL);
  table.add("C", 0x1800, 64);  // lands between A and B
  EXPECT_EQ(table.entry(1).name, "C");
  EXPECT_EQ(table.entry(1).shadow, 0x2'0000'0040ULL);
  EXPECT_EQ(table.entry(2).shadow, 0x2'0000'0080ULL);
}

TEST(SymbolTable, LookupRecordsProbeSequence) {
  SymbolTable table;
  for (int i = 0; i < 64; ++i) {
    table.add("S" + std::to_string(i),
              0x1000 + static_cast<sim::Addr>(i) * 0x100, 64);
  }
  table.set_shadow_storage(0x2'0000'0000ULL, 64);
  const auto hit = table.find_containing(0x1000 + 40 * 0x100);
  ASSERT_NE(hit.entry, nullptr);
  // Binary search over 64 entries: at most log2(64)+1 probes.
  EXPECT_LE(hit.shadow_path.size(), 7u);
  EXPECT_GE(hit.shadow_path.size(), 5u);
  for (auto a : hit.shadow_path) {
    EXPECT_GE(a, 0x2'0000'0000ULL);
    EXPECT_LT(a, 0x2'0000'0000ULL + 64 * 64);
  }
}

class SymbolTableRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymbolTableRandom, FindAgreesWithLinearScan) {
  util::Xoshiro256 rng(GetParam());
  SymbolTable table;
  struct Sym {
    sim::Addr base;
    std::uint64_t size;
  };
  std::vector<Sym> symbols;
  // Non-overlapping random symbols on a 0x200 grid with random sizes.
  for (int i = 0; i < 200; ++i) {
    const sim::Addr base = 0x10000 + rng.next_below(4096) * 0x200;
    const std::uint64_t size = 0x40 + rng.next_below(4) * 0x40;
    bool clash = false;
    for (const auto& s : symbols) clash = clash || s.base == base;
    if (clash) continue;
    table.add("sym", base, size);
    symbols.push_back({base, size});
  }
  for (int probe = 0; probe < 2000; ++probe) {
    const sim::Addr addr = 0x10000 + rng.next_below(4096 * 0x200);
    const auto hit = table.find_containing(addr);
    const Sym* expected = nullptr;
    for (const auto& s : symbols) {
      if (addr >= s.base && addr < s.base + s.size) expected = &s;
    }
    if (expected != nullptr) {
      ASSERT_NE(hit.entry, nullptr) << std::hex << addr;
      EXPECT_EQ(hit.entry->base, expected->base);
    } else {
      EXPECT_EQ(hit.entry, nullptr) << std::hex << addr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolTableRandom,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace hpm::objmap
