// OpenMetrics exposition compliance + the shared latency/quantile units.
//
// The `metrics` op's payload is consumed by scrapers that are strict about
// the text format, so the contract is pinned here rather than by eyeball:
//   * label values escape backslash, double-quote and newline;
//   * every sample line carries a unique label set (a family with two
//     identical label sets is undefined in the spec);
//   * the exposition ends with exactly one `# EOF` line;
//   * rendering is deterministic — same tree, same bytes, in insertion
//     order — so goldens and diff-based CI checks are stable.
//
// The quantile helpers (telemetry/quantiles.hpp) are the single
// definition of p50/p95/p99 shared by the server's gauges, serve_loadgen
// and the saturation bench; their nearest-rank arithmetic is pinned so a
// refactor cannot silently shift every reported latency.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/event_log.hpp"
#include "serve/observe.hpp"
#include "telemetry/monitor_tree.hpp"
#include "telemetry/quantiles.hpp"

namespace {

using namespace hpm::telemetry;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t eol = text.find('\n', start);
    if (eol == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, eol - start));
    start = eol + 1;
  }
  return lines;
}

std::string exposition_of(const MonitorTree& tree) {
  std::ostringstream out;
  write_openmetrics(out, tree);
  return std::move(out).str();
}

// -- quantiles ---------------------------------------------------------------

TEST(Quantiles, NearestRankDefinition) {
  const std::vector<double> sorted{10, 20, 30, 40, 50};
  // rank = round(q * (n-1)): exact at the endpoints, median at q=0.5.
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 10);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 30);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 50);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.95), 50);  // round(3.8) = 4
}

TEST(Quantiles, NearestRankRoundsHalfUp) {
  const std::vector<double> sorted{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.60), 3);   // 2.4 -> idx 2
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.625), 4);  // 2.5 -> idx 3
}

TEST(Quantiles, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  const std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.99), 7.5);
}

TEST(Quantiles, UnsortedConvenienceMatchesSorted) {
  const std::vector<double> shuffled{30, 10, 50, 20, 40};
  const std::vector<double> sorted{10, 20, 30, 40, 50};
  for (const double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(shuffled, q), quantile_sorted(sorted, q));
  }
}

TEST(Quantiles, SummaryDigest) {
  const std::vector<double> samples{4, 1, 3, 2};
  const LatencySummary summary = summarize_latencies(samples);
  EXPECT_EQ(summary.count, 4u);
  EXPECT_DOUBLE_EQ(summary.min, 1);
  EXPECT_DOUBLE_EQ(summary.max, 4);
  EXPECT_DOUBLE_EQ(summary.mean, 2.5);
  EXPECT_DOUBLE_EQ(summary.p50, 3);  // round(0.5*3)=2 -> sorted[2]
  const LatencySummary empty = summarize_latencies({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST(Quantiles, SampleWindowEvictsButKeepsTotal) {
  SampleWindow window(4);
  for (int i = 1; i <= 10; ++i) window.record(i);
  EXPECT_EQ(window.total(), 10u);
  EXPECT_EQ(window.size(), 4u);
  const LatencySummary summary = window.summary();
  // The ring retains the most recent 4 samples: 7, 8, 9, 10.
  EXPECT_EQ(summary.count, 10u);  // count keeps the lifetime meaning
  EXPECT_DOUBLE_EQ(summary.min, 7);
  EXPECT_DOUBLE_EQ(summary.max, 10);
}

// -- exposition format -------------------------------------------------------

TEST(OpenMetrics, HeaderBodyAndEof) {
  MonitorTree tree("server", "server");
  tree.root().metric("accepted", Reducer::kSum);
  tree.root().input("accepted", 3.0);
  tree.sample();

  const std::vector<std::string> lines = lines_of(exposition_of(tree));
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("# HELP hpm_monitor ", 0), 0u);
  EXPECT_EQ(lines[1], "# TYPE hpm_monitor gauge");
  EXPECT_EQ(lines[2],
            "hpm_monitor{node=\"server\",kind=\"server\","
            "metric=\"accepted\",reducer=\"sum\"} 3");
  EXPECT_EQ(lines.back(), "# EOF");
  // Exactly one EOF, and nothing after it.
  std::size_t eofs = 0;
  for (const std::string& line : lines) eofs += line == "# EOF";
  EXPECT_EQ(eofs, 1u);
}

TEST(OpenMetrics, LabelValuesEscapeBackslashQuoteNewline) {
  MonitorTree tree("ser\"ver", "kind\\x");
  tree.root().child("child\nname", "queue").metric("depth", Reducer::kSum);
  tree.sample();

  const std::string text = exposition_of(tree);
  EXPECT_NE(text.find("node=\"ser\\\"ver\""), std::string::npos);
  EXPECT_NE(text.find("kind=\"kind\\\\x\""), std::string::npos);
  EXPECT_NE(text.find("node=\"ser\\\"ver/child\\nname\""), std::string::npos);
  // The raw newline must never appear inside a sample line: every line is
  // either a comment or starts with the family name.
  for (const std::string& line : lines_of(text)) {
    EXPECT_TRUE(line.empty() || line[0] == '#' ||
                line.rfind("hpm_monitor{", 0) == 0)
        << "torn line: " << line;
  }
}

TEST(OpenMetrics, LabelSetsAreUnique) {
  // server -> queue + two executors, with deliberately colliding metric
  // names at different nodes (the node label disambiguates them).
  MonitorTree tree("server", "server");
  tree.root().child("queue", "queue").metric("depth", Reducer::kSum);
  tree.root().child("executors", "pool").child("exec0", "executor")
      .metric("completed", Reducer::kSum);
  tree.root().child("executors", "pool").child("exec1", "executor")
      .metric("completed", Reducer::kSum);
  tree.sample();

  std::map<std::string, int> label_sets;
  for (const std::string& line : lines_of(exposition_of(tree))) {
    if (line.rfind("hpm_monitor{", 0) != 0) continue;
    const std::size_t close = line.find("} ");
    ASSERT_NE(close, std::string::npos) << line;
    ++label_sets[line.substr(0, close + 1)];
  }
  // Rollup adopts "completed" onto the pool node too: 4 samples, all
  // distinct label sets.
  EXPECT_GE(label_sets.size(), 4u);
  for (const auto& [labels, count] : label_sets) {
    EXPECT_EQ(count, 1) << "duplicate label set: " << labels;
  }
}

TEST(OpenMetrics, RenderingIsByteStable) {
  MonitorTree tree("server", "server");
  tree.root().child("queue", "queue").metric("depth", Reducer::kSum);
  tree.root().child("cache", "cache").metric("hits", Reducer::kSum);
  tree.root().child("queue", "queue").input("depth", 5);
  tree.root().child("cache", "cache").input("hits", 2);
  tree.sample();
  const std::string first = exposition_of(tree);
  EXPECT_EQ(first, exposition_of(tree));
  // A no-input re-sample must not reorder or drop samples either.
  tree.sample();
  EXPECT_EQ(first, exposition_of(tree));
}

// -- ServerMonitor exposition ------------------------------------------------

TEST(OpenMetrics, ServerMonitorExposesTopologyAndCounters) {
  hpm::serve::ObserveOptions options;
  options.executors = 2;
  hpm::serve::ServerMonitor monitor(options);
  monitor.on_session_open();
  monitor.on_accept("t1", "fp1", "normal", "c", 1, 100);
  const int slot = monitor.on_start("t1", "fp1", 0, 50, 150);
  EXPECT_EQ(slot, 0);
  monitor.on_finish(slot, "t1", "fp1", "ok", 50, 1000, 1050, 150);
  monitor.on_cache_hit("t2", "fp1", 2000);

  const std::string text = monitor.openmetrics();
  const std::vector<std::string> lines = lines_of(text);
  EXPECT_EQ(lines.back(), "# EOF");
  for (const char* needle :
       {"node=\"server/sessions\"", "node=\"server/queue\"",
        "node=\"server/executors\"", "node=\"server/executors/exec0\"",
        "node=\"server/cache\"", "node=\"server/latency\"",
        "metric=\"hit_ratio\",reducer=\"ratio\""}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(
      text.find("node=\"server/queue\",kind=\"queue\",metric=\"accepted\","
                "reducer=\"sum\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("node=\"server/cache\",kind=\"cache\",metric=\"hits\","
                "reducer=\"sum\"} 1"),
      std::string::npos);
  // lookups = accept + cache_hit = 2 -> misses = 1.
  EXPECT_NE(
      text.find("node=\"server/cache\",kind=\"cache\",metric=\"misses\","
                "reducer=\"sum\"} 1"),
      std::string::npos);
}

TEST(OpenMetrics, DisabledMonitorStillEmitsValidExposition) {
  hpm::serve::ObserveOptions options;
  options.enabled = false;
  hpm::serve::ServerMonitor monitor(options);
  EXPECT_EQ(monitor.on_start("t", "fp", 0, 0, 0), -1);
  monitor.on_finish(-1, "t", "fp", "ok", 0, 0, 0, 0);
  const std::vector<std::string> lines = lines_of(monitor.openmetrics());
  ASSERT_EQ(lines.size(), 3u);  // HELP, TYPE, EOF — no samples
  EXPECT_EQ(lines.back(), "# EOF");
}

// -- event-log line format (the writer half; replay is covered by the
//    serve_observe integration suite) ---------------------------------------

TEST(EventLogFormat, PinsTimedAndTimelessBytes) {
  hpm::serve::ServeEvent event;
  event.event = "finish";
  event.trace = "t9";
  event.fingerprint = "abcd";
  event.outcome = "ok";
  event.executor = 1;
  event.queue_wait_us = 10;
  event.run_us = 20;
  event.total_us = 30;
  event.t_us = 40;
  EXPECT_EQ(hpm::serve::EventLog::format(event, 7, /*include_timing=*/true),
            "{\"schema\":\"hpm.serve.events.v1\",\"seq\":7,"
            "\"event\":\"finish\",\"trace\":\"t9\",\"fingerprint\":\"abcd\","
            "\"outcome\":\"ok\",\"executor\":1,\"queue_wait_us\":10,"
            "\"run_us\":20,\"total_us\":30,\"t_us\":40}\n");
  // Determinism mode drops every wall-clock field and the executor id (a
  // scheduling artifact) but keeps the logical record.
  EXPECT_EQ(hpm::serve::EventLog::format(event, 7, /*include_timing=*/false),
            "{\"schema\":\"hpm.serve.events.v1\",\"seq\":7,"
            "\"event\":\"finish\",\"trace\":\"t9\",\"fingerprint\":\"abcd\","
            "\"outcome\":\"ok\"}\n");
}

}  // namespace
