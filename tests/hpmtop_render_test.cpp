// hpmtop --once rendering contract: a recorded hpm.live.v1 stream renders
// a byte-pinned final frame, malformed/unknown lines are skipped, and the
// exit codes distinguish "no events" (1) from usage errors (2).
//
// Drives the real binary (HPM_HPMTOP_PATH, injected by CMake) through
// std::system, like cli_validation_test does for hpmrun.  Regenerate the
// pinned frame after an intentional layout change with
//   HPM_UPDATE_GOLDEN=1 ./build/tests/hpmtop_render_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef HPM_HPMTOP_PATH
#error "HPM_HPMTOP_PATH must point at the hpmtop binary"
#endif
#ifndef HPM_FIXTURE_DIR
#error "HPM_FIXTURE_DIR must point at tests/fixtures"
#endif
#ifndef HPM_GOLDEN_DIR
#error "HPM_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

const std::string kFixture =
    std::string(HPM_FIXTURE_DIR) + "/live_stream.jsonl";
const std::string kGoldenFrame =
    std::string(HPM_GOLDEN_DIR) + "/hpmtop_frame.txt";

int run_hpmtop(const std::string& args, const std::string& stdout_to) {
  const std::string command = std::string("\"") + HPM_HPMTOP_PATH + "\" " +
                              args + " >" + stdout_to + " 2>/dev/null";
  const int status = std::system(command.c_str());
#if defined(_WIN32)
  return status;
#else
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#endif
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* leaf) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + leaf;
}

TEST(HpmtopOnce, RendersTheRecordedStreamByteForByte) {
  const std::string out = temp_path("hpmtop_frame_actual.txt");
  ASSERT_EQ(run_hpmtop(kFixture + " --once", out), 0);
  const std::string frame = slurp(out);

  if (std::getenv("HPM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream golden(kGoldenFrame, std::ios::binary);
    golden << frame;
    GTEST_SKIP() << "updated " << kGoldenFrame;
  }
  EXPECT_EQ(frame, slurp(kGoldenFrame))
      << "hpmtop frame drifted; if intentional, regenerate with "
         "HPM_UPDATE_GOLDEN=1";
}

TEST(HpmtopOnce, FrameCarriesTheLoadBearingNumbers) {
  const std::string out = temp_path("hpmtop_frame_spot.txt");
  ASSERT_EQ(run_hpmtop(kFixture + " --once", out), 0);
  const std::string frame = slurp(out);
  // Header totals come from batch_finish/batch_start, not a recount.
  EXPECT_NE(frame.find("runs 2/2"), std::string::npos);
  EXPECT_NE(frame.find("jobs 2"), std::string::npos);
  EXPECT_NE(frame.find("window 100000 refs"), std::string::npos);
  // Per-run: miss totals from run_total, resident peak from the levels.
  EXPECT_NE(frame.find("tomcatv/sample [ok] 3 windows"), std::string::npos);
  EXPECT_NE(frame.find("total 2.81%"), std::string::npos);
  EXPECT_NE(frame.find("resident 2900"), std::string::npos);
  // Rollup footer from batch_rollup.
  EXPECT_NE(frame.find("batch  refs 570000"), std::string::npos);
  // The malformed/unknown fixture lines must not leak into the frame.
  EXPECT_EQ(frame.find("future_event_kind"), std::string::npos);
}

TEST(HpmtopOnce, SparklineWidthIsAdjustable) {
  const std::string wide = temp_path("hpmtop_frame_wide.txt");
  const std::string narrow = temp_path("hpmtop_frame_narrow.txt");
  ASSERT_EQ(run_hpmtop(kFixture + " --once --width 64", wide), 0);
  // The minimum width clamps at 8, and 3 samples fit either way: frames
  // only differ when a series is longer than the narrower width.
  ASSERT_EQ(run_hpmtop(kFixture + " --once --width 8", narrow), 0);
  EXPECT_EQ(slurp(wide), slurp(narrow));
}

TEST(HpmtopExitCodes, MissingStreamIsUsageError) {
  EXPECT_EQ(run_hpmtop(temp_path("hpmtop_no_such_file.jsonl") + " --once",
                       "/dev/null"),
            2);
}

TEST(HpmtopExitCodes, NoArgumentsIsUsageError) {
  EXPECT_EQ(run_hpmtop("", "/dev/null"), 2);
  EXPECT_EQ(run_hpmtop("--bogus-flag", "/dev/null"), 2);
}

TEST(HpmtopExitCodes, EventFreeStreamExitsOne) {
  const std::string empty = temp_path("hpmtop_empty.jsonl");
  { std::ofstream touch(empty); }
  EXPECT_EQ(run_hpmtop(empty + " --once", "/dev/null"), 1);

  const std::string junk = temp_path("hpmtop_junk.jsonl");
  {
    std::ofstream out(junk);
    out << "not json\n{\"no_event_key\":true}\n";
  }
  EXPECT_EQ(run_hpmtop(junk + " --once", "/dev/null"), 1);
}

TEST(HpmtopRobustness, GarbageCorpusIsCountedNotFatal) {
  // The corpus mixes every non-event shape — unparsable bytes, non-object
  // documents, objects without an "event" string — with one clean run.
  // All six bad lines are skipped, counted, and reported in the footer.
  const std::string corpus =
      std::string(HPM_FIXTURE_DIR) + "/live_stream_garbage.jsonl";
  const std::string out = temp_path("hpmtop_garbage.txt");
  ASSERT_EQ(run_hpmtop(corpus + " --once", out), 0);
  const std::string frame = slurp(out);
  EXPECT_NE(frame.find("runs 1/1"), std::string::npos);
  EXPECT_NE(frame.find("bad lines: 6"), std::string::npos);
}

TEST(HpmtopRobustness, CleanStreamsCarryNoBadLineFooter) {
  const std::string clean = temp_path("hpmtop_clean.jsonl");
  {
    std::ofstream out(clean);
    out << "{\"event\":\"batch_start\",\"total\":1,\"jobs\":1}\n"
        << "{\"event\":\"batch_finish\",\"runs\":1,\"failed\":0}\n";
  }
  const std::string out = temp_path("hpmtop_clean.txt");
  ASSERT_EQ(run_hpmtop(clean + " --once", out), 0);
  EXPECT_EQ(slurp(out).find("bad lines"), std::string::npos);
}

TEST(HpmtopRobustness, TruncationAtEveryByteLength) {
  // A producer killed mid-write can truncate a line at ANY byte.  Every
  // strict prefix of a one-line JSON object is invalid JSON (the root
  // brace only closes at the final byte), so each must be counted and
  // skipped without crashing, and the full line at the end still renders.
  const std::string full =
      "{\"type\":\"hpm.live.v1\",\"event\":\"window\",\"index\":0,"
      "\"name\":\"tomcatv/sample\",\"seq\":1,\"window\":{\"refs\":100000,"
      "\"misses\":5200,\"miss_rate\":0.052,\"tool_share\":0.004}}";
  const std::string stream = temp_path("hpmtop_truncated.jsonl");
  {
    std::ofstream out(stream);
    for (std::size_t len = 1; len < full.size(); ++len) {
      out << full.substr(0, len) << "\n";
    }
    out << full << "\n";
  }
  const std::string out = temp_path("hpmtop_truncated.txt");
  ASSERT_EQ(run_hpmtop(stream + " --once", out), 0);
  const std::string frame = slurp(out);
  EXPECT_NE(frame.find("tomcatv/sample"), std::string::npos);
  EXPECT_NE(frame.find("1 window"), std::string::npos);
  EXPECT_NE(
      frame.find("bad lines: " + std::to_string(full.size() - 1)),
      std::string::npos);
}

TEST(HpmtopFollow, PipeInputRendersAndExitsCleanly) {
  // Follow mode on a closed pipe: drain, render, exit 0 — the CI smoke
  // pattern `hpmrun ... | hpmtop -`.
  const std::string out = temp_path("hpmtop_pipe.txt");
  const std::string command = std::string("cat \"") + kFixture + "\" | \"" +
                              HPM_HPMTOP_PATH + "\" - >" + out +
                              " 2>/dev/null";
  const int status = std::system(command.c_str());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // The final follow frame carries the same rollup as --once.
  EXPECT_NE(slurp(out).find("batch  refs 570000"), std::string::npos);
}

}  // namespace
