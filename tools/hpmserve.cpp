// hpmserve — a long-running experiment service over the batch engine.
//
// Accepts hpm.serve.v1 requests (JSON over TCP, one object per line),
// executes them on a bounded executor pool with admission control, and
// streams progress/live/result events back.  Robustness features — load
// shedding with RETRY_AFTER, per-request deadlines, client-disconnect
// abandonment, graceful SIGTERM drain, and crash recovery from the
// hpm.serve.journal.v1 + hpm.checkpoint.v1 journals — are documented in
// docs/hpmserve.md and exercised by tools/serve_loadgen and
// bench/table6_saturation.
//
//   hpmserve --port 7077 --executors 4 --state /var/tmp/hpmserve
//   hpmserve --port 0 --print-port --max-queue 8 --quota 2
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

using namespace hpm;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "hpmserve: %s\n\n", error);
  std::fputs(
      "usage: hpmserve [options]\n"
      "  --host ADDR       listen address            (default 127.0.0.1)\n"
      "  --port N          listen port; 0 = ephemeral (default 7077)\n"
      "  --print-port      print the bound port on stdout (for scripts\n"
      "                    and tests using --port 0)\n"
      "  --executors N     concurrent experiment jobs (default 2)\n"
      "  --max-queue N     admission queue bound      (default 16)\n"
      "  --quota N         per-client queued+running quota (default: off)\n"
      "  --state DIR       durable state dir: recovery journal +\n"
      "                    per-sweep checkpoints (default: none)\n"
      "  --cache N         result-cache entries       (default 64)\n"
      "  --retry-after-ms N  base RETRY_AFTER hint    (default 200)\n"
      "  --trace-out FILE  write a Chrome trace_event timeline of the\n"
      "                    server (one track per executor; load in\n"
      "                    chrome://tracing or ui.perfetto.dev)\n"
      "  --no-event-timing omit wall-clock fields and executor ids from\n"
      "                    the hpm.serve.events.v1 log (determinism mode:\n"
      "                    identical request sequences log identical\n"
      "                    bytes at any --executors count)\n"
      "  --no-observe      disable the observability plane entirely\n"
      "                    (event log, metrics op content, trace; the\n"
      "                    bench overhead guardrail measures this delta)\n"
      "\nSIGTERM/SIGINT drain gracefully: new submits are shed with\n"
      "reason \"draining\", admitted work finishes, journals are flushed,\n"
      "then the server exits 0.  After a hard kill, restarting with the\n"
      "same --state replays unfinished sweeps from their checkpoints.\n",
      error != nullptr ? stderr : stdout);
  return error != nullptr ? 2 : 0;
}

// Signal relay: the handler only flips a flag; the main loop calls
// request_drain() from normal context.
volatile std::sig_atomic_t g_drain_requested = 0;

void on_terminate(int) { g_drain_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv,
                {"host", "port", "print-port", "executors", "max-queue",
                 "quota", "state", "cache", "retry-after-ms", "trace-out",
                 "no-event-timing", "no-observe", "help"});
  if (!cli.ok()) return usage(cli.error().c_str());
  if (cli.has("help")) return usage(nullptr);

  serve::ServerOptions options;
  options.host = cli.get("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(cli.get_uint("port", 7077));
  options.executors = static_cast<unsigned>(cli.get_uint("executors", 2));
  options.max_queue = static_cast<std::size_t>(cli.get_uint("max-queue", 16));
  options.per_client_quota =
      static_cast<std::size_t>(cli.get_uint("quota", 0));
  options.state_dir = cli.get("state", "");
  options.cache_entries = static_cast<std::size_t>(cli.get_uint("cache", 64));
  options.retry_after_base_ms = cli.get_uint("retry-after-ms", 200);
  options.trace_out_path = cli.get("trace-out", "");
  options.event_timing = !cli.get_bool("no-event-timing", false);
  options.observe = !cli.get_bool("no-observe", false);

  std::unique_ptr<serve::Server> server;
  try {
    server = std::make_unique<serve::Server>(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpmserve: %s\n", e.what());
    return 1;
  }

  if (cli.get_bool("print-port", false)) {
    std::printf("%u\n", static_cast<unsigned>(server->port()));
    std::fflush(stdout);
  }
  std::fprintf(stderr, "hpmserve: listening on %s:%u (%u executors)\n",
               options.host.c_str(), static_cast<unsigned>(server->port()),
               options.executors);

  std::signal(SIGTERM, on_terminate);
  std::signal(SIGINT, on_terminate);

  // Signal relay thread: the handler only flips a flag; request_drain()
  // runs from normal context here.  run() returns once the server is
  // draining, the queue is empty and nothing is running.
  std::atomic<bool> done{false};
  std::thread drain_watch([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (g_drain_requested) {
        std::fprintf(stderr,
                     "hpmserve: drain requested, finishing admitted work\n");
        server->request_drain();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  server->run();
  done.store(true, std::memory_order_relaxed);
  drain_watch.join();
  std::fprintf(stderr, "hpmserve: drained, exiting\n");
  return 0;
}
