// serve_loadgen — hpm.serve.v1 client and load generator for hpmserve.
//
// Single-request mode submits one sweep and waits for its terminal event;
// --out re-exports the result document exactly as `hpmrun --jobs 1
// --no-timing --out` would write it, so recovery byte-identity can be
// checked with cmp(1).  Load mode fires --count requests over
// --concurrency connections (closed loop) and reports throughput and
// p50/p95/p99 latency; every request must terminate in accepted+result,
// rejected, or error — a request that just vanishes is a loadgen failure,
// which is how the saturation bench proves sheds are reported, not
// dropped.
//
//   serve_loadgen --port 7077 --workload tomcatv --tool search --out r.json
//   serve_loadgen --port 7077 --count 32 --concurrency 8 --distinct
//   serve_loadgen --port 7077 --op stats
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/json_export.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "telemetry/quantiles.hpp"
#include "util/cli.hpp"

namespace {

using namespace hpm;
using Clock = std::chrono::steady_clock;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "serve_loadgen: %s\n\n", error);
  std::fputs(
      "usage: serve_loadgen [options]\n"
      "  --host ADDR --port N   server address (port required)\n"
      "  --op OP           submit|stats|ping|drain|metrics (default submit)\n"
      "                    (metrics prints the server's OpenMetrics text)\n"
      "\nsweep (submit): --workload LIST --tool LIST --scale F\n"
      "  --iterations N --seed N --cache BYTES --levels SPEC --observe N\n"
      "  --period N --policy P --n N --interval N --retries N\n"
      "\nrequest: --priority high|normal|low --deadline-ms N\n"
      "  --live-every N --client NAME --id ID --trace TRACE (end-to-end\n"
      "  trace id; default t<i> — echoed on every event and verified)\n"
      "\nload mode: --count N --concurrency C --distinct (vary seed per\n"
      "  request, defeating the result cache and coalescing)\n"
      "\noutput: --out FILE (single request: result as hpm.batch JSON,\n"
      "  indent 2, no timing — byte-comparable to hpmrun --no-timing)\n"
      "  --summary-json FILE (load mode: machine-readable summary)\n"
      "  --timeout-ms N  per-event receive timeout (default 120000)\n"
      "  --verbose       echo progress/live events to stderr\n",
      error != nullptr ? stderr : stdout);
  return error != nullptr ? 2 : 0;
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

struct Outcome {
  bool terminal = false;   ///< saw rejected | result | error
  bool rejected = false;
  bool errored = false;
  bool ok = false;          ///< result with failed == 0
  bool cached = false;
  /// Every event for the request must echo the submitted trace id; one
  /// missing or wrong echo flips this and fails the run.
  bool trace_ok = true;
  std::uint64_t retry_after_ms = 0;
  double latency_ms = 0.0;
  /// Server-side stage breakdown from the result line's "stages" block.
  bool has_stages = false;
  std::uint64_t queue_us = 0;
  std::uint64_t run_us = 0;
  std::uint64_t total_us = 0;
  std::string result_json;  ///< compact batch document (result events)
  std::string detail;
};

/// Submit one request on an open socket and pump events until terminal.
Outcome run_request(serve::Socket& socket, serve::LineReader& reader,
                    const serve::SweepSpec& sweep, const std::string& id,
                    const std::string& trace, const std::string& client,
                    const std::string& priority, std::uint64_t deadline_ms,
                    std::uint64_t live_every, bool verbose,
                    bool want_result) {
  Outcome outcome;
  std::string submit = "{\"op\":\"submit\",\"id\":\"" +
                       harness::json_escape(id) + "\",\"trace\":\"" +
                       harness::json_escape(trace) + "\",\"client\":\"" +
                       harness::json_escape(client) + "\",\"priority\":\"" +
                       priority + "\"";
  if (deadline_ms > 0) {
    submit += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  if (live_every > 0) {
    submit += ",\"live_every\":" + std::to_string(live_every);
  }
  submit += ",\"sweep\":" + serve::canonical_sweep_json(sweep) + "}";

  const auto start = Clock::now();
  if (!socket.send_line(submit)) {
    outcome.detail = "send failed";
    return outcome;
  }
  std::string line;
  while (reader.read_line(line)) {
    if (line.empty()) continue;
    harness::JsonValue event;
    try {
      event = harness::JsonValue::parse(line);
    } catch (const std::exception&) {
      continue;
    }
    const harness::JsonValue* kind = event.find("event");
    if (kind == nullptr) continue;
    const harness::JsonValue* event_id = event.find("id");
    const std::string name = kind->str();
    if (name == "hello" || name == "pong" || name == "stats") continue;
    if (event_id == nullptr || event_id->str() != id) continue;
    // End-to-end tracing contract: every event for this request echoes the
    // submitted trace id (accepted, started, progress, live, result, ...).
    const harness::JsonValue* echoed = event.find("trace");
    if (echoed == nullptr || echoed->str() != trace) outcome.trace_ok = false;
    if (verbose && (name == "progress" || name == "live")) {
      std::fprintf(stderr, "%s\n", line.c_str());
      continue;
    }
    if (name == "rejected") {
      outcome.terminal = true;
      outcome.rejected = true;
      if (const auto* retry = event.find("retry_after_ms")) {
        outcome.retry_after_ms = retry->uint();
      }
      if (const auto* detail = event.find("detail")) {
        outcome.detail = detail->str();
      }
      if (const auto* reason = event.find("reason")) {
        outcome.detail = reason->str() +
                         (outcome.detail.empty() ? "" : ": " + outcome.detail);
      }
      break;
    }
    if (name == "error") {
      outcome.terminal = true;
      outcome.errored = true;
      if (const auto* detail = event.find("detail")) {
        outcome.detail = detail->str();
      }
      break;
    }
    if (name == "result") {
      outcome.terminal = true;
      outcome.ok = event.at("ok").boolean();
      outcome.cached = event.at("cached").boolean();
      if (const auto* stages = event.find("stages")) {
        outcome.has_stages = true;
        outcome.queue_us = stages->at("queue_us").uint();
        outcome.run_us = stages->at("run_us").uint();
        outcome.total_us = stages->at("total_us").uint();
      }
      if (want_result) {
        std::ostringstream compact;
        harness::write_json_value(compact, event.at("result"));
        outcome.result_json = std::move(compact).str();
      }
      break;
    }
  }
  outcome.latency_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return outcome;
}

void set_receive_timeout(serve::Socket& socket, std::uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Sorts in place and returns the nearest-rank p50/p95/p99 triple
/// (telemetry::quantile_sorted — the same estimator the server's
/// latency gauges use, so loadgen and `metrics` numbers are comparable).
struct Percentiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

Percentiles percentiles_of(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return {telemetry::quantile_sorted(samples, 0.50),
          telemetry::quantile_sorted(samples, 0.95),
          telemetry::quantile_sorted(samples, 0.99)};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(
      argc, argv,
      {"host", "port", "op", "workload", "tool", "scale", "iterations",
       "seed", "cache", "levels", "observe", "period", "policy", "n",
       "interval", "retries", "priority", "deadline-ms", "live-every",
       "client", "id", "trace", "count", "concurrency", "distinct", "out",
       "summary-json", "timeout-ms", "verbose", "help"});
  if (!cli.ok()) return usage(cli.error().c_str());
  if (cli.has("help")) return usage(nullptr);
  if (!cli.has("port")) return usage("--port is required");

  const std::string host = cli.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(cli.get_uint("port", 0));
  const std::uint64_t timeout_ms = cli.get_uint("timeout-ms", 120'000);
  const std::string op = cli.get("op", "submit");

  if (op != "submit") {
    serve::Socket socket = serve::connect_to(host, port);
    if (!socket.valid()) {
      std::fprintf(stderr, "serve_loadgen: cannot connect to %s:%u\n",
                   host.c_str(), port);
      return 1;
    }
    set_receive_timeout(socket, timeout_ms);
    if (!socket.send_line("{\"op\":\"" + op + "\"}")) return 1;
    serve::LineReader reader(socket);
    std::string line;
    const std::string expect = op == "ping"      ? "pong"
                               : op == "stats"   ? "stats"
                               : op == "drain"   ? "draining"
                               : op == "metrics" ? "metrics"
                                                 : "";
    while (reader.read_line(line)) {
      if (line.find("\"event\":\"" + expect + "\"") != std::string::npos) {
        if (op == "metrics") {
          // The exposition travels JSON-escaped in "data"; print it as the
          // OpenMetrics text a scraper would store.
          try {
            const harness::JsonValue reply = harness::JsonValue::parse(line);
            std::fputs(reply.at("data").str().c_str(), stdout);
          } catch (const std::exception& e) {
            std::fprintf(stderr, "serve_loadgen: bad metrics reply: %s\n",
                         e.what());
            return 1;
          }
        } else {
          std::printf("%s\n", line.c_str());
        }
        return 0;
      }
    }
    std::fprintf(stderr, "serve_loadgen: no %s reply\n", expect.c_str());
    return 1;
  }

  serve::SweepSpec sweep;
  sweep.workloads = split_list(cli.get("workload", "synthetic"));
  sweep.tools = split_list(cli.get("tool", "search"));
  for (std::string& tool : sweep.tools) {
    if (tool == "nway") tool = "search";
  }
  sweep.scale = cli.get_double("scale", 1.0);
  sweep.iterations = cli.get_uint("iterations", 0);
  sweep.seed = cli.get_uint("seed", 0x5ca1ab1e);
  sweep.cache_bytes = cli.get_uint("cache", 0);
  sweep.levels = cli.get("levels", "");
  sweep.observe = cli.get_int("observe", -1);
  sweep.period = cli.get_uint("period", 10'000);
  sweep.policy = cli.get("policy", "fixed");
  sweep.n = static_cast<std::uint32_t>(cli.get_uint("n", 10));
  sweep.interval = cli.get_uint("interval", 1'000'000);
  sweep.retries = static_cast<std::uint32_t>(cli.get_uint("retries", 0));

  const std::string priority = cli.get("priority", "normal");
  const std::uint64_t deadline_ms = cli.get_uint("deadline-ms", 0);
  const std::uint64_t live_every = cli.get_uint("live-every", 0);
  const std::string client = cli.get("client", "loadgen");
  const bool verbose = cli.get_bool("verbose", false);
  const auto count = static_cast<std::size_t>(cli.get_uint("count", 1));
  const auto concurrency = std::max<std::size_t>(
      1, static_cast<std::size_t>(cli.get_uint("concurrency", 1)));
  const bool distinct = cli.get_bool("distinct", false);
  const std::string out_path = cli.get("out", "");

  if (count == 1 && concurrency == 1) {
    serve::Socket socket = serve::connect_to(host, port);
    if (!socket.valid()) {
      std::fprintf(stderr, "serve_loadgen: cannot connect to %s:%u\n",
                   host.c_str(), port);
      return 1;
    }
    set_receive_timeout(socket, timeout_ms);
    serve::LineReader reader(socket);
    const std::string id = cli.get("id", "r1");
    const std::string trace = cli.get("trace", "t1");
    const Outcome outcome =
        run_request(socket, reader, sweep, id, trace, client, priority,
                    deadline_ms, live_every, verbose, /*want_result=*/true);
    if (!outcome.terminal) {
      std::fprintf(stderr, "serve_loadgen: no terminal event for '%s' (%s)\n",
                   id.c_str(),
                   outcome.detail.empty() ? "timeout" : outcome.detail.c_str());
      return 1;
    }
    if (outcome.rejected) {
      std::fprintf(stderr,
                   "serve_loadgen: rejected (%s), retry after %llu ms\n",
                   outcome.detail.c_str(),
                   static_cast<unsigned long long>(outcome.retry_after_ms));
      return 3;
    }
    if (outcome.errored) {
      std::fprintf(stderr, "serve_loadgen: error: %s\n",
                   outcome.detail.c_str());
      return 1;
    }
    std::fprintf(stderr, "result: %s%s  latency: %.1f ms\n",
                 outcome.ok ? "ok" : "failed",
                 outcome.cached ? " (cached)" : "", outcome.latency_ms);
    if (outcome.has_stages) {
      std::fprintf(stderr,
                   "stages (trace %s): queue %.1f ms  run %.1f ms  "
                   "total %.1f ms\n",
                   trace.c_str(), static_cast<double>(outcome.queue_us) / 1e3,
                   static_cast<double>(outcome.run_us) / 1e3,
                   static_cast<double>(outcome.total_us) / 1e3);
    }
    if (!outcome.trace_ok) {
      std::fprintf(stderr,
                   "serve_loadgen: trace id '%s' not echoed on every event\n",
                   trace.c_str());
      return 1;
    }
    if (!out_path.empty()) {
      // Re-export through the full-fidelity reader so the file matches
      // `hpmrun --jobs 1 --no-timing --out` byte for byte.
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "serve_loadgen: cannot open %s\n",
                     out_path.c_str());
        return 1;
      }
      harness::JsonExportOptions export_options;
      export_options.include_timing = false;
      harness::export_json(
          out, harness::parse_batch_result(outcome.result_json),
          export_options);
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
    return outcome.ok ? 0 : 1;
  }

  // Load mode: closed loop, `concurrency` worker connections sharing the
  // request budget.  Every request must reach a terminal event.
  std::atomic<std::size_t> next{0};
  std::mutex results_mutex;
  std::vector<Outcome> outcomes;
  const auto wall_start = Clock::now();
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      serve::Socket socket = serve::connect_to(host, port);
      if (!socket.valid()) return;
      set_receive_timeout(socket, timeout_ms);
      serve::LineReader reader(socket);
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        serve::SweepSpec request_sweep = sweep;
        if (distinct) request_sweep.seed += i;  // defeat cache + coalescing
        const Outcome outcome = run_request(
            socket, reader, request_sweep, "r" + std::to_string(i),
            "t" + std::to_string(i), client + "-" + std::to_string(w),
            priority, deadline_ms, live_every, verbose,
            /*want_result=*/false);
        std::lock_guard lock(results_mutex);
        outcomes.push_back(outcome);
        if (!outcome.terminal) return;  // dead connection: stop this worker
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();

  std::size_t terminal = 0, rejected = 0, errored = 0, ok = 0, cached = 0;
  std::size_t trace_mismatches = 0;
  std::vector<double> completed_latencies;
  // Server-side stage breakdown (from each result's "stages" block):
  // queue wait vs execution vs total, for completed non-cached requests.
  std::vector<double> queue_ms, run_ms, total_ms;
  for (const Outcome& outcome : outcomes) {
    if (outcome.terminal) ++terminal;
    if (outcome.rejected) ++rejected;
    if (outcome.errored) ++errored;
    if (outcome.terminal && !outcome.trace_ok) ++trace_mismatches;
    if (outcome.ok) {
      ++ok;
      completed_latencies.push_back(outcome.latency_ms);
      if (outcome.has_stages && !outcome.cached) {
        queue_ms.push_back(static_cast<double>(outcome.queue_us) / 1e3);
        run_ms.push_back(static_cast<double>(outcome.run_us) / 1e3);
        total_ms.push_back(static_cast<double>(outcome.total_us) / 1e3);
      }
    }
    if (outcome.cached) ++cached;
  }
  const std::size_t lost = count - terminal;
  const Percentiles latency = percentiles_of(completed_latencies);
  const Percentiles queue = percentiles_of(queue_ms);
  const Percentiles run = percentiles_of(run_ms);
  const Percentiles total = percentiles_of(total_ms);
  const double rps =
      wall_seconds > 0 ? static_cast<double>(ok) / wall_seconds : 0.0;

  std::printf(
      "requests: %zu  terminal: %zu  ok: %zu  rejected: %zu  errors: %zu  "
      "lost: %zu  cached: %zu  trace-mismatches: %zu\n",
      count, terminal, ok, rejected, errored, lost, cached, trace_mismatches);
  std::printf("throughput: %.2f ok-req/s   latency ms: p50 %.1f  p95 %.1f  "
              "p99 %.1f\n",
              rps, latency.p50, latency.p95, latency.p99);
  if (!total_ms.empty()) {
    std::printf("stages ms (p50/p95/p99): queue %.1f/%.1f/%.1f  "
                "run %.1f/%.1f/%.1f  total %.1f/%.1f/%.1f\n",
                queue.p50, queue.p95, queue.p99, run.p50, run.p95, run.p99,
                total.p50, total.p95, total.p99);
  }

  const std::string summary_path = cli.get("summary-json", "");
  if (!summary_path.empty()) {
    std::ofstream out(summary_path);
    if (!out) {
      std::fprintf(stderr, "serve_loadgen: cannot open %s\n",
                   summary_path.c_str());
      return 1;
    }
    out << "{\"schema\":\"hpm.loadgen.v1\",\"requests\":" << count
        << ",\"terminal\":" << terminal << ",\"ok\":" << ok
        << ",\"rejected\":" << rejected << ",\"errors\":" << errored
        << ",\"lost\":" << lost << ",\"cached\":" << cached
        << ",\"trace_mismatches\":" << trace_mismatches
        << ",\"wall_seconds\":" << wall_seconds << ",\"rps\":" << rps
        << ",\"p50_ms\":" << latency.p50 << ",\"p95_ms\":" << latency.p95
        << ",\"p99_ms\":" << latency.p99 << ",\"stages\":{\"samples\":"
        << total_ms.size() << ",\"queue_p50_ms\":" << queue.p50
        << ",\"queue_p95_ms\":" << queue.p95
        << ",\"queue_p99_ms\":" << queue.p99
        << ",\"run_p50_ms\":" << run.p50 << ",\"run_p95_ms\":" << run.p95
        << ",\"run_p99_ms\":" << run.p99
        << ",\"total_p50_ms\":" << total.p50
        << ",\"total_p95_ms\":" << total.p95
        << ",\"total_p99_ms\":" << total.p99 << "}}\n";
  }
  // Lost requests (no terminal event) are the one unforgivable failure:
  // the protocol promises every submit an explicit answer.  A trace id
  // that fails to round-trip breaks the observability contract the same
  // way — both fail the run.
  if (trace_mismatches > 0) {
    std::fprintf(stderr,
                 "serve_loadgen: %zu request(s) missing trace echo\n",
                 trace_mismatches);
    return 1;
  }
  return lost == 0 ? 0 : 1;
}
