// hpmtop: terminal dashboard for hpmrun live streams and hpmserve.
//
// Stream mode tails a --progress-jsonl stream (file, or "-" for a pipe)
// carrying the interleaved progress + hpm.live.v1 events and renders
// per-worker run status, per-level miss-rate sparklines, the rolled-up
// batch totals and the EMA-based ETA.  Two sub-modes:
//   * follow (default): re-render in place as events arrive, exit when the
//     stream's batch_finish event lands;
//   * --once: read the whole recorded stream, render the final frame to
//     stdout and exit — deterministic, so a fixture test pins the frame
//     byte for byte and CI can smoke the full hpmrun | hpmtop pipeline.
//
// Server mode (--serve HOST:PORT) polls a running hpmserve over the
// hpm.serve.v1 protocol — the `stats` op for cumulative counters and
// per-stage latency digests, the `metrics` op for the windowed gauges
// (executor utilization, cache hit ratio) only the OpenMetrics tree
// carries — and renders a live server dashboard: queue / executors /
// cache, plus sparklines of queue depth, shed rate, completion rate and
// p95 total latency.  --once polls once and prints a single frame.
//
// Exit codes: 0 = rendered; 1 = stream held no recognizable events (or
// the server was unreachable); 2 = usage error.  Unknown event types and
// malformed lines are skipped (counted), so newer producers never break
// an older hpmtop.
//
//   hpmrun --workload tomcatv,swim --tool sample --jobs 4 ...
//     ... --progress-jsonl /dev/stderr --live 2>&1 >/dev/null | hpmtop -
//   hpmtop recorded-stream.jsonl --once
//   hpmtop --serve 127.0.0.1:7077
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/json_export.hpp"
#include "serve/net.hpp"
#include "util/cli.hpp"

namespace {

using hpm::harness::JsonValue;

constexpr const char* kUsage =
    "usage: hpmtop STREAM [--once] [--interval-ms N] [--width N]\n"
    "       hpmtop --serve HOST:PORT [--once] [--interval-ms N] [--width N]\n"
    "\n"
    "  STREAM            JSONL file from hpmrun --progress-jsonl --live,\n"
    "                    or '-' to read a pipe on stdin\n"
    "  --serve HOST:PORT poll a running hpmserve (stats + metrics ops)\n"
    "                    and render a live server dashboard instead\n"
    "  --once            read to EOF (or poll once), print one frame, exit\n"
    "                    (deterministic; for CI and recorded streams)\n"
    "  --interval-ms N   follow-mode refresh/poll interval (default 500)\n"
    "  --width N         sparkline width in samples (default 32)\n";

/// Per-level live state within one run.
struct LevelState {
  std::string name;
  std::vector<double> miss_rates;  ///< one EMA-smoothed rate per window
  double last_miss_rate = 0.0;
  double resident = 0.0;
  double resident_peak = 0.0;
};

struct RunState {
  std::string name;
  std::string status = "running";  ///< running | ok | retried | failed | ...
  unsigned worker = 0;             ///< last worker seen executing this run
  std::uint64_t windows = 0;
  std::vector<double> miss_rates;  ///< machine-tier rate per window
  double last_miss_rate = 0.0;
  double tool_share = 0.0;
  std::vector<LevelState> levels;
  bool finished = false;
  double total_miss_rate = 0.0;  ///< from run_total
};

struct Dashboard {
  // Stream-wide.
  std::uint64_t events = 0;       ///< recognized events
  std::uint64_t malformed = 0;    ///< skipped lines
  std::uint64_t every_refs = 0;   ///< live sampling period (stream_start)
  // Batch progress.
  std::size_t total = 0;
  std::size_t done = 0;
  unsigned jobs = 0;
  std::uint64_t retries = 0;
  double eta_seconds = 0.0;
  bool finished = false;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
  // Per-run and rollup.
  std::map<std::size_t, RunState> runs;            ///< keyed by index
  std::map<unsigned, std::string> worker_current;  ///< worker -> run name
  bool have_rollup = false;
  double rollup_refs = 0.0;
  double rollup_misses = 0.0;
  double rollup_miss_rate = 0.0;
  double rollup_interrupts = 0.0;
  double rollup_tool_share = 0.0;
};

double num_or(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* value = obj.find(key);
  return value != nullptr && value->kind() == JsonValue::Kind::kNumber
             ? value->number()
             : fallback;
}

std::string str_or(const JsonValue& obj, std::string_view key,
                   const std::string& fallback) {
  const JsonValue* value = obj.find(key);
  return value != nullptr && value->kind() == JsonValue::Kind::kString
             ? value->str()
             : fallback;
}

void apply_progress_event(Dashboard& dash, const JsonValue& obj,
                          const std::string& event) {
  if (event == "batch_start") {
    dash.total = static_cast<std::size_t>(num_or(obj, "total", 0));
    dash.done = static_cast<std::size_t>(num_or(obj, "resumed", 0));
    dash.jobs = static_cast<unsigned>(num_or(obj, "jobs", 0));
  } else if (event == "run_start") {
    const auto index = static_cast<std::size_t>(num_or(obj, "index", 0));
    RunState& run = dash.runs[index];
    run.name = str_or(obj, "name", run.name);
    run.worker = static_cast<unsigned>(num_or(obj, "worker", 0));
    dash.worker_current[run.worker] = run.name;
  } else if (event == "run_retry") {
    ++dash.retries;
  } else if (event == "run_finish") {
    const auto index = static_cast<std::size_t>(num_or(obj, "index", 0));
    RunState& run = dash.runs[index];
    run.name = str_or(obj, "name", run.name);
    run.finished = true;
    run.status = str_or(obj, "outcome", "ok");
    const auto worker = static_cast<unsigned>(num_or(obj, "worker", 0));
    auto current = dash.worker_current.find(worker);
    if (current != dash.worker_current.end() && current->second == run.name) {
      current->second.clear();
    }
    dash.done = static_cast<std::size_t>(num_or(obj, "done", dash.done));
    dash.total = static_cast<std::size_t>(num_or(obj, "total", dash.total));
    dash.eta_seconds = num_or(obj, "eta_seconds", 0.0);
  } else if (event == "batch_finish") {
    dash.finished = true;
    dash.failed = static_cast<std::size_t>(num_or(obj, "failed", 0));
    dash.retries = static_cast<std::uint64_t>(
        num_or(obj, "retries", static_cast<double>(dash.retries)));
    dash.wall_seconds = num_or(obj, "wall_seconds", 0.0);
    dash.eta_seconds = 0.0;
    for (auto& [worker, current] : dash.worker_current) current.clear();
  }
}

void apply_live_event(Dashboard& dash, const JsonValue& obj,
                      const std::string& event) {
  if (event == "stream_start") {
    dash.every_refs = static_cast<std::uint64_t>(num_or(obj, "every_refs", 0));
    return;
  }
  if (event == "batch_rollup") {
    dash.have_rollup = true;
    dash.rollup_refs = num_or(obj, "refs", 0.0);
    dash.rollup_misses = num_or(obj, "misses", 0.0);
    dash.rollup_miss_rate = num_or(obj, "miss_rate", 0.0);
    dash.rollup_interrupts = num_or(obj, "interrupts", 0.0);
    dash.rollup_tool_share = num_or(obj, "tool_share", 0.0);
    return;
  }
  const auto index = static_cast<std::size_t>(num_or(obj, "index", 0));
  RunState& run = dash.runs[index];
  run.name = str_or(obj, "name", run.name);
  if (event == "window") {
    const JsonValue* window = obj.find("window");
    run.windows = static_cast<std::uint64_t>(
        num_or(obj, "seq", static_cast<double>(run.windows + 1)));
    if (window != nullptr) {
      run.last_miss_rate = num_or(*window, "miss_rate", 0.0);
      run.tool_share = num_or(*window, "tool_share", 0.0);
      run.miss_rates.push_back(run.last_miss_rate);
    }
  } else if (event == "run_total") {
    run.windows = static_cast<std::uint64_t>(
        num_or(obj, "windows", static_cast<double>(run.windows)));
    run.total_miss_rate = num_or(obj, "miss_rate", 0.0);
    run.tool_share = num_or(obj, "tool_share", 0.0);
  } else {
    return;  // unknown hpm.live.v1 event: forward-compatible skip
  }
  const JsonValue* levels = obj.find("levels");
  if (levels == nullptr || levels->kind() != JsonValue::Kind::kArray) return;
  for (const JsonValue& level : levels->array()) {
    const std::string name = str_or(level, "name", "?");
    LevelState* state = nullptr;
    for (LevelState& existing : run.levels) {
      if (existing.name == name) {
        state = &existing;
        break;
      }
    }
    if (state == nullptr) {
      run.levels.push_back(LevelState{name, {}, 0.0, 0.0, 0.0});
      state = &run.levels.back();
    }
    state->last_miss_rate = num_or(level, "miss_rate", state->last_miss_rate);
    if (event == "window") state->miss_rates.push_back(state->last_miss_rate);
    state->resident = num_or(level, "resident", state->resident);
    state->resident_peak =
        num_or(level, "resident_peak", state->resident_peak);
  }
}

/// Feed one JSONL line into the dashboard; returns false when the line was
/// not a recognizable event.  Anything that is not a well-formed event
/// object — unparsable bytes, a non-object document, an object without an
/// "event" string, or an event whose payload blows up mid-apply (a line
/// truncated inside a string can still parse) — is counted as a bad line
/// and skipped; a garbage producer can degrade the dashboard but never
/// crash it.  Blank lines are ignored silently (streams legitimately end
/// with one).
bool apply_line(Dashboard& dash, const std::string& line) {
  if (line.empty()) return false;
  JsonValue obj;
  try {
    obj = JsonValue::parse(line);
  } catch (const std::exception&) {
    ++dash.malformed;
    return false;
  }
  if (obj.kind() != JsonValue::Kind::kObject) {
    ++dash.malformed;
    return false;
  }
  const JsonValue* type = obj.find("type");
  const std::string event = str_or(obj, "event", "");
  if (event.empty()) {
    ++dash.malformed;
    return false;
  }
  try {
    if (type != nullptr && type->kind() == JsonValue::Kind::kString &&
        type->str() == "hpm.live.v1") {
      apply_live_event(dash, obj, event);
    } else if (type == nullptr) {
      apply_progress_event(dash, obj, event);
    }
  } catch (const std::exception&) {
    ++dash.malformed;
    return false;
  }
  ++dash.events;
  return true;
}

/// ASCII sparkline over the last `width` samples, darkest glyph = the
/// series maximum (all-blank when the series is flat zero).
std::string sparkline(const std::vector<double>& series, std::size_t width) {
  static constexpr std::string_view kRamp = " .:-=+*#";
  const std::size_t n = std::min(series.size(), width);
  std::string out;
  out.reserve(n);
  const auto begin = series.end() - static_cast<std::ptrdiff_t>(n);
  double max_value = 0.0;
  for (auto it = begin; it != series.end(); ++it) {
    max_value = std::max(max_value, *it);
  }
  for (auto it = begin; it != series.end(); ++it) {
    if (max_value <= 0.0) {
      out += ' ';
      continue;
    }
    const auto bucket = static_cast<std::size_t>(
        *it / max_value * static_cast<double>(kRamp.size() - 1) + 0.5);
    out += kRamp[std::min(bucket, kRamp.size() - 1)];
  }
  return out;
}

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

/// Render the dashboard as plain text.  Deterministic for a fully recorded
/// stream: iteration orders are index/name-sorted and every number comes
/// from the stream, never from the clock.
std::string render(const Dashboard& dash, std::size_t width) {
  std::ostringstream out;
  out << "hpmtop — hpm.live.v1 stream\n";
  out << "runs " << dash.done << "/" << dash.total;
  out << "  failed " << dash.failed;
  out << "  retries " << dash.retries;
  if (dash.jobs > 0) out << "  jobs " << dash.jobs;
  if (dash.every_refs > 0) {
    out << "  window " << dash.every_refs << " refs";
  }
  if (dash.finished) {
    out << "  done";
    if (dash.wall_seconds > 0.0) {
      out << " in " << fmt("%.1fs", dash.wall_seconds);
    }
  } else if (dash.eta_seconds > 0.0) {
    out << "  eta " << fmt("%.1fs", dash.eta_seconds);
  }
  out << "\n";

  for (const auto& [index, run] : dash.runs) {
    out << "\n" << run.name << " [" << run.status << "]";
    if (run.windows > 0) {
      out << " " << run.windows
          << (run.windows == 1 ? " window" : " windows");
    }
    out << "\n";
    if (!run.miss_rates.empty()) {
      out << "  miss%  |" << sparkline(run.miss_rates, width) << "| last "
          << fmt("%.2f%%", run.last_miss_rate * 100.0);
      if (run.finished) {
        out << "  total " << fmt("%.2f%%", run.total_miss_rate * 100.0);
      }
      out << "  tool " << fmt("%.2f%%", run.tool_share * 100.0) << "\n";
    }
    for (const LevelState& level : run.levels) {
      out << "  " << level.name;
      for (std::size_t pad = level.name.size(); pad < 5; ++pad) out << ' ';
      out << "  |" << sparkline(level.miss_rates, width) << "| miss "
          << fmt("%.2f%%", level.last_miss_rate * 100.0) << "  resident "
          << fmt("%.0f", std::max(level.resident, level.resident_peak))
          << "\n";
    }
  }

  bool any_busy = false;
  for (const auto& [worker, current] : dash.worker_current) {
    if (!current.empty()) any_busy = true;
  }
  if (any_busy) {
    out << "\nworkers\n";
    for (const auto& [worker, current] : dash.worker_current) {
      out << "  w" << worker << "  "
          << (current.empty() ? "idle" : current.c_str()) << "\n";
    }
  }

  if (dash.have_rollup) {
    out << "\nbatch  refs " << fmt("%.0f", dash.rollup_refs) << "  misses "
        << fmt("%.0f", dash.rollup_misses) << "  miss "
        << fmt("%.2f%%", dash.rollup_miss_rate * 100.0) << "  interrupts "
        << fmt("%.0f", dash.rollup_interrupts) << "  tool "
        << fmt("%.2f%%", dash.rollup_tool_share * 100.0) << "\n";
  }

  // Data-quality footer: only when something was actually skipped, so
  // clean-stream frames (and their golden fixtures) are unchanged.
  if (dash.malformed > 0) {
    out << "\nbad lines: " << dash.malformed << "\n";
  }
  return out.str();
}

// ---- hpmserve dashboard (--serve HOST:PORT) --------------------------------

/// Latest `stats` snapshot plus the per-poll rate/depth histories the
/// sparklines draw from.
struct ServeDash {
  std::string endpoint;
  std::uint64_t polls = 0;
  // Cumulative counters and gauges from the stats event.
  double queue_depth = 0, running = 0, sessions = 0, executors = 0;
  double accepted = 0, coalesced = 0, completed = 0;
  double shed = 0, shed_high = 0, shed_normal = 0, shed_low = 0;
  double recovered = 0, cache_hits = 0, cache_misses = 0;
  bool draining = false;
  // Per-stage latency digests (ms) from stats.latency.{queue,run,total}.
  double queue_p50 = 0, queue_p95 = 0, queue_p99 = 0;
  double run_p50 = 0, run_p95 = 0, run_p99 = 0;
  double total_p50 = 0, total_p95 = 0, total_p99 = 0;
  std::size_t latency_count = 0;
  // Windowed gauges only the OpenMetrics exposition carries; negative
  // until the first successful metrics poll (or with --no-observe).
  double utilization = -1.0, hit_ratio = -1.0;
  // Histories (one entry per poll).
  std::vector<double> depth_series, shed_series, done_series, p95_series;
  double prev_shed = -1.0, prev_completed = -1.0;
};

/// Send one no-argument op and wait for its reply event, skipping the
/// hello and any interleaved broadcasts.  False when the connection died.
bool serve_rpc(hpm::serve::Socket& socket, hpm::serve::LineReader& reader,
               const std::string& op, const std::string& expect,
               JsonValue& reply) {
  if (!socket.send_line("{\"op\":\"" + op + "\"}")) return false;
  std::string line;
  while (reader.read_line(line)) {
    if (line.empty()) continue;
    try {
      JsonValue event = JsonValue::parse(line);
      const JsonValue* kind = event.find("event");
      if (kind != nullptr && kind->str() == expect) {
        reply = std::move(event);
        return true;
      }
    } catch (const std::exception&) {
      continue;
    }
  }
  return false;
}

/// Pull one gauge out of an OpenMetrics exposition by its metric label —
/// e.g. `hpm_monitor{...,metric="utilization",...} 0.75`.  The exposition
/// declares each metric label once per node; the two consumed here
/// (utilization, hit_ratio) are unique server-wide.  Returns fallback
/// when absent (plane disabled or metric not yet declared).
double exposition_gauge(const std::string& text, const std::string& metric,
                        double fallback) {
  const std::string needle = "metric=\"" + metric + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return fallback;
  const std::size_t close = text.find("} ", at);
  const std::size_t eol = text.find('\n', at);
  if (close == std::string::npos || eol == std::string::npos || close > eol) {
    return fallback;
  }
  try {
    return std::stod(text.substr(close + 2, eol - close - 2));
  } catch (const std::exception&) {
    return fallback;
  }
}

/// Poll stats (and metrics) once and fold the snapshot into the dashboard.
bool poll_server(hpm::serve::Socket& socket, hpm::serve::LineReader& reader,
                 ServeDash& dash, double interval_seconds) {
  JsonValue stats;
  if (!serve_rpc(socket, reader, "stats", "stats", stats)) return false;
  dash.queue_depth = num_or(stats, "queue_depth", 0);
  dash.running = num_or(stats, "running", 0);
  dash.sessions = num_or(stats, "sessions", 0);
  dash.executors = num_or(stats, "executors", 0);
  dash.accepted = num_or(stats, "accepted", 0);
  dash.coalesced = num_or(stats, "coalesced", 0);
  dash.completed = num_or(stats, "completed", 0);
  dash.shed = num_or(stats, "shed", 0);
  dash.shed_high = num_or(stats, "shed_high", 0);
  dash.shed_normal = num_or(stats, "shed_normal", 0);
  dash.shed_low = num_or(stats, "shed_low", 0);
  dash.recovered = num_or(stats, "recovered", 0);
  dash.cache_hits = num_or(stats, "cache_hits", 0);
  dash.cache_misses = num_or(stats, "cache_misses", 0);
  if (const JsonValue* draining = stats.find("draining")) {
    dash.draining = draining->kind() == JsonValue::Kind::kBool
                        ? draining->boolean()
                        : false;
  }
  if (const JsonValue* latency = stats.find("latency")) {
    if (const JsonValue* queue = latency->find("queue")) {
      dash.queue_p50 = num_or(*queue, "p50_ms", 0);
      dash.queue_p95 = num_or(*queue, "p95_ms", 0);
      dash.queue_p99 = num_or(*queue, "p99_ms", 0);
    }
    if (const JsonValue* run = latency->find("run")) {
      dash.run_p50 = num_or(*run, "p50_ms", 0);
      dash.run_p95 = num_or(*run, "p95_ms", 0);
      dash.run_p99 = num_or(*run, "p99_ms", 0);
    }
    if (const JsonValue* total = latency->find("total")) {
      dash.latency_count =
          static_cast<std::size_t>(num_or(*total, "count", 0));
      dash.total_p50 = num_or(*total, "p50_ms", 0);
      dash.total_p95 = num_or(*total, "p95_ms", 0);
      dash.total_p99 = num_or(*total, "p99_ms", 0);
    }
  }
  // The windowed gauges ride on the metrics op; a server running
  // --no-observe answers with an empty (but valid) exposition, which
  // simply leaves them unset.
  JsonValue metrics;
  if (serve_rpc(socket, reader, "metrics", "metrics", metrics)) {
    if (const JsonValue* data = metrics.find("data")) {
      dash.utilization = exposition_gauge(data->str(), "utilization", -1.0);
      dash.hit_ratio = exposition_gauge(data->str(), "hit_ratio", -1.0);
    }
  }
  // Rates are per-poll deltas of the cumulative counters.
  dash.depth_series.push_back(dash.queue_depth);
  dash.p95_series.push_back(dash.total_p95);
  if (dash.prev_shed >= 0 && interval_seconds > 0) {
    dash.shed_series.push_back((dash.shed - dash.prev_shed) /
                               interval_seconds);
    dash.done_series.push_back((dash.completed - dash.prev_completed) /
                               interval_seconds);
  }
  dash.prev_shed = dash.shed;
  dash.prev_completed = dash.completed;
  ++dash.polls;
  return true;
}

std::string render_serve(const ServeDash& dash, std::size_t width) {
  std::ostringstream out;
  out << "hpmtop — hpmserve " << dash.endpoint
      << (dash.draining ? "  [draining]" : "") << "\n";
  out << "sessions " << fmt("%.0f", dash.sessions) << "  executors "
      << fmt("%.0f", dash.executors) << "  running "
      << fmt("%.0f", dash.running) << "  queue "
      << fmt("%.0f", dash.queue_depth);
  if (dash.utilization >= 0) {
    out << "  util " << fmt("%.0f%%", dash.utilization * 100.0);
  }
  out << "\n";
  out << "accepted " << fmt("%.0f", dash.accepted) << "  coalesced "
      << fmt("%.0f", dash.coalesced) << "  completed "
      << fmt("%.0f", dash.completed) << "  shed " << fmt("%.0f", dash.shed)
      << " (hi " << fmt("%.0f", dash.shed_high) << " / no "
      << fmt("%.0f", dash.shed_normal) << " / lo "
      << fmt("%.0f", dash.shed_low) << ")  recovered "
      << fmt("%.0f", dash.recovered) << "\n";
  out << "cache  hits " << fmt("%.0f", dash.cache_hits) << "  misses "
      << fmt("%.0f", dash.cache_misses);
  if (dash.hit_ratio >= 0) {
    out << "  hit " << fmt("%.1f%%", dash.hit_ratio * 100.0);
  }
  out << "\n";
  out << "\nqueue   |" << sparkline(dash.depth_series, width) << "| now "
      << fmt("%.0f", dash.queue_depth) << "\n";
  if (!dash.shed_series.empty()) {
    out << "shed/s  |" << sparkline(dash.shed_series, width) << "| now "
        << fmt("%.1f", dash.shed_series.back()) << "\n";
    out << "done/s  |" << sparkline(dash.done_series, width) << "| now "
        << fmt("%.1f", dash.done_series.back()) << "\n";
  }
  if (dash.latency_count > 0) {
    out << "p95 ms  |" << sparkline(dash.p95_series, width) << "| now "
        << fmt("%.1f", dash.total_p95) << "\n";
    out << "\nlatency ms (p50/p95/p99)  queue " << fmt("%.1f", dash.queue_p50)
        << "/" << fmt("%.1f", dash.queue_p95) << "/"
        << fmt("%.1f", dash.queue_p99) << "  run "
        << fmt("%.1f", dash.run_p50) << "/" << fmt("%.1f", dash.run_p95)
        << "/" << fmt("%.1f", dash.run_p99) << "  total "
        << fmt("%.1f", dash.total_p50) << "/" << fmt("%.1f", dash.total_p95)
        << "/" << fmt("%.1f", dash.total_p99) << "  (" << dash.latency_count
        << " completed)\n";
  }
  out << "\npolls " << dash.polls << "\n";
  return out.str();
}

/// --serve mode entry point: connect, then poll/render until the server
/// goes away (drain) or, with --once, after a single frame.
int run_serve_mode(const std::string& endpoint, bool once,
                   std::uint64_t interval_ms, std::size_t width) {
  std::string host = "127.0.0.1";
  std::string port_text = endpoint;
  const std::size_t colon = endpoint.rfind(':');
  if (colon != std::string::npos) {
    host = endpoint.substr(0, colon);
    port_text = endpoint.substr(colon + 1);
  }
  std::uint16_t port = 0;
  try {
    const unsigned long value = std::stoul(port_text);
    if (value == 0 || value > 65535) throw std::out_of_range("port");
    port = static_cast<std::uint16_t>(value);
  } catch (const std::exception&) {
    std::fprintf(stderr, "hpmtop: bad --serve endpoint '%s'\n%s",
                 endpoint.c_str(), kUsage);
    return 2;
  }

  hpm::serve::Socket socket = hpm::serve::connect_to(host, port);
  if (!socket.valid()) {
    std::fprintf(stderr, "hpmtop: cannot connect to %s:%u\n", host.c_str(),
                 static_cast<unsigned>(port));
    return 1;
  }
  hpm::serve::LineReader reader(socket);

  ServeDash dash;
  dash.endpoint = host + ":" + std::to_string(port);
  const double interval_seconds = static_cast<double>(interval_ms) / 1000.0;

  if (once) {
    if (!poll_server(socket, reader, dash, interval_seconds)) {
      std::fprintf(stderr, "hpmtop: no stats reply from %s\n",
                   dash.endpoint.c_str());
      return 1;
    }
    std::fputs(render_serve(dash, width).c_str(), stdout);
    return 0;
  }

  const char* kClear = "\x1b[H\x1b[2J";
  while (true) {
    if (!poll_server(socket, reader, dash, interval_seconds)) {
      // Server gone (drained or killed): leave the last frame on screen.
      if (dash.polls == 0) {
        std::fprintf(stderr, "hpmtop: no stats reply from %s\n",
                     dash.endpoint.c_str());
        return 1;
      }
      std::fprintf(stderr, "hpmtop: server %s closed the connection\n",
                   dash.endpoint.c_str());
      return 0;
    }
    std::fputs(kClear, stdout);
    std::fputs(render_serve(dash, width).c_str(), stdout);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  hpm::util::Cli cli(argc, argv,
                     {"serve", "once", "interval-ms", "width", "help"});
  if (!cli.ok()) {
    std::fprintf(stderr, "hpmtop: %s\n%s", cli.error().c_str(), kUsage);
    return 2;
  }
  if (cli.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const bool once = cli.get_bool("once", false);
  const auto interval_ms = cli.get_uint("interval-ms", 500);
  const auto width =
      static_cast<std::size_t>(std::max<std::uint64_t>(
          8, cli.get_uint("width", 32)));

  const std::string serve_endpoint = cli.get("serve", "");
  if (!serve_endpoint.empty()) {
    if (!cli.positional().empty()) {
      std::fprintf(stderr, "hpmtop: --serve takes no STREAM argument\n%s",
                   kUsage);
      return 2;
    }
    return run_serve_mode(serve_endpoint, once, interval_ms, width);
  }

  if (cli.positional().size() != 1) {
    std::fprintf(stderr, "hpmtop: expected exactly one STREAM argument\n%s",
                 kUsage);
    return 2;
  }
  const std::string path = cli.positional().front();

  const bool from_stdin = path == "-";
  std::ifstream file;
  if (!from_stdin) {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "hpmtop: cannot open %s\n", path.c_str());
      return 2;
    }
  }
  std::istream& in = from_stdin ? std::cin : file;

  Dashboard dash;
  std::string line;

  if (once) {
    while (std::getline(in, line)) apply_line(dash, line);
    if (dash.events == 0) {
      std::fprintf(stderr, "hpmtop: no progress or hpm.live.v1 events in %s\n",
                   path.c_str());
      return 1;
    }
    std::fputs(render(dash, width).c_str(), stdout);
    return 0;
  }

  // Follow mode: drain available lines, render, repeat until the stream's
  // batch_finish arrives (or a pipe closes).  Frames repaint in place with
  // an ANSI home+clear; the final frame is left on screen.
  const char* kClear = "\x1b[H\x1b[2J";
  bool stream_open = true;
  while (true) {
    bool advanced = false;
    while (std::getline(in, line)) {
      apply_line(dash, line);
      advanced = true;
    }
    if (in.eof() && !from_stdin) {
      in.clear();  // a live file may still be growing
    } else if (in.eof()) {
      stream_open = false;  // pipe closed: producer is gone
    }
    if (advanced || !stream_open) {
      std::fputs(kClear, stdout);
      std::fputs(render(dash, width).c_str(), stdout);
      std::fflush(stdout);
    }
    if (dash.finished || !stream_open) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  if (dash.events == 0) {
    std::fprintf(stderr, "hpmtop: no progress or hpm.live.v1 events in %s\n",
                 path.c_str());
    return 1;
  }
  return 0;
}
