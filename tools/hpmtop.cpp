// hpmtop: terminal dashboard for hpmrun live streams.
//
// Tails a --progress-jsonl stream (file, or "-" for a pipe) carrying the
// interleaved progress + hpm.live.v1 events and renders per-worker run
// status, per-level miss-rate sparklines, the rolled-up batch totals and
// the EMA-based ETA.  Two modes:
//   * follow (default): re-render in place as events arrive, exit when the
//     stream's batch_finish event lands;
//   * --once: read the whole recorded stream, render the final frame to
//     stdout and exit — deterministic, so a fixture test pins the frame
//     byte for byte and CI can smoke the full hpmrun | hpmtop pipeline.
//
// Exit codes: 0 = rendered; 1 = stream held no recognizable events;
// 2 = usage error.  Unknown event types and malformed lines are skipped
// (counted), so newer producers never break an older hpmtop.
//
//   hpmrun --workload tomcatv,swim --tool sample --jobs 4 ...
//     ... --progress-jsonl /dev/stderr --live 2>&1 >/dev/null | hpmtop -
//   hpmtop recorded-stream.jsonl --once
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/json_export.hpp"
#include "util/cli.hpp"

namespace {

using hpm::harness::JsonValue;

constexpr const char* kUsage =
    "usage: hpmtop STREAM [--once] [--interval-ms N] [--width N]\n"
    "\n"
    "  STREAM            JSONL file from hpmrun --progress-jsonl --live,\n"
    "                    or '-' to read a pipe on stdin\n"
    "  --once            read to EOF, print the final frame, exit\n"
    "                    (deterministic; for CI and recorded streams)\n"
    "  --interval-ms N   follow-mode refresh interval (default 500)\n"
    "  --width N         sparkline width in samples (default 32)\n";

/// Per-level live state within one run.
struct LevelState {
  std::string name;
  std::vector<double> miss_rates;  ///< one EMA-smoothed rate per window
  double last_miss_rate = 0.0;
  double resident = 0.0;
  double resident_peak = 0.0;
};

struct RunState {
  std::string name;
  std::string status = "running";  ///< running | ok | retried | failed | ...
  unsigned worker = 0;             ///< last worker seen executing this run
  std::uint64_t windows = 0;
  std::vector<double> miss_rates;  ///< machine-tier rate per window
  double last_miss_rate = 0.0;
  double tool_share = 0.0;
  std::vector<LevelState> levels;
  bool finished = false;
  double total_miss_rate = 0.0;  ///< from run_total
};

struct Dashboard {
  // Stream-wide.
  std::uint64_t events = 0;       ///< recognized events
  std::uint64_t malformed = 0;    ///< skipped lines
  std::uint64_t every_refs = 0;   ///< live sampling period (stream_start)
  // Batch progress.
  std::size_t total = 0;
  std::size_t done = 0;
  unsigned jobs = 0;
  std::uint64_t retries = 0;
  double eta_seconds = 0.0;
  bool finished = false;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
  // Per-run and rollup.
  std::map<std::size_t, RunState> runs;            ///< keyed by index
  std::map<unsigned, std::string> worker_current;  ///< worker -> run name
  bool have_rollup = false;
  double rollup_refs = 0.0;
  double rollup_misses = 0.0;
  double rollup_miss_rate = 0.0;
  double rollup_interrupts = 0.0;
  double rollup_tool_share = 0.0;
};

double num_or(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* value = obj.find(key);
  return value != nullptr && value->kind() == JsonValue::Kind::kNumber
             ? value->number()
             : fallback;
}

std::string str_or(const JsonValue& obj, std::string_view key,
                   const std::string& fallback) {
  const JsonValue* value = obj.find(key);
  return value != nullptr && value->kind() == JsonValue::Kind::kString
             ? value->str()
             : fallback;
}

void apply_progress_event(Dashboard& dash, const JsonValue& obj,
                          const std::string& event) {
  if (event == "batch_start") {
    dash.total = static_cast<std::size_t>(num_or(obj, "total", 0));
    dash.done = static_cast<std::size_t>(num_or(obj, "resumed", 0));
    dash.jobs = static_cast<unsigned>(num_or(obj, "jobs", 0));
  } else if (event == "run_start") {
    const auto index = static_cast<std::size_t>(num_or(obj, "index", 0));
    RunState& run = dash.runs[index];
    run.name = str_or(obj, "name", run.name);
    run.worker = static_cast<unsigned>(num_or(obj, "worker", 0));
    dash.worker_current[run.worker] = run.name;
  } else if (event == "run_retry") {
    ++dash.retries;
  } else if (event == "run_finish") {
    const auto index = static_cast<std::size_t>(num_or(obj, "index", 0));
    RunState& run = dash.runs[index];
    run.name = str_or(obj, "name", run.name);
    run.finished = true;
    run.status = str_or(obj, "outcome", "ok");
    const auto worker = static_cast<unsigned>(num_or(obj, "worker", 0));
    auto current = dash.worker_current.find(worker);
    if (current != dash.worker_current.end() && current->second == run.name) {
      current->second.clear();
    }
    dash.done = static_cast<std::size_t>(num_or(obj, "done", dash.done));
    dash.total = static_cast<std::size_t>(num_or(obj, "total", dash.total));
    dash.eta_seconds = num_or(obj, "eta_seconds", 0.0);
  } else if (event == "batch_finish") {
    dash.finished = true;
    dash.failed = static_cast<std::size_t>(num_or(obj, "failed", 0));
    dash.retries = static_cast<std::uint64_t>(
        num_or(obj, "retries", static_cast<double>(dash.retries)));
    dash.wall_seconds = num_or(obj, "wall_seconds", 0.0);
    dash.eta_seconds = 0.0;
    for (auto& [worker, current] : dash.worker_current) current.clear();
  }
}

void apply_live_event(Dashboard& dash, const JsonValue& obj,
                      const std::string& event) {
  if (event == "stream_start") {
    dash.every_refs = static_cast<std::uint64_t>(num_or(obj, "every_refs", 0));
    return;
  }
  if (event == "batch_rollup") {
    dash.have_rollup = true;
    dash.rollup_refs = num_or(obj, "refs", 0.0);
    dash.rollup_misses = num_or(obj, "misses", 0.0);
    dash.rollup_miss_rate = num_or(obj, "miss_rate", 0.0);
    dash.rollup_interrupts = num_or(obj, "interrupts", 0.0);
    dash.rollup_tool_share = num_or(obj, "tool_share", 0.0);
    return;
  }
  const auto index = static_cast<std::size_t>(num_or(obj, "index", 0));
  RunState& run = dash.runs[index];
  run.name = str_or(obj, "name", run.name);
  if (event == "window") {
    const JsonValue* window = obj.find("window");
    run.windows = static_cast<std::uint64_t>(
        num_or(obj, "seq", static_cast<double>(run.windows + 1)));
    if (window != nullptr) {
      run.last_miss_rate = num_or(*window, "miss_rate", 0.0);
      run.tool_share = num_or(*window, "tool_share", 0.0);
      run.miss_rates.push_back(run.last_miss_rate);
    }
  } else if (event == "run_total") {
    run.windows = static_cast<std::uint64_t>(
        num_or(obj, "windows", static_cast<double>(run.windows)));
    run.total_miss_rate = num_or(obj, "miss_rate", 0.0);
    run.tool_share = num_or(obj, "tool_share", 0.0);
  } else {
    return;  // unknown hpm.live.v1 event: forward-compatible skip
  }
  const JsonValue* levels = obj.find("levels");
  if (levels == nullptr || levels->kind() != JsonValue::Kind::kArray) return;
  for (const JsonValue& level : levels->array()) {
    const std::string name = str_or(level, "name", "?");
    LevelState* state = nullptr;
    for (LevelState& existing : run.levels) {
      if (existing.name == name) {
        state = &existing;
        break;
      }
    }
    if (state == nullptr) {
      run.levels.push_back(LevelState{name, {}, 0.0, 0.0, 0.0});
      state = &run.levels.back();
    }
    state->last_miss_rate = num_or(level, "miss_rate", state->last_miss_rate);
    if (event == "window") state->miss_rates.push_back(state->last_miss_rate);
    state->resident = num_or(level, "resident", state->resident);
    state->resident_peak =
        num_or(level, "resident_peak", state->resident_peak);
  }
}

/// Feed one JSONL line into the dashboard; returns false when the line was
/// not a recognizable event.  Anything that is not a well-formed event
/// object — unparsable bytes, a non-object document, an object without an
/// "event" string, or an event whose payload blows up mid-apply (a line
/// truncated inside a string can still parse) — is counted as a bad line
/// and skipped; a garbage producer can degrade the dashboard but never
/// crash it.  Blank lines are ignored silently (streams legitimately end
/// with one).
bool apply_line(Dashboard& dash, const std::string& line) {
  if (line.empty()) return false;
  JsonValue obj;
  try {
    obj = JsonValue::parse(line);
  } catch (const std::exception&) {
    ++dash.malformed;
    return false;
  }
  if (obj.kind() != JsonValue::Kind::kObject) {
    ++dash.malformed;
    return false;
  }
  const JsonValue* type = obj.find("type");
  const std::string event = str_or(obj, "event", "");
  if (event.empty()) {
    ++dash.malformed;
    return false;
  }
  try {
    if (type != nullptr && type->kind() == JsonValue::Kind::kString &&
        type->str() == "hpm.live.v1") {
      apply_live_event(dash, obj, event);
    } else if (type == nullptr) {
      apply_progress_event(dash, obj, event);
    }
  } catch (const std::exception&) {
    ++dash.malformed;
    return false;
  }
  ++dash.events;
  return true;
}

/// ASCII sparkline over the last `width` samples, darkest glyph = the
/// series maximum (all-blank when the series is flat zero).
std::string sparkline(const std::vector<double>& series, std::size_t width) {
  static constexpr std::string_view kRamp = " .:-=+*#";
  const std::size_t n = std::min(series.size(), width);
  std::string out;
  out.reserve(n);
  const auto begin = series.end() - static_cast<std::ptrdiff_t>(n);
  double max_value = 0.0;
  for (auto it = begin; it != series.end(); ++it) {
    max_value = std::max(max_value, *it);
  }
  for (auto it = begin; it != series.end(); ++it) {
    if (max_value <= 0.0) {
      out += ' ';
      continue;
    }
    const auto bucket = static_cast<std::size_t>(
        *it / max_value * static_cast<double>(kRamp.size() - 1) + 0.5);
    out += kRamp[std::min(bucket, kRamp.size() - 1)];
  }
  return out;
}

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

/// Render the dashboard as plain text.  Deterministic for a fully recorded
/// stream: iteration orders are index/name-sorted and every number comes
/// from the stream, never from the clock.
std::string render(const Dashboard& dash, std::size_t width) {
  std::ostringstream out;
  out << "hpmtop — hpm.live.v1 stream\n";
  out << "runs " << dash.done << "/" << dash.total;
  out << "  failed " << dash.failed;
  out << "  retries " << dash.retries;
  if (dash.jobs > 0) out << "  jobs " << dash.jobs;
  if (dash.every_refs > 0) {
    out << "  window " << dash.every_refs << " refs";
  }
  if (dash.finished) {
    out << "  done";
    if (dash.wall_seconds > 0.0) {
      out << " in " << fmt("%.1fs", dash.wall_seconds);
    }
  } else if (dash.eta_seconds > 0.0) {
    out << "  eta " << fmt("%.1fs", dash.eta_seconds);
  }
  out << "\n";

  for (const auto& [index, run] : dash.runs) {
    out << "\n" << run.name << " [" << run.status << "]";
    if (run.windows > 0) {
      out << " " << run.windows
          << (run.windows == 1 ? " window" : " windows");
    }
    out << "\n";
    if (!run.miss_rates.empty()) {
      out << "  miss%  |" << sparkline(run.miss_rates, width) << "| last "
          << fmt("%.2f%%", run.last_miss_rate * 100.0);
      if (run.finished) {
        out << "  total " << fmt("%.2f%%", run.total_miss_rate * 100.0);
      }
      out << "  tool " << fmt("%.2f%%", run.tool_share * 100.0) << "\n";
    }
    for (const LevelState& level : run.levels) {
      out << "  " << level.name;
      for (std::size_t pad = level.name.size(); pad < 5; ++pad) out << ' ';
      out << "  |" << sparkline(level.miss_rates, width) << "| miss "
          << fmt("%.2f%%", level.last_miss_rate * 100.0) << "  resident "
          << fmt("%.0f", std::max(level.resident, level.resident_peak))
          << "\n";
    }
  }

  bool any_busy = false;
  for (const auto& [worker, current] : dash.worker_current) {
    if (!current.empty()) any_busy = true;
  }
  if (any_busy) {
    out << "\nworkers\n";
    for (const auto& [worker, current] : dash.worker_current) {
      out << "  w" << worker << "  "
          << (current.empty() ? "idle" : current.c_str()) << "\n";
    }
  }

  if (dash.have_rollup) {
    out << "\nbatch  refs " << fmt("%.0f", dash.rollup_refs) << "  misses "
        << fmt("%.0f", dash.rollup_misses) << "  miss "
        << fmt("%.2f%%", dash.rollup_miss_rate * 100.0) << "  interrupts "
        << fmt("%.0f", dash.rollup_interrupts) << "  tool "
        << fmt("%.2f%%", dash.rollup_tool_share * 100.0) << "\n";
  }

  // Data-quality footer: only when something was actually skipped, so
  // clean-stream frames (and their golden fixtures) are unchanged.
  if (dash.malformed > 0) {
    out << "\nbad lines: " << dash.malformed << "\n";
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  hpm::util::Cli cli(argc, argv,
                     {"once", "interval-ms", "width", "help"});
  if (!cli.ok()) {
    std::fprintf(stderr, "hpmtop: %s\n%s", cli.error().c_str(), kUsage);
    return 2;
  }
  if (cli.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (cli.positional().size() != 1) {
    std::fprintf(stderr, "hpmtop: expected exactly one STREAM argument\n%s",
                 kUsage);
    return 2;
  }
  const std::string path = cli.positional().front();
  const bool once = cli.get_bool("once", false);
  const auto interval_ms = cli.get_uint("interval-ms", 500);
  const auto width =
      static_cast<std::size_t>(std::max<std::uint64_t>(
          8, cli.get_uint("width", 32)));

  const bool from_stdin = path == "-";
  std::ifstream file;
  if (!from_stdin) {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "hpmtop: cannot open %s\n", path.c_str());
      return 2;
    }
  }
  std::istream& in = from_stdin ? std::cin : file;

  Dashboard dash;
  std::string line;

  if (once) {
    while (std::getline(in, line)) apply_line(dash, line);
    if (dash.events == 0) {
      std::fprintf(stderr, "hpmtop: no progress or hpm.live.v1 events in %s\n",
                   path.c_str());
      return 1;
    }
    std::fputs(render(dash, width).c_str(), stdout);
    return 0;
  }

  // Follow mode: drain available lines, render, repeat until the stream's
  // batch_finish arrives (or a pipe closes).  Frames repaint in place with
  // an ANSI home+clear; the final frame is left on screen.
  const char* kClear = "\x1b[H\x1b[2J";
  bool stream_open = true;
  while (true) {
    bool advanced = false;
    while (std::getline(in, line)) {
      apply_line(dash, line);
      advanced = true;
    }
    if (in.eof() && !from_stdin) {
      in.clear();  // a live file may still be growing
    } else if (in.eof()) {
      stream_open = false;  // pipe closed: producer is gone
    }
    if (advanced || !stream_open) {
      std::fputs(kClear, stdout);
      std::fputs(render(dash, width).c_str(), stdout);
      std::fflush(stdout);
    }
    if (dash.finished || !stream_open) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  if (dash.events == 0) {
    std::fprintf(stderr, "hpmtop: no progress or hpm.live.v1 events in %s\n",
                 path.c_str());
    return 1;
  }
  return 0;
}
