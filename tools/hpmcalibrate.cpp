// hpmcalibrate — counter-driven model refutation and self-calibration.
//
// Reads an observed counter profile (an hpm.batch.v2/v3 document from
// hpmrun, real or fault-perturbed), replays its workloads under a
// candidate space of machine models (hierarchy presets/specs crossed with
// miss penalties, plus optional greedy refinement), and reports which
// candidates are CONSISTENT with the observed counters and which are
// REFUTED — and by which metric.  An unexplainable profile (every
// candidate refuted) flags perturbed counters or a machine outside the
// search space.
//
//   hpmcalibrate observed.json
//   hpmcalibrate observed.json --specs paper,2level,3level --refine 2
//   hpmcalibrate observed.json --json report.json --html report.html
//
// The search is deterministic: output is byte-identical at any --jobs.
// Exit codes: 0 profile explained, 1 unexplainable, 2 usage/input errors.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/document.hpp"
#include "calibrate/candidates.hpp"
#include "calibrate/model_search.hpp"
#include "calibrate/report.hpp"
#include "util/cli.hpp"

namespace {

using namespace hpm;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "hpmcalibrate: %s\n\n", error);
  std::fputs(
      "usage: hpmcalibrate <observed.json> [options]\n"
      "\ncandidate space:\n"
      "  --specs LIST      comma list of hierarchy presets\n"
      "                    (paper|2level|3level) and/or explicit specs\n"
      "                    NAME:SIZE[:LINE[:ASSOC]][+...], innermost first;\n"
      "                    '+' separates levels inside one candidate\n"
      "                    (default: paper,2level,3level)\n"
      "  --penalties LIST  comma list of miss penalties, cycles\n"
      "                    (default: 25,50,100)\n"
      "  --refine N        greedy refinement rounds beyond the grid\n"
      "                    (default 1; 0 = grid only)\n"
      "  --refine-top N    best candidates seeding each round (default 3)\n"
      "\nreplay (tool parameters must match the observed sweep's;\n"
      " defaults are hpmrun's):\n"
      "  --period N        sampling period                (default 10000)\n"
      "  --n N             search counters/regions        (default 10)\n"
      "  --interval N      search initial interval, cycles (default 1e6)\n"
      "  --max-cycles N    abort a replay after N simulated cycles\n"
      "  --jobs N          worker threads (default 1; 0 = all cores);\n"
      "                    affects wall-clock only, never the report\n"
      "\ntolerances (docs/calibration.md):\n"
      "  --share-tol P     per-object miss share, points  (default 1.0)\n"
      "  --miss-tol R      PMU miss count, relative       (default 0.02)\n"
      "  --cycles-tol R    total cycles, relative         (default 0.02)\n"
      "  --level-tol P     per-level miss rate, points    (default 1.0)\n"
      "  --top K           ground-truth objects per run   (default 10)\n"
      "\noutput:\n"
      "  --json[=FILE]     hpm.calibrate.v1 JSON (stdout when no FILE)\n"
      "  --html FILE       self-contained HTML explanation report\n"
      "  --title TEXT      report title (default: hpmcalibrate)\n"
      "  --progress        per-replay progress lines on stderr\n"
      "\nexit: 0 = explained, 1 = unexplainable, 2 = usage/input error\n",
      error != nullptr ? stderr : stdout);
  return error != nullptr ? 2 : 0;
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The --specs grammar uses '+' between the levels of one candidate (the
/// comma already separates candidates); translate to the core grammar.
std::string plus_to_comma(std::string spec) {
  for (char& c : spec) {
    if (c == '+') c = ',';
  }
  return spec;
}

bool parse_penalties(const std::string& list, std::vector<sim::Cycles>& out) {
  for (const std::string& token : split_list(list)) {
    if (token.empty() || token.find_first_not_of("0123456789") !=
                             std::string::npos) {
      return false;
    }
    const unsigned long long value = std::stoull(token);
    if (value == 0) return false;
    out.push_back(static_cast<sim::Cycles>(value));
  }
  return !out.empty();
}

bool open_output(std::ofstream& out, const std::string& path) {
  out.open(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "hpmcalibrate: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(
      argc, argv,
      {"help", "specs", "penalties", "refine", "refine-top", "period", "n",
       "interval", "max-cycles", "jobs", "share-tol", "miss-tol", "cycles-tol",
       "level-tol", "top", "json", "html", "title", "progress"});
  if (!cli.ok()) return usage(cli.error().c_str());
  if (cli.has("help")) return usage(nullptr);
  if (cli.positional().empty()) return usage("missing observed batch document");
  if (cli.positional().size() != 1) {
    return usage("exactly one observed batch document expected");
  }

  // Candidate space.
  std::vector<std::string> specs;
  for (const std::string& spec : split_list(cli.get("specs", ""))) {
    specs.push_back(plus_to_comma(spec));
  }
  std::vector<sim::Cycles> penalties;
  const std::string penalties_list = cli.get("penalties", "");
  if (!penalties_list.empty() && !parse_penalties(penalties_list, penalties)) {
    return usage("--penalties must be a comma list of positive integers");
  }
  std::vector<calibrate::Candidate> grid;
  try {
    grid = calibrate::candidate_grid(specs, penalties);
  } catch (const std::exception& e) {
    return usage(e.what());
  }

  // Search options.
  calibrate::ModelSearchOptions options;
  options.jobs = static_cast<unsigned>(cli.get_uint("jobs", 1));
  options.refine_rounds = cli.get_uint("refine", 1);
  options.refine_top = cli.get_uint("refine-top", 3);
  options.tolerances.share_points = cli.get_double("share-tol", 1.0);
  options.tolerances.miss_rel = cli.get_double("miss-tol", 0.02);
  options.tolerances.cycles_rel = cli.get_double("cycles-tol", 0.02);
  options.tolerances.level_points = cli.get_double("level-tol", 1.0);
  options.tolerances.top_k = cli.get_uint("top", 10);
  options.base.sampler.period = cli.get_uint("period", 10'000);
  options.base.search.n = static_cast<unsigned>(cli.get_uint("n", 10));
  options.base.search.initial_interval = cli.get_uint("interval", 1'000'000);
  options.base.machine.max_cycles = cli.get_uint("max-cycles", 0);
  if (cli.get_bool("progress", false)) {
    options.on_progress = [](std::size_t done, std::size_t total,
                             const harness::BatchItem& item) {
      std::fprintf(stderr, "[%zu/%zu] %s (%.3fs)%s%s\n", done, total,
                   item.spec.name.c_str(), item.wall_seconds,
                   item.ok ? "" : " FAILED: ", item.ok ? "" : item.error.c_str());
    };
  }

  // Load, search, report.
  calibrate::CalibrationResult result;
  try {
    const harness::BatchResult observed =
        analysis::load_batch_file(cli.positional()[0]);
    result = calibrate::calibrate(observed, grid, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpmcalibrate: %s\n", e.what());
    return 2;
  }

  calibrate::ReportOptions report_options;
  report_options.title = cli.get("title", "hpmcalibrate");
  report_options.include_build = true;  // CLI documents carry provenance

  const std::string html_path = cli.get("html", "");
  if (!html_path.empty()) {
    std::ofstream html;
    if (!open_output(html, html_path)) return 2;
    calibrate::render_html(html, result, report_options);
    std::fprintf(stderr, "wrote %s (%zu candidates)\n", html_path.c_str(),
                 result.ranked.size());
  }

  if (cli.has("json")) {
    const std::string json_path = cli.get("json", "");
    if (json_path.empty() || json_path == "true") {
      calibrate::export_json(std::cout, result, report_options);
    } else {
      std::ofstream json;
      if (!open_output(json, json_path)) return 2;
      calibrate::export_json(json, result, report_options);
      std::fprintf(stderr, "wrote %s (%zu candidates)\n", json_path.c_str(),
                   result.ranked.size());
    }
  } else {
    std::fputs(calibrate::calibration_table(result).c_str(), stdout);
  }

  return result.explained ? 0 : 1;
}
