// hpmreport: read-side companion to hpmrun.
//
// Ingests the JSON artifacts the harness already writes (hpm.batch.v1/v2
// sweeps, hpm.metrics.v1 telemetry) and turns them into human- and
// CI-facing reports:
//
//   hpmreport scoreboard batch.json      accuracy scoreboard (table / JSON)
//   hpmreport diff old.json new.json     run-to-run regression gate
//   hpmreport html batch.json            self-contained HTML report
//
// Exit codes: 0 success (diff: no regressions), 1 diff found regressions,
// 2 usage or input errors.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diff.hpp"
#include "analysis/document.hpp"
#include "analysis/html_report.hpp"
#include "analysis/scoreboard.hpp"
#include "util/cli.hpp"

namespace {

using namespace hpm;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "hpmreport: %s\n\n", error);
  std::fputs(
      "usage: hpmreport <command> [options]\n"
      "\n"
      "commands:\n"
      "  scoreboard <batch.json>    score estimated profiles against exact\n"
      "    --top=N                  ground-truth objects per run (default 10)\n"
      "    --min-percent=P          ignore objects below P% share (default 0)\n"
      "    --json[=FILE]            hpm.analysis.v1 JSON instead of a table\n"
      "    --csv=FILE               also write the table as CSV\n"
      "\n"
      "  diff <old.json> <new.json> compare two sweeps, gate on regressions\n"
      "    --rel-tol=R              relative tolerance on counters (default 0)\n"
      "    --percent-tol=P          tolerance on miss shares, points (default 0)\n"
      "    exit 0 = no regressions, 1 = regressions found\n"
      "\n"
      "  html <batch.json>          self-contained HTML report\n"
      "    --metrics=FILE           hpm.metrics.v1 companion (sparklines)\n"
      "    --out=FILE               output path (default: stdout)\n"
      "    --title=TEXT             report title\n"
      "    --top=N                  objects charted per run (default 10)\n",
      error != nullptr ? stderr : stdout);
  return error != nullptr ? 2 : 0;
}

/// Open `path` for writing, or fail loudly with exit-code semantics left
/// to the caller.
bool open_output(std::ofstream& out, const std::string& path) {
  out.open(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "hpmreport: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  return true;
}

int cmd_scoreboard(const util::Cli& cli) {
  if (cli.positional().size() != 2) {
    return usage("scoreboard takes exactly one batch document");
  }
  analysis::ScoreboardOptions options;
  options.top_k = cli.get_uint("top", 10);
  options.min_percent = cli.get_double("min-percent", 0.0);
  const harness::BatchResult batch =
      analysis::load_batch_file(cli.positional()[1]);
  const analysis::Scoreboard scoreboard =
      analysis::score_batch(batch, options);

  const std::string csv_path = cli.get("csv", "");
  if (!csv_path.empty()) {
    std::ofstream csv;
    if (!open_output(csv, csv_path)) return 2;
    analysis::scoreboard_table(scoreboard).write_csv(csv);
  }
  if (cli.has("json")) {
    const std::string json_path = cli.get("json", "");
    if (json_path.empty() || json_path == "true") {
      analysis::export_json(std::cout, scoreboard);
    } else {
      std::ofstream json;
      if (!open_output(json, json_path)) return 2;
      analysis::export_json(json, scoreboard);
    }
  } else {
    analysis::scoreboard_table(scoreboard).render(std::cout);
    if (scoreboard.rows.empty()) {
      std::fputs("no scoreable runs (need estimated + exact profiles)\n",
                 stdout);
    }
  }
  return 0;
}

int cmd_diff(const util::Cli& cli) {
  if (cli.positional().size() != 3) {
    return usage("diff takes exactly two batch documents");
  }
  analysis::DiffOptions options;
  options.count_rel_tol = cli.get_double("rel-tol", 0.0);
  options.percent_abs_tol = cli.get_double("percent-tol", 0.0);
  const harness::BatchResult older =
      analysis::load_batch_file(cli.positional()[1]);
  const harness::BatchResult newer =
      analysis::load_batch_file(cli.positional()[2]);
  const analysis::DiffResult diff =
      analysis::diff_batches(older, newer, options);

  if (diff.changed.empty() && diff.only_old.empty() &&
      diff.only_new.empty()) {
    std::printf("identical: %zu runs, %zu metrics compared\n",
                diff.runs_compared, diff.metrics_compared);
    return 0;
  }
  analysis::diff_table(diff).render(std::cout);
  std::printf("%zu runs, %zu metrics compared, %zu changed, %zu regressions\n",
              diff.runs_compared, diff.metrics_compared, diff.changed.size(),
              diff.regressions);
  return diff.clean() ? 0 : 1;
}

int cmd_html(const util::Cli& cli) {
  if (cli.positional().size() != 2) {
    return usage("html takes exactly one batch document");
  }
  const harness::BatchResult batch =
      analysis::load_batch_file(cli.positional()[1]);

  harness::MetricsDocument metrics;
  const harness::MetricsDocument* metrics_ptr = nullptr;
  const std::string metrics_path = cli.get("metrics", "");
  if (!metrics_path.empty()) {
    metrics = analysis::load_metrics_file(metrics_path);
    metrics_ptr = &metrics;
  }

  analysis::HtmlOptions options;
  options.title = cli.get("title", "hpmreport");
  options.top_k = cli.get_uint("top", 10);
  const analysis::Scoreboard scoreboard = analysis::score_batch(
      batch, {.top_k = options.top_k, .min_percent = 0.0});

  std::ostringstream body;
  analysis::render_html(body, batch, &scoreboard, metrics_ptr, options);

  const std::string out_path = cli.get("out", "");
  if (out_path.empty()) {
    std::cout << body.str();
  } else {
    std::ofstream out;
    if (!open_output(out, out_path)) return 2;
    out << body.str();
    std::fprintf(stderr, "wrote %s (%zu runs)\n", out_path.c_str(),
                 batch.items.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      {"help", "top", "min-percent", "json", "csv", "rel-tol",
                       "percent-tol", "metrics", "out", "title"});
  if (!cli.ok()) return usage(cli.error().c_str());
  if (cli.has("help") || cli.positional().empty()) {
    return usage(cli.has("help") ? nullptr : "missing command");
  }
  const std::string& command = cli.positional()[0];
  try {
    if (command == "scoreboard") return cmd_scoreboard(cli);
    if (command == "diff") return cmd_diff(cli);
    if (command == "html") return cmd_html(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpmreport: %s\n", e.what());
    return 2;
  }
  return usage(("unknown command '" + command + "'").c_str());
}
