// hpmrun — run workloads under measurement configurations and print what
// the paper's tool would: ranked bottleneck objects, overhead, and
// (optionally) the per-object miss time line.  Comma-separated --workload
// and --tool values form a sweep, executed on a worker pool (--jobs) with
// results reported in submission order; --out exports machine-readable
// JSON (schema hpm.batch.v2, hpm.batch.v3 when --levels configures a
// multi-level hierarchy, or hpm.batch.v4 when --cores simulates more than
// one core; see docs/parallel_sweeps.md, docs/memory_hierarchy.md and
// docs/multicore.md).
//
// Telemetry (see docs/telemetry.md): --trace-out writes a Chrome
// trace_event JSON of the run's structured events (sampler interrupts,
// n-way splits/backtracks, PMU overflows; batch rows per worker on
// sweeps), --metrics-out writes per-run counters/histograms and the phase
// timeline, and --timeline-every sets the timeline granularity.
//
//   hpmrun --workload tomcatv --tool search --n 10
//   hpmrun --workload compress --tool sample --period 10000 --series
//   hpmrun --workload tomcatv,swim,mgrid --tool sample,search --jobs 8
//   hpmrun --workload tomcatv --tool nway --trace-out t.json --metrics-out m.json
//   hpmrun --workload swim --tool search --record-trace swim.trace
//   hpmrun --workload applu --tool none --out results/applu.json
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "harness/batch.hpp"
#include "harness/json_export.hpp"
#include "harness/live_stream.hpp"
#include "harness/progress.hpp"
#include "telemetry/monitor_tree.hpp"
#include "telemetry/trace_sink.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hpm;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "hpmrun: %s\n\n", error);
  std::fputs(
      "usage: hpmrun [options]\n"
      "\nrun selection:\n"
      "  --workload LIST   comma list of\n"
      "                    tomcatv|swim|su2cor|mgrid|applu|compress|ijpeg\n"
      "  --tool LIST       comma list of none|sample|search|nway\n"
      "                    (default: search; nway is an alias for search)\n"
      "  --scale F         workload size factor          (default 1.0)\n"
      "  --iterations N    workload iterations           (default: per app)\n"
      "  --seed N          workload seed\n"
      "  --cache BYTES     measured cache size           (default 2 MiB)\n"
      "  --list-workloads  print available workload names and exit\n"
      "  --list-tools      print available tool names and exit\n"
      "\ncache hierarchy (docs/memory_hierarchy.md):\n"
      "  --levels SPEC     preset (paper|single|2level|3level) or a comma\n"
      "                    list NAME:SIZE[:LINE[:ASSOC]], innermost first;\n"
      "                    sizes accept k/m/g (e.g. L1:32k:64:2,LLC:2m)\n"
      "  --observe N       index of the level the PMU observes\n"
      "                    (0 = innermost; default: the last level)\n"
      "  --l1-size BYTES   deprecated aliases: prepend an L1 filter level\n"
      "  --l1-assoc N      in front of the measured cache (equivalent to a\n"
      "  --l1-line BYTES   2-level --levels spec; kept for old scripts)\n"
      "\nmulti-core (docs/multicore.md):\n"
      "  --cores N         simulated cores (1-64, default 1).  N > 1 splits\n"
      "                    the hierarchy into per-core private levels and a\n"
      "                    shared outer tier kept coherent by a MESI-style\n"
      "                    directory; tools run per core and the output adds\n"
      "                    per-core stats plus per-object coherence shares\n"
      "\ntool parameters:\n"
      "  --period N        sampling: misses per sample   (default 10000)\n"
      "  --policy P        sampling: fixed|prime|random  (default fixed)\n"
      "  --n N             search: counters/regions      (default 10)\n"
      "  --interval N      search: initial interval, cycles (default 1e6)\n"
      "\nsweep & output:\n"
      "  --jobs N          worker threads for sweeps (default 1; 0 = all cores)\n"
      "  --out FILE        export results as JSON (hpm.batch.v2, or .v3\n"
      "                    with per-level stats on multi-level hierarchies);\n"
      "                    pipe to hpmreport for scoreboards, diffs and HTML\n"
      "  --top K           rows to print                 (default 10)\n"
      "  --series          capture per-object miss time series\n"
      "  --record-trace FILE  record the binary reference trace for replay\n"
      "                    (single run only)\n"
      "  --no-timing       omit wall-clock fields from JSON exports\n"
      "\nlive progress (stderr; never touches exported JSON):\n"
      "  --progress        one overwritten status line: done/total, per-worker\n"
      "                    current run, retries, EMA-based ETA\n"
      "  --progress-jsonl FILE  machine-readable event stream, one JSON\n"
      "                    object per line (batch/run start/retry/finish)\n"
      "  --live            interleave hpm.live.v1 monitor-tree snapshots\n"
      "                    (per-run window rates, per-level miss rates,\n"
      "                    batch rollup) into the --progress-jsonl stream;\n"
      "                    tail it with hpmtop (docs/live_monitoring.md)\n"
      "  --live-every N    live sampling period in app references\n"
      "                    (default 250000; implies --live)\n"
      "  --live-metrics FILE  write the end-of-run monitor-tree rollup as\n"
      "                    an OpenMetrics text exposition\n"
      "\ntelemetry (docs/telemetry.md):\n"
      "  --trace-out FILE  write a Chrome trace_event JSON of telemetry\n"
      "                    events (open in chrome://tracing or Perfetto)\n"
      "  --metrics-out FILE  write per-run telemetry metrics + phase\n"
      "                    timeline as JSON (hpm.metrics.v1)\n"
      "  --timeline-every N  phase-timeline snapshot interval in cycles\n"
      "                    (default 1e6 when telemetry is on; 0 disables)\n"
      "\nfault injection (docs/fault_injection.md):\n"
      "  --skid N          deliver overflow interrupts N app refs late\n"
      "  --drop-rate P     drop overflow interrupts with probability P\n"
      "  --jitter-rate P   jitter counter reads with probability P\n"
      "  --jitter-magnitude N  max read jitter (counts, default 0)\n"
      "  --saturate N      saturate counter reads at N (0 = off)\n"
      "  --reprogram-delay N  apply base/bounds writes N misses late\n"
      "  --fault-seed N    PRNG seed for probabilistic faults\n"
      "  --watchdog N      sampler dropped-interrupt watchdog interval,\n"
      "                    cycles (default: auto when --drop-rate > 0)\n"
      "\nresilience (docs/fault_injection.md):\n"
      "  --max-cycles N    abort a run after N simulated cycles\n"
      "  --wall-budget S   abort a run after S wall-clock seconds\n"
      "  --retries N       retry transient failures up to N more times\n"
      "  --checkpoint FILE journal completed runs (hpm.checkpoint.v1)\n"
      "  --checkpoint-every N  flush the journal every N runs (default 1)\n"
      "  --resume FILE     skip runs already completed in a journal\n"
      "                    (continues journaling to the same file)\n",
      error != nullptr ? stderr : stdout);
  return error != nullptr ? 2 : 0;
}

/// SIGINT/SIGTERM on a checkpointed sweep: the handler only flips this
/// flag; the batch runner skips queued-but-unstarted runs (they are not
/// journaled, so --resume re-runs exactly them), in-flight runs finish and
/// are journaled, and main exits 3 with a resume hint.
std::atomic<bool> g_interrupted{false};

void on_interrupt(int) { g_interrupted.store(true, std::memory_order_relaxed); }

/// Probe an output path before any run starts: a long sweep must fail in
/// the first millisecond, not at export time, when a directory is missing
/// or read-only.  Append mode creates a missing file but never truncates
/// an existing one.
bool probe_writable(const std::string& path) {
  if (path.empty()) return true;
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    std::fprintf(stderr, "hpmrun: cannot open %s for writing\n", path.c_str());
    return false;
  }
  return true;
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Detailed single-run rendering — the classic hpmrun output.
void print_run(const harness::RunSpec& spec, const harness::RunResult& result,
               std::size_t top_k) {
  const std::string tool(harness::tool_kind_name(spec.config.tool));
  util::Table table = core::make_comparison_table("workload", {tool});
  const auto actual = result.actual.filtered(0.01);
  core::append_comparison_rows(table, {.label = spec.workload,
                                       .actual = &actual,
                                       .estimates = {&result.estimated},
                                       .top_k = top_k,
                                       .precision = 2});
  std::printf("workload: %s   tool: %s\n", spec.workload.c_str(),
              tool.c_str());
  table.render(std::cout);

  const auto& s = result.stats;
  std::printf(
      "\nrefs: %llu   misses: %llu (%.0f per Mcycle)   cycles: %llu\n",
      static_cast<unsigned long long>(s.app_refs),
      static_cast<unsigned long long>(s.app_misses),
      static_cast<double>(s.app_misses) * 1e6 /
          static_cast<double>(s.total_cycles()),
      static_cast<unsigned long long>(s.total_cycles()));
  if (spec.config.tool != harness::ToolKind::kNone) {
    std::printf("interrupts: %llu   tool cycles: %llu   overhead: %.4f%%\n",
                static_cast<unsigned long long>(s.interrupts),
                static_cast<unsigned long long>(s.tool_cycles),
                100.0 * static_cast<double>(s.tool_cycles) /
                    static_cast<double>(s.total_cycles()));
  }
  if (spec.config.tool == harness::ToolKind::kSearch) {
    std::printf("search: %s, %u iterations, %u splits, %u continuations\n",
                result.search_done ? "converged" : "incomplete",
                result.search_stats.iterations, result.search_stats.splits,
                result.search_stats.continuations);
  }
  if (spec.config.tool == harness::ToolKind::kSampler) {
    std::printf("samples: %llu\n",
                static_cast<unsigned long long>(result.samples));
  }

  if (!result.levels.empty()) {
    std::puts("\ncache hierarchy (* = level the PMU observes):");
    for (std::size_t i = 0; i < result.levels.size(); ++i) {
      const auto& level = result.levels[i];
      std::printf(
          "  %c %-6s %10llu B %2u-way  accesses: %-12llu misses: %-10llu "
          "(%5.2f%%)  writebacks: %llu\n",
          i == result.observe_level ? '*' : ' ', level.name.c_str(),
          static_cast<unsigned long long>(level.size_bytes),
          level.associativity,
          static_cast<unsigned long long>(level.accesses),
          static_cast<unsigned long long>(level.misses),
          100.0 * level.miss_rate(),
          static_cast<unsigned long long>(level.writebacks));
    }
  }

  if (!result.core_stats.empty()) {
    std::printf("\ncores (%zu):\n", result.core_stats.size());
    for (std::size_t c = 0; c < result.core_stats.size(); ++c) {
      const auto& core = result.core_stats[c];
      const double miss_pct =
          core.app_refs == 0 ? 0.0
                             : 100.0 * static_cast<double>(core.app_misses) /
                                   static_cast<double>(core.app_refs);
      std::printf(
          "  core%-2zu refs: %-12llu misses: %-10llu (%5.2f%%)  "
          "interrupts: %-6llu",
          c, static_cast<unsigned long long>(core.app_refs),
          static_cast<unsigned long long>(core.app_misses), miss_pct,
          static_cast<unsigned long long>(core.interrupts));
      if (c < result.core_samples.size()) {
        std::printf("  samples: %llu",
                    static_cast<unsigned long long>(result.core_samples[c]));
      }
      std::printf("\n");
    }

    std::printf("\ncoherence (%llu events, %llu samples):\n",
                static_cast<unsigned long long>(result.coherence_events),
                static_cast<unsigned long long>(result.coherence_samples));
    for (std::size_t i = 0; i < result.coherence.size(); ++i) {
      const auto& coh = result.coherence[i];
      if (coh.total() == 0) continue;
      const std::string name = i < result.levels.size()
                                   ? result.levels[i].name
                                   : "L" + std::to_string(i + 1);
      std::printf(
          "  %-6s invalidations: %-8llu upgrades: %-8llu sharing: %-8llu "
          "forced writebacks: %llu\n",
          name.c_str(),
          static_cast<unsigned long long>(coh.invalidations_received),
          static_cast<unsigned long long>(coh.upgrades),
          static_cast<unsigned long long>(coh.sharing_transitions),
          static_cast<unsigned long long>(coh.forced_writebacks));
    }

    if (!result.coherence_actual.empty()) {
      std::puts("\ncoherence attribution (per object):");
      util::Table coh_table = core::make_comparison_table("coherence", {tool});
      const auto coh_actual = result.coherence_actual.filtered(0.01);
      core::append_comparison_rows(
          coh_table, {.label = spec.workload,
                      .actual = &coh_actual,
                      .estimates = {&result.coherence_estimated},
                      .top_k = top_k,
                      .precision = 2});
      coh_table.render(std::cout);
    }
  }

  if (spec.config.series_interval > 0) {
    std::puts("\nmisses over time (per object, log sparkline):");
    static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    for (const auto& series : result.series) {
      if (series.misses_per_interval.empty()) continue;
      const auto peak = *std::max_element(series.misses_per_interval.begin(),
                                          series.misses_per_interval.end());
      if (peak == 0) continue;
      std::string line;
      for (auto v : series.misses_per_interval) {
        line += kLevels[v == 0 ? 0 : 1 + (7 * (v - 1)) / peak];
      }
      std::printf("  %-20s |%s|\n", series.name.c_str(), line.c_str());
    }
  }
}

/// Compact per-run rows for sweeps.
void print_sweep(const harness::BatchResult& batch) {
  util::Table table({"run", "refs", "misses", "cycles", "interrupts",
                     "top object", "actual %", "estimated %"},
                    {util::Align::kLeft, util::Align::kRight,
                     util::Align::kRight, util::Align::kRight,
                     util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight});
  for (const auto& item : batch.items) {
    table.row().cell(item.spec.name);
    if (!item.ok) {
      table.cell(std::string("error: ") + item.error);
      table.blank().blank().blank().blank().blank();
      continue;
    }
    const auto& s = item.result.stats;
    table.cell(s.app_refs).cell(s.app_misses).cell(s.total_cycles());
    table.cell(s.interrupts);
    const auto top = item.result.actual.top(1);
    if (!top.empty()) {
      const auto& row = top.rows().front();
      table.cell(row.name).cell(row.percent, 2);
      if (auto p = item.result.estimated.percent_of(row.name)) {
        table.cell(*p, 2);
      } else {
        table.blank();
      }
    } else {
      table.cell(std::string()).blank().blank();
    }
  }
  table.render(std::cout);
  std::printf("\nbatch: %zu runs (%zu failed)   jobs: %u   wall: %.3fs\n",
              batch.metrics.runs, batch.metrics.failed, batch.metrics.jobs,
              batch.metrics.wall_seconds);
}

bool write_json_file(const std::string& path,
                     const harness::BatchResult& batch,
                     const harness::JsonExportOptions& options) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "hpmrun: cannot open %s for writing\n", path.c_str());
    return false;
  }
  harness::export_json(out, batch, options);
  std::fprintf(stderr, "wrote %s (%zu runs)\n", path.c_str(),
               batch.items.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv,
                {"workload", "tool", "jobs", "out", "period", "policy", "n",
                 "interval", "scale", "iterations", "cache", "levels",
                 "observe", "cores", "l1-size", "l1-assoc", "l1-line",
                 "series", "top",
                 "trace-out", "metrics-out", "timeline-every", "record-trace",
                 "list-workloads", "list-tools", "seed", "help", "skid",
                 "drop-rate", "jitter-rate", "jitter-magnitude", "saturate",
                 "reprogram-delay", "fault-seed", "watchdog", "max-cycles",
                 "wall-budget", "retries", "checkpoint", "checkpoint-every",
                 "resume", "no-timing", "progress", "progress-jsonl", "live",
                 "live-every", "live-metrics"});
  if (!cli.ok()) return usage(cli.error().c_str());
  if (cli.has("help")) return usage(nullptr);

  if (cli.get_bool("list-workloads", false)) {
    for (const auto& name : workloads::paper_workload_names()) {
      std::puts(name.c_str());
    }
    std::puts("synthetic");
    return 0;
  }
  if (cli.get_bool("list-tools", false)) {
    std::puts("none");
    std::puts("sample");
    std::puts("search (alias: nway)");
    return 0;
  }

  const auto workload_names = split_list(cli.get("workload", "tomcatv"));
  const auto tool_names = split_list(cli.get("tool", "search"));
  if (workload_names.empty()) return usage("empty --workload list");
  if (tool_names.empty()) return usage("empty --tool list");
  // Validate names up front: a typo should fail fast with a clear message,
  // not surface as a mid-sweep per-run error.
  for (const auto& name : workload_names) {
    if (!workloads::is_workload_name(name)) {
      std::fprintf(stderr,
                   "hpmrun: unknown workload '%s' (--list-workloads shows "
                   "available names)\n",
                   name.c_str());
      return 2;
    }
  }
  for (const auto& tool : tool_names) {
    if (tool != "none" && tool != "sample" && tool != "search" &&
        tool != "nway") {
      std::fprintf(
          stderr,
          "hpmrun: unknown tool '%s' (--list-tools shows available names)\n",
          tool.c_str());
      return 2;
    }
  }

  harness::RunConfig base;
  base.machine = harness::paper_machine();
  base.machine.cache.size_bytes =
      cli.get_uint("cache", base.machine.cache.size_bytes);
  if (!base.machine.cache.valid()) {
    return usage("cache size must be a power of two");
  }

  // Cache hierarchy: --levels takes a preset name or the explicit
  // level-spec grammar; the --l1-* flags are deprecated aliases for the
  // historical 2-level filter setup (L1 in front of the --cache geometry).
  if (cli.has("levels")) {
    const std::string spec = cli.get("levels", "");
    try {
      if (!sim::hierarchy_preset(spec, base.machine.hierarchy)) {
        base.machine.hierarchy = sim::parse_hierarchy_spec(spec);
      }
    } catch (const std::exception& e) {
      return usage(e.what());
    }
  }
  if (cli.has("l1-size") || cli.has("l1-assoc") || cli.has("l1-line")) {
    if (cli.has("levels")) {
      return usage("--l1-* flags conflict with --levels (use --levels alone)");
    }
    // Deprecation notice goes to stderr so scripted stdout parsing (tables,
    // piped JSON) never sees it; cli_validation_test pins this split.
    std::fprintf(stderr,
                 "hpmrun: warning: --l1-size/--l1-assoc/--l1-line are "
                 "deprecated; use --levels L1:SIZE:LINE:ASSOC,... instead "
                 "(docs/memory_hierarchy.md)\n");
    sim::CacheConfig l1;
    l1.size_bytes = cli.get_uint("l1-size", 32 * 1024);
    l1.associativity =
        static_cast<std::uint32_t>(cli.get_uint("l1-assoc", 2));
    l1.line_size = static_cast<std::uint32_t>(
        cli.get_uint("l1-line", base.machine.cache.line_size));
    if (!l1.valid()) return usage("invalid --l1-* cache geometry");
    base.machine.hierarchy.levels = {{"L1", l1}, {"L2", base.machine.cache}};
  }
  if (cli.has("observe")) {
    // Strict parse: get_uint would silently map "abc" to the fallback and
    // wrap "-1" to the observe-last sentinel — both must be usage errors,
    // and the range check below must see the value the user actually typed.
    const std::string raw = cli.get("observe", "");
    if (raw.empty() ||
        raw.find_first_not_of("0123456789") != std::string::npos) {
      return usage(("--observe expects a level index, got '" + raw + "'")
                       .c_str());
    }
    try {
      base.machine.hierarchy.observe_level =
          static_cast<std::size_t>(std::stoull(raw));
    } catch (const std::exception&) {
      return usage(("--observe " + raw + " does not fit a level index")
                       .c_str());
    }
    const std::size_t num_levels =
        sim::resolve_levels(base.machine.hierarchy, base.machine.cache).size();
    if (base.machine.hierarchy.observe_level >= num_levels) {
      return usage(("--observe " + raw + " out of range: hierarchy has " +
                    std::to_string(num_levels) + " level(s)")
                       .c_str());
    }
  }
  if (cli.has("cores")) {
    // Strict parse, same rationale as --observe: a typo must be a usage
    // error, not a silent fallback to the single-core default.
    const std::string raw = cli.get("cores", "");
    if (raw.empty() ||
        raw.find_first_not_of("0123456789") != std::string::npos) {
      return usage(("--cores expects a core count, got '" + raw + "'")
                       .c_str());
    }
    unsigned long long cores = 0;
    try {
      cores = std::stoull(raw);
    } catch (const std::exception&) {
      return usage(("--cores " + raw + " does not fit a core count").c_str());
    }
    if (cores == 0 || cores > 64) {
      return usage(("--cores " + raw +
                    " out of range: 1-64 cores (directory sharer bitmask)")
                       .c_str());
    }
    base.machine.cores = static_cast<unsigned>(cores);
  }
  // Validate the resolved hierarchy up front: a bad spec is a usage error,
  // not a per-run failure surfaced mid-sweep.
  try {
    sim::MemoryHierarchy probe(
        sim::resolve_levels(base.machine.hierarchy, base.machine.cache),
        base.machine.hierarchy.observe_level, base.machine.cores,
        base.machine.shared_levels);
  } catch (const std::exception& e) {
    return usage(e.what());
  }

  if (cli.get_bool("series", false)) base.series_interval = 4'000'000;

  // Fault plan and per-run budgets (applied to every run of the sweep).
  base.machine.faults.skid_refs =
      static_cast<std::uint32_t>(cli.get_uint("skid", 0));
  base.machine.faults.drop_rate = cli.get_double("drop-rate", 0.0);
  base.machine.faults.jitter_rate = cli.get_double("jitter-rate", 0.0);
  base.machine.faults.jitter_magnitude =
      static_cast<std::uint32_t>(cli.get_uint("jitter-magnitude", 0));
  base.machine.faults.saturate_at = cli.get_uint("saturate", 0);
  base.machine.faults.reprogram_delay_misses =
      static_cast<std::uint32_t>(cli.get_uint("reprogram-delay", 0));
  base.machine.faults.seed =
      cli.get_uint("fault-seed", base.machine.faults.seed);
  try {
    sim::validate(base.machine.faults);
  } catch (const std::exception& e) {
    return usage(e.what());
  }
  base.machine.max_cycles = cli.get_uint("max-cycles", 0);
  base.machine.wall_budget_seconds = cli.get_double("wall-budget", 0.0);

  // Any telemetry output switches the in-simulator instrumentation on; with
  // none of these flags the run carries zero telemetry cost.
  const std::string trace_out = cli.get("trace-out", "");
  const std::string metrics_out = cli.get("metrics-out", "");
  if (!trace_out.empty() || !metrics_out.empty() ||
      cli.has("timeline-every")) {
    base.telemetry.enabled = true;
    base.telemetry.timeline_every = cli.get_uint("timeline-every", 1'000'000);
  }

  std::vector<std::pair<std::string, harness::RunConfig>> tools;
  for (const auto& tool : tool_names) {
    harness::RunConfig config = base;
    if (tool == "sample") {
      config.tool = harness::ToolKind::kSampler;
      config.sampler.period = cli.get_uint("period", 10'000);
      const std::string policy = cli.get("policy", "fixed");
      if (policy == "prime") {
        config.sampler.policy = core::PeriodPolicy::kPrime;
      } else if (policy == "random") {
        config.sampler.policy = core::PeriodPolicy::kPseudoRandom;
      } else if (policy != "fixed") {
        return usage("unknown --policy");
      }
      if (cli.has("watchdog")) {
        config.sampler.watchdog_interval = cli.get_uint("watchdog", 0);
      }
    } else if (tool == "search" || tool == "nway") {
      config.tool = harness::ToolKind::kSearch;
      config.search.n = static_cast<unsigned>(cli.get_uint("n", 10));
      config.search.initial_interval = cli.get_uint("interval", 1'000'000);
    } else if (tool != "none") {
      return usage("unknown --tool");
    }
    tools.emplace_back(tool, config);
  }

  workloads::WorkloadOptions options;
  options.scale = cli.get_double("scale", 1.0);
  options.iterations = cli.get_uint("iterations", 0);
  options.seed = cli.get_uint("seed", 0x5ca1ab1e);

  auto specs = harness::cross_specs(
      workload_names, tools, [&](const std::string&) { return options; });

  const std::string out_path = cli.get("out", "");
  const std::string record_trace = cli.get("record-trace", "");
  const auto top_k = static_cast<std::size_t>(cli.get_uint("top", 10));
  const std::string progress_jsonl = cli.get("progress-jsonl", "");
  const bool live_enabled =
      cli.get_bool("live", false) || cli.has("live-every");
  const std::uint64_t live_every = cli.get_uint("live-every", 250'000);
  const std::string live_metrics = cli.get("live-metrics", "");
  if (live_enabled && progress_jsonl.empty()) {
    return usage("--live requires --progress-jsonl FILE (the live stream "
                 "rides on the progress channel)");
  }
  if (live_enabled && live_every == 0) {
    return usage("--live-every must be a positive reference count");
  }

  // Every output path is probed before the first run starts; a bad path is
  // a usage error (exit 2), not a failure after hours of simulation.
  if (!probe_writable(out_path) || !probe_writable(metrics_out) ||
      !probe_writable(trace_out) || !probe_writable(progress_jsonl) ||
      !probe_writable(live_metrics)) {
    return 2;
  }

  if (!record_trace.empty()) {
    // Trace recording needs direct machine access; replicate the harness
    // wiring.
    if (specs.size() != 1) return usage("--record-trace needs a single run");
    const auto& spec = specs.front();
    std::unique_ptr<workloads::Workload> app;
    try {
      app = workloads::make_workload(spec.workload, spec.options);
    } catch (const std::exception& e) {
      return usage(e.what());
    }
    sim::Machine machine(spec.config.machine);
    objmap::ObjectMap map;
    map.attach(machine.address_space());
    core::ExactProfiler profiler(machine, map, spec.config.series_interval);
    profiler.start();
    trace::Recorder recorder(machine);
    app->setup(machine);
    recorder.start();
    app->run(machine);
    recorder.stop();
    profiler.stop();
    harness::RunResult result;
    result.actual = profiler.report();
    result.series = profiler.series();
    result.stats = machine.stats();
    recorder.trace().save_file(record_trace);
    std::printf("trace: %llu references -> %s\n",
                static_cast<unsigned long long>(
                    recorder.trace().reference_count()),
                record_trace.c_str());
    print_run(spec, result, top_k);
    return 0;
  }

  // Chrome trace sink: single runs stream their in-simulator events
  // (virtual-cycle timestamps); sweeps get one complete event per run on
  // the worker's row instead, since interleaving several machines' virtual
  // clocks in one trace would be meaningless.
  std::ofstream trace_stream;
  std::unique_ptr<telemetry::ChromeTraceSink> trace_sink;
  if (!trace_out.empty()) {
    trace_stream.open(trace_out);
    if (!trace_stream) {
      std::fprintf(stderr, "hpmrun: cannot open %s for writing\n",
                   trace_out.c_str());
      return 1;
    }
    trace_sink = std::make_unique<telemetry::ChromeTraceSink>(trace_stream);
    if (specs.size() == 1) {
      specs.front().config.trace_sink = trace_sink.get();
    }
  }

  harness::BatchRunner::Options batch_options;
  batch_options.jobs = static_cast<unsigned>(cli.get_uint("jobs", 1));
  if (trace_sink && specs.size() > 1) batch_options.sink = trace_sink.get();

  batch_options.resilience.retry.max_attempts =
      1 + static_cast<unsigned>(cli.get_uint("retries", 0));
  batch_options.resilience.checkpoint_every =
      static_cast<std::size_t>(cli.get_uint("checkpoint-every", 1));
  const std::string checkpoint_path = cli.get("checkpoint", "");
  const std::string resume_path = cli.get("resume", "");
  harness::CheckpointLoad resume_load;
  if (!resume_path.empty()) {
    try {
      resume_load = harness::load_checkpoint(resume_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hpmrun: %s\n", e.what());
      return 1;
    }
    batch_options.resume = &resume_load;
    // Keep journaling to the same file so a second interruption resumes
    // from an even later point.
    batch_options.resilience.checkpoint_path =
        checkpoint_path.empty() ? resume_path : checkpoint_path;
  } else if (!checkpoint_path.empty()) {
    batch_options.resilience.checkpoint_path = checkpoint_path;
  }
  // A checkpointed sweep is resumable, so Ctrl-C / SIGTERM should stop it
  // cleanly (journal flushed, distinct exit code) instead of killing the
  // process mid-write.  Without a journal the default disposition stands.
  if (!batch_options.resilience.checkpoint_path.empty()) {
    batch_options.cancel = &g_interrupted;
    std::signal(SIGINT, on_interrupt);
    std::signal(SIGTERM, on_interrupt);
  }
  // Live progress (opt-in, stderr/JSONL only): the reporter observes runs
  // but never feeds back into them, so exported documents stay
  // byte-identical with it on or off (batch_runner_test asserts this).
  const bool progress_line = cli.get_bool("progress", false);
  std::ofstream progress_stream;
  harness::ProgressOptions progress_options;
  if (progress_line) progress_options.line_out = &std::cerr;
  if (!progress_jsonl.empty()) {
    progress_stream.open(progress_jsonl);
    if (!progress_stream) {
      std::fprintf(stderr, "hpmrun: cannot open %s for writing\n",
                   progress_jsonl.c_str());
      return 2;
    }
    progress_options.jsonl_out = &progress_stream;
  }
  // Live streaming shares the progress channel through one line-atomic
  // sink, so progress and hpm.live.v1 events never tear mid-line.
  std::unique_ptr<harness::JsonlSink> jsonl_sink;
  if (progress_stream.is_open()) {
    jsonl_sink = std::make_unique<harness::JsonlSink>(progress_stream);
    progress_options.jsonl_sink = jsonl_sink.get();
  }
  std::unique_ptr<harness::LiveStreamer> live_streamer;
  if (live_enabled || !live_metrics.empty()) {
    harness::LiveStreamOptions live_options;
    live_options.sink = live_enabled ? jsonl_sink.get() : nullptr;
    live_options.every_refs = live_every;
    live_streamer = std::make_unique<harness::LiveStreamer>(live_options);
    if (live_enabled) {
      batch_options.live_sink = jsonl_sink.get();
      batch_options.live_every_refs = live_every;
    }
  }
  std::unique_ptr<harness::ProgressReporter> reporter;
  if (progress_options.line_out != nullptr ||
      progress_options.jsonl_out != nullptr) {
    reporter = std::make_unique<harness::ProgressReporter>(progress_options);
  }
  harness::ObserverList observers;
  observers.add(reporter.get());
  observers.add(live_streamer.get());
  if (reporter != nullptr || live_streamer != nullptr) {
    batch_options.observer = &observers;
  }
  if (specs.size() > 1 && !progress_line) {
    // Classic one-line-per-run log; suppressed under --progress, which
    // owns the stderr line.
    batch_options.on_progress = [](std::size_t done, std::size_t total,
                                   const harness::BatchItem& item) {
      std::fprintf(stderr, "[%zu/%zu] %s (%.3fs)%s%s\n", done, total,
                   item.spec.name.c_str(), item.wall_seconds,
                   item.ok ? "" : " FAILED: ",
                   item.ok ? "" : item.error.c_str());
    };
  }
  harness::BatchResult batch;
  try {
    batch = harness::BatchRunner(batch_options).run(specs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpmrun: %s\n", e.what());
    return 1;
  }

  if (specs.size() == 1) {
    const auto& item = batch.items.front();
    if (!item.ok) {
      // A run that started and then failed or timed out is a runtime
      // error, not a usage error — report the outcome, skip the flag dump.
      std::fprintf(stderr, "hpmrun: %s: %s (%s)\n", item.spec.name.c_str(),
                   item.error.c_str(),
                   std::string(harness::run_outcome_name(item.outcome))
                       .c_str());
      return 1;
    }
    print_run(item.spec, item.result, top_k);
  } else {
    print_sweep(batch);
  }

  harness::JsonExportOptions export_options;
  export_options.include_timing = !cli.get_bool("no-timing", false);

  if (!metrics_out.empty()) {
    std::ofstream metrics_stream(metrics_out);
    if (!metrics_stream) {
      std::fprintf(stderr, "hpmrun: cannot open %s for writing\n",
                   metrics_out.c_str());
      return 1;
    }
    telemetry::WallSpan span(trace_sink.get(), "export.metrics");
    harness::export_metrics_json(metrics_stream, batch, export_options);
    std::fprintf(stderr, "wrote %s (%zu runs)\n", metrics_out.c_str(),
                 batch.items.size());
  }

  {
    telemetry::WallSpan span(trace_sink.get(), "export.batch");
    if (!out_path.empty() &&
        !write_json_file(out_path, batch, export_options)) {
      return 1;
    }
  }

  if (live_streamer != nullptr && !live_metrics.empty()) {
    std::ofstream exposition(live_metrics);
    if (!exposition) {
      std::fprintf(stderr, "hpmrun: cannot open %s for writing\n",
                   live_metrics.c_str());
      return 1;
    }
    telemetry::write_openmetrics(exposition, live_streamer->batch_tree());
    std::fprintf(stderr, "wrote %s (OpenMetrics exposition)\n",
                 live_metrics.c_str());
  }

  // Closed after the exports so their self-profiling spans land in the
  // trace alongside the per-run simulate/collect spans.
  if (trace_sink) {
    trace_sink->close();
    std::fprintf(stderr, "wrote %s (Chrome trace; open in chrome://tracing)\n",
                 trace_out.c_str());
  }
  if (g_interrupted.load(std::memory_order_relaxed)) {
    // The journal and the progress/live streams were flushed above
    // (completed runs are journaled; cancelled ones are not, so a resume
    // re-runs exactly the skipped remainder).
    const std::string& journal = batch_options.resilience.checkpoint_path;
    const auto skipped = static_cast<std::size_t>(std::count_if(
        batch.items.begin(), batch.items.end(), [](const auto& item) {
          return item.outcome == harness::RunOutcome::kCancelled;
        }));
    std::fprintf(stderr,
                 "hpmrun: interrupted; %zu run(s) skipped, journal saved — "
                 "resume with --resume %s\n",
                 skipped, journal.c_str());
    return 3;
  }
  return batch.metrics.failed == 0 ? 0 : 1;
}
