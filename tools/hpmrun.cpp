// hpmrun — run any workload under any measurement configuration and print
// what the paper's tool would: ranked bottleneck objects, overhead, and
// (optionally) the per-object miss time line.
//
//   hpmrun --workload tomcatv --tool search --n 10
//   hpmrun --workload compress --tool sample --period 10000 --series
//   hpmrun --workload applu --tool none --series --csv
//   hpmrun --workload swim --tool search --trace-out swim.trace
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "harness/experiment.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace hpm;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "hpmrun: %s\n\n", error);
  std::fputs(
      "usage: hpmrun [options]\n"
      "  --workload NAME   tomcatv|swim|su2cor|mgrid|applu|compress|ijpeg\n"
      "  --tool KIND       none | sample | search        (default: search)\n"
      "  --period N        sampling: misses per sample   (default 10000)\n"
      "  --policy P        sampling: fixed|prime|random  (default fixed)\n"
      "  --n N             search: counters/regions      (default 10)\n"
      "  --interval N      search: initial interval, cycles (default 1e6)\n"
      "  --scale F         workload size factor          (default 1.0)\n"
      "  --iterations N    workload iterations           (default: per app)\n"
      "  --cache BYTES     measured cache size           (default 2 MiB)\n"
      "  --series          capture per-object miss time series\n"
      "  --top K           rows to print                 (default 10)\n"
      "  --trace-out FILE  record the reference trace to FILE\n"
      "  --seed N          workload seed\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv,
                {"workload", "tool", "period", "policy", "n", "interval",
                 "scale", "iterations", "cache", "series", "top",
                 "trace-out", "seed", "help"});
  if (!cli.ok()) return usage(cli.error().c_str());
  if (cli.has("help")) return usage(nullptr);

  const std::string workload = cli.get("workload", "tomcatv");
  const std::string tool = cli.get("tool", "search");

  harness::RunConfig config;
  config.machine = harness::paper_machine();
  config.machine.cache.size_bytes =
      cli.get_uint("cache", config.machine.cache.size_bytes);
  if (!config.machine.cache.valid()) {
    return usage("cache size must be a power of two");
  }
  if (tool == "sample") {
    config.tool = harness::ToolKind::kSampler;
    config.sampler.period = cli.get_uint("period", 10'000);
    const std::string policy = cli.get("policy", "fixed");
    if (policy == "prime") {
      config.sampler.policy = core::PeriodPolicy::kPrime;
    } else if (policy == "random") {
      config.sampler.policy = core::PeriodPolicy::kPseudoRandom;
    } else if (policy != "fixed") {
      return usage("unknown --policy");
    }
  } else if (tool == "search") {
    config.tool = harness::ToolKind::kSearch;
    config.search.n = static_cast<unsigned>(cli.get_uint("n", 10));
    config.search.initial_interval = cli.get_uint("interval", 1'000'000);
  } else if (tool != "none") {
    return usage("unknown --tool");
  }
  if (cli.get_bool("series", false)) config.series_interval = 4'000'000;

  workloads::WorkloadOptions options;
  options.scale = cli.get_double("scale", 1.0);
  options.iterations = cli.get_uint("iterations", 0);
  options.seed = cli.get_uint("seed", 0x5ca1ab1e);

  // Build the workload up front so an optional trace recorder can attach.
  std::unique_ptr<workloads::Workload> app;
  try {
    app = workloads::make_workload(workload, options);
  } catch (const std::exception& e) {
    return usage(e.what());
  }

  harness::RunResult result;
  const std::string trace_out = cli.get("trace-out", "");
  if (trace_out.empty()) {
    result = harness::run_experiment(config, *app);
  } else {
    // Tracing needs direct machine access; replicate the harness wiring.
    sim::Machine machine(config.machine);
    objmap::ObjectMap map;
    map.attach(machine.address_space());
    core::ExactProfiler profiler(machine, map, config.series_interval);
    profiler.start();
    trace::Recorder recorder(machine);
    app->setup(machine);
    recorder.start();
    app->run(machine);
    recorder.stop();
    profiler.stop();
    result.actual = profiler.report();
    result.series = profiler.series();
    result.stats = machine.stats();
    recorder.trace().save_file(trace_out);
    std::printf("trace: %llu references -> %s\n",
                static_cast<unsigned long long>(
                    recorder.trace().reference_count()),
                trace_out.c_str());
  }

  const auto top_k = static_cast<std::size_t>(cli.get_uint("top", 10));
  util::Table table({"rank", "object", "actual %", "estimated %"},
                    {util::Align::kRight, util::Align::kLeft,
                     util::Align::kRight, util::Align::kRight});
  const auto actual_top = result.actual.filtered(0.01).top(top_k);
  std::size_t rank = 0;
  for (const auto& row : actual_top.rows()) {
    table.row().cell(static_cast<std::uint64_t>(++rank)).cell(row.name);
    table.cell(row.percent, 2);
    if (auto p = result.estimated.percent_of(row.name)) {
      table.cell(*p, 2);
    } else {
      table.blank();
    }
  }
  std::printf("workload: %s   tool: %s\n", workload.c_str(), tool.c_str());
  table.render(std::cout);

  const auto& s = result.stats;
  std::printf(
      "\nrefs: %llu   misses: %llu (%.0f per Mcycle)   cycles: %llu\n",
      static_cast<unsigned long long>(s.app_refs),
      static_cast<unsigned long long>(s.app_misses),
      static_cast<double>(s.app_misses) * 1e6 /
          static_cast<double>(s.total_cycles()),
      static_cast<unsigned long long>(s.total_cycles()));
  if (config.tool != harness::ToolKind::kNone) {
    std::printf("interrupts: %llu   tool cycles: %llu   overhead: %.4f%%\n",
                static_cast<unsigned long long>(s.interrupts),
                static_cast<unsigned long long>(s.tool_cycles),
                100.0 * static_cast<double>(s.tool_cycles) /
                    static_cast<double>(s.total_cycles()));
  }
  if (config.tool == harness::ToolKind::kSearch) {
    std::printf("search: %s, %u iterations, %u splits, %u continuations\n",
                result.search_done ? "converged" : "incomplete",
                result.search_stats.iterations, result.search_stats.splits,
                result.search_stats.continuations);
  }
  if (config.tool == harness::ToolKind::kSampler) {
    std::printf("samples: %llu\n",
                static_cast<unsigned long long>(result.samples));
  }

  if (config.series_interval > 0) {
    std::puts("\nmisses over time (per object, log sparkline):");
    static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    for (const auto& series : result.series) {
      if (series.misses_per_interval.empty()) continue;
      const auto peak = *std::max_element(series.misses_per_interval.begin(),
                                          series.misses_per_interval.end());
      if (peak == 0) continue;
      std::string line;
      for (auto v : series.misses_per_interval) {
        line += kLevels[v == 0 ? 0 : 1 + (7 * (v - 1)) / peak];
      }
      std::printf("  %-20s |%s|\n", series.name.c_str(), line.c_str());
    }
  }
  return 0;
}
