// Live progress reporting for batch sweeps.
//
// ProgressReporter is a BatchObserver that renders what the runner is doing
// *while it runs*: a single overwritten status line for humans (runs
// completed/total, per-worker current item, retry count, EMA-smoothed ETA)
// and/or a machine-readable JSONL event stream, one compact JSON object per
// line, for dashboards and CI log scrapers.
//
// Strictly observability: the reporter writes to the streams it is given
// (conventionally stderr) and never touches batch results, so enabling it
// leaves every exported document byte-identical — the determinism tests
// assert exactly that.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "harness/batch.hpp"

namespace hpm::harness {

class JsonlSink;

struct ProgressOptions {
  /// Human status line, overwritten in place with '\r' (null disables).
  std::ostream* line_out = nullptr;
  /// JSONL event stream: batch_start / run_start / run_retry / run_finish /
  /// batch_finish, one object per line (null disables).
  std::ostream* jsonl_out = nullptr;
  /// Line-atomic sink shared with hpm.live.v1 streaming (see
  /// live_stream.hpp).  When set it takes precedence over jsonl_out, so
  /// progress and live events interleave per line on one channel.
  JsonlSink* jsonl_sink = nullptr;
  /// Smoothing factor for the per-run wall-time EMA behind the ETA;
  /// higher = more weight on the latest run.
  double ema_alpha = 0.3;
};

class ProgressReporter final : public BatchObserver {
 public:
  explicit ProgressReporter(ProgressOptions options);

  void on_batch_start(std::size_t total, std::size_t already_done,
                      unsigned jobs) override;
  void on_run_start(std::size_t index, const RunSpec& spec,
                    unsigned worker) override;
  void on_run_retry(std::size_t index, const RunSpec& spec, unsigned worker,
                    unsigned attempts, const std::string& error) override;
  void on_run_finish(std::size_t done, std::size_t total, std::size_t index,
                     const BatchItem& item, unsigned worker) override;
  void on_batch_finish(const BatchMetrics& metrics) override;

  /// EMA-based remaining-time estimate: mean run seconds * remaining /
  /// workers.  0 until the first run finishes.
  [[nodiscard]] double eta_seconds() const noexcept;
  [[nodiscard]] std::size_t retries() const noexcept { return retries_; }

 private:
  void emit_line();
  void emit_jsonl(const std::string& line);
  [[nodiscard]] bool jsonl_enabled() const noexcept {
    return options_.jsonl_sink != nullptr || options_.jsonl_out != nullptr;
  }

  ProgressOptions options_;
  std::size_t total_ = 0;
  std::size_t done_ = 0;
  std::size_t retries_ = 0;
  unsigned jobs_ = 1;
  double ema_seconds_ = 0.0;
  bool have_ema_ = false;
  std::size_t last_line_length_ = 0;
  /// Run name a worker is currently executing, indexed by the 1-based pool
  /// worker index (slot 0 = non-pool thread); empty = idle.
  std::vector<std::string> current_;
};

}  // namespace hpm::harness
