// Fixed-size worker pool for the batch experiment engine.
//
// Deliberately minimal: a bounded set of workers draining a FIFO task
// queue.  All ordering guarantees live one level up in BatchRunner (which
// writes results into pre-assigned slots), so the pool itself needs no
// futures, no task handles, and no completion ordering.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpm::harness {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least one).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  A task that throws no longer terminates the process:
  /// the worker captures the first escaping exception and keeps draining
  /// the queue; wait_idle() rethrows it.  Wrap fallible work anyway when a
  /// partial batch must survive (BatchRunner catches per-run exceptions
  /// itself).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing (queue empty
  /// AND no worker mid-task).  Rethrows the first exception that escaped a
  /// task since the last wait_idle(); the pool stays usable either way.
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// The worker count a `jobs` request resolves to (0 -> hardware).
  [[nodiscard]] static unsigned resolve_jobs(unsigned jobs) noexcept;

  /// 1-based index of the pool worker running the calling thread, or 0 when
  /// called from a thread that is not a pool worker.  Observability only
  /// (batch trace events label rows by worker) — results never depend on it.
  [[nodiscard]] static unsigned current_worker_index() noexcept;

 private:
  void worker_loop(unsigned index);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< tasks popped but not yet finished
  bool stopping_ = false;
  std::exception_ptr first_error_;  ///< first task exception since wait_idle
  std::vector<std::thread> workers_;
};

}  // namespace hpm::harness
