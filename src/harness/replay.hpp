// Observation replay: turn a parsed hpm.batch document back into runnable
// specs so the same workload points can be re-executed under a *different*
// machine model (the calibration search) or simply re-checked.
//
// A batch export carries, per item, everything needed to reconstruct the
// instruction stream — workload name, scale, iterations, seed, tool kind —
// but deliberately not the machine geometry (that is what calibration
// searches over) and not the tool parameters (period, n, interval), which
// callers supply; the defaults match hpmrun's.  Replays inherit the
// existing harness guarantees: shared-nothing Machines, determinism at any
// worker count, cooperative budgets and retries via BatchRunner options.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/batch.hpp"

namespace hpm::harness {

/// One replayable observation: the spec fields an hpm.batch item records,
/// plus the index of the item it came from.
struct ReplayPoint {
  std::string name;      ///< observed run name (reused as the replay name)
  std::string workload;  ///< factory name
  ToolKind tool = ToolKind::kNone;
  workloads::WorkloadOptions options{};
  /// Simulated cores of the observed run.  Unlike cache geometry the core
  /// count shapes the instruction stream (the sharing kernels interleave
  /// their slices per core), so it replays with the point, not the base.
  unsigned cores = 1;
  std::size_t item_index = 0;  ///< into the observed batch's items
};

/// Extract the replayable points of an observed batch, in document order:
/// every ok item whose workload factory exists.  Items that failed, or
/// whose workload this build does not know, are skipped (their indices are
/// returned via `skipped` when non-null) — a foreign document must degrade
/// to partial coverage, not throw.
[[nodiscard]] std::vector<ReplayPoint> replay_points(
    const BatchResult& observed, std::vector<std::size_t>* skipped = nullptr);

/// Build the spec that re-runs `point` under `base`'s machine model, tool
/// parameters and budgets.  Only the tool *kind* is taken from the point;
/// everything else (machine, sampler/search config, costs, resilience
/// knobs) comes from `base`, so a sweep over candidate machine models is a
/// sweep over `base.machine` with the points held fixed.
[[nodiscard]] RunSpec replay_spec(const ReplayPoint& point,
                                  const RunConfig& base);

}  // namespace hpm::harness
