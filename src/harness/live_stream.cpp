#include "harness/live_stream.hpp"

#include <sstream>

#include "harness/json_export.hpp"
#include "harness/provenance.hpp"
#include "sim/machine.hpp"

namespace hpm::harness {
namespace {

using telemetry::MonitorNode;
using telemetry::Reducer;

/// Declare the machine-tier metrics on `machine_node`.  Names are chosen so
/// the hierarchy-level children (accesses/misses/resident) roll up into the
/// machine node without colliding with the PMU-plane counters
/// (refs/pmu_misses): after a sample, machine.misses is the subtree sum of
/// level misses while machine.pmu_misses is what the simulated PMU saw.
void declare_machine_metrics(MonitorNode& machine_node) {
  machine_node.metric("refs", Reducer::kSum);
  machine_node.metric("pmu_misses", Reducer::kSum);
  machine_node.metric("interrupts", Reducer::kSum);
  machine_node.metric("cycles", Reducer::kSum);
  machine_node.metric("tool_cycles", Reducer::kSum);
  machine_node.ratio("miss_rate", "pmu_misses", "refs");
  machine_node.ratio("tool_share", "tool_cycles", "cycles");
  machine_node.ratio("int_per_mcycle", "interrupts", "cycles", 1e6);
}

void declare_level_metrics(MonitorNode& level_node) {
  level_node.metric("accesses", Reducer::kSum);
  level_node.metric("misses", Reducer::kSum);
  level_node.metric("resident", Reducer::kMax);
  level_node.ratio("level_miss_rate", "misses", "accesses");
}

/// Per-core tier (multi-core machines only).  The metric names deliberately
/// match the machine tier's PMU-plane names, so the rollup makes the core
/// subtree authoritative for the machine node — the per-core mirrors sum
/// exactly to the aggregate stats, so the machine-tier values are unchanged.
void declare_core_metrics(MonitorNode& core_node) {
  core_node.metric("refs", Reducer::kSum);
  core_node.metric("pmu_misses", Reducer::kSum);
  core_node.metric("interrupts", Reducer::kSum);
  core_node.metric("cycles", Reducer::kSum);
  core_node.metric("tool_cycles", Reducer::kSum);
  core_node.ratio("miss_rate", "pmu_misses", "refs");
}

/// Total MESI events across all levels of a multi-core hierarchy.
double total_coherence_events(const sim::Machine& machine) {
  std::uint64_t total = 0;
  for (const sim::CoherenceStats& level :
       machine.hierarchy().coherence_stats()) {
    total += level.total();
  }
  return static_cast<double>(total);
}

double metric_value(const MonitorNode& node, std::string_view name) {
  const MonitorNode::Metric* metric = node.find(name);
  return metric != nullptr ? metric->value : 0.0;
}

double metric_window(const MonitorNode& node, std::string_view name) {
  const MonitorNode::Metric* metric = node.find(name);
  return metric != nullptr ? metric->window : 0.0;
}

double safe_ratio(double num, double den) {
  return den != 0.0 ? num / den : 0.0;
}

}  // namespace

// -- LiveRunMonitor ----------------------------------------------------------

LiveRunMonitor::LiveRunMonitor(JsonlSink& sink, std::uint64_t every_refs,
                               std::size_t index, std::string name,
                               sim::Machine& machine)
    : sink_(sink),
      index_(index),
      name_(std::move(name)),
      tree_("run", "run") {
  MonitorNode& machine_node = tree_.root().child("machine", "machine");
  declare_machine_metrics(machine_node);
  for (std::size_t i = 0; i < machine.hierarchy().num_levels(); ++i) {
    declare_level_metrics(
        machine_node.child(machine.hierarchy().level_name(i), "level"));
  }
  if (machine.num_cores() > 1) {
    // The per-core tier the monitor-tree design reserved: one child per
    // simulated core plus a machine-level coherence counter.  Only built
    // for multi-core machines, so single-core streams are byte-identical.
    machine_node.metric("coh_events", Reducer::kSum);
    for (unsigned c = 0; c < machine.num_cores(); ++c) {
      declare_core_metrics(
          machine_node.child("core" + std::to_string(c), "core"));
    }
  }
  machine.set_refs_hook(every_refs,
                        [this, &machine](const sim::MachineStats& stats) {
                          on_tick(stats, machine);
                        });
}

void LiveRunMonitor::feed(const sim::MachineStats& stats,
                          sim::Machine& machine) {
  MonitorNode& machine_node = tree_.root().child("machine", "machine");
  machine_node.input("refs", static_cast<double>(stats.app_refs));
  machine_node.input("pmu_misses", static_cast<double>(stats.app_misses));
  machine_node.input("interrupts", static_cast<double>(stats.interrupts));
  machine_node.input("cycles", static_cast<double>(stats.total_cycles()));
  machine_node.input("tool_cycles", static_cast<double>(stats.tool_cycles));
  const auto levels = machine.hierarchy().snapshot();
  for (const sim::LevelSnapshot& level : levels) {
    MonitorNode& level_node = machine_node.child(level.name, "level");
    level_node.input("accesses", static_cast<double>(level.accesses));
    level_node.input("misses", static_cast<double>(level.misses));
    level_node.input("resident", static_cast<double>(level.resident_lines));
  }
  if (machine.num_cores() > 1) {
    machine_node.input("coh_events", total_coherence_events(machine));
    for (unsigned c = 0; c < machine.num_cores(); ++c) {
      const sim::MachineStats& core = machine.core_stats(c);
      MonitorNode& core_node =
          machine_node.child("core" + std::to_string(c), "core");
      core_node.input("refs", static_cast<double>(core.app_refs));
      core_node.input("pmu_misses", static_cast<double>(core.app_misses));
      core_node.input("interrupts", static_cast<double>(core.interrupts));
      core_node.input("cycles", static_cast<double>(core.total_cycles()));
      core_node.input("tool_cycles", static_cast<double>(core.tool_cycles));
    }
  }
  tree_.sample();
}

void LiveRunMonitor::on_tick(const sim::MachineStats& stats,
                             sim::Machine& machine) {
  feed(stats, machine);
  ++seq_;
  const MonitorNode& machine_node = *tree_.root().find_child("machine");
  std::ostringstream line;
  JsonWriter w(line, 0);
  w.begin_object();
  w.key("type").value("hpm.live.v1");
  w.key("event").value("window");
  w.key("index").value(static_cast<std::uint64_t>(index_));
  w.key("name").value(name_);
  w.key("seq").value(seq_);
  w.key("refs").value(stats.app_refs);
  w.key("cycles").value(stats.total_cycles());
  w.key("window").begin_object();
  w.key("refs").value(metric_window(machine_node, "refs"));
  w.key("misses").value(metric_window(machine_node, "pmu_misses"));
  w.key("miss_rate").value(metric_value(machine_node, "miss_rate"));
  w.key("interrupts").value(metric_window(machine_node, "interrupts"));
  w.key("int_per_mcycle").value(metric_value(machine_node, "int_per_mcycle"));
  w.key("tool_share").value(metric_value(machine_node, "tool_share"));
  w.end_object();
  w.key("levels").begin_array();
  for (const auto& level : machine_node.children()) {
    if (level->kind() != "level") continue;
    w.begin_object();
    w.key("name").value(level->name());
    w.key("misses").value(metric_window(*level, "misses"));
    w.key("miss_rate").value(metric_value(*level, "level_miss_rate"));
    w.key("resident").value(metric_window(*level, "resident"));
    w.key("resident_peak").value(metric_value(*level, "resident"));
    w.end_object();
  }
  w.end_array();
  if (machine.num_cores() > 1) {
    // Per-core window block (never present on single-core streams).
    w.key("coh_events").value(metric_window(machine_node, "coh_events"));
    w.key("cores").begin_array();
    for (const auto& core : machine_node.children()) {
      if (core->kind() != "core") continue;
      w.begin_object();
      w.key("name").value(core->name());
      w.key("refs").value(metric_window(*core, "refs"));
      w.key("misses").value(metric_window(*core, "pmu_misses"));
      w.key("miss_rate").value(metric_value(*core, "miss_rate"));
      w.key("interrupts").value(metric_window(*core, "interrupts"));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  sink_.write_line(line.str());
}

void LiveRunMonitor::finish(sim::Machine& machine) {
  machine.set_refs_hook(0, nullptr);
  feed(machine.stats(), machine);
  const MonitorNode& machine_node = *tree_.root().find_child("machine");
  const double refs = metric_value(machine_node, "refs");
  const double misses = metric_value(machine_node, "pmu_misses");
  const double cycles = metric_value(machine_node, "cycles");
  std::ostringstream line;
  JsonWriter w(line, 0);
  w.begin_object();
  w.key("type").value("hpm.live.v1");
  w.key("event").value("run_total");
  w.key("index").value(static_cast<std::uint64_t>(index_));
  w.key("name").value(name_);
  w.key("windows").value(seq_);
  w.key("refs").value(refs);
  w.key("misses").value(misses);
  w.key("miss_rate").value(safe_ratio(misses, refs));
  w.key("interrupts").value(metric_value(machine_node, "interrupts"));
  w.key("cycles").value(cycles);
  w.key("tool_share")
      .value(safe_ratio(metric_value(machine_node, "tool_cycles"), cycles));
  w.key("levels").begin_array();
  for (const auto& level : machine_node.children()) {
    if (level->kind() != "level") continue;
    const double accesses = metric_value(*level, "accesses");
    const double level_misses = metric_value(*level, "misses");
    w.begin_object();
    w.key("name").value(level->name());
    w.key("accesses").value(accesses);
    w.key("misses").value(level_misses);
    w.key("miss_rate").value(safe_ratio(level_misses, accesses));
    w.key("resident_peak").value(metric_value(*level, "resident"));
    w.end_object();
  }
  w.end_array();
  if (machine.num_cores() > 1) {
    // Final per-core totals (never present on single-core streams).
    w.key("coh_events").value(metric_value(machine_node, "coh_events"));
    w.key("cores").begin_array();
    for (const auto& core : machine_node.children()) {
      if (core->kind() != "core") continue;
      const double core_refs = metric_value(*core, "refs");
      const double core_misses = metric_value(*core, "pmu_misses");
      w.begin_object();
      w.key("name").value(core->name());
      w.key("refs").value(core_refs);
      w.key("misses").value(core_misses);
      w.key("miss_rate").value(safe_ratio(core_misses, core_refs));
      w.key("interrupts").value(metric_value(*core, "interrupts"));
      w.key("cycles").value(metric_value(*core, "cycles"));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  sink_.write_line(line.str());
}

// -- LiveStreamer ------------------------------------------------------------

LiveStreamer::LiveStreamer(LiveStreamOptions options)
    : options_(options) {}

void LiveStreamer::on_batch_start(std::size_t total,
                                  std::size_t already_done, unsigned jobs) {
  (void)already_done;
  (void)jobs;
  if (options_.sink == nullptr) return;
  std::ostringstream line;
  JsonWriter w(line, 0);
  w.begin_object();
  w.key("type").value("hpm.live.v1");
  w.key("event").value("stream_start");
  w.key("every_refs").value(options_.every_refs);
  w.key("total").value(static_cast<std::uint64_t>(total));
  write_meta(w, options_.include_build_meta);
  w.end_object();
  options_.sink->write_line(line.str());
}

void LiveStreamer::on_run_finish(std::size_t done, std::size_t total,
                                 std::size_t index, const BatchItem& item,
                                 unsigned worker) {
  (void)done;
  (void)total;
  (void)worker;
  RunTotals totals;
  totals.name = item.spec.name;
  totals.ok = item.ok;
  totals.stats = item.result.stats;
  totals.levels = item.result.levels;
  finished_[index] = std::move(totals);
}

void LiveStreamer::on_batch_finish(const BatchMetrics& metrics) {
  (void)metrics;
  // Build the batch tier in submission-index order (finished_ is keyed by
  // index), so the rollup tree — and the OpenMetrics exposition derived
  // from it — is identical at any --jobs.
  MonitorNode& root = tree_.root();
  root.ratio("miss_rate", "pmu_misses", "refs");
  root.ratio("tool_share", "tool_cycles", "cycles");
  for (const auto& [index, totals] : finished_) {
    std::string node_name = totals.name;
    if (root.find_child(node_name) != nullptr) {
      node_name += "#" + std::to_string(index);
    }
    MonitorNode& run_node = root.child(node_name, "run");
    run_node.metric("runs", Reducer::kSum);
    run_node.metric("failed", Reducer::kSum);
    run_node.metric("refs", Reducer::kSum);
    run_node.metric("pmu_misses", Reducer::kSum);
    run_node.metric("interrupts", Reducer::kSum);
    run_node.metric("cycles", Reducer::kSum);
    run_node.metric("tool_cycles", Reducer::kSum);
    run_node.input("runs", 1.0);
    run_node.input("failed", totals.ok ? 0.0 : 1.0);
    run_node.input("refs", static_cast<double>(totals.stats.app_refs));
    run_node.input("pmu_misses",
                   static_cast<double>(totals.stats.app_misses));
    run_node.input("interrupts",
                   static_cast<double>(totals.stats.interrupts));
    run_node.input("cycles",
                   static_cast<double>(totals.stats.total_cycles()));
    run_node.input("tool_cycles",
                   static_cast<double>(totals.stats.tool_cycles));
  }
  tree_.sample();
  if (options_.sink == nullptr) return;
  const double refs = metric_value(root, "refs");
  const double misses = metric_value(root, "pmu_misses");
  const double cycles = metric_value(root, "cycles");
  std::ostringstream line;
  JsonWriter w(line, 0);
  w.begin_object();
  w.key("type").value("hpm.live.v1");
  w.key("event").value("batch_rollup");
  w.key("runs").value(metric_value(root, "runs"));
  w.key("failed").value(metric_value(root, "failed"));
  w.key("refs").value(refs);
  w.key("misses").value(misses);
  w.key("miss_rate").value(safe_ratio(misses, refs));
  w.key("interrupts").value(metric_value(root, "interrupts"));
  w.key("cycles").value(cycles);
  w.key("tool_share")
      .value(safe_ratio(metric_value(root, "tool_cycles"), cycles));
  w.end_object();
  options_.sink->write_line(line.str());
}

// -- ObserverList ------------------------------------------------------------

void ObserverList::add(BatchObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

void ObserverList::on_batch_start(std::size_t total, std::size_t already_done,
                                  unsigned jobs) {
  for (BatchObserver* observer : observers_) {
    observer->on_batch_start(total, already_done, jobs);
  }
}

void ObserverList::on_run_start(std::size_t index, const RunSpec& spec,
                                unsigned worker) {
  for (BatchObserver* observer : observers_) {
    observer->on_run_start(index, spec, worker);
  }
}

void ObserverList::on_run_retry(std::size_t index, const RunSpec& spec,
                                unsigned worker, unsigned attempts,
                                const std::string& error) {
  for (BatchObserver* observer : observers_) {
    observer->on_run_retry(index, spec, worker, attempts, error);
  }
}

void ObserverList::on_run_finish(std::size_t done, std::size_t total,
                                 std::size_t index, const BatchItem& item,
                                 unsigned worker) {
  for (BatchObserver* observer : observers_) {
    observer->on_run_finish(done, total, index, item, worker);
  }
}

void ObserverList::on_batch_finish(const BatchMetrics& metrics) {
  for (BatchObserver* observer : observers_) {
    observer->on_batch_finish(metrics);
  }
}

}  // namespace hpm::harness
