#include "harness/progress.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "harness/json_export.hpp"
#include "harness/live_stream.hpp"

namespace hpm::harness {
namespace {

std::string fmt_seconds(double seconds) {
  char buf[32];
  if (seconds >= 90.0) {
    // Floor the minutes (rounding would render 100s as "2m40s") and round
    // the whole seconds first so the remainder can never show as 60.
    const double whole = std::floor(seconds + 0.5);
    const double minutes = std::floor(whole / 60.0);
    std::snprintf(buf, sizeof(buf), "%.0fm%02.0fs", minutes,
                  whole - 60.0 * minutes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  }
  return buf;
}

}  // namespace

ProgressReporter::ProgressReporter(ProgressOptions options)
    : options_(options) {}

double ProgressReporter::eta_seconds() const noexcept {
  if (!have_ema_ || total_ <= done_) return 0.0;
  return ema_seconds_ * static_cast<double>(total_ - done_) /
         static_cast<double>(std::max(1u, jobs_));
}

void ProgressReporter::emit_jsonl(const std::string& line) {
  if (options_.jsonl_sink != nullptr) {
    options_.jsonl_sink->write_line(line);
  } else if (options_.jsonl_out != nullptr) {
    *options_.jsonl_out << line << '\n' << std::flush;
  }
}

void ProgressReporter::on_batch_start(std::size_t total,
                                      std::size_t already_done,
                                      unsigned jobs) {
  total_ = total;
  done_ = already_done;
  jobs_ = jobs;
  current_.assign(static_cast<std::size_t>(jobs) + 1, std::string());
  if (jsonl_enabled()) {
    std::ostringstream event;
    JsonWriter w(event, 0);
    w.begin_object();
    w.key("event").value("batch_start");
    w.key("total").value(static_cast<std::uint64_t>(total));
    w.key("resumed").value(static_cast<std::uint64_t>(already_done));
    w.key("jobs").value(jobs);
    w.end_object();
    emit_jsonl(event.str());
  }
  emit_line();
}

void ProgressReporter::on_run_start(std::size_t index, const RunSpec& spec,
                                    unsigned worker) {
  if (worker < current_.size()) current_[worker] = spec.name;
  if (jsonl_enabled()) {
    std::ostringstream event;
    JsonWriter w(event, 0);
    w.begin_object();
    w.key("event").value("run_start");
    w.key("index").value(static_cast<std::uint64_t>(index));
    w.key("name").value(spec.name);
    w.key("workload").value(spec.workload);
    w.key("worker").value(worker);
    w.end_object();
    emit_jsonl(event.str());
  }
  emit_line();
}

void ProgressReporter::on_run_retry(std::size_t index, const RunSpec& spec,
                                    unsigned worker, unsigned attempts,
                                    const std::string& error) {
  ++retries_;
  if (jsonl_enabled()) {
    std::ostringstream event;
    JsonWriter w(event, 0);
    w.begin_object();
    w.key("event").value("run_retry");
    w.key("index").value(static_cast<std::uint64_t>(index));
    w.key("name").value(spec.name);
    w.key("worker").value(worker);
    w.key("attempts").value(attempts);
    w.key("error").value(error);
    w.end_object();
    emit_jsonl(event.str());
  }
  emit_line();
}

void ProgressReporter::on_run_finish(std::size_t done, std::size_t total,
                                     std::size_t index, const BatchItem& item,
                                     unsigned worker) {
  done_ = done;
  total_ = total;
  if (worker < current_.size()) current_[worker].clear();
  if (item.wall_seconds > 0.0) {
    ema_seconds_ = have_ema_ ? options_.ema_alpha * item.wall_seconds +
                                   (1.0 - options_.ema_alpha) * ema_seconds_
                             : item.wall_seconds;
    have_ema_ = true;
  }
  if (jsonl_enabled()) {
    std::ostringstream event;
    JsonWriter w(event, 0);
    w.begin_object();
    w.key("event").value("run_finish");
    w.key("index").value(static_cast<std::uint64_t>(index));
    w.key("name").value(item.spec.name);
    w.key("worker").value(worker);
    w.key("ok").value(item.ok);
    w.key("outcome").value(run_outcome_name(item.outcome));
    w.key("attempts").value(item.attempts);
    if (!item.ok) w.key("error").value(item.error);
    w.key("done").value(static_cast<std::uint64_t>(done));
    w.key("total").value(static_cast<std::uint64_t>(total));
    w.key("wall_seconds").value(item.wall_seconds);
    w.key("eta_seconds").value(eta_seconds());
    w.end_object();
    emit_jsonl(event.str());
  }
  emit_line();
}

void ProgressReporter::on_batch_finish(const BatchMetrics& metrics) {
  if (jsonl_enabled()) {
    std::ostringstream event;
    JsonWriter w(event, 0);
    w.begin_object();
    w.key("event").value("batch_finish");
    w.key("runs").value(static_cast<std::uint64_t>(metrics.runs));
    w.key("failed").value(static_cast<std::uint64_t>(metrics.failed));
    w.key("retries").value(static_cast<std::uint64_t>(retries_));
    w.key("wall_seconds").value(metrics.wall_seconds);
    w.end_object();
    emit_jsonl(event.str());
  }
  if (options_.line_out != nullptr) {
    std::string line = "[";
    line += std::to_string(metrics.runs);
    line += "/";
    line += std::to_string(metrics.runs);
    line += "] done in ";
    line += fmt_seconds(metrics.wall_seconds);
    if (metrics.failed > 0) {
      line += ", ";
      line += std::to_string(metrics.failed);
      line += " failed";
    }
    if (retries_ > 0) {
      line += ", ";
      line += std::to_string(retries_);
      line += " retried";
    }
    if (line.size() < last_line_length_) {
      line.append(last_line_length_ - line.size(), ' ');
    }
    *options_.line_out << '\r' << line << '\n' << std::flush;
    last_line_length_ = 0;
  }
}

void ProgressReporter::emit_line() {
  if (options_.line_out == nullptr) return;
  std::string line = "[";
  line += std::to_string(done_);
  line += "/";
  line += std::to_string(total_);
  line += "]";
  if (total_ > 0) {
    line += " ";
    line += std::to_string(done_ * 100 / total_);
    line += "%";
  }
  // ETA only once a run has actually finished (the EMA is primed) and only
  // while work remains: eta_seconds() is 0 in every other state, and a
  // literal "eta 0.0s" on the first or last status line is noise.
  if (have_ema_ && done_ < total_ && eta_seconds() > 0.0) {
    line += " eta ";
    line += fmt_seconds(eta_seconds());
  }
  if (retries_ > 0) {
    line += " retries ";
    line += std::to_string(retries_);
  }
  std::string busy;
  for (std::size_t w = 0; w < current_.size(); ++w) {
    if (current_[w].empty()) continue;
    if (!busy.empty()) busy += ' ';
    busy += "w";
    busy += std::to_string(w);
    busy += ":";
    busy += current_[w];
  }
  if (!busy.empty()) line += " | " + busy;
  // Keep the single-line promise on narrow terminals.
  if (line.size() > 120) {
    line.resize(117);
    line += "...";
  }
  std::string padded = line;
  if (padded.size() < last_line_length_) {
    padded.append(last_line_length_ - padded.size(), ' ');
  }
  *options_.line_out << '\r' << padded << std::flush;
  last_line_length_ = line.size();
}

}  // namespace hpm::harness
