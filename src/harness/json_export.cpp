#include "harness/json_export.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <system_error>

#include "harness/provenance.hpp"

namespace hpm::harness {

// -- Escaping ----------------------------------------------------------------

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

std::string_view tool_kind_name(ToolKind kind) noexcept {
  switch (kind) {
    case ToolKind::kSampler: return "sample";
    case ToolKind::kSearch: return "search";
    case ToolKind::kNone: break;
  }
  return "none";
}

// -- Writer ------------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {
  has_element_.push_back(false);
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  out_ << '\n';
  for (int i = 0; i < depth_ * indent_; ++i) out_ << ' ';
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_element_.back()) out_ << ',';
  if (depth_ > 0) newline();
  has_element_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  ++depth_;
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  --depth_;
  if (had) newline();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  ++depth_;
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  --depth_;
  if (had) newline();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (has_element_.back()) out_ << ',';
  newline();
  has_element_.back() = true;
  out_ << '"' << json_escape(name) << "\":";
  if (indent_ > 0) out_ << ' ';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out_ << "null";
    return *this;
  }
  // Shortest round-trip representation — deterministic across runs.
  std::array<char, 32> buf{};
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), number);
  if (ec != std::errc{}) {
    out_ << "null";
    return *this;
  }
  out_ << std::string_view(buf.data(), static_cast<std::size_t>(ptr - buf.data()));
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

// -- Exporters ---------------------------------------------------------------

namespace {

void write_report(JsonWriter& w, const core::Report& report) {
  w.begin_object();
  w.key("total_count").value(report.total_count());
  w.key("rows").begin_array();
  for (const auto& row : report.rows()) {
    w.begin_object();
    w.key("name").value(row.name);
    w.key("count").value(row.count);
    w.key("percent").value(row.percent);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_stats(JsonWriter& w, const sim::MachineStats& stats) {
  w.begin_object();
  w.key("app_instructions").value(stats.app_instructions);
  w.key("app_refs").value(stats.app_refs);
  w.key("app_misses").value(stats.app_misses);
  // Historical key: filtered_hits generalizes the old L1-filter counter,
  // and the key is pinned by the v1/v2 goldens.
  w.key("l1_hits").value(stats.filtered_hits);
  w.key("tool_refs").value(stats.tool_refs);
  w.key("tool_misses").value(stats.tool_misses);
  w.key("app_cycles").value(stats.app_cycles);
  w.key("tool_cycles").value(stats.tool_cycles);
  w.key("total_cycles").value(stats.total_cycles());
  w.key("interrupts").value(stats.interrupts);
  w.end_object();
}

void write_series(JsonWriter& w,
                  const std::vector<core::ExactProfiler::Series>& series) {
  w.begin_array();
  for (const auto& entry : series) {
    w.begin_object();
    w.key("name").value(entry.name);
    w.key("misses_per_interval").begin_array();
    for (const auto misses : entry.misses_per_interval) w.value(misses);
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

void write_metrics(JsonWriter& w, const telemetry::RunMetrics& metrics) {
  w.begin_object();
  // Registration order, not sorted: the order itself is part of the
  // deterministic-export contract (jobs=1 == jobs=N, byte-identical).
  w.key("counters").begin_object();
  for (const auto& [name, value] : metrics.counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : metrics.gauges) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("histograms").begin_array();
  for (const auto& h : metrics.histograms) {
    w.begin_object();
    w.key("name").value(h.name);
    w.key("bounds").begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const auto c : h.counts) w.value(c);
    w.end_array();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.end_object();
  }
  w.end_array();
  w.key("timeline").begin_object();
  w.key("every").value(metrics.timeline_every);
  w.key("snapshots").value(metrics.timeline_snapshots);
  w.key("samples").begin_array();
  for (const auto& s : metrics.timeline) {
    w.begin_object();
    w.key("at").value(s.at);
    w.key("app_instructions").value(s.app_instructions);
    w.key("app_refs").value(s.app_refs);
    w.key("app_misses").value(s.app_misses);
    w.key("tool_refs").value(s.tool_refs);
    w.key("tool_misses").value(s.tool_misses);
    w.key("interrupts").value(s.interrupts);
    w.key("app_cycles").value(s.app_cycles);
    w.key("tool_cycles").value(s.tool_cycles);
    // Per-level columns exist only on multi-level machines; omitting them
    // otherwise keeps single-level metrics documents byte-identical.
    if (!s.level_misses.empty()) {
      w.key("level_misses").begin_array();
      for (std::uint64_t m : s.level_misses) w.value(m);
      w.end_array();
      w.key("level_resident").begin_array();
      for (std::uint64_t r : s.level_resident) w.value(r);
      w.end_array();
    }
    w.key("miss_rate").value(s.miss_rate());
    w.key("ipc").value(s.ipc());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
}

/// Per-level cache stats (hpm.batch.v3; emitted only for multi-level
/// machines so single-level documents stay byte-identical to v2).
void write_levels(JsonWriter& w, const RunResult& result) {
  w.key("observe_level").value(result.observe_level);
  w.key("levels").begin_array();
  for (const sim::LevelSnapshot& level : result.levels) {
    w.begin_object();
    w.key("name").value(level.name);
    w.key("size_bytes").value(level.size_bytes);
    w.key("line_size").value(static_cast<std::uint64_t>(level.line_size));
    w.key("associativity")
        .value(static_cast<std::uint64_t>(level.associativity));
    w.key("accesses").value(level.accesses);
    w.key("hits").value(level.hits);
    w.key("misses").value(level.misses);
    w.key("writebacks").value(level.writebacks);
    w.key("resident_lines").value(level.resident_lines);
    w.key("miss_rate").value(level.miss_rate());
    w.end_object();
  }
  w.end_array();
}

/// Multi-core block (hpm.batch.v4; emitted only when the run used more
/// than one core, so single-core documents stay byte-identical to v3).
void write_multicore(JsonWriter& w, const RunResult& result) {
  w.key("multicore").begin_object();
  w.key("cores").value(static_cast<std::uint64_t>(result.core_stats.size()));
  w.key("core_stats").begin_array();
  for (const sim::MachineStats& core : result.core_stats) {
    write_stats(w, core);
  }
  w.end_array();
  w.key("core_samples").begin_array();
  for (const std::uint64_t samples : result.core_samples) w.value(samples);
  w.end_array();
  w.key("coherence").begin_array();
  for (std::size_t i = 0; i < result.coherence.size(); ++i) {
    const sim::CoherenceStats& level = result.coherence[i];
    w.begin_object();
    w.key("level").value(i < result.levels.size() ? result.levels[i].name
                                                  : "L" + std::to_string(i + 1));
    w.key("invalidations_sent").value(level.invalidations_sent);
    w.key("invalidations_received").value(level.invalidations_received);
    w.key("upgrades").value(level.upgrades);
    w.key("sharing_transitions").value(level.sharing_transitions);
    w.key("forced_writebacks").value(level.forced_writebacks);
    w.end_object();
  }
  w.end_array();
  w.key("coherence_samples").value(result.coherence_samples);
  w.key("coherence_events").value(result.coherence_events);
  w.key("coherence_actual");
  write_report(w, result.coherence_actual);
  w.key("coherence_estimated");
  write_report(w, result.coherence_estimated);
  w.end_object();
}

void write_run_result(JsonWriter& w, const RunResult& result,
                      const JsonExportOptions& options) {
  w.begin_object();
  w.key("stats");
  write_stats(w, result.stats);
  if (!result.levels.empty()) write_levels(w, result);
  if (!result.core_stats.empty()) write_multicore(w, result);
  w.key("samples").value(result.samples);
  w.key("unattributed_misses").value(result.unattributed_misses);
  w.key("search_done").value(result.search_done);
  w.key("search_stats").begin_object();
  w.key("iterations").value(result.search_stats.iterations);
  w.key("refine_iterations").value(result.search_stats.refine_iterations);
  w.key("splits").value(result.search_stats.splits);
  w.key("discarded").value(result.search_stats.discarded);
  w.key("zero_retained").value(result.search_stats.zero_retained);
  w.key("continuations").value(result.search_stats.continuations);
  w.key("final_interval").value(result.search_stats.final_interval);
  w.end_object();
  w.key("actual");
  write_report(w, result.actual);
  w.key("estimated");
  write_report(w, result.estimated);
  if (options.include_series && !result.series.empty()) {
    w.key("series");
    write_series(w, result.series);
  }
  if (result.metrics.enabled) {
    w.key("metrics");
    write_metrics(w, result.metrics);
  }
  w.end_object();
}

void write_faults(JsonWriter& w, const BatchItem& item) {
  const sim::FaultPlan& plan = item.spec.config.machine.faults;
  const sim::FaultStats& stats = item.result.fault_stats;
  w.begin_object();
  w.key("plan").begin_object();
  w.key("seed").value(plan.seed);
  w.key("skid_refs").value(plan.skid_refs);
  w.key("drop_rate").value(plan.drop_rate);
  w.key("jitter_rate").value(plan.jitter_rate);
  w.key("jitter_magnitude").value(plan.jitter_magnitude);
  w.key("saturate_at").value(plan.saturate_at);
  w.key("reprogram_delay_misses").value(plan.reprogram_delay_misses);
  w.end_object();
  w.key("stats").begin_object();
  w.key("interrupts_dropped").value(stats.interrupts_dropped);
  w.key("skid_events").value(stats.skid_events);
  w.key("skid_refs").value(stats.skid_refs);
  w.key("reads_jittered").value(stats.reads_jittered);
  w.key("reads_saturated").value(stats.reads_saturated);
  w.key("reprograms_delayed").value(stats.reprograms_delayed);
  w.key("sampler_rearms").value(item.result.sampler_rearms);
  w.key("samples_discarded").value(item.result.samples_discarded);
  w.end_object();
  w.end_object();
}

void write_item(JsonWriter& w, const BatchItem& item,
                const JsonExportOptions& options) {
  // Additive v2 keys (outcome/attempts/faults) are emitted only when the
  // run was faulted, retried or timed out, so fault-free sweeps stay
  // byte-identical to pre-hardening exports.
  const bool faulted = !item.spec.config.machine.faults.none();
  const bool nontrivial_outcome = item.attempts > 1 ||
                                  item.outcome == RunOutcome::kTimedOut ||
                                  item.outcome == RunOutcome::kRetried;
  w.begin_object();
  w.key("name").value(item.spec.name);
  w.key("workload").value(item.spec.workload);
  w.key("tool").value(tool_kind_name(item.spec.config.tool));
  w.key("scale").value(item.spec.options.scale);
  w.key("iterations").value(item.spec.options.iterations);
  w.key("seed").value(item.spec.options.seed);
  if (item.spec.config.machine.cores > 1) {
    // Unlike cache geometry, the core count shapes the instruction stream
    // (the sharing kernels interleave per core), so replay needs it.
    w.key("cores").value(
        static_cast<std::uint64_t>(item.spec.config.machine.cores));
  }
  w.key("ok").value(item.ok);
  if (!item.ok) w.key("error").value(item.error);
  if (faulted || nontrivial_outcome) {
    w.key("outcome").value(run_outcome_name(item.outcome));
    w.key("attempts").value(item.attempts);
  }
  if (faulted) {
    w.key("faults");
    write_faults(w, item);
  }
  if (options.include_timing) w.key("wall_seconds").value(item.wall_seconds);
  if (item.ok) {
    w.key("result");
    write_run_result(w, item.result, options);
  }
  w.end_object();
}

}  // namespace

void export_json(std::ostream& out, const core::Report& report,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  write_report(w, report);
  out << '\n';
}

void export_json(std::ostream& out, const sim::MachineStats& stats,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  write_stats(w, stats);
  out << '\n';
}

void export_json(std::ostream& out, const RunResult& result,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  write_run_result(w, result, options);
  out << '\n';
}

void export_json(std::ostream& out, const BatchItem& item,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  write_item(w, item, options);
  out << '\n';
}

void export_json(std::ostream& out, const BatchResult& batch,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  w.begin_object();
  // The schema advances to v3 only when a run actually carries per-level
  // stats, and to v4 only when one ran multi-core; single-level batches
  // keep exporting v2 byte for byte (the checked-in goldens pin this).
  const bool multi_level = std::any_of(
      batch.items.begin(), batch.items.end(),
      [](const BatchItem& item) { return !item.result.levels.empty(); });
  const bool multi_core = std::any_of(
      batch.items.begin(), batch.items.end(), [](const BatchItem& item) {
        return item.spec.config.machine.cores > 1 ||
               !item.result.core_stats.empty();
      });
  w.key("schema").value(multi_core    ? "hpm.batch.v4"
                        : multi_level ? "hpm.batch.v3"
                                      : "hpm.batch.v2");
  // Provenance block: the volatile build half rides with the timing fields
  // (both are environment-dependent), so deterministic golden exports stay
  // byte-identical across machines.
  write_meta(w, /*include_build=*/options.include_timing);
  w.key("jobs").value(batch.metrics.jobs);
  w.key("runs").value(static_cast<std::uint64_t>(batch.metrics.runs));
  w.key("failed").value(static_cast<std::uint64_t>(batch.metrics.failed));
  if (options.include_timing) {
    w.key("wall_seconds").value(batch.metrics.wall_seconds);
  }
  w.key("totals").begin_object();
  w.key("virtual_cycles").value(batch.metrics.virtual_cycles);
  w.key("app_misses").value(batch.metrics.app_misses);
  w.key("interrupts").value(batch.metrics.interrupts);
  w.end_object();
  w.key("items").begin_array();
  for (const auto& item : batch.items) write_item(w, item, options);
  w.end_array();
  w.end_object();
  out << '\n';
}

void export_metrics_json(std::ostream& out, const BatchResult& batch,
                         const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  w.begin_object();
  w.key("schema").value("hpm.metrics.v1");
  write_meta(w, /*include_build=*/options.include_timing);
  w.key("runs").begin_array();
  for (const auto& item : batch.items) {
    w.begin_object();
    w.key("name").value(item.spec.name);
    w.key("workload").value(item.spec.workload);
    w.key("tool").value(tool_kind_name(item.spec.config.tool));
    w.key("ok").value(item.ok);
    if (item.ok && item.result.metrics.enabled) {
      w.key("metrics");
      write_metrics(w, item.result.metrics);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

ParsedBatchSummary parse_batch_document(std::string_view json) {
  const JsonValue doc = JsonValue::parse(json);
  const std::string& schema = doc.at("schema").str();
  ParsedBatchSummary summary;
  if (schema == "hpm.batch.v1") {
    summary.schema_version = 1;
  } else if (schema == "hpm.batch.v2") {
    summary.schema_version = 2;
  } else if (schema == "hpm.batch.v3") {
    summary.schema_version = 3;
  } else if (schema == "hpm.batch.v4") {
    summary.schema_version = 4;
  } else {
    throw std::runtime_error("unrecognised batch schema: " + schema);
  }
  summary.jobs = static_cast<unsigned>(doc.at("jobs").uint());
  summary.runs = doc.at("runs").uint();
  summary.failed = doc.at("failed").uint();
  for (const auto& item : doc.at("items").array()) {
    ParsedBatchSummary::Item out;
    out.name = item.at("name").str();
    out.workload = item.at("workload").str();
    out.tool = item.at("tool").str();
    out.ok = item.at("ok").boolean();
    if (const JsonValue* result = item.find("result")) {
      out.has_metrics = result->find("metrics") != nullptr;
    }
    summary.items.push_back(std::move(out));
  }
  return summary;
}

// -- BatchItem round-trip -----------------------------------------------------

namespace {

ToolKind parse_tool_kind(std::string_view name) {
  if (name == "sample") return ToolKind::kSampler;
  if (name == "search") return ToolKind::kSearch;
  if (name == "none") return ToolKind::kNone;
  throw std::runtime_error("unknown tool kind: " + std::string(name));
}

core::Report parse_report(const JsonValue& node) {
  std::vector<core::ReportRow> rows;
  for (const JsonValue& row : node.at("rows").array()) {
    core::ReportRow out;
    out.name = row.at("name").str();
    out.count = row.at("count").uint();
    out.percent = row.at("percent").number();
    rows.push_back(std::move(out));
  }
  return core::Report(std::move(rows), node.at("total_count").uint());
}

}  // namespace

telemetry::RunMetrics parse_run_metrics(const JsonValue& node) {
  telemetry::RunMetrics metrics;
  metrics.enabled = true;
  const JsonValue& counters = node.at("counters");
  for (const std::string& name : counters.object_keys()) {
    metrics.counters.emplace_back(name, counters.at(name).uint());
  }
  const JsonValue& gauges = node.at("gauges");
  for (const std::string& name : gauges.object_keys()) {
    metrics.gauges.emplace_back(name, gauges.at(name).number());
  }
  for (const JsonValue& h : node.at("histograms").array()) {
    telemetry::RunMetrics::HistogramSnapshot snap;
    snap.name = h.at("name").str();
    for (const JsonValue& b : h.at("bounds").array()) {
      snap.bounds.push_back(b.number());
    }
    for (const JsonValue& c : h.at("counts").array()) {
      snap.counts.push_back(c.uint());
    }
    snap.count = h.at("count").uint();
    snap.sum = h.at("sum").number();
    metrics.histograms.push_back(std::move(snap));
  }
  const JsonValue& timeline = node.at("timeline");
  metrics.timeline_every = timeline.at("every").uint();
  metrics.timeline_snapshots = timeline.at("snapshots").uint();
  for (const JsonValue& s : timeline.at("samples").array()) {
    telemetry::PhaseSample sample;
    sample.at = s.at("at").uint();
    sample.app_instructions = s.at("app_instructions").uint();
    sample.app_refs = s.at("app_refs").uint();
    sample.app_misses = s.at("app_misses").uint();
    sample.tool_refs = s.at("tool_refs").uint();
    sample.tool_misses = s.at("tool_misses").uint();
    sample.interrupts = s.at("interrupts").uint();
    sample.app_cycles = s.at("app_cycles").uint();
    sample.tool_cycles = s.at("tool_cycles").uint();
    if (const JsonValue* misses = s.find("level_misses")) {
      for (const JsonValue& m : misses->array()) {
        sample.level_misses.push_back(m.uint());
      }
      for (const JsonValue& r : s.at("level_resident").array()) {
        sample.level_resident.push_back(r.uint());
      }
    }
    // miss_rate / ipc are derived — not stored.
    metrics.timeline.push_back(sample);
  }
  return metrics;
}

namespace {

sim::MachineStats parse_stats(const JsonValue& stats) {
  sim::MachineStats out;
  out.app_instructions = stats.at("app_instructions").uint();
  out.app_refs = stats.at("app_refs").uint();
  out.app_misses = stats.at("app_misses").uint();
  out.filtered_hits = stats.at("l1_hits").uint();
  out.tool_refs = stats.at("tool_refs").uint();
  out.tool_misses = stats.at("tool_misses").uint();
  out.app_cycles = stats.at("app_cycles").uint();
  out.tool_cycles = stats.at("tool_cycles").uint();
  out.interrupts = stats.at("interrupts").uint();
  return out;
}

RunResult parse_run_result(const JsonValue& node) {
  RunResult result;
  result.stats = parse_stats(node.at("stats"));
  result.samples = node.at("samples").uint();
  result.unattributed_misses = node.at("unattributed_misses").uint();
  result.search_done = node.at("search_done").boolean();
  const JsonValue& search = node.at("search_stats");
  result.search_stats.iterations =
      static_cast<std::uint32_t>(search.at("iterations").uint());
  result.search_stats.refine_iterations =
      static_cast<std::uint32_t>(search.at("refine_iterations").uint());
  result.search_stats.splits =
      static_cast<std::uint32_t>(search.at("splits").uint());
  result.search_stats.discarded =
      static_cast<std::uint32_t>(search.at("discarded").uint());
  result.search_stats.zero_retained =
      static_cast<std::uint32_t>(search.at("zero_retained").uint());
  result.search_stats.continuations =
      static_cast<std::uint32_t>(search.at("continuations").uint());
  result.search_stats.final_interval = search.at("final_interval").uint();
  result.actual = parse_report(node.at("actual"));
  result.estimated = parse_report(node.at("estimated"));
  if (const JsonValue* series = node.find("series")) {
    for (const JsonValue& entry : series->array()) {
      core::ExactProfiler::Series out;
      out.name = entry.at("name").str();
      for (const JsonValue& misses :
           entry.at("misses_per_interval").array()) {
        out.misses_per_interval.push_back(misses.uint());
      }
      result.series.push_back(std::move(out));
    }
  }
  if (const JsonValue* levels = node.find("levels")) {
    if (const JsonValue* observe = node.find("observe_level")) {
      result.observe_level = observe->uint();
    }
    for (const JsonValue& entry : levels->array()) {
      sim::LevelSnapshot level;
      level.name = entry.at("name").str();
      level.size_bytes = entry.at("size_bytes").uint();
      level.line_size =
          static_cast<std::uint32_t>(entry.at("line_size").uint());
      level.associativity =
          static_cast<std::uint32_t>(entry.at("associativity").uint());
      level.accesses = entry.at("accesses").uint();
      level.hits = entry.at("hits").uint();
      level.misses = entry.at("misses").uint();
      level.writebacks = entry.at("writebacks").uint();
      level.resident_lines = entry.at("resident_lines").uint();
      // miss_rate is derived — not stored.
      result.levels.push_back(std::move(level));
    }
  }
  if (const JsonValue* multicore = node.find("multicore")) {
    for (const JsonValue& core : multicore->at("core_stats").array()) {
      result.core_stats.push_back(parse_stats(core));
    }
    for (const JsonValue& samples : multicore->at("core_samples").array()) {
      result.core_samples.push_back(samples.uint());
    }
    for (const JsonValue& entry : multicore->at("coherence").array()) {
      sim::CoherenceStats level;
      level.invalidations_sent = entry.at("invalidations_sent").uint();
      level.invalidations_received =
          entry.at("invalidations_received").uint();
      level.upgrades = entry.at("upgrades").uint();
      level.sharing_transitions = entry.at("sharing_transitions").uint();
      level.forced_writebacks = entry.at("forced_writebacks").uint();
      result.coherence.push_back(level);
    }
    result.coherence_samples = multicore->at("coherence_samples").uint();
    result.coherence_events = multicore->at("coherence_events").uint();
    result.coherence_actual = parse_report(multicore->at("coherence_actual"));
    result.coherence_estimated =
        parse_report(multicore->at("coherence_estimated"));
  }
  if (const JsonValue* metrics = node.find("metrics")) {
    result.metrics = parse_run_metrics(*metrics);
  }
  return result;
}

}  // namespace

BatchResult parse_batch_result(const JsonValue& doc) {
  const std::string& schema = doc.at("schema").str();
  if (schema != "hpm.batch.v1" && schema != "hpm.batch.v2" &&
      schema != "hpm.batch.v3" && schema != "hpm.batch.v4") {
    throw std::runtime_error("unrecognised batch schema: " + schema);
  }
  BatchResult batch;
  batch.metrics.jobs = static_cast<unsigned>(doc.at("jobs").uint());
  batch.metrics.runs = static_cast<std::size_t>(doc.at("runs").uint());
  batch.metrics.failed = static_cast<std::size_t>(doc.at("failed").uint());
  if (const JsonValue* wall = doc.find("wall_seconds")) {
    batch.metrics.wall_seconds = wall->number();
  }
  const JsonValue& totals = doc.at("totals");
  batch.metrics.virtual_cycles = totals.at("virtual_cycles").uint();
  batch.metrics.app_misses = totals.at("app_misses").uint();
  batch.metrics.interrupts = totals.at("interrupts").uint();
  for (const JsonValue& item : doc.at("items").array()) {
    batch.items.push_back(parse_batch_item(item));
  }
  return batch;
}

BatchResult parse_batch_result(std::string_view json) {
  return parse_batch_result(JsonValue::parse(json));
}

MetricsDocument parse_metrics_document(std::string_view json) {
  const JsonValue doc = JsonValue::parse(json);
  const std::string& schema = doc.at("schema").str();
  if (schema != "hpm.metrics.v1") {
    throw std::runtime_error("unrecognised metrics schema: " + schema);
  }
  MetricsDocument out;
  for (const JsonValue& run : doc.at("runs").array()) {
    MetricsDocument::Run entry;
    entry.name = run.at("name").str();
    entry.workload = run.at("workload").str();
    entry.tool = run.at("tool").str();
    entry.ok = run.at("ok").boolean();
    if (const JsonValue* metrics = run.find("metrics")) {
      entry.metrics = parse_run_metrics(*metrics);
    }
    out.runs.push_back(std::move(entry));
  }
  return out;
}

BatchItem parse_batch_item(const JsonValue& item) {
  BatchItem out;
  out.spec.name = item.at("name").str();
  out.spec.workload = item.at("workload").str();
  out.spec.config.tool = parse_tool_kind(item.at("tool").str());
  out.spec.options.scale = item.at("scale").number();
  out.spec.options.iterations = item.at("iterations").uint();
  out.spec.options.seed = item.at("seed").uint();
  if (const JsonValue* cores = item.find("cores")) {
    out.spec.config.machine.cores = static_cast<unsigned>(cores->uint());
  }
  out.ok = item.at("ok").boolean();
  if (const JsonValue* error = item.find("error")) out.error = error->str();
  out.outcome = out.ok ? RunOutcome::kOk : RunOutcome::kFailed;
  if (const JsonValue* outcome = item.find("outcome")) {
    out.outcome = parse_run_outcome(outcome->str());
  }
  if (const JsonValue* attempts = item.find("attempts")) {
    out.attempts = static_cast<unsigned>(attempts->uint());
  }
  if (const JsonValue* wall = item.find("wall_seconds")) {
    out.wall_seconds = wall->number();
  }
  if (out.ok) {
    out.result = parse_run_result(item.at("result"));
  }
  if (const JsonValue* faults = item.find("faults")) {
    const JsonValue& plan = faults->at("plan");
    sim::FaultPlan& p = out.spec.config.machine.faults;
    p.seed = plan.at("seed").uint();
    p.skid_refs = static_cast<std::uint32_t>(plan.at("skid_refs").uint());
    p.drop_rate = plan.at("drop_rate").number();
    p.jitter_rate = plan.at("jitter_rate").number();
    p.jitter_magnitude =
        static_cast<std::uint32_t>(plan.at("jitter_magnitude").uint());
    p.saturate_at = plan.at("saturate_at").uint();
    p.reprogram_delay_misses = static_cast<std::uint32_t>(
        plan.at("reprogram_delay_misses").uint());
    const JsonValue& stats = faults->at("stats");
    sim::FaultStats& s = out.result.fault_stats;
    s.interrupts_dropped = stats.at("interrupts_dropped").uint();
    s.skid_events = stats.at("skid_events").uint();
    s.skid_refs = stats.at("skid_refs").uint();
    s.reads_jittered = stats.at("reads_jittered").uint();
    s.reads_saturated = stats.at("reads_saturated").uint();
    s.reprograms_delayed = stats.at("reprograms_delayed").uint();
    out.result.sampler_rearms = stats.at("sampler_rearms").uint();
    out.result.samples_discarded = stats.at("samples_discarded").uint();
  }
  return out;
}

BatchItem parse_batch_item(std::string_view json) {
  return parse_batch_item(JsonValue::parse(json));
}

// -- Parser ------------------------------------------------------------------

bool JsonValue::boolean() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

std::uint64_t JsonValue::uint() const {
  if (kind_ == Kind::kNumber && exact_uint_) return uint_;
  const double n = number();
  if (n < 0 || n != std::floor(n)) {
    throw std::runtime_error("json: not a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

const std::string& JsonValue::str() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::object() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

const std::vector<std::string>& JsonValue::object_keys() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return object_order_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *found;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  /// Containers may nest this deep before the parser refuses the input.
  /// The parser is recursive, so without a cap an adversarial document —
  /// ten thousand '[' bytes — would overflow the stack instead of failing
  /// cleanly.  Far above anything the writer emits (its documents nest
  /// single digits deep).
  static constexpr int kMaxDepth = 256;

  /// Guards one parse_object/parse_array frame.
  struct DepthGuard {
    explicit DepthGuard(JsonParser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) parser_.fail("nesting too deep");
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    JsonParser& parser_;
  };

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': {
        const DepthGuard guard(*this);
        return parse_object();
      }
      case '[': {
        const DepthGuard guard(*this);
        return parse_array();
      }
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = true;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = false;
          return v;
        }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_order_.push_back(key);
      v.object_.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode as UTF-8 (BMP only — enough for the writer's output,
          // which only ever \u-escapes control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (peek() == '-') {
      integral = false;  // negative: double is exact for our magnitudes
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        integral = false;
      }
      ++pos_;
    }
    double number = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, number);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      fail("bad number");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = number;
    if (integral) {
      // Keep the exact value alongside the double: 64-bit counters and
      // seeds exceed 2^53 and must round-trip losslessly.
      std::uint64_t exact = 0;
      const auto [iptr, iec] =
          std::from_chars(text_.data() + start, text_.data() + pos_, exact);
      if (iec == std::errc{} && iptr == text_.data() + pos_) {
        v.exact_uint_ = true;
        v.uint_ = exact;
      }
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;  ///< open containers; bounded by kMaxDepth
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

void write_json_value(std::ostream& out, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out << "null";
      return;
    case JsonValue::Kind::kBool:
      out << (value.boolean() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber: {
      if (value.exact_uint_) {
        out << value.uint_;
        return;
      }
      std::array<char, 32> buf{};
      const auto [ptr, ec] =
          std::to_chars(buf.data(), buf.data() + buf.size(), value.number());
      if (ec != std::errc{}) {
        out << "null";
        return;
      }
      out << std::string_view(buf.data(),
                              static_cast<std::size_t>(ptr - buf.data()));
      return;
    }
    case JsonValue::Kind::kString:
      out << '"' << json_escape(value.str()) << '"';
      return;
    case JsonValue::Kind::kArray: {
      out << '[';
      bool first = true;
      for (const auto& element : value.array()) {
        if (!first) out << ',';
        first = false;
        write_json_value(out, element);
      }
      out << ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      // Document order, not map order: key order carries information for
      // the metrics round-trip (counters export in registration order).
      out << '{';
      bool first = true;
      for (const auto& key : value.object_keys()) {
        if (!first) out << ',';
        first = false;
        out << '"' << json_escape(key) << "\":";
        write_json_value(out, *value.find(key));
      }
      out << '}';
      return;
    }
  }
}

}  // namespace hpm::harness
