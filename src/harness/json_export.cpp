#include "harness/json_export.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <system_error>

namespace hpm::harness {

// -- Escaping ----------------------------------------------------------------

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

std::string_view tool_kind_name(ToolKind kind) noexcept {
  switch (kind) {
    case ToolKind::kSampler: return "sample";
    case ToolKind::kSearch: return "search";
    case ToolKind::kNone: break;
  }
  return "none";
}

// -- Writer ------------------------------------------------------------------

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {
  has_element_.push_back(false);
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  out_ << '\n';
  for (int i = 0; i < depth_ * indent_; ++i) out_ << ' ';
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (has_element_.back()) out_ << ',';
  if (depth_ > 0) newline();
  has_element_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  ++depth_;
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  --depth_;
  if (had) newline();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  ++depth_;
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  --depth_;
  if (had) newline();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (has_element_.back()) out_ << ',';
  newline();
  has_element_.back() = true;
  out_ << '"' << json_escape(name) << "\":";
  if (indent_ > 0) out_ << ' ';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out_ << "null";
    return *this;
  }
  // Shortest round-trip representation — deterministic across runs.
  std::array<char, 32> buf{};
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), number);
  if (ec != std::errc{}) {
    out_ << "null";
    return *this;
  }
  out_ << std::string_view(buf.data(), static_cast<std::size_t>(ptr - buf.data()));
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

// -- Exporters ---------------------------------------------------------------

namespace {

void write_report(JsonWriter& w, const core::Report& report) {
  w.begin_object();
  w.key("total_count").value(report.total_count());
  w.key("rows").begin_array();
  for (const auto& row : report.rows()) {
    w.begin_object();
    w.key("name").value(row.name);
    w.key("count").value(row.count);
    w.key("percent").value(row.percent);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_stats(JsonWriter& w, const sim::MachineStats& stats) {
  w.begin_object();
  w.key("app_instructions").value(stats.app_instructions);
  w.key("app_refs").value(stats.app_refs);
  w.key("app_misses").value(stats.app_misses);
  w.key("l1_hits").value(stats.l1_hits);
  w.key("tool_refs").value(stats.tool_refs);
  w.key("tool_misses").value(stats.tool_misses);
  w.key("app_cycles").value(stats.app_cycles);
  w.key("tool_cycles").value(stats.tool_cycles);
  w.key("total_cycles").value(stats.total_cycles());
  w.key("interrupts").value(stats.interrupts);
  w.end_object();
}

void write_series(JsonWriter& w,
                  const std::vector<core::ExactProfiler::Series>& series) {
  w.begin_array();
  for (const auto& entry : series) {
    w.begin_object();
    w.key("name").value(entry.name);
    w.key("misses_per_interval").begin_array();
    for (const auto misses : entry.misses_per_interval) w.value(misses);
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

void write_metrics(JsonWriter& w, const telemetry::RunMetrics& metrics) {
  w.begin_object();
  // Registration order, not sorted: the order itself is part of the
  // deterministic-export contract (jobs=1 == jobs=N, byte-identical).
  w.key("counters").begin_object();
  for (const auto& [name, value] : metrics.counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : metrics.gauges) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("histograms").begin_array();
  for (const auto& h : metrics.histograms) {
    w.begin_object();
    w.key("name").value(h.name);
    w.key("bounds").begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const auto c : h.counts) w.value(c);
    w.end_array();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.end_object();
  }
  w.end_array();
  w.key("timeline").begin_object();
  w.key("every").value(metrics.timeline_every);
  w.key("snapshots").value(metrics.timeline_snapshots);
  w.key("samples").begin_array();
  for (const auto& s : metrics.timeline) {
    w.begin_object();
    w.key("at").value(s.at);
    w.key("app_instructions").value(s.app_instructions);
    w.key("app_refs").value(s.app_refs);
    w.key("app_misses").value(s.app_misses);
    w.key("tool_refs").value(s.tool_refs);
    w.key("tool_misses").value(s.tool_misses);
    w.key("interrupts").value(s.interrupts);
    w.key("app_cycles").value(s.app_cycles);
    w.key("tool_cycles").value(s.tool_cycles);
    w.key("miss_rate").value(s.miss_rate());
    w.key("ipc").value(s.ipc());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
}

void write_run_result(JsonWriter& w, const RunResult& result,
                      const JsonExportOptions& options) {
  w.begin_object();
  w.key("stats");
  write_stats(w, result.stats);
  w.key("samples").value(result.samples);
  w.key("unattributed_misses").value(result.unattributed_misses);
  w.key("search_done").value(result.search_done);
  w.key("search_stats").begin_object();
  w.key("iterations").value(result.search_stats.iterations);
  w.key("refine_iterations").value(result.search_stats.refine_iterations);
  w.key("splits").value(result.search_stats.splits);
  w.key("discarded").value(result.search_stats.discarded);
  w.key("zero_retained").value(result.search_stats.zero_retained);
  w.key("continuations").value(result.search_stats.continuations);
  w.key("final_interval").value(result.search_stats.final_interval);
  w.end_object();
  w.key("actual");
  write_report(w, result.actual);
  w.key("estimated");
  write_report(w, result.estimated);
  if (options.include_series && !result.series.empty()) {
    w.key("series");
    write_series(w, result.series);
  }
  if (result.metrics.enabled) {
    w.key("metrics");
    write_metrics(w, result.metrics);
  }
  w.end_object();
}

void write_item(JsonWriter& w, const BatchItem& item,
                const JsonExportOptions& options) {
  w.begin_object();
  w.key("name").value(item.spec.name);
  w.key("workload").value(item.spec.workload);
  w.key("tool").value(tool_kind_name(item.spec.config.tool));
  w.key("scale").value(item.spec.options.scale);
  w.key("iterations").value(item.spec.options.iterations);
  w.key("seed").value(item.spec.options.seed);
  w.key("ok").value(item.ok);
  if (!item.ok) w.key("error").value(item.error);
  if (options.include_timing) w.key("wall_seconds").value(item.wall_seconds);
  if (item.ok) {
    w.key("result");
    write_run_result(w, item.result, options);
  }
  w.end_object();
}

}  // namespace

void export_json(std::ostream& out, const core::Report& report,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  write_report(w, report);
  out << '\n';
}

void export_json(std::ostream& out, const sim::MachineStats& stats,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  write_stats(w, stats);
  out << '\n';
}

void export_json(std::ostream& out, const RunResult& result,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  write_run_result(w, result, options);
  out << '\n';
}

void export_json(std::ostream& out, const BatchItem& item,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  write_item(w, item, options);
  out << '\n';
}

void export_json(std::ostream& out, const BatchResult& batch,
                 const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  w.begin_object();
  w.key("schema").value("hpm.batch.v2");
  w.key("jobs").value(batch.metrics.jobs);
  w.key("runs").value(static_cast<std::uint64_t>(batch.metrics.runs));
  w.key("failed").value(static_cast<std::uint64_t>(batch.metrics.failed));
  if (options.include_timing) {
    w.key("wall_seconds").value(batch.metrics.wall_seconds);
  }
  w.key("totals").begin_object();
  w.key("virtual_cycles").value(batch.metrics.virtual_cycles);
  w.key("app_misses").value(batch.metrics.app_misses);
  w.key("interrupts").value(batch.metrics.interrupts);
  w.end_object();
  w.key("items").begin_array();
  for (const auto& item : batch.items) write_item(w, item, options);
  w.end_array();
  w.end_object();
  out << '\n';
}

void export_metrics_json(std::ostream& out, const BatchResult& batch,
                         const JsonExportOptions& options) {
  JsonWriter w(out, options.indent);
  w.begin_object();
  w.key("schema").value("hpm.metrics.v1");
  w.key("runs").begin_array();
  for (const auto& item : batch.items) {
    w.begin_object();
    w.key("name").value(item.spec.name);
    w.key("workload").value(item.spec.workload);
    w.key("tool").value(tool_kind_name(item.spec.config.tool));
    w.key("ok").value(item.ok);
    if (item.ok && item.result.metrics.enabled) {
      w.key("metrics");
      write_metrics(w, item.result.metrics);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

ParsedBatchSummary parse_batch_document(std::string_view json) {
  const JsonValue doc = JsonValue::parse(json);
  const std::string& schema = doc.at("schema").str();
  ParsedBatchSummary summary;
  if (schema == "hpm.batch.v1") {
    summary.schema_version = 1;
  } else if (schema == "hpm.batch.v2") {
    summary.schema_version = 2;
  } else {
    throw std::runtime_error("unrecognised batch schema: " + schema);
  }
  summary.jobs = static_cast<unsigned>(doc.at("jobs").uint());
  summary.runs = doc.at("runs").uint();
  summary.failed = doc.at("failed").uint();
  for (const auto& item : doc.at("items").array()) {
    ParsedBatchSummary::Item out;
    out.name = item.at("name").str();
    out.workload = item.at("workload").str();
    out.tool = item.at("tool").str();
    out.ok = item.at("ok").boolean();
    if (const JsonValue* result = item.find("result")) {
      out.has_metrics = result->find("metrics") != nullptr;
    }
    summary.items.push_back(std::move(out));
  }
  return summary;
}

// -- Parser ------------------------------------------------------------------

bool JsonValue::boolean() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

std::uint64_t JsonValue::uint() const {
  const double n = number();
  if (n < 0 || n != std::floor(n)) {
    throw std::runtime_error("json: not a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

const std::string& JsonValue::str() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::object() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *found;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = true;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = false;
          return v;
        }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode as UTF-8 (BMP only — enough for the writer's output,
          // which only ever \u-escapes control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double number = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, number);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      fail("bad number");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = number;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace hpm::harness
