#include "harness/resilience.hpp"

#include <cmath>
#include <sstream>

#include "harness/json_export.hpp"

namespace hpm::harness {

std::string_view run_outcome_name(RunOutcome outcome) noexcept {
  switch (outcome) {
    case RunOutcome::kOk:
      return "ok";
    case RunOutcome::kFailed:
      return "failed";
    case RunOutcome::kTimedOut:
      return "timed_out";
    case RunOutcome::kRetried:
      return "retried";
  }
  return "failed";
}

RunOutcome parse_run_outcome(std::string_view name) {
  if (name == "ok") return RunOutcome::kOk;
  if (name == "failed") return RunOutcome::kFailed;
  if (name == "timed_out") return RunOutcome::kTimedOut;
  if (name == "retried") return RunOutcome::kRetried;
  throw std::invalid_argument("unknown run outcome: " + std::string(name));
}

double RetryPolicy::backoff_seconds(unsigned attempt) const noexcept {
  if (attempt == 0) return backoff_base_seconds;
  return backoff_base_seconds *
         std::pow(backoff_factor, static_cast<double>(attempt - 1));
}

namespace {

/// True when `path` exists, is non-empty, and does not end in '\n' — i.e.
/// a writer was killed mid-line.  An append must then start on a fresh
/// line or it would concatenate into (and corrupt) the truncated record;
/// the loader already skips both the half-line and the blank line.
bool needs_leading_newline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size <= 0) return false;
  in.seekg(-1, std::ios::end);
  char last = '\n';
  in.get(last);
  return last != '\n';
}

}  // namespace

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const std::string& fingerprint,
                                   std::size_t total, bool append,
                                   std::size_t flush_every)
    : flush_every_(flush_every == 0 ? 1 : flush_every) {
  const bool repair_line = append && needs_leading_newline(path);
  out_.open(path, append ? (std::ios::out | std::ios::app)
                         : (std::ios::out | std::ios::trunc));
  if (!out_) {
    throw std::runtime_error("cannot open checkpoint journal: " + path);
  }
  if (repair_line) out_ << '\n';
  if (!append) {
    out_ << "{\"schema\":\"hpm.checkpoint.v1\",\"fingerprint\":\""
         << json_escape(fingerprint) << "\",\"total\":" << total << "}\n";
    out_.flush();
  }
}

void CheckpointWriter::append(std::size_t index, std::string_view key,
                              std::string_view item_json) {
  // Trim trailing whitespace (to_json appends '\n'); an embedded newline
  // would split the JSONL record and the loader would drop it.
  while (!item_json.empty() &&
         (item_json.back() == '\n' || item_json.back() == '\r' ||
          item_json.back() == ' ')) {
    item_json.remove_suffix(1);
  }
  out_ << "{\"index\":" << index << ",\"key\":\"" << json_escape(key)
       << "\",\"item\":" << item_json << "}\n";
  if (++since_flush_ >= flush_every_) flush();
}

void CheckpointWriter::flush() {
  out_.flush();
  since_flush_ = 0;
}

CheckpointLoad load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open checkpoint journal: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("checkpoint journal is empty: " + path);
  }
  CheckpointLoad load;
  try {
    const JsonValue header = JsonValue::parse(line);
    if (header.at("schema").str() != "hpm.checkpoint.v1") {
      throw std::runtime_error("not an hpm.checkpoint.v1 journal");
    }
    load.fingerprint = header.at("fingerprint").str();
    load.total = static_cast<std::size_t>(header.at("total").uint());
  } catch (const std::exception& e) {
    throw std::runtime_error("bad checkpoint header in " + path + ": " +
                             e.what());
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue entry;
    try {
      entry = JsonValue::parse(line);
    } catch (const std::exception&) {
      // A line truncated by an interrupted write.  Usually the last line,
      // but after a kill + resume the repaired journal legitimately has a
      // half-line mid-file followed by good entries — skip, don't stop.
      continue;
    }
    CheckpointEntry out;
    out.index = static_cast<std::size_t>(entry.at("index").uint());
    out.key = entry.at("key").str();
    // Re-serialize the item subtree so the batch runner can hand it to
    // parse_batch_item without keeping a parsed tree alive per entry.
    std::ostringstream item;
    const JsonValue* node = entry.find("item");
    if (node == nullptr) continue;
    write_json_value(item, *node);
    out.item_json = std::move(item).str();
    load.entries.push_back(std::move(out));
  }
  return load;
}

}  // namespace hpm::harness
