#include "harness/resilience.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "harness/json_export.hpp"

namespace hpm::harness {

std::string_view run_outcome_name(RunOutcome outcome) noexcept {
  switch (outcome) {
    case RunOutcome::kOk:
      return "ok";
    case RunOutcome::kFailed:
      return "failed";
    case RunOutcome::kTimedOut:
      return "timed_out";
    case RunOutcome::kRetried:
      return "retried";
    case RunOutcome::kCancelled:
      return "cancelled";
  }
  return "failed";
}

RunOutcome parse_run_outcome(std::string_view name) {
  if (name == "ok") return RunOutcome::kOk;
  if (name == "failed") return RunOutcome::kFailed;
  if (name == "timed_out") return RunOutcome::kTimedOut;
  if (name == "retried") return RunOutcome::kRetried;
  if (name == "cancelled") return RunOutcome::kCancelled;
  throw std::invalid_argument("unknown run outcome: " + std::string(name));
}

double RetryPolicy::backoff_seconds(unsigned attempt) const noexcept {
  if (attempt == 0) return backoff_base_seconds;
  return backoff_base_seconds *
         std::pow(backoff_factor, static_cast<double>(attempt - 1));
}

std::string atomic_write_file(const std::string& path,
                              std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return "cannot open " + tmp + ": " + std::strerror(errno);
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string error =
          "cannot write " + tmp + ": " + std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return error;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string error =
        "cannot fsync " + tmp + ": " + std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return error;
  }
  if (::close(fd) != 0) {
    const std::string error =
        "cannot close " + tmp + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return error;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string error = "cannot rename " + tmp + " over " + path + ": " +
                              std::strerror(errno);
    ::unlink(tmp.c_str());
    return error;
  }
  // Persist the rename itself; without this a power cut can resurrect the
  // old file.  Best-effort — some filesystems reject directory fsync.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return {};
}

namespace {

/// Slurp an existing journal for append mode.  A trailing half-line (the
/// previous writer died mid-write, or predates the atomic writer) is
/// repaired with a terminating newline so subsequent records start clean
/// and the loader skips exactly the torn record.
std::string read_existing_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string content = std::move(buffer).str();
  if (!content.empty() && content.back() != '\n') content += '\n';
  return content;
}

}  // namespace

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const std::string& fingerprint,
                                   std::size_t total, bool append,
                                   std::size_t flush_every)
    : path_(path), flush_every_(flush_every == 0 ? 1 : flush_every) {
  if (append) {
    content_ = read_existing_journal(path);
  } else {
    content_ = "{\"schema\":\"hpm.checkpoint.v1\",\"fingerprint\":\"" +
               json_escape(fingerprint) + "\",\"total\":" +
               std::to_string(total) + "}\n";
  }
  // Probe durability up front: an unwritable journal directory must fail
  // before the first run, not surface as silent data loss hours later.
  const std::string error = atomic_write_file(path_, content_);
  if (!error.empty()) {
    throw std::runtime_error("cannot write checkpoint journal: " + error);
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (since_flush_ > 0) flush();
}

void CheckpointWriter::append(std::size_t index, std::string_view key,
                              std::string_view item_json) {
  // Trim trailing whitespace (to_json appends '\n'); an embedded newline
  // would split the JSONL record and the loader would drop it.
  while (!item_json.empty() &&
         (item_json.back() == '\n' || item_json.back() == '\r' ||
          item_json.back() == ' ')) {
    item_json.remove_suffix(1);
  }
  content_ += "{\"index\":" + std::to_string(index) + ",\"key\":\"" +
              json_escape(key) + "\",\"item\":";
  content_ += item_json;
  content_ += "}\n";
  if (++since_flush_ >= flush_every_) flush();
}

void CheckpointWriter::flush() {
  error_ = atomic_write_file(path_, content_);
  since_flush_ = 0;
}

CheckpointLoad load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open checkpoint journal: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("checkpoint journal is empty: " + path);
  }
  CheckpointLoad load;
  try {
    const JsonValue header = JsonValue::parse(line);
    if (header.at("schema").str() != "hpm.checkpoint.v1") {
      throw std::runtime_error("not an hpm.checkpoint.v1 journal");
    }
    load.fingerprint = header.at("fingerprint").str();
    load.total = static_cast<std::size_t>(header.at("total").uint());
  } catch (const std::exception& e) {
    throw std::runtime_error("bad checkpoint header in " + path + ": " +
                             e.what());
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue entry;
    try {
      entry = JsonValue::parse(line);
    } catch (const std::exception&) {
      // A line truncated by an interrupted write.  Usually the last line,
      // but after a kill + resume the repaired journal legitimately has a
      // half-line mid-file followed by good entries — skip, don't stop.
      continue;
    }
    CheckpointEntry out;
    out.index = static_cast<std::size_t>(entry.at("index").uint());
    out.key = entry.at("key").str();
    // Re-serialize the item subtree so the batch runner can hand it to
    // parse_batch_item without keeping a parsed tree alive per entry.
    std::ostringstream item;
    const JsonValue* node = entry.find("item");
    if (node == nullptr) continue;
    write_json_value(item, *node);
    out.item_json = std::move(item).str();
    load.entries.push_back(std::move(out));
  }
  return load;
}

}  // namespace hpm::harness
