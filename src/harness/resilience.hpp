// Batch-harness resilience: run outcomes, transient-failure retry policy,
// and the hpm.checkpoint.v1 journal that lets an interrupted sweep resume
// without re-running completed cells.
//
// Journal format (JSONL — one JSON document per line, flushed after every
// completed run so a kill loses at most the in-flight runs):
//
//   {"schema":"hpm.checkpoint.v1","fingerprint":"<16 hex>","total":N}
//   {"index":3,"key":"tomcatv/sample#1234","item":{...BatchItem JSON...}}
//   ...
//
// The fingerprint is a hash of the spec list's identity; a resume against
// different specs is rejected instead of silently mixing results.  The
// loader tolerates a truncated final line (the writer may have been killed
// mid-write).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hpm::harness {

/// How a batch run ended.  kRetried means it ultimately succeeded but
/// needed more than one attempt (item.ok is still true).  kCancelled marks
/// a run that was skipped before it started because the batch was
/// cancelled (Ctrl-C on a checkpointed sweep, a disconnected hpmserve
/// client); cancelled items are never journaled, so a resume re-runs them.
enum class RunOutcome : std::uint8_t {
  kOk,
  kFailed,
  kTimedOut,
  kRetried,
  kCancelled
};

[[nodiscard]] std::string_view run_outcome_name(RunOutcome outcome) noexcept;
/// Inverse of run_outcome_name; throws std::invalid_argument.
[[nodiscard]] RunOutcome parse_run_outcome(std::string_view name);

/// Failure class the batch harness is allowed to retry (resource blips,
/// injected test failures).  Anything else — including BudgetExceeded —
/// fails the run on the first attempt.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bounded retry with exponential backoff.
struct RetryPolicy {
  unsigned max_attempts = 1;  ///< total attempts; 1 disables retry
  double backoff_base_seconds = 0.05;
  double backoff_factor = 2.0;

  /// Sleep before attempt `attempt + 1` (attempt counts from 1):
  /// base * factor^(attempt-1).
  [[nodiscard]] double backoff_seconds(unsigned attempt) const noexcept;
};

struct ResilienceOptions {
  RetryPolicy retry{};
  /// Journal path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write one journal line per this many completed runs (>=1).  The line
  /// for every completed run is still written — this only batches flushes.
  std::size_t checkpoint_every = 1;
};

/// Write `content` to `path` atomically: temp sibling (`<path>.tmp`),
/// fsync, rename over the target, fsync the parent directory.  Returns an
/// empty string on success, a diagnostic otherwise — on any failure the
/// previous file at `path` is untouched (the temp file is removed
/// best-effort).  Shared by the checkpoint journal and hpmserve's
/// recovery journal.
[[nodiscard]] std::string atomic_write_file(const std::string& path,
                                            std::string_view content);

// -- Checkpoint journal -------------------------------------------------------

/// Appends completed items to an hpm.checkpoint.v1 journal.  Not
/// thread-safe; the batch runner serializes appends under its progress
/// mutex.
///
/// Durability: every flush writes the complete journal to a temp sibling
/// (`<path>.tmp`), fsyncs it, and atomically renames it over `path`, then
/// fsyncs the parent directory.  The journal visible at `path` is therefore
/// always a whole file of complete lines — a kill -9 or a full disk can
/// never leave a torn record behind, only lose the runs since the last
/// flush (which a resume simply re-runs).  When appending to a journal
/// written by an older in-place writer, a trailing half-line is repaired
/// (newline-terminated) so the loader skips it cleanly.
class CheckpointWriter {
 public:
  /// Starts a journal at `path` (fresh header unless `append`, which adopts
  /// the existing file's contents).  Throws std::runtime_error when the
  /// initial flush cannot reach disk — a long sweep must fail up front, not
  /// after hours, when the journal directory is missing or read-only.
  CheckpointWriter(const std::string& path, const std::string& fingerprint,
                   std::size_t total, bool append, std::size_t flush_every = 1);
  ~CheckpointWriter();

  /// Record one completed run.  `item_json` must be a compact (single-line)
  /// BatchItem document.
  void append(std::size_t index, std::string_view key,
              std::string_view item_json);

  /// Force the journal to disk (also done by the destructor).  A failure
  /// after construction (disk filled up mid-sweep) degrades gracefully:
  /// the previous journal stays intact at `path`, ok() turns false, and
  /// later flushes retry with the accumulated lines.
  void flush();

  /// False once a post-construction flush failed; last_error() explains.
  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& last_error() const noexcept {
    return error_;
  }

 private:
  std::string path_;
  std::string content_;  ///< the complete journal, always whole lines
  std::size_t flush_every_;
  std::size_t since_flush_ = 0;
  std::string error_;
};

struct CheckpointEntry {
  std::size_t index = 0;
  std::string key;
  std::string item_json;  ///< compact BatchItem document, unparsed
};

struct CheckpointLoad {
  std::string fingerprint;
  std::size_t total = 0;
  std::vector<CheckpointEntry> entries;
};

/// Read a journal back.  Ignores a truncated or malformed trailing line
/// (interrupted write); throws std::runtime_error when the file is missing
/// or the header is not an hpm.checkpoint.v1 header.
[[nodiscard]] CheckpointLoad load_checkpoint(const std::string& path);

}  // namespace hpm::harness
