// Batch-harness resilience: run outcomes, transient-failure retry policy,
// and the hpm.checkpoint.v1 journal that lets an interrupted sweep resume
// without re-running completed cells.
//
// Journal format (JSONL — one JSON document per line, flushed after every
// completed run so a kill loses at most the in-flight runs):
//
//   {"schema":"hpm.checkpoint.v1","fingerprint":"<16 hex>","total":N}
//   {"index":3,"key":"tomcatv/sample#1234","item":{...BatchItem JSON...}}
//   ...
//
// The fingerprint is a hash of the spec list's identity; a resume against
// different specs is rejected instead of silently mixing results.  The
// loader tolerates a truncated final line (the writer may have been killed
// mid-write).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hpm::harness {

/// How a batch run ended.  kRetried means it ultimately succeeded but
/// needed more than one attempt (item.ok is still true).
enum class RunOutcome : std::uint8_t { kOk, kFailed, kTimedOut, kRetried };

[[nodiscard]] std::string_view run_outcome_name(RunOutcome outcome) noexcept;
/// Inverse of run_outcome_name; throws std::invalid_argument.
[[nodiscard]] RunOutcome parse_run_outcome(std::string_view name);

/// Failure class the batch harness is allowed to retry (resource blips,
/// injected test failures).  Anything else — including BudgetExceeded —
/// fails the run on the first attempt.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bounded retry with exponential backoff.
struct RetryPolicy {
  unsigned max_attempts = 1;  ///< total attempts; 1 disables retry
  double backoff_base_seconds = 0.05;
  double backoff_factor = 2.0;

  /// Sleep before attempt `attempt + 1` (attempt counts from 1):
  /// base * factor^(attempt-1).
  [[nodiscard]] double backoff_seconds(unsigned attempt) const noexcept;
};

struct ResilienceOptions {
  RetryPolicy retry{};
  /// Journal path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write one journal line per this many completed runs (>=1).  The line
  /// for every completed run is still written — this only batches flushes.
  std::size_t checkpoint_every = 1;
};

// -- Checkpoint journal -------------------------------------------------------

/// Appends completed items to an hpm.checkpoint.v1 journal.  Not
/// thread-safe; the batch runner serializes appends under its progress
/// mutex.
class CheckpointWriter {
 public:
  /// Opens `path` (truncating unless `append`); writes the header line
  /// when starting fresh.  Throws std::runtime_error when the file cannot
  /// be opened.
  CheckpointWriter(const std::string& path, const std::string& fingerprint,
                   std::size_t total, bool append, std::size_t flush_every = 1);

  /// Record one completed run.  `item_json` must be a compact (single-line)
  /// BatchItem document.
  void append(std::size_t index, std::string_view key,
              std::string_view item_json);

  /// Force pending lines to disk (also done by the destructor).
  void flush();

 private:
  std::ofstream out_;
  std::size_t flush_every_;
  std::size_t since_flush_ = 0;
};

struct CheckpointEntry {
  std::size_t index = 0;
  std::string key;
  std::string item_json;  ///< compact BatchItem document, unparsed
};

struct CheckpointLoad {
  std::string fingerprint;
  std::size_t total = 0;
  std::vector<CheckpointEntry> entries;
};

/// Read a journal back.  Ignores a truncated or malformed trailing line
/// (interrupted write); throws std::runtime_error when the file is missing
/// or the header is not an hpm.checkpoint.v1 header.
[[nodiscard]] CheckpointLoad load_checkpoint(const std::string& path);

}  // namespace hpm::harness
