// Structured JSON export for experiment results — no third-party deps.
//
// Makes `results/*.json` machine-readable for the bench trajectory and
// gives the regression suite a stable, diffable serialization of every
// number a run produces.  The writer is deterministic: doubles are
// emitted with std::to_chars (shortest round-trip form), object keys are
// written in a fixed order, and wall-clock timing can be omitted so two
// runs of the same specs export byte-identical documents.
//
// A minimal JSON parser (JsonValue) rides along for the golden-result
// tests and for round-trip checks; it is not a general-purpose validator
// but accepts everything the writer emits.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "harness/batch.hpp"

namespace hpm::harness {

/// Escape a string for inclusion in a JSON document (quotes not added).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Canonical spelling of a ToolKind ("none" | "sample" | "search").
[[nodiscard]] std::string_view tool_kind_name(ToolKind kind) noexcept;

// -- Writer ------------------------------------------------------------------

/// Streaming JSON writer with automatic comma/indent management.
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 writes compact single-line JSON.
  explicit JsonWriter(std::ostream& out, int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool flag);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(std::int64_t{number}); }
  JsonWriter& value(unsigned number) { return value(std::uint64_t{number}); }
  JsonWriter& null();

 private:
  void before_value();
  void newline();

  std::ostream& out_;
  int indent_;
  int depth_ = 0;
  /// Per-depth flag: has the current container already emitted an element?
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

// -- Exporters ---------------------------------------------------------------

struct JsonExportOptions {
  /// Include wall-clock fields.  Disable for byte-identical documents
  /// across runs (the determinism and golden tests do).
  bool include_timing = true;
  /// Include per-object miss time series (Figure-5 data) when captured.
  bool include_series = true;
  int indent = 2;
};

void export_json(std::ostream& out, const core::Report& report,
                 const JsonExportOptions& options = {});
void export_json(std::ostream& out, const sim::MachineStats& stats,
                 const JsonExportOptions& options = {});
void export_json(std::ostream& out, const RunResult& result,
                 const JsonExportOptions& options = {});
void export_json(std::ostream& out, const BatchItem& item,
                 const JsonExportOptions& options = {});
/// Top-level document ("schema": "hpm.batch.v2", or "hpm.batch.v3" when a
/// run carries per-level hierarchy stats) — see docs/parallel_sweeps.md and
/// docs/memory_hierarchy.md.
/// v2 = v1 plus an optional per-run "metrics" block (telemetry snapshot);
/// readers written for v1 keep working because every v1 key is unchanged.
void export_json(std::ostream& out, const BatchResult& batch,
                 const JsonExportOptions& options = {});

/// Telemetry-only companion document ("schema": "hpm.metrics.v1") for
/// `hpmrun --metrics-out`: per-run counters, histograms and the phase
/// timeline without the full batch payload.
void export_metrics_json(std::ostream& out, const BatchResult& batch,
                         const JsonExportOptions& options = {});

template <typename T>
[[nodiscard]] std::string to_json(const T& value,
                                  const JsonExportOptions& options = {}) {
  std::ostringstream out;
  export_json(out, value, options);
  return std::move(out).str();
}

// -- Batch-document reader ---------------------------------------------------

/// Summary of a parsed hpm.batch.* document.  Accepts schema v1
/// (pre-telemetry), v2 and v3 (per-level hierarchy stats); consumers check
/// `schema_version` / `has_metrics` instead of string-matching the schema
/// themselves.
struct ParsedBatchSummary {
  int schema_version = 0;  ///< 1, 2 or 3
  unsigned jobs = 0;
  std::uint64_t runs = 0;
  std::uint64_t failed = 0;
  struct Item {
    std::string name;
    std::string workload;
    std::string tool;
    bool ok = false;
    bool has_metrics = false;  ///< always false in v1 documents
  };
  std::vector<Item> items;
};

/// Parse an exported batch document (v1, v2 or v3); throws
/// std::runtime_error on malformed JSON or an unrecognised schema string.
[[nodiscard]] ParsedBatchSummary parse_batch_document(std::string_view json);

class JsonValue;

/// Full-fidelity batch-document reader: every item is reconstructed via
/// parse_batch_item, so re-exporting the result with export_json
/// round-trips byte-identically (timing fields excepted when the source
/// document omitted them).  Accepts schema v1, v2 and v3; throws
/// std::runtime_error on malformed JSON or an unrecognised schema.  This
/// is the ingestion path of the analysis layer (hpmreport).
[[nodiscard]] BatchResult parse_batch_result(std::string_view json);
[[nodiscard]] BatchResult parse_batch_result(const JsonValue& doc);

/// Parsed hpm.metrics.v1 companion document (`hpmrun --metrics-out`).
struct MetricsDocument {
  struct Run {
    std::string name;
    std::string workload;
    std::string tool;
    bool ok = false;
    telemetry::RunMetrics metrics;  ///< enabled=false when absent
  };
  std::vector<Run> runs;
};

/// Parse an hpm.metrics.v1 document; throws std::runtime_error on
/// malformed JSON or a different schema string.
[[nodiscard]] MetricsDocument parse_metrics_document(std::string_view json);

/// Reconstruct one run's telemetry snapshot from its "metrics" JSON block
/// (the inverse of the writer's metrics section).
[[nodiscard]] telemetry::RunMetrics parse_run_metrics(const JsonValue& node);

/// Full BatchItem round-trip: reconstruct every field write_item emits so a
/// checkpoint-resumed sweep re-exports byte-identically (see resilience.hpp).
/// Fields absent from the document keep their defaults.
[[nodiscard]] BatchItem parse_batch_item(const JsonValue& item);
[[nodiscard]] BatchItem parse_batch_item(std::string_view json);

// -- Parser ------------------------------------------------------------------

/// Parsed JSON document node.  Numbers are stored as double (exact for
/// the integer magnitudes this project emits, < 2^53).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse a complete document; throws std::runtime_error on malformed
  /// input or trailing garbage.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool boolean() const;
  [[nodiscard]] double number() const;
  [[nodiscard]] std::uint64_t uint() const;
  [[nodiscard]] const std::string& str() const;
  [[nodiscard]] const std::vector<JsonValue>& array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& object() const;
  /// Object keys in document order (std::map iteration is sorted; consumers
  /// that must preserve the writer's key order — e.g. the metrics counters
  /// round-trip — iterate this instead).
  [[nodiscard]] const std::vector<std::string>& object_keys() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member access; throws when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
  std::vector<std::string> object_order_;  ///< keys in document order
  /// Exact value for non-negative integer tokens: doubles lose precision
  /// above 2^53 and 64-bit seeds must survive a checkpoint round-trip.
  bool exact_uint_ = false;
  std::uint64_t uint_ = 0;

  friend class JsonParser;
  friend void write_json_value(std::ostream& out, const JsonValue& value);
};

/// Re-serialize a parsed node compactly, preserving the document's key
/// order.  For intermediates (checkpoint-journal subtrees, tests), not for
/// golden comparisons — use the typed exporters for those.
void write_json_value(std::ostream& out, const JsonValue& value);

}  // namespace hpm::harness
