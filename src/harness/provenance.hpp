// Build/provenance stamping for exported documents.
//
// Every JSON export (hpm.batch.*, hpm.metrics.v1, hpm.analysis.v1,
// hpm.calibrate.v1, hpm.live.v1) carries a "meta" block so a document can
// be traced back to the code that produced it.  Two halves with different
// stability contracts:
//   * stable half (always written): generator name and the schema-version
//     map — a pure function of the source tree, safe inside byte-stable
//     goldens;
//   * volatile half ("build" sub-block, written only when the caller asks):
//     compiler, build type, git describe, project version — environment-
//     dependent, so deterministic exports (JsonExportOptions::
//     include_timing == false, the golden mode) must omit it.
#pragma once

#include <string>

namespace hpm::harness {

class JsonWriter;

/// Configure-time build facts (compiled in via CMake definitions; every
/// field falls back to "unknown" when the build system did not provide it).
struct BuildInfo {
  std::string compiler;      ///< e.g. "GNU 13.2.0"
  std::string build_type;    ///< e.g. "Release"
  std::string git_describe;  ///< `git describe --always --dirty`
  std::string version;       ///< project version
};

[[nodiscard]] const BuildInfo& build_info();

/// Write `"meta": {...}` into an object the writer currently has open.
/// `include_build` gates the volatile build sub-block (goldens: false).
void write_meta(JsonWriter& writer, bool include_build);

}  // namespace hpm::harness
