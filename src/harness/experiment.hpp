// Experiment harness: wires a machine, an object map, a workload and a
// measurement tool together and runs one experiment — the unit of work
// behind every table and figure reproduction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/exact_profiler.hpp"
#include "core/nway_search.hpp"
#include "core/report.hpp"
#include "core/sampler.hpp"
#include "sim/machine.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_sink.hpp"
#include "workloads/workload.hpp"

namespace hpm::harness {

class JsonlSink;

enum class ToolKind { kNone, kSampler, kSearch };

/// Live-streaming probe for one run (see live_stream.hpp).  Filled in by
/// BatchRunner when live streaming is enabled; a null sink (the default)
/// disables it with zero perturbation — the machine's refs hook is never
/// installed, so the hot path pays one integer test per poll.
struct LiveProbe {
  JsonlSink* sink = nullptr;      ///< not owned
  std::uint64_t every_refs = 0;   ///< sampling period in app references
  std::size_t index = 0;          ///< submission index (stream identity)
  std::string name;               ///< run label for the stream
};

struct RunConfig {
  sim::MachineConfig machine{};
  ToolKind tool = ToolKind::kNone;
  core::SamplerConfig sampler{};
  core::SearchConfig search{};
  core::ToolCosts costs{};
  /// Interval (cycles) for the exact profiler's Figure-5 time series;
  /// 0 disables series capture.
  sim::Cycles series_interval = 0;
  /// Ground-truth profiling below the tool layer (costs nothing simulated).
  bool exact_profile = true;
  /// In-simulator telemetry (metrics registry + phase timeline); disabled by
  /// default so uninstrumented runs pay nothing.
  telemetry::Config telemetry{};
  /// Structured-event sink for this run (not owned; null disables tracing).
  /// Shared across runs it must be thread-safe — the built-in sinks are.
  telemetry::TraceSink* trace_sink = nullptr;
  /// hpm.live.v1 streaming probe (disabled by default).
  LiveProbe live{};
};

struct RunResult {
  sim::MachineStats stats{};
  core::Report actual;     ///< exact per-object miss shares
  core::Report estimated;  ///< the tool's estimate (empty for kNone)
  std::vector<core::ExactProfiler::Series> series;
  core::SearchStats search_stats{};
  std::uint64_t samples = 0;
  bool search_done = false;
  std::uint64_t unattributed_misses = 0;
  /// Per-level cache counters, innermost first.  Populated only for
  /// multi-level machines so single-level exports stay byte-identical to
  /// pre-hierarchy builds.
  std::vector<sim::LevelSnapshot> levels;
  /// Index of the PMU observation level (meaningful when !levels.empty()).
  std::uint64_t observe_level = 0;
  /// Snapshot of the run's telemetry (enabled=false when telemetry was off).
  telemetry::RunMetrics metrics{};
  /// Faults actually injected (all zero when the plan was none()).
  sim::FaultStats fault_stats{};
  /// Sampler hardening counters (nonzero only when the watchdog /
  /// out-of-range filter were enabled).
  std::uint64_t sampler_rearms = 0;
  std::uint64_t samples_discarded = 0;

  // -- Multi-core results (all empty/zero when cores == 1, so single-core
  //    exports stay byte-identical to single-stream builds) ----------------
  /// Per-core machine stats mirrors, core 0 first.
  std::vector<sim::MachineStats> core_stats;
  /// Per-core miss samples taken (samplers run one per core).
  std::vector<std::uint64_t> core_samples;
  /// Per-level MESI coherence counters, innermost first.
  std::vector<sim::CoherenceStats> coherence;
  /// Exact per-object coherence-event shares (ground truth).
  core::Report coherence_actual;
  /// The samplers' merged coherence-event attribution.
  core::Report coherence_estimated;
  /// Coherence samples taken across all cores' samplers.
  std::uint64_t coherence_samples = 0;
  /// Ground-truth coherence events seen by the exact profiler.
  std::uint64_t coherence_events = 0;
};

/// Run `workload` (setup + run) on a fresh machine under `config`.
[[nodiscard]] RunResult run_experiment(const RunConfig& config,
                                       workloads::Workload& workload);

/// Convenience: construct one of the paper workloads by name and run it.
[[nodiscard]] RunResult run_experiment(const RunConfig& config,
                                       std::string_view workload_name,
                                       const workloads::WorkloadOptions&
                                           options = {});

/// A machine config matching the paper's simulator: 2 MB single-level
/// set-associative cache, 16 miss counters, 8,800-cycle interrupts.
[[nodiscard]] sim::MachineConfig paper_machine();

}  // namespace hpm::harness
