#include "harness/replay.hpp"

#include "workloads/workload.hpp"

namespace hpm::harness {

std::vector<ReplayPoint> replay_points(const BatchResult& observed,
                                       std::vector<std::size_t>* skipped) {
  std::vector<ReplayPoint> points;
  points.reserve(observed.items.size());
  for (std::size_t i = 0; i < observed.items.size(); ++i) {
    const BatchItem& item = observed.items[i];
    if (!item.ok || !workloads::is_workload_name(item.spec.workload)) {
      if (skipped != nullptr) skipped->push_back(i);
      continue;
    }
    ReplayPoint point;
    point.name = item.spec.name;
    point.workload = item.spec.workload;
    point.tool = item.spec.config.tool;
    point.options = item.spec.options;
    point.cores = item.spec.config.machine.cores;
    point.item_index = i;
    points.push_back(std::move(point));
  }
  return points;
}

RunSpec replay_spec(const ReplayPoint& point, const RunConfig& base) {
  RunSpec spec;
  spec.name = point.name;
  spec.workload = point.workload;
  spec.options = point.options;
  spec.config = base;
  spec.config.tool = point.tool;
  spec.config.machine.cores = point.cores;
  return spec;
}

}  // namespace hpm::harness
