// Parallel batch experiment engine.
//
// Every table and figure in the reproduction is a sweep over
// (workload x tool x config) points, and each point runs on its own
// freshly constructed Machine — shared-nothing, embarrassingly parallel
// work.  BatchRunner executes a vector of named run specs on a worker
// pool and collects results *in submission order* regardless of
// completion order, so a parallel sweep is byte-identical to the serial
// one.
//
// Determinism contract: the simulator is bit-for-bit reproducible (see
// util/prng.hpp), every run owns its Machine/ObjectMap/Workload, and a
// run's inputs are a pure function of its spec — never of scheduling.
// Hence `run(specs)` with 1 worker and with N workers produce identical
// RunResults, and re-running the same specs is bit-stable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/resilience.hpp"
#include "workloads/workload.hpp"

namespace hpm::harness {

/// One point of a sweep: a named (workload, tool-config) pair.
struct RunSpec {
  std::string name;        ///< label, e.g. "tomcatv/search10"
  std::string workload;    ///< factory name, see workloads::make_workload
  RunConfig config{};
  workloads::WorkloadOptions options{};
};

/// A completed point: the spec echoed back plus its result and metrics.
struct BatchItem {
  RunSpec spec;
  RunResult result;        ///< default-constructed when !ok
  double wall_seconds = 0.0;
  bool ok = false;
  std::string error;       ///< exception message when !ok
  RunOutcome outcome = RunOutcome::kFailed;  ///< kOk/kRetried when ok
  unsigned attempts = 1;   ///< total attempts, including the final one
};

/// Whole-batch observability counters (sums over successful runs).
struct BatchMetrics {
  double wall_seconds = 0.0;  ///< batch wall-clock, submit to last completion
  std::uint64_t virtual_cycles = 0;
  std::uint64_t app_misses = 0;
  std::uint64_t interrupts = 0;
  std::size_t runs = 0;
  std::size_t failed = 0;
  unsigned jobs = 1;  ///< worker count actually used
};

struct BatchResult {
  std::vector<BatchItem> items;  ///< one per spec, in submission order
  BatchMetrics metrics;
};

/// Structured progress sink for a batch run.  Every callback is invoked
/// under one internal mutex, so implementations may mutate their own state
/// without further locking; `worker` is the pool worker index executing the
/// run.  Observability only: observers see results, they never influence
/// them, so the jobs=1 == jobs=N determinism contract is unaffected.
class BatchObserver {
 public:
  virtual ~BatchObserver() = default;
  /// Before any run starts.  `already_done` counts items adopted from a
  /// resume journal; `jobs` is the resolved worker count.
  virtual void on_batch_start(std::size_t /*total*/,
                              std::size_t /*already_done*/,
                              unsigned /*jobs*/) {}
  /// A worker picked up spec `index` (seed already derived if enabled).
  virtual void on_run_start(std::size_t /*index*/, const RunSpec& /*spec*/,
                            unsigned /*worker*/) {}
  /// Attempt `attempts` of spec `index` failed transiently and will be
  /// retried (called before any backoff sleep).
  virtual void on_run_retry(std::size_t /*index*/, const RunSpec& /*spec*/,
                            unsigned /*worker*/, unsigned /*attempts*/,
                            const std::string& /*error*/) {}
  /// Spec `index` finished (ok or not); `done` counts completed runs
  /// including resumed ones.
  virtual void on_run_finish(std::size_t /*done*/, std::size_t /*total*/,
                             std::size_t /*index*/, const BatchItem& /*item*/,
                             unsigned /*worker*/) {}
  /// After the pool drained and metrics were finalized.
  virtual void on_batch_finish(const BatchMetrics& /*metrics*/) {}
};

class BatchRunner {
 public:
  /// Called after each run completes (from a worker thread, serialized by
  /// an internal mutex): (runs completed so far, total, finished item).
  using ProgressFn =
      std::function<void(std::size_t done, std::size_t total,
                         const BatchItem& item)>;

  struct Options {
    unsigned jobs = 1;  ///< worker threads; 0 = hardware concurrency
    ProgressFn on_progress;
    /// Batch-level trace sink (not owned; null disables): each run emits a
    /// complete ('X') event on the worker's row with host-time stamps.
    /// Observability only — never feeds back into results, so the jobs=1 ==
    /// jobs=N determinism contract is unaffected.
    telemetry::TraceSink* sink = nullptr;
    /// Re-seed each run with derived_seed(spec.options.seed, index) so
    /// that specs sharing a base seed still get decorrelated streams.
    /// The derived seed depends only on (base seed, submission index) —
    /// never on scheduling — so the determinism contract holds.  Off by
    /// default: a spec's options are then used exactly as given.
    bool derive_seeds = false;
    /// Retry policy and checkpoint journal (see resilience.hpp).  The
    /// defaults — no retry, no journal — reproduce pre-hardening behaviour
    /// exactly.
    ResilienceOptions resilience{};
    /// Journal from a prior interrupted sweep (not owned).  Entries whose
    /// key matches the spec at their index are adopted without re-running;
    /// a fingerprint mismatch throws before any run starts.
    const CheckpointLoad* resume = nullptr;
    /// Test hook: replaces run_experiment for every run.  Used by the
    /// resilience tests to inject transient failures deterministically.
    std::function<RunResult(const RunSpec& spec, std::size_t index)> runner;
    /// Structured progress sink (not owned; null disables).  Richer than
    /// on_progress: start/retry/finish events with worker attribution.
    /// Use harness::ObserverList to fan out to several observers.
    BatchObserver* observer = nullptr;
    /// Cooperative cancellation (not owned; null disables).  Once the flag
    /// turns true, queued-but-unstarted runs are skipped with
    /// RunOutcome::kCancelled (ok=false, error "cancelled") and are NOT
    /// journaled, so a --resume of the checkpoint re-runs exactly them.
    /// Runs already executing finish normally — cancellation never changes
    /// a completed run's bytes, only which runs happen.
    const std::atomic<bool>* cancel = nullptr;
    /// hpm.live.v1 streaming (see live_stream.hpp): when both are set,
    /// every run gets a LiveProbe wired into its config so the experiment
    /// samples its monitor tree every `live_every_refs` app references and
    /// streams window events to `live_sink` (not owned).  Observability
    /// only — results and exports are byte-identical with streaming on or
    /// off, and live lines never name a worker, so a sorted --jobs N
    /// stream equals the --jobs 1 stream.
    JsonlSink* live_sink = nullptr;
    std::uint64_t live_every_refs = 0;
  };

  BatchRunner();
  explicit BatchRunner(Options options);

  /// Run every spec; blocks until all complete.  A spec that throws
  /// (e.g. unknown workload) yields an item with ok=false and does not
  /// disturb the other runs.
  [[nodiscard]] BatchResult run(const std::vector<RunSpec>& specs) const;

  /// SplitMix64-derived per-run seed: pure function of (base, index).
  [[nodiscard]] static std::uint64_t derived_seed(std::uint64_t base,
                                                  std::size_t index) noexcept;

 private:
  Options options_;
};

/// Identity hash of a spec list (FNV-1a over each spec's name, workload,
/// seed, tool and fault plan), rendered as 16 hex digits.  Stored in the
/// checkpoint-journal header so a resume against different specs is
/// rejected instead of silently mixing results.
[[nodiscard]] std::string spec_fingerprint(const std::vector<RunSpec>& specs);

/// Journal key of one spec: "<name>#<seed>".  Uses the seed as given in
/// the spec (pre-derivation), so resume matching is independent of the
/// derive_seeds option.
[[nodiscard]] std::string checkpoint_key(const RunSpec& spec);

/// Convenience: cartesian-product helper used by sweep front-ends.  For
/// each workload name, emits one spec per (suffix, config) pair with name
/// "<workload>/<suffix>".
[[nodiscard]] std::vector<RunSpec> cross_specs(
    const std::vector<std::string>& workload_names,
    const std::vector<std::pair<std::string, RunConfig>>& tools,
    const std::function<workloads::WorkloadOptions(const std::string&)>&
        options_for);

}  // namespace hpm::harness
