// hpm.live.v1: live counter streaming for batch sweeps.
//
// Streams periodic monitor-tree snapshots on the --progress-jsonl channel,
// interleaved with the ProgressReporter's events.  Live lines are
// distinguished by a versioned "type":"hpm.live.v1" field (progress events
// carry "event" and no "type", so old consumers keep working unchanged).
//
// Event vocabulary (one compact JSON object per line):
//   * stream_start  — once per batch: sampling period + provenance meta;
//   * window        — per run, every K app references: windowed rates from
//                     the run's monitor tree (run → machine → level);
//   * run_total     — per run, at completion: final cumulative values;
//   * batch_rollup  — once, after the last run: the batch-tier rollup of
//                     every completed run (sums only, so the line is
//                     independent of completion order).
//
// Determinism contract: every value is a pure function of the run's spec —
// never of scheduling or wall-clock time — and no line names a worker, so
// sorting the live lines of a --jobs N stream yields the --jobs 1 stream
// byte-for-byte.  Streaming disabled (null sink) costs one integer test
// per reference poll; exported documents are byte-identical either way.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "harness/batch.hpp"
#include "telemetry/monitor_tree.hpp"

namespace hpm::harness {

/// Line-atomic JSONL sink shared by the progress reporter and every live
/// run monitor: each write_line() is one mutex-guarded line, so streams
/// from parallel workers interleave per line, never mid-line.  Backed by a
/// stream, or by an arbitrary write function (hpmserve envelopes each line
/// into an hpm.serve.v1 event and sends it down the client's socket).
class JsonlSink {
 public:
  using WriteFn = std::function<void(std::string_view line)>;

  explicit JsonlSink(std::ostream& out)
      : write_([&out](std::string_view line) {
          out << line << '\n' << std::flush;
        }) {}
  explicit JsonlSink(WriteFn write) : write_(std::move(write)) {}
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  void write_line(std::string_view line) {
    std::lock_guard lock(mutex_);
    write_(line);
  }

 private:
  std::mutex mutex_;
  WriteFn write_;
};

struct LiveStreamOptions {
  JsonlSink* sink = nullptr;       ///< not owned; null disables streaming
  std::uint64_t every_refs = 250'000;  ///< sampling period (app references)
  /// Carry the volatile build sub-block in stream_start's meta.  Tests that
  /// assert byte-identical streams across build environments disable it.
  bool include_build_meta = true;
};

/// Per-run live monitor: owns the run's monitor tree (run → machine →
/// hierarchy level), installs the Machine's app-refs hook, and emits one
/// "window" line per sampling period plus a final "run_total" line.
/// Constructed inside run_experiment when the run config carries a live
/// probe; lives entirely on the worker thread, so only the sink locks.
class LiveRunMonitor {
 public:
  LiveRunMonitor(JsonlSink& sink, std::uint64_t every_refs, std::size_t index,
                 std::string name, sim::Machine& machine);

  /// Final sample + "run_total" line; uninstalls the hook.
  void finish(sim::Machine& machine);

  [[nodiscard]] const telemetry::MonitorTree& tree() const noexcept {
    return tree_;
  }

 private:
  void on_tick(const sim::MachineStats& stats, sim::Machine& machine);
  void feed(const sim::MachineStats& stats, sim::Machine& machine);

  JsonlSink& sink_;
  std::size_t index_;
  std::string name_;
  telemetry::MonitorTree tree_;
  std::uint64_t seq_ = 0;
};

/// Batch-tier streamer: a BatchObserver that emits "stream_start" when the
/// batch begins and the bottom-to-top "batch_rollup" after the last run.
/// Completed runs are folded in keyed by submission index, so the rollup
/// tree (and its OpenMetrics exposition) is independent of completion
/// order.  Pair it with a ProgressReporter via ObserverList.
class LiveStreamer final : public BatchObserver {
 public:
  explicit LiveStreamer(LiveStreamOptions options);

  void on_batch_start(std::size_t total, std::size_t already_done,
                      unsigned jobs) override;
  void on_run_finish(std::size_t done, std::size_t total, std::size_t index,
                     const BatchItem& item, unsigned worker) override;
  void on_batch_finish(const BatchMetrics& metrics) override;

  [[nodiscard]] JsonlSink* sink() const noexcept { return options_.sink; }
  [[nodiscard]] std::uint64_t every_refs() const noexcept {
    return options_.every_refs;
  }
  /// The batch rollup tree (valid after on_batch_finish) — the source for
  /// the OpenMetrics end-of-run exposition (`hpmrun --live-metrics`).
  [[nodiscard]] const telemetry::MonitorTree& batch_tree() const noexcept {
    return tree_;
  }

 private:
  struct RunTotals {
    std::string name;
    bool ok = false;
    sim::MachineStats stats{};
    std::vector<sim::LevelSnapshot> levels;
  };

  LiveStreamOptions options_;
  telemetry::MonitorTree tree_{"batch", "batch"};
  std::map<std::size_t, RunTotals> finished_;  ///< keyed by submission index
};

/// Fan-out observer: forwards every callback to each registered observer
/// in registration order.  Lets the progress reporter and the live
/// streamer share BatchRunner's single observer slot.
class ObserverList final : public BatchObserver {
 public:
  /// Register an observer (not owned; null is ignored).
  void add(BatchObserver* observer);

  void on_batch_start(std::size_t total, std::size_t already_done,
                      unsigned jobs) override;
  void on_run_start(std::size_t index, const RunSpec& spec,
                    unsigned worker) override;
  void on_run_retry(std::size_t index, const RunSpec& spec, unsigned worker,
                    unsigned attempts, const std::string& error) override;
  void on_run_finish(std::size_t done, std::size_t total, std::size_t index,
                     const BatchItem& item, unsigned worker) override;
  void on_batch_finish(const BatchMetrics& metrics) override;

 private:
  std::vector<BatchObserver*> observers_;
};

}  // namespace hpm::harness
