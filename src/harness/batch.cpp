#include "harness/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "harness/json_export.hpp"
#include "harness/thread_pool.hpp"
#include "util/prng.hpp"

namespace hpm::harness {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void fnv_mix(std::uint64_t& hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  hash ^= 0xff;  // field separator so "ab"+"c" != "a"+"bc"
  hash *= 0x100000001b3ULL;
}

void fnv_mix(std::uint64_t& hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
}

}  // namespace

std::string spec_fingerprint(const std::vector<RunSpec>& specs) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  fnv_mix(hash, std::uint64_t{specs.size()});
  for (const RunSpec& spec : specs) {
    fnv_mix(hash, spec.name);
    fnv_mix(hash, spec.workload);
    fnv_mix(hash, spec.options.seed);
    fnv_mix(hash, spec.options.iterations);
    fnv_mix(hash, static_cast<std::uint64_t>(spec.config.tool));
    fnv_mix(hash, describe(spec.config.machine.faults));
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string checkpoint_key(const RunSpec& spec) {
  return spec.name + "#" + std::to_string(spec.options.seed);
}

BatchRunner::BatchRunner() : BatchRunner(Options{}) {}

BatchRunner::BatchRunner(Options options) : options_(std::move(options)) {}

std::uint64_t BatchRunner::derived_seed(std::uint64_t base,
                                        std::size_t index) noexcept {
  // Mix the index in via SplitMix64 so neighbouring runs get decorrelated
  // streams; the golden-zero guard keeps a degenerate (0,0) input from
  // producing a weak all-zero state.
  util::SplitMix64 mixer(base ^ (0x9e3779b97f4a7c15ULL *
                                 (static_cast<std::uint64_t>(index) + 1)));
  return mixer.next();
}

BatchResult BatchRunner::run(const std::vector<RunSpec>& specs) const {
  BatchResult batch;
  batch.items.resize(specs.size());
  const unsigned jobs = ThreadPool::resolve_jobs(options_.jobs);
  batch.metrics.jobs = jobs;

  const std::string fingerprint = spec_fingerprint(specs);

  // Resume: adopt completed items from a prior journal before any run
  // starts.  Keys are validated per entry so a stale index never smuggles
  // a foreign result in.
  std::vector<bool> prefilled(specs.size(), false);
  if (options_.resume != nullptr) {
    if (options_.resume->fingerprint != fingerprint) {
      throw std::runtime_error(
          "checkpoint journal does not match these specs (fingerprint " +
          options_.resume->fingerprint + " != " + fingerprint + ")");
    }
    for (const CheckpointEntry& entry : options_.resume->entries) {
      if (entry.index >= specs.size()) continue;
      if (entry.key != checkpoint_key(specs[entry.index])) continue;
      batch.items[entry.index] = parse_batch_item(entry.item_json);
      prefilled[entry.index] = true;
    }
  }

  std::optional<CheckpointWriter> journal;
  if (!options_.resilience.checkpoint_path.empty()) {
    journal.emplace(options_.resilience.checkpoint_path, fingerprint,
                    specs.size(), /*append=*/options_.resume != nullptr,
                    options_.resilience.checkpoint_every);
  }

  const auto batch_start = Clock::now();
  std::mutex progress_mutex;
  std::size_t done = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (prefilled[i]) ++done;
  }
  if (options_.observer != nullptr) {
    options_.observer->on_batch_start(specs.size(), done, jobs);
  }

  {
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (prefilled[i]) continue;
      pool.submit([this, &specs, &batch, &progress_mutex, &done, &journal,
                   batch_start, i] {
        BatchItem& item = batch.items[i];
        item.spec = specs[i];
        if (options_.cancel != nullptr &&
            options_.cancel->load(std::memory_order_relaxed)) {
          // Skipped, not run: no journal line (a resume must re-run it),
          // but progress still ticks so observers account for every spec.
          item.ok = false;
          item.error = "cancelled";
          item.outcome = RunOutcome::kCancelled;
          item.attempts = 0;
          std::lock_guard lock(progress_mutex);
          ++done;
          if (options_.on_progress) {
            options_.on_progress(done, specs.size(), item);
          }
          if (options_.observer != nullptr) {
            options_.observer->on_run_finish(done, specs.size(), i, item,
                                             ThreadPool::current_worker_index());
          }
          return;
        }
        if (options_.derive_seeds) {
          item.spec.options.seed = derived_seed(specs[i].options.seed, i);
        }
        if (options_.live_sink != nullptr && options_.live_every_refs != 0) {
          // Per-run live probe on the worker's private spec copy; the
          // exported spec is unaffected (LiveProbe is not serialized).
          item.spec.config.live.sink = options_.live_sink;
          item.spec.config.live.every_refs = options_.live_every_refs;
          item.spec.config.live.index = i;
          item.spec.config.live.name = item.spec.name;
        }
        const unsigned worker = ThreadPool::current_worker_index();
        if (options_.observer != nullptr) {
          std::lock_guard lock(progress_mutex);
          options_.observer->on_run_start(i, item.spec, worker);
        }
        const RetryPolicy& retry = options_.resilience.retry;
        const unsigned max_attempts = std::max(1u, retry.max_attempts);
        const auto run_start = Clock::now();
        unsigned attempt = 0;
        for (;;) {
          ++attempt;
          try {
            item.result = options_.runner
                              ? options_.runner(item.spec, i)
                              : run_experiment(item.spec.config,
                                               item.spec.workload,
                                               item.spec.options);
            item.ok = true;
            item.error.clear();
            item.outcome =
                attempt > 1 ? RunOutcome::kRetried : RunOutcome::kOk;
            break;
          } catch (const sim::BudgetExceeded& e) {
            // Budget exhaustion is deterministic for max_cycles — retrying
            // would burn the same cycles again.
            item.error = e.what();
            item.outcome = RunOutcome::kTimedOut;
            break;
          } catch (const TransientError& e) {
            item.error = e.what();
            if (attempt >= max_attempts) {
              item.outcome = RunOutcome::kFailed;
              break;
            }
            if (options_.observer != nullptr) {
              std::lock_guard lock(progress_mutex);
              options_.observer->on_run_retry(i, item.spec, worker, attempt,
                                              item.error);
            }
            const double backoff = retry.backoff_seconds(attempt);
            if (backoff > 0.0) {
              std::this_thread::sleep_for(
                  std::chrono::duration<double>(backoff));
            }
          } catch (const std::exception& e) {
            item.error = e.what();
            item.outcome = RunOutcome::kFailed;
            break;
          } catch (...) {
            item.error = "unknown error";
            item.outcome = RunOutcome::kFailed;
            break;
          }
        }
        item.attempts = attempt;
        item.wall_seconds = seconds_since(run_start);
        if (options_.sink != nullptr) {
          // Host-time complete event on the worker's row.  Timestamps are
          // relative to batch start so traces from different batches line up
          // at t=0.
          const auto to_us = [](Clock::duration d) {
            return static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(d)
                    .count());
          };
          telemetry::TraceEvent event;
          event.category = "batch";
          event.name = item.spec.name;
          event.phase = 'X';
          event.ts = to_us(run_start - batch_start);
          event.dur = to_us(Clock::now() - run_start);
          event.pid = 1;
          event.tid = worker;
          event.args = {{"index", static_cast<std::uint64_t>(i)},
                        {"workload", item.spec.workload},
                        {"worker", std::uint64_t{worker}},
                        {"ok", std::uint64_t{item.ok ? 1u : 0u}}};
          options_.sink->event(event);
        }
        {
          std::lock_guard lock(progress_mutex);
          if (journal) {
            journal->append(
                i, checkpoint_key(specs[i]),
                to_json(item, {.include_timing = true, .indent = 0}));
          }
          ++done;
          if (options_.on_progress) {
            options_.on_progress(done, specs.size(), item);
          }
          if (options_.observer != nullptr) {
            options_.observer->on_run_finish(done, specs.size(), i, item,
                                             worker);
          }
        }
      });
    }
    pool.wait_idle();
  }

  batch.metrics.wall_seconds = seconds_since(batch_start);
  batch.metrics.runs = batch.items.size();
  for (const auto& item : batch.items) {
    if (!item.ok) {
      ++batch.metrics.failed;
      continue;
    }
    batch.metrics.virtual_cycles += item.result.stats.total_cycles();
    batch.metrics.app_misses += item.result.stats.app_misses;
    batch.metrics.interrupts += item.result.stats.interrupts;
  }
  if (options_.observer != nullptr) {
    options_.observer->on_batch_finish(batch.metrics);
  }
  return batch;
}

std::vector<RunSpec> cross_specs(
    const std::vector<std::string>& workload_names,
    const std::vector<std::pair<std::string, RunConfig>>& tools,
    const std::function<workloads::WorkloadOptions(const std::string&)>&
        options_for) {
  std::vector<RunSpec> specs;
  specs.reserve(workload_names.size() * tools.size());
  for (const auto& workload : workload_names) {
    for (const auto& [suffix, config] : tools) {
      RunSpec spec;
      spec.name = workload + "/" + suffix;
      spec.workload = workload;
      spec.config = config;
      if (options_for) spec.options = options_for(workload);
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

}  // namespace hpm::harness
