#include "harness/batch.hpp"

#include <chrono>
#include <exception>
#include <mutex>
#include <utility>

#include "harness/thread_pool.hpp"
#include "util/prng.hpp"

namespace hpm::harness {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

BatchRunner::BatchRunner() : BatchRunner(Options{}) {}

BatchRunner::BatchRunner(Options options) : options_(std::move(options)) {}

std::uint64_t BatchRunner::derived_seed(std::uint64_t base,
                                        std::size_t index) noexcept {
  // Mix the index in via SplitMix64 so neighbouring runs get decorrelated
  // streams; the golden-zero guard keeps a degenerate (0,0) input from
  // producing a weak all-zero state.
  util::SplitMix64 mixer(base ^ (0x9e3779b97f4a7c15ULL *
                                 (static_cast<std::uint64_t>(index) + 1)));
  return mixer.next();
}

BatchResult BatchRunner::run(const std::vector<RunSpec>& specs) const {
  BatchResult batch;
  batch.items.resize(specs.size());
  const unsigned jobs = ThreadPool::resolve_jobs(options_.jobs);
  batch.metrics.jobs = jobs;

  const auto batch_start = Clock::now();
  std::mutex progress_mutex;
  std::size_t done = 0;

  {
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      pool.submit([this, &specs, &batch, &progress_mutex, &done, batch_start,
                   i] {
        BatchItem& item = batch.items[i];
        item.spec = specs[i];
        if (options_.derive_seeds) {
          item.spec.options.seed = derived_seed(specs[i].options.seed, i);
        }
        const auto run_start = Clock::now();
        try {
          item.result = run_experiment(item.spec.config, item.spec.workload,
                                       item.spec.options);
          item.ok = true;
        } catch (const std::exception& e) {
          item.error = e.what();
        } catch (...) {
          item.error = "unknown error";
        }
        item.wall_seconds = seconds_since(run_start);
        if (options_.sink != nullptr) {
          // Host-time complete event on the worker's row.  Timestamps are
          // relative to batch start so traces from different batches line up
          // at t=0.
          const auto to_us = [](Clock::duration d) {
            return static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(d)
                    .count());
          };
          const unsigned worker = ThreadPool::current_worker_index();
          telemetry::TraceEvent event;
          event.category = "batch";
          event.name = item.spec.name;
          event.phase = 'X';
          event.ts = to_us(run_start - batch_start);
          event.dur = to_us(Clock::now() - run_start);
          event.pid = 1;
          event.tid = worker;
          event.args = {{"index", static_cast<std::uint64_t>(i)},
                        {"workload", item.spec.workload},
                        {"worker", std::uint64_t{worker}},
                        {"ok", std::uint64_t{item.ok ? 1u : 0u}}};
          options_.sink->event(event);
        }
        if (options_.on_progress) {
          std::lock_guard lock(progress_mutex);
          options_.on_progress(++done, specs.size(), item);
        } else {
          std::lock_guard lock(progress_mutex);
          ++done;
        }
      });
    }
    pool.wait_idle();
  }

  batch.metrics.wall_seconds = seconds_since(batch_start);
  batch.metrics.runs = batch.items.size();
  for (const auto& item : batch.items) {
    if (!item.ok) {
      ++batch.metrics.failed;
      continue;
    }
    batch.metrics.virtual_cycles += item.result.stats.total_cycles();
    batch.metrics.app_misses += item.result.stats.app_misses;
    batch.metrics.interrupts += item.result.stats.interrupts;
  }
  return batch;
}

std::vector<RunSpec> cross_specs(
    const std::vector<std::string>& workload_names,
    const std::vector<std::pair<std::string, RunConfig>>& tools,
    const std::function<workloads::WorkloadOptions(const std::string&)>&
        options_for) {
  std::vector<RunSpec> specs;
  specs.reserve(workload_names.size() * tools.size());
  for (const auto& workload : workload_names) {
    for (const auto& [suffix, config] : tools) {
      RunSpec spec;
      spec.name = workload + "/" + suffix;
      spec.workload = workload;
      spec.config = config;
      if (options_for) spec.options = options_for(workload);
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

}  // namespace hpm::harness
