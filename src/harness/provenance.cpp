#include "harness/provenance.hpp"

#include "harness/json_export.hpp"

// Stamped by src/harness/CMakeLists.txt at configure time; the fallbacks
// keep non-CMake builds (and tooling that compiles this file standalone)
// working.
#ifndef HPM_BUILD_COMPILER
#define HPM_BUILD_COMPILER "unknown"
#endif
#ifndef HPM_BUILD_TYPE
#define HPM_BUILD_TYPE "unknown"
#endif
#ifndef HPM_GIT_DESCRIBE
#define HPM_GIT_DESCRIBE "unknown"
#endif
#ifndef HPM_PROJECT_VERSION
#define HPM_PROJECT_VERSION "unknown"
#endif

namespace hpm::harness {

const BuildInfo& build_info() {
  static const BuildInfo info{
      HPM_BUILD_COMPILER,
      HPM_BUILD_TYPE[0] != '\0' ? HPM_BUILD_TYPE : "unknown",
      HPM_GIT_DESCRIBE,
      HPM_PROJECT_VERSION,
  };
  return info;
}

void write_meta(JsonWriter& writer, bool include_build) {
  writer.key("meta").begin_object();
  writer.key("generator").value("hpm");
  // Schema-version map: which document versions this tree emits.  Bump a
  // value here whenever the matching exporter's schema string changes.
  writer.key("schemas").begin_object();
  writer.key("hpm.analysis").value(1);
  writer.key("hpm.batch").value(4);
  writer.key("hpm.calibrate").value(1);
  writer.key("hpm.checkpoint").value(1);
  writer.key("hpm.live").value(1);
  writer.key("hpm.metrics").value(1);
  writer.key("hpm.serve").value(1);
  writer.key("hpm.serve.events").value(1);
  writer.end_object();
  if (include_build) {
    const BuildInfo& info = build_info();
    writer.key("build").begin_object();
    writer.key("compiler").value(info.compiler);
    writer.key("build_type").value(info.build_type);
    writer.key("git").value(info.git_describe);
    writer.key("version").value(info.version);
    writer.end_object();
  }
  writer.end_object();
}

}  // namespace hpm::harness
