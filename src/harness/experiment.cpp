#include "harness/experiment.hpp"

#include <algorithm>
#include <optional>

#include "harness/live_stream.hpp"
#include "objmap/object_map.hpp"

namespace hpm::harness {

sim::MachineConfig paper_machine() {
  sim::MachineConfig config;
  config.cache.size_bytes = 2ULL * 1024 * 1024;
  config.cache.line_size = 64;
  config.cache.associativity = 8;
  config.num_miss_counters = 16;
  return config;
}

RunResult run_experiment(const RunConfig& config,
                         workloads::Workload& workload) {
  sim::Machine machine(config.machine);
  objmap::ObjectMap map;
  map.attach(machine.address_space());

  // One telemetry context per run (shared-nothing, like the machine): batch
  // workers never contend and metric ordering is deterministic.  A trace
  // sink alone is enough to switch it on.
  std::optional<telemetry::Telemetry> telem;
  if (config.telemetry.enabled || config.trace_sink != nullptr) {
    telem.emplace(config.telemetry);
    telem->set_sink(config.trace_sink);
    telem->attach(machine);
  }

  // Live monitor tree: samples the machine every K app references and
  // streams hpm.live.v1 window events.  The hook sits below the tool layer
  // and costs no simulated cycles, so results are byte-identical with the
  // probe on or off.
  std::optional<LiveRunMonitor> live;
  if (config.live.sink != nullptr && config.live.every_refs > 0) {
    live.emplace(*config.live.sink, config.live.every_refs,
                 config.live.index, config.live.name, machine);
  }

  core::ExactProfiler profiler(machine, map, config.series_interval);
  if (config.exact_profile) profiler.start();

  {
    telemetry::WallSpan span(config.trace_sink, "run.setup",
                             static_cast<std::uint32_t>(config.live.index));
    workload.setup(machine);
  }

  const bool faulted = !config.machine.faults.none();

  // One tool instance per core: each is constructed and started with its
  // core active, so it installs its handler and arms its counters on that
  // core's PMU.  On a single-core machine the loops degenerate to exactly
  // the old single-tool sequence (byte-identical output).
  const unsigned cores = machine.num_cores();
  std::vector<std::unique_ptr<core::Sampler>> samplers;
  std::vector<std::unique_ptr<core::NWaySearch>> searches;
  switch (config.tool) {
    case ToolKind::kSampler: {
      core::SamplerConfig sampler_config = config.sampler;
      if (faulted) {
        // Auto-harden against the injected faults: detect dropped overflow
        // interrupts via a periodic timer, and refuse to attribute skidded
        // addresses that left the application span.  Explicit settings in
        // the run config win.
        if (sampler_config.watchdog_interval == 0 &&
            config.machine.faults.drop_rate > 0.0) {
          sampler_config.watchdog_interval = 500'000;
        }
        sampler_config.discard_out_of_range = true;
      }
      if (cores > 1 && sampler_config.coherence_period == 0) {
        // Coherence sampling defaults on for multi-core runs; a prime
        // period so the sampler cannot phase-lock onto a regular line
        // ping-pong cycle (the §3.1 aliasing argument applied to MESI
        // traffic).
        sampler_config.coherence_period = 257;
      }
      samplers.reserve(cores);
      for (unsigned c = 0; c < cores; ++c) {
        machine.set_active_core(c);
        auto sampler = std::make_unique<core::Sampler>(
            machine, map, sampler_config, config.costs);
        if (telem) sampler->set_telemetry(&*telem);
        sampler->start();
        samplers.push_back(std::move(sampler));
      }
      machine.set_active_core(0);
      break;
    }
    case ToolKind::kSearch: {
      searches.reserve(cores);
      for (unsigned c = 0; c < cores; ++c) {
        machine.set_active_core(c);
        auto search = std::make_unique<core::NWaySearch>(
            machine, map, config.search, config.costs);
        if (telem) search->set_telemetry(&*telem);
        search->start();
        searches.push_back(std::move(search));
      }
      machine.set_active_core(0);
      break;
    }
    case ToolKind::kNone:
      break;
  }

  {
    telemetry::WallSpan span(config.trace_sink, "run.simulate",
                             static_cast<std::uint32_t>(config.live.index));
    workload.run(machine);
  }

  telemetry::WallSpan collect_span(
      config.trace_sink, "run.collect",
      static_cast<std::uint32_t>(config.live.index));
  RunResult result;
  if (!samplers.empty()) {
    std::vector<core::Report> reports;
    std::vector<core::Report> coherence_reports;
    for (unsigned c = 0; c < cores; ++c) {
      machine.set_active_core(c);
      core::Sampler& sampler = *samplers[c];
      sampler.stop();
      reports.push_back(sampler.report());
      result.samples += sampler.samples_taken();
      result.sampler_rearms += sampler.rearms();
      result.samples_discarded += sampler.discarded_samples();
      result.coherence_samples += sampler.coherence_samples_taken();
      if (cores > 1) {
        coherence_reports.push_back(sampler.coherence_report());
        result.core_samples.push_back(sampler.samples_taken());
      }
    }
    machine.set_active_core(0);
    result.estimated = cores > 1 ? core::merge_reports(reports)
                                 : std::move(reports.front());
    if (cores > 1) {
      result.coherence_estimated = core::merge_reports(coherence_reports);
    }
  }
  if (!searches.empty()) {
    result.search_done = true;
    std::vector<core::Report> reports;
    for (unsigned c = 0; c < cores; ++c) {
      machine.set_active_core(c);
      core::NWaySearch& search = *searches[c];
      result.search_done = result.search_done && search.done();
      search.stop();
      reports.push_back(search.report());
      const core::SearchStats& st = search.stats();
      result.search_stats.iterations += st.iterations;
      result.search_stats.refine_iterations += st.refine_iterations;
      result.search_stats.splits += st.splits;
      result.search_stats.discarded += st.discarded;
      result.search_stats.zero_retained += st.zero_retained;
      result.search_stats.continuations += st.continuations;
      result.search_stats.final_interval =
          std::max(result.search_stats.final_interval, st.final_interval);
    }
    machine.set_active_core(0);
    result.estimated = cores > 1 ? core::merge_reports(reports)
                                 : std::move(reports.front());
  }
  if (config.exact_profile) {
    profiler.stop();
    result.actual = profiler.report();
    result.series = profiler.series();
    result.unattributed_misses = profiler.unattributed_misses();
  }
  if (const sim::FaultInjector* faults = machine.fault_injector()) {
    result.fault_stats = faults->stats();
    if (telem) {
      // Registered only on faulted runs so fault-free metrics exports stay
      // byte-identical to pre-fault-layer builds.
      auto& reg = telem->registry();
      reg.counter("pmu.interrupts_dropped")
          .add(result.fault_stats.interrupts_dropped);
      reg.counter("pmu.skid_refs").add(result.fault_stats.skid_refs);
      reg.counter("pmu.reads_jittered").add(result.fault_stats.reads_jittered);
      reg.counter("pmu.reprograms_delayed")
          .add(result.fault_stats.reprograms_delayed);
    }
  }
  if (machine.hierarchy().num_levels() > 1) {
    result.levels = machine.hierarchy().snapshot();
    result.observe_level = machine.hierarchy().observe_level();
    if (telem) {
      // Registered only on multi-level runs so single-level metrics exports
      // stay byte-identical to pre-hierarchy builds.
      auto& reg = telem->registry();
      for (const sim::LevelSnapshot& level : result.levels) {
        reg.counter("hier." + level.name + ".hits").add(level.hits);
        reg.counter("hier." + level.name + ".misses").add(level.misses);
        reg.counter("hier." + level.name + ".writebacks")
            .add(level.writebacks);
      }
    }
  }
  if (cores > 1) {
    // Multi-core plane: per-core stats mirrors, per-level MESI counters and
    // the coherence attribution reports.  Never populated on single-core
    // machines, so their exports carry no new keys.
    result.core_stats.reserve(cores);
    for (unsigned c = 0; c < cores; ++c) {
      result.core_stats.push_back(machine.core_stats(c));
    }
    result.coherence = machine.hierarchy().coherence_stats();
    if (config.exact_profile) {
      result.coherence_actual = profiler.coherence_report();
      result.coherence_events = profiler.attributed_coherence_events() +
                                profiler.unattributed_coherence_events();
    }
    if (telem) {
      auto& reg = telem->registry();
      for (std::size_t i = 0; i < result.coherence.size(); ++i) {
        const sim::CoherenceStats& level = result.coherence[i];
        const std::string prefix =
            "coh." + machine.hierarchy().level_name(i);
        reg.counter(prefix + ".invalidations")
            .add(level.invalidations_received);
        reg.counter(prefix + ".upgrades").add(level.upgrades);
        reg.counter(prefix + ".sharing_transitions")
            .add(level.sharing_transitions);
        reg.counter(prefix + ".forced_writebacks")
            .add(level.forced_writebacks);
      }
    }
  }
  if (telem) {
    telem->detach(machine);
    result.metrics = telem->snapshot();
  }
  // Final cumulative sample + "run_total" line, after the tool shut down so
  // the totals include every charged cycle.
  if (live) live->finish(machine);
  result.stats = machine.stats();
  return result;
}

RunResult run_experiment(const RunConfig& config,
                         std::string_view workload_name,
                         const workloads::WorkloadOptions& options) {
  auto workload = workloads::make_workload(workload_name, options);
  return run_experiment(config, *workload);
}

}  // namespace hpm::harness
