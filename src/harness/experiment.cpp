#include "harness/experiment.hpp"

#include <optional>

#include "harness/live_stream.hpp"
#include "objmap/object_map.hpp"

namespace hpm::harness {

sim::MachineConfig paper_machine() {
  sim::MachineConfig config;
  config.cache.size_bytes = 2ULL * 1024 * 1024;
  config.cache.line_size = 64;
  config.cache.associativity = 8;
  config.num_miss_counters = 16;
  return config;
}

RunResult run_experiment(const RunConfig& config,
                         workloads::Workload& workload) {
  sim::Machine machine(config.machine);
  objmap::ObjectMap map;
  map.attach(machine.address_space());

  // One telemetry context per run (shared-nothing, like the machine): batch
  // workers never contend and metric ordering is deterministic.  A trace
  // sink alone is enough to switch it on.
  std::optional<telemetry::Telemetry> telem;
  if (config.telemetry.enabled || config.trace_sink != nullptr) {
    telem.emplace(config.telemetry);
    telem->set_sink(config.trace_sink);
    telem->attach(machine);
  }

  // Live monitor tree: samples the machine every K app references and
  // streams hpm.live.v1 window events.  The hook sits below the tool layer
  // and costs no simulated cycles, so results are byte-identical with the
  // probe on or off.
  std::optional<LiveRunMonitor> live;
  if (config.live.sink != nullptr && config.live.every_refs > 0) {
    live.emplace(*config.live.sink, config.live.every_refs,
                 config.live.index, config.live.name, machine);
  }

  core::ExactProfiler profiler(machine, map, config.series_interval);
  if (config.exact_profile) profiler.start();

  {
    telemetry::WallSpan span(config.trace_sink, "run.setup",
                             static_cast<std::uint32_t>(config.live.index));
    workload.setup(machine);
  }

  const bool faulted = !config.machine.faults.none();

  std::unique_ptr<core::Sampler> sampler;
  std::unique_ptr<core::NWaySearch> search;
  switch (config.tool) {
    case ToolKind::kSampler: {
      core::SamplerConfig sampler_config = config.sampler;
      if (faulted) {
        // Auto-harden against the injected faults: detect dropped overflow
        // interrupts via a periodic timer, and refuse to attribute skidded
        // addresses that left the application span.  Explicit settings in
        // the run config win.
        if (sampler_config.watchdog_interval == 0 &&
            config.machine.faults.drop_rate > 0.0) {
          sampler_config.watchdog_interval = 500'000;
        }
        sampler_config.discard_out_of_range = true;
      }
      sampler = std::make_unique<core::Sampler>(machine, map, sampler_config,
                                                config.costs);
      if (telem) sampler->set_telemetry(&*telem);
      sampler->start();
      break;
    }
    case ToolKind::kSearch:
      search = std::make_unique<core::NWaySearch>(machine, map, config.search,
                                                  config.costs);
      if (telem) search->set_telemetry(&*telem);
      search->start();
      break;
    case ToolKind::kNone:
      break;
  }

  {
    telemetry::WallSpan span(config.trace_sink, "run.simulate",
                             static_cast<std::uint32_t>(config.live.index));
    workload.run(machine);
  }

  telemetry::WallSpan collect_span(
      config.trace_sink, "run.collect",
      static_cast<std::uint32_t>(config.live.index));
  RunResult result;
  if (sampler) {
    sampler->stop();
    result.estimated = sampler->report();
    result.samples = sampler->samples_taken();
    result.sampler_rearms = sampler->rearms();
    result.samples_discarded = sampler->discarded_samples();
  }
  if (search) {
    result.search_done = search->done();
    search->stop();
    result.estimated = search->report();
    result.search_stats = search->stats();
  }
  if (config.exact_profile) {
    profiler.stop();
    result.actual = profiler.report();
    result.series = profiler.series();
    result.unattributed_misses = profiler.unattributed_misses();
  }
  if (const sim::FaultInjector* faults = machine.fault_injector()) {
    result.fault_stats = faults->stats();
    if (telem) {
      // Registered only on faulted runs so fault-free metrics exports stay
      // byte-identical to pre-fault-layer builds.
      auto& reg = telem->registry();
      reg.counter("pmu.interrupts_dropped")
          .add(result.fault_stats.interrupts_dropped);
      reg.counter("pmu.skid_refs").add(result.fault_stats.skid_refs);
      reg.counter("pmu.reads_jittered").add(result.fault_stats.reads_jittered);
      reg.counter("pmu.reprograms_delayed")
          .add(result.fault_stats.reprograms_delayed);
    }
  }
  if (machine.hierarchy().num_levels() > 1) {
    result.levels = machine.hierarchy().snapshot();
    result.observe_level = machine.hierarchy().observe_level();
    if (telem) {
      // Registered only on multi-level runs so single-level metrics exports
      // stay byte-identical to pre-hierarchy builds.
      auto& reg = telem->registry();
      for (const sim::LevelSnapshot& level : result.levels) {
        reg.counter("hier." + level.name + ".hits").add(level.hits);
        reg.counter("hier." + level.name + ".misses").add(level.misses);
        reg.counter("hier." + level.name + ".writebacks")
            .add(level.writebacks);
      }
    }
  }
  if (telem) {
    telem->detach(machine);
    result.metrics = telem->snapshot();
  }
  // Final cumulative sample + "run_total" line, after the tool shut down so
  // the totals include every charged cycle.
  if (live) live->finish(machine);
  result.stats = machine.stats();
  return result;
}

RunResult run_experiment(const RunConfig& config,
                         std::string_view workload_name,
                         const workloads::WorkloadOptions& options) {
  auto workload = workloads::make_workload(workload_name, options);
  return run_experiment(config, *workload);
}

}  // namespace hpm::harness
