#include "harness/thread_pool.hpp"

#include <utility>

namespace hpm::harness {
namespace {
thread_local unsigned tl_worker_index = 0;
}  // namespace

unsigned ThreadPool::resolve_jobs(unsigned jobs) noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned ThreadPool::current_worker_index() noexcept {
  return tl_worker_index;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = resolve_jobs(threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    // Hand the error to exactly one waiter and leave the pool reusable.
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(unsigned index) {
  tl_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ set and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      // Deterministic drain-on-failure: the worker survives, remaining
      // tasks still run, and wait_idle() reports the first failure.
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace hpm::harness
