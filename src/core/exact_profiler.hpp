// Ground-truth, zero-cost miss attribution — "measured by lower levels of
// the simulator, separate from the sampling and search code" (§3.1).
//
// Installs a miss observer below the tool layer.  Unlike a Tool, it costs no
// virtual cycles and has no simulated cache footprint, so it never perturbs
// what it measures.  Also records the per-object miss time series behind
// Figure 5.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/report.hpp"
#include "objmap/object_id.hpp"
#include "objmap/object_map.hpp"
#include "sim/machine.hpp"

namespace hpm::core {

class ExactProfiler {
 public:
  /// `series_interval` > 0 enables time-series capture: per-object miss
  /// counts are snapshotted every that-many cycles (Figure 5).
  ExactProfiler(sim::Machine& machine, const objmap::ObjectMap& map,
                sim::Cycles series_interval = 0);

  /// Start observing (replaces any previously installed miss observer).
  void start();
  /// Stop observing and close the current series interval.
  void stop();

  [[nodiscard]] Report report() const;
  [[nodiscard]] std::uint64_t attributed_misses() const noexcept {
    return attributed_;
  }
  [[nodiscard]] std::uint64_t unattributed_misses() const noexcept {
    return unattributed_;
  }

  // -- Coherence ground truth (multi-core) -----------------------------------
  /// Exact per-object shares of MESI coherence events, observed below the
  /// tool layer via Machine::set_coherence_observer.  Empty on single-core
  /// machines (the observer is only installed when the machine has > 1
  /// core, so the single-core path stays untouched).
  [[nodiscard]] Report coherence_report() const;
  [[nodiscard]] std::uint64_t attributed_coherence_events() const noexcept {
    return coh_attributed_;
  }
  [[nodiscard]] std::uint64_t unattributed_coherence_events() const noexcept {
    return coh_unattributed_;
  }

  // -- Time series (Figure 5) ------------------------------------------------
  struct Series {
    std::string name;
    objmap::ObjectRef ref{};
    std::vector<std::uint64_t> misses_per_interval;
  };
  /// One entry per object that ever missed; intervals are uniform in cycles.
  [[nodiscard]] std::vector<Series> series() const;
  [[nodiscard]] sim::Cycles series_interval() const noexcept {
    return series_interval_;
  }
  [[nodiscard]] std::size_t interval_count() const noexcept {
    return intervals_closed_;
  }

 private:
  void on_miss(sim::Addr addr);
  void on_coherence(sim::Addr addr);
  void roll_intervals();

  sim::Machine& machine_;
  const objmap::ObjectMap& map_;
  sim::Cycles series_interval_;
  sim::Cycles next_interval_end_ = 0;
  std::size_t intervals_closed_ = 0;

  struct PerObject {
    std::uint64_t total = 0;
    std::uint64_t current_interval = 0;
    std::vector<std::uint64_t> history;
  };
  std::unordered_map<objmap::ObjectRef, PerObject, objmap::ObjectRefHash>
      counts_;
  std::unordered_map<objmap::ObjectRef, std::uint64_t, objmap::ObjectRefHash>
      coh_counts_;
  std::uint64_t attributed_ = 0;
  std::uint64_t unattributed_ = 0;
  std::uint64_t coh_attributed_ = 0;
  std::uint64_t coh_unattributed_ = 0;
  bool running_ = false;
  bool observing_coherence_ = false;
};

}  // namespace hpm::core
