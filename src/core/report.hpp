// Measurement results: ranked program objects with estimated shares of all
// cache misses — the information Tables 1 and 2 of the paper present.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "objmap/object_id.hpp"
#include "util/table.hpp"

namespace hpm::core {

struct ReportRow {
  std::string name;
  objmap::ObjectRef ref{};
  std::uint64_t count = 0;  ///< raw counter value (misses or samples)
  double percent = 0.0;     ///< estimated share of all cache misses
};

class Report {
 public:
  Report() = default;
  /// Rows are sorted by descending percent (ties by name for determinism).
  explicit Report(std::vector<ReportRow> rows, std::uint64_t total_count);

  [[nodiscard]] const std::vector<ReportRow>& rows() const& noexcept {
    return rows_;
  }
  /// rvalue overload: calling rows() on a temporary (e.g.
  /// `tool.report().rows()`) moves the rows out instead of returning a
  /// reference into a dying object.
  [[nodiscard]] std::vector<ReportRow> rows() && noexcept {
    return std::move(rows_);
  }
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

  /// 1-based rank of the named object; 0 if absent.
  [[nodiscard]] std::size_t rank_of(std::string_view name) const;
  /// Estimated percent for the named object, if present.
  [[nodiscard]] std::optional<double> percent_of(std::string_view name) const;

  /// Drop rows whose share is below `min_percent` (the paper excludes
  /// objects causing less than 0.01% of misses from its tables).
  [[nodiscard]] Report filtered(double min_percent) const;
  /// Keep only the top `k` rows.
  [[nodiscard]] Report top(std::size_t k) const;

  struct Comparison {
    std::size_t objects_compared = 0;
    double max_abs_error = 0.0;    ///< max |actual% - estimated%| over union
    double mean_abs_error = 0.0;
    double order_agreement = 1.0;  ///< pairwise order consistency in [0,1]
    std::size_t missing = 0;       ///< actual objects absent from estimate
  };
  /// Score `estimated` against ground truth over the top `top_k` actual
  /// objects.
  [[nodiscard]] static Comparison compare(const Report& actual,
                                          const Report& estimated,
                                          std::size_t top_k);

 private:
  std::vector<ReportRow> rows_;
  std::uint64_t total_ = 0;
};

/// Merge per-core reports into one machine-wide report: rows are summed by
/// object name (the ref of the first appearance is kept) and percents are
/// recomputed against the merged total.  The harness uses this to fold the
/// per-core samplers'/searchers' views into the single table the paper
/// presents.
[[nodiscard]] Report merge_reports(const std::vector<Report>& reports);

// -- Comparison tables --------------------------------------------------------
//
// The paper's Tables 1-2, hpmrun's single-run output, and the HTML report
// all print the same shape: per top-k actual object, the actual rank and
// miss share next to each estimate's rank and share (blank when the
// estimate missed the object entirely).  These helpers are the single
// implementation of that shape.

/// One comparison block: ground truth plus any number of named estimates.
struct ComparisonTableSpec {
  /// First-column value (e.g. the application name), printed on the first
  /// row only; empty prints nothing.
  std::string label;
  const Report* actual = nullptr;  ///< ground truth, already filtered
  std::vector<const Report*> estimates;
  std::size_t top_k = 8;  ///< actual objects listed
  int precision = 1;      ///< decimal places on percent cells
};

/// Build an empty table with the canonical header layout:
/// {label_header, "object", "actual rank", "actual %"} then
/// {"<name> rank", "<name> %"} per estimate name.
[[nodiscard]] util::Table make_comparison_table(
    std::string_view label_header,
    const std::vector<std::string>& estimate_names);

/// Append one row per top-k actual object.  Ranks are looked up in the
/// full (filtered) reports, so an object's estimate rank can exceed top_k.
void append_comparison_rows(util::Table& table,
                            const ComparisonTableSpec& spec);

}  // namespace hpm::core
