// Region state tracked by the n-way search.
#pragma once

#include <cstdint>
#include <optional>

#include "objmap/object_id.hpp"
#include "sim/types.hpp"

namespace hpm::core {

struct Region {
  sim::AddrRange range{};
  /// Latest estimate of this region's share of all misses, in percent.  For
  /// single-object regions this is the running average over all
  /// measurements (paper §2.2).
  double percent = 0.0;
  double percent_sum = 0.0;        ///< accumulator behind the average
  std::uint32_t measurements = 0;  ///< how many intervals measured this
  std::uint32_t zero_streak = 0;   ///< consecutive zero-miss intervals
  std::uint32_t depth = 0;         ///< splits from the initial partition
  /// Live objects overlapping the region, saturated at 2 ("2 or more").
  std::uint32_t object_count = 0;
  bool single_object = false;      ///< exactly one object overlaps
  std::optional<objmap::ObjectRef> object;  ///< set iff single_object

  /// Record one interval's estimate; single-object regions average.
  void record(double pct) noexcept {
    percent_sum += pct;
    ++measurements;
    percent = single_object
                  ? percent_sum / static_cast<double>(measurements)
                  : pct;
  }
};

}  // namespace hpm::core
