#include "core/exact_profiler.hpp"

#include <algorithm>

namespace hpm::core {

ExactProfiler::ExactProfiler(sim::Machine& machine,
                             const objmap::ObjectMap& map,
                             sim::Cycles series_interval)
    : machine_(machine), map_(map), series_interval_(series_interval) {}

void ExactProfiler::start() {
  running_ = true;
  if (series_interval_ > 0) {
    next_interval_end_ = machine_.now() + series_interval_;
  }
  machine_.set_miss_observer([this](sim::Addr addr, bool is_tool) {
    if (!is_tool) on_miss(addr);
  });
  if (machine_.num_cores() > 1) {
    observing_coherence_ = true;
    machine_.set_coherence_observer(
        [this](unsigned /*core*/, sim::Addr addr,
               sim::CoherenceEventKind /*kind*/) { on_coherence(addr); });
  }
}

void ExactProfiler::stop() {
  if (!running_) return;
  running_ = false;
  machine_.set_miss_observer(nullptr);
  if (observing_coherence_) {
    observing_coherence_ = false;
    machine_.set_coherence_observer(nullptr);
  }
  if (series_interval_ > 0) roll_intervals();
}

void ExactProfiler::on_miss(sim::Addr addr) {
  // Close every interval boundary we have passed; a long miss-free gap
  // produces empty intervals, keeping the series uniform in time.
  if (series_interval_ > 0) {
    while (machine_.now() >= next_interval_end_) {
      roll_intervals();
      next_interval_end_ += series_interval_;
    }
  }
  auto lookup = map_.resolve(addr);
  if (!lookup.found) {
    ++unattributed_;
    return;
  }
  ++attributed_;
  PerObject& po = counts_[lookup.ref];
  ++po.total;
  ++po.current_interval;
}

void ExactProfiler::on_coherence(sim::Addr addr) {
  auto lookup = map_.resolve(addr);
  if (!lookup.found) {
    ++coh_unattributed_;
    return;
  }
  ++coh_attributed_;
  ++coh_counts_[lookup.ref];
}

void ExactProfiler::roll_intervals() {
  ++intervals_closed_;
  for (auto& [ref, po] : counts_) {
    po.history.push_back(po.current_interval);
    po.current_interval = 0;
  }
}

Report ExactProfiler::report() const {
  std::vector<ReportRow> rows;
  std::uint64_t total = 0;
  for (const auto& [ref, po] : counts_) total += po.total;
  rows.reserve(counts_.size());
  for (const auto& [ref, po] : counts_) {
    rows.push_back(ReportRow{
        .name = map_.display_name(ref),
        .ref = ref,
        .count = po.total,
        .percent = total == 0 ? 0.0
                              : 100.0 * static_cast<double>(po.total) /
                                    static_cast<double>(total)});
  }
  return Report(std::move(rows), total);
}

Report ExactProfiler::coherence_report() const {
  std::vector<ReportRow> rows;
  std::uint64_t total = 0;
  for (const auto& [ref, count] : coh_counts_) total += count;
  rows.reserve(coh_counts_.size());
  for (const auto& [ref, count] : coh_counts_) {
    rows.push_back(ReportRow{
        .name = map_.display_name(ref),
        .ref = ref,
        .count = count,
        .percent = total == 0 ? 0.0
                              : 100.0 * static_cast<double>(count) /
                                    static_cast<double>(total)});
  }
  return Report(std::move(rows), total);
}

std::vector<ExactProfiler::Series> ExactProfiler::series() const {
  std::vector<Series> out;
  out.reserve(counts_.size());
  for (const auto& [ref, po] : counts_) {
    Series s;
    s.name = map_.display_name(ref);
    s.ref = ref;
    s.misses_per_interval = po.history;
    // Objects first seen after interval 0 have shorter histories; left-pad
    // with zeros so all series align.
    if (s.misses_per_interval.size() < intervals_closed_) {
      s.misses_per_interval.insert(
          s.misses_per_interval.begin(),
          intervals_closed_ - s.misses_per_interval.size(), 0);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const Series& a, const Series& b) {
    return a.name < b.name;
  });
  return out;
}

}  // namespace hpm::core
