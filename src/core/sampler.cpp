#include "core/sampler.hpp"

#include <stdexcept>

#include "core/primes.hpp"

namespace hpm::core {

Sampler::Sampler(sim::Machine& machine, objmap::ObjectMap& map,
                 SamplerConfig config, ToolCosts costs)
    : Tool(machine, map, costs),
      config_(config),
      rng_(config.seed),
      current_period_(config.period) {
  if (config_.period == 0) {
    throw std::invalid_argument("SamplerConfig: period must be > 0");
  }
  if (config_.policy == PeriodPolicy::kPrime) {
    current_period_ = next_prime(config_.period);
  }
  // Simulated storage for the sample-count table.
  slots_base_ = machine_.address_space().alloc_instr(kMaxSlots * 8, 64);
}

std::uint64_t Sampler::next_period() {
  switch (config_.policy) {
    case PeriodPolicy::kFixed:
      return config_.period;
    case PeriodPolicy::kPrime:
      return next_prime(config_.period);
    case PeriodPolicy::kPseudoRandom: {
      const std::uint64_t half = std::max<std::uint64_t>(config_.period / 2, 1);
      return half + rng_.next_below(config_.period);
    }
  }
  return config_.period;
}

sim::Addr Sampler::count_slot(objmap::ObjectRef) {
  if (slots_used_ >= kMaxSlots) {
    throw std::length_error("Sampler: count table full");
  }
  const sim::Addr shadow = slots_base_ + slots_used_ * 8;
  ++slots_used_;
  return shadow;
}

void Sampler::start() {
  started_at_ = machine_.now();
  if (telem_ != nullptr) {
    auto& reg = telem_->registry();
    c_interrupts_ = &reg.counter("sampler.interrupts");
    c_attributed_ = &reg.counter("sampler.samples.attributed");
    c_unresolved_ = &reg.counter("sampler.samples.unresolved");
    cy_handler_ = &reg.counter("tool_cycles.sampler.handler");
    cy_counter_io_ = &reg.counter("tool_cycles.sampler.counter_io");
    cy_count_update_ = &reg.counter("tool_cycles.sampler.count_update");
    probe_cycles_ = &reg.counter("tool_cycles.sampler.probes");
    h_period_ = &reg.histogram(
        "sampler.period", {1e2, 1e3, 1e4, 1e5, 1e6, 1e7});
    // Registered only when the corresponding hardening feature is on, so
    // fault-free metrics exports stay byte-identical.
    if (config_.watchdog_interval != 0) {
      c_rearms_ = &reg.counter("sampler.rearms");
    }
    if (config_.discard_out_of_range) {
      c_discarded_ = &reg.counter("sampler.samples.discarded");
    }
    if (config_.coherence_period != 0) {
      c_coh_interrupts_ = &reg.counter("sampler.coherence.interrupts");
      c_coh_attributed_ = &reg.counter("sampler.coherence.attributed");
      c_coh_unresolved_ = &reg.counter("sampler.coherence.unresolved");
    }
  }
  machine_.set_handler(this);
  machine_.arm_miss_overflow(current_period_);
  if (config_.coherence_period != 0) {
    machine_.arm_coherence_overflow(config_.coherence_period);
  }
  if (config_.watchdog_interval != 0) {
    machine_.arm_timer_in(config_.watchdog_interval);
  }
}

void Sampler::stop() {
  machine_.pmu().disarm_overflow();
  if (config_.coherence_period != 0) {
    machine_.pmu().disarm_coherence_overflow();
  }
  if (config_.watchdog_interval != 0) machine_.disarm_timer();
  machine_.set_handler(nullptr);
}

void Sampler::on_interrupt(sim::Machine& machine, sim::InterruptKind kind) {
  if (kind == sim::InterruptKind::kCycleTimer &&
      config_.watchdog_interval != 0) {
    // Dropped-interrupt watchdog: the overflow countdown reached zero
    // (armed went down) but no interrupt is pending and none was delivered
    // — the interrupt was lost.  Re-arm so sampling continues.  A skidding
    // delivery keeps pending up, so it is never mistaken for a drop.
    charge(cy_handler_, costs_.handler_entry);
    if (!machine.pmu().overflow_armed() && !machine.pmu().overflow_pending()) {
      ++rearms_;
      if (c_rearms_ != nullptr) c_rearms_->inc();
      machine.arm_miss_overflow(current_period_);
      charge(cy_counter_io_, costs_.counter_write);
    }
    machine.arm_timer_in(config_.watchdog_interval);
    return;
  }
  if (kind == sim::InterruptKind::kCoherenceOverflow) {
    on_coherence_overflow(machine);
    return;
  }
  if (kind != sim::InterruptKind::kMissOverflow) return;
  charge(cy_handler_, costs_.handler_entry);
  if (c_interrupts_ != nullptr) c_interrupts_->inc();
  if (h_period_ != nullptr) {
    h_period_->record(static_cast<double>(current_period_));
  }

  // Read the last-miss-address register and attribute the miss.
  const sim::Addr addr = machine.pmu().last_miss_address();
  charge(cy_counter_io_, costs_.counter_read);
  if (tracing()) {
    telem_->emit({.category = "sampler",
                  .name = "interrupt",
                  .phase = 'i',
                  .ts = machine.now(),
                  .args = {{"addr", addr}, {"period", current_period_}}});
  }

  if (config_.discard_out_of_range) {
    const sim::AddrRange span =
        machine.address_space().layout().application_span();
    if (addr == sim::kNullAddr || addr < span.base || addr >= span.bound) {
      // Skid or a tool-plane miss left a non-application address in the
      // last-miss register; attributing it would charge the wrong object.
      ++discarded_;
      if (c_discarded_ != nullptr) c_discarded_->inc();
      current_period_ = next_period();
      machine.arm_miss_overflow(current_period_);
      charge(cy_counter_io_, costs_.counter_write);
      return;
    }
  }

  auto lookup = map_.resolve(addr);
  replay_probes(lookup.shadow_path);
  ++samples_;
  if (lookup.found) {
    Slot& slot = counts_[lookup.ref];
    if (slot.shadow == sim::kNullAddr) {
      // First sample for this object: assign its simulated count slot.
      slot.shadow = count_slot(lookup.ref);
    }
    ++slot.count;
    const auto v = machine.tool_load<std::uint64_t>(slot.shadow);
    machine.tool_store<std::uint64_t>(slot.shadow, v + 1);
    charge(cy_count_update_, costs_.count_update);
    if (c_attributed_ != nullptr) c_attributed_->inc();
    if (tracing()) {
      telem_->emit({.category = "sampler",
                    .name = "attribute",
                    .phase = 'i',
                    .ts = machine.now(),
                    .args = {{"addr", addr},
                             {"object", map_.display_name(lookup.ref)},
                             {"count", slot.count}}});
    }
  } else {
    ++unresolved_;
    if (c_unresolved_ != nullptr) c_unresolved_->inc();
  }

  // Auto-tuned period (§5): scale toward the target interrupt rate.
  if (config_.target_interrupts_per_gcycle > 0 && samples_ % 64 == 0) {
    const sim::Cycles elapsed = machine.now() - started_at_;
    if (elapsed > 0) {
      const double rate = static_cast<double>(samples_) * 1e9 /
                          static_cast<double>(elapsed);
      const double ratio =
          rate / static_cast<double>(config_.target_interrupts_per_gcycle);
      if (ratio > 1.25) {
        current_period_ = current_period_ + current_period_ / 4;
      } else if (ratio < 0.8 && current_period_ > 4) {
        current_period_ = current_period_ - current_period_ / 5;
      }
      config_.period = current_period_;
    }
  } else {
    current_period_ = next_period();
  }

  // Re-arm: "after which the process is repeated".
  machine.arm_miss_overflow(current_period_);
  charge(cy_counter_io_, costs_.counter_write);
}

// Coherence-event sample: same attribute-and-re-arm loop as the miss path,
// driven by the PMU's last-coherence-address register.  The period stays
// fixed — coherence traffic is bursty by nature (line ping-pong), so the
// decorrelation policies for periodic miss patterns do not apply.
void Sampler::on_coherence_overflow(sim::Machine& machine) {
  charge(cy_handler_, costs_.handler_entry);
  if (c_coh_interrupts_ != nullptr) c_coh_interrupts_->inc();

  const sim::Addr addr = machine.pmu().last_coherence_address();
  charge(cy_counter_io_, costs_.counter_read);
  if (tracing()) {
    telem_->emit({.category = "sampler",
                  .name = "coherence_interrupt",
                  .phase = 'i',
                  .ts = machine.now(),
                  .args = {{"addr", addr},
                           {"period", config_.coherence_period}}});
  }

  auto lookup = map_.resolve(addr);
  replay_probes(lookup.shadow_path);
  ++coherence_samples_;
  if (lookup.found) {
    Slot& slot = coherence_counts_[lookup.ref];
    if (slot.shadow == sim::kNullAddr) {
      slot.shadow = count_slot(lookup.ref);
    }
    ++slot.count;
    const auto v = machine.tool_load<std::uint64_t>(slot.shadow);
    machine.tool_store<std::uint64_t>(slot.shadow, v + 1);
    charge(cy_count_update_, costs_.count_update);
    if (c_coh_attributed_ != nullptr) c_coh_attributed_->inc();
  } else {
    ++coherence_unresolved_;
    if (c_coh_unresolved_ != nullptr) c_coh_unresolved_->inc();
  }

  machine.arm_coherence_overflow(config_.coherence_period);
  charge(cy_counter_io_, costs_.counter_write);
}

Report Sampler::make_report(const SlotMap& counts) const {
  std::uint64_t total = 0;
  for (const auto& [ref, slot] : counts) total += slot.count;

  std::vector<ReportRow> rows;
  if (config_.aggregate_sites) {
    // Fold heap blocks with a named allocation site into one row.
    std::unordered_map<std::string, std::uint64_t> grouped;
    std::vector<std::pair<objmap::ObjectRef, std::uint64_t>> singles;
    for (const auto& [ref, slot] : counts) {
      if (auto site = map_.site_group_name(ref)) {
        grouped[*site] += slot.count;
      } else {
        singles.emplace_back(ref, slot.count);
      }
    }
    for (const auto& [name, count] : grouped) {
      rows.push_back(
          {name, {}, count,
           total ? 100.0 * static_cast<double>(count) /
                       static_cast<double>(total)
                 : 0.0});
    }
    for (const auto& [ref, count] : singles) {
      rows.push_back({map_.display_name(ref), ref, count,
                      total ? 100.0 * static_cast<double>(count) /
                                  static_cast<double>(total)
                            : 0.0});
    }
  } else {
    rows.reserve(counts.size());
    for (const auto& [ref, slot] : counts) {
      rows.push_back({map_.display_name(ref), ref, slot.count,
                      total ? 100.0 * static_cast<double>(slot.count) /
                                  static_cast<double>(total)
                            : 0.0});
    }
  }
  return Report(std::move(rows), total);
}

Report Sampler::report() const { return make_report(counts_); }

Report Sampler::coherence_report() const {
  return make_report(coherence_counts_);
}

}  // namespace hpm::core
