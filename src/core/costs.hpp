// Virtual-cycle costs of instrumentation-tool operations.
//
// The paper charges instrumentation in virtual cycles: ~9,000 cycles per
// sampling interrupt (8,800 of which is OS signal delivery) and 26,000 to
// 64,000 cycles per search interrupt.  The interrupt delivery cost lives in
// sim::CycleModel; these constants cover the handler's own compute and are
// calibrated so the per-interrupt totals land in the paper's ranges.
#pragma once

#include "sim/types.hpp"

namespace hpm::core {

struct ToolCosts {
  sim::Cycles handler_entry = 60;    ///< prologue/epilogue of the handler
  sim::Cycles per_probe = 12;        ///< per data-structure node examined
  sim::Cycles counter_read = 40;     ///< read one PMU counter
  sim::Cycles counter_write = 80;    ///< program base/bounds + clear
  sim::Cycles pq_op = 90;            ///< one priority-queue operation
  sim::Cycles split_op = 2'000;      ///< split a region (midpoint + snap)
  sim::Cycles count_update = 15;     ///< bump one per-object sample count
  sim::Cycles region_admin = 1'400;  ///< bookkeeping per region per iteration
};

}  // namespace hpm::core
