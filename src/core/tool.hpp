// Base class for measurement tools (the paper's "instrumentation code").
//
// Tools run inside the simulation: every lookup they perform against their
// own data structures is replayed through the simulated cache (shadow
// touches) and every unit of work is charged virtual cycles.  This is the
// mechanism behind the paper's perturbation (Figure 3) and overhead
// (Figure 4) results.
#pragma once

#include <span>

#include "core/costs.hpp"
#include "objmap/object_map.hpp"
#include "sim/interrupt.hpp"
#include "sim/machine.hpp"
#include "telemetry/telemetry.hpp"

namespace hpm::core {

class Tool : public sim::InterruptHandler {
 public:
  Tool(sim::Machine& machine, objmap::ObjectMap& map, ToolCosts costs = {})
      : machine_(machine), map_(map), costs_(costs) {}

  Tool(const Tool&) = delete;
  Tool& operator=(const Tool&) = delete;

  /// Install as the machine's interrupt handler and arm interrupts.
  virtual void start() = 0;
  /// Disarm; the machine keeps running unmeasured.
  virtual void stop() = 0;

  /// Attach a telemetry context (not owned; null disables).  Must be set
  /// before start() — tools register their instruments there.
  void set_telemetry(telemetry::Telemetry* telemetry) noexcept {
    telem_ = telemetry;
  }

  [[nodiscard]] const ToolCosts& costs() const noexcept { return costs_; }

 protected:
  /// Replay the cache footprint of a data-structure walk: touch each shadow
  /// address and charge per-probe compute.
  void replay_probes(std::span<const sim::Addr> shadow_path) {
    for (sim::Addr a : shadow_path) {
      if (a != sim::kNullAddr) machine_.tool_touch(a);
    }
    charge(probe_cycles_, costs_.per_probe * shadow_path.size());
  }

  /// Charge handler compute and attribute it to an instrumentation site
  /// (a "tool_cycles.<site>" counter); `site` is null when telemetry is
  /// off, making the attribution free to skip.
  void charge(telemetry::Counter* site, sim::Cycles cycles) {
    machine_.tool_exec(cycles);
    if (site != nullptr) site->add(cycles);
  }

  [[nodiscard]] bool tracing() const noexcept {
    return telem_ != nullptr && telem_->tracing();
  }

  sim::Machine& machine_;
  objmap::ObjectMap& map_;
  ToolCosts costs_;
  telemetry::Telemetry* telem_ = nullptr;
  /// Site counter for replay_probes; subclasses set it at start().
  telemetry::Counter* probe_cycles_ = nullptr;
};

}  // namespace hpm::core
