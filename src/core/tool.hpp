// Base class for measurement tools (the paper's "instrumentation code").
//
// Tools run inside the simulation: every lookup they perform against their
// own data structures is replayed through the simulated cache (shadow
// touches) and every unit of work is charged virtual cycles.  This is the
// mechanism behind the paper's perturbation (Figure 3) and overhead
// (Figure 4) results.
#pragma once

#include <span>

#include "core/costs.hpp"
#include "objmap/object_map.hpp"
#include "sim/interrupt.hpp"
#include "sim/machine.hpp"

namespace hpm::core {

class Tool : public sim::InterruptHandler {
 public:
  Tool(sim::Machine& machine, objmap::ObjectMap& map, ToolCosts costs = {})
      : machine_(machine), map_(map), costs_(costs) {}

  Tool(const Tool&) = delete;
  Tool& operator=(const Tool&) = delete;

  /// Install as the machine's interrupt handler and arm interrupts.
  virtual void start() = 0;
  /// Disarm; the machine keeps running unmeasured.
  virtual void stop() = 0;

  [[nodiscard]] const ToolCosts& costs() const noexcept { return costs_; }

 protected:
  /// Replay the cache footprint of a data-structure walk: touch each shadow
  /// address and charge per-probe compute.
  void replay_probes(std::span<const sim::Addr> shadow_path) {
    for (sim::Addr a : shadow_path) {
      if (a != sim::kNullAddr) machine_.tool_touch(a);
    }
    machine_.tool_exec(costs_.per_probe * shadow_path.size());
  }

  sim::Machine& machine_;
  objmap::ObjectMap& map_;
  ToolCosts costs_;
};

}  // namespace hpm::core
