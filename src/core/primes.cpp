#include "core/primes.hpp"

namespace hpm::core {

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  if (n < 4) return true;
  if (n % 2 == 0 || n % 3 == 0) return false;
  // 6k +/- 1 trial division; sampling periods are small enough that this is
  // instantaneous.
  for (std::uint64_t i = 5; i * i <= n; i += 6) {
    if (n % i == 0 || n % (i + 2) == 0) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  std::uint64_t c = n | 1;  // first odd >= n
  while (!is_prime(c)) c += 2;
  return c;
}

}  // namespace hpm::core
