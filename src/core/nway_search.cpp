#include "core/nway_search.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpm::core {

NWaySearch::NWaySearch(sim::Machine& machine, objmap::ObjectMap& map,
                       SearchConfig config, ToolCosts costs)
    : Tool(machine, map, costs),
      config_(config),
      interval_(config.initial_interval) {
  if (config_.n < 2) {
    throw std::invalid_argument("SearchConfig: n must be >= 2");
  }
  if (config_.physical_counters > config_.n) {
    throw std::invalid_argument(
        "SearchConfig: physical_counters must be <= n");
  }
  if (machine.pmu().num_counters() < physical()) {
    throw std::invalid_argument(
        "SearchConfig: machine has fewer miss counters than required");
  }
  if (config_.initial_interval == 0) {
    throw std::invalid_argument("SearchConfig: interval must be > 0");
  }
  if (config_.max_interval == 0) {
    config_.max_interval = 64 * config_.initial_interval;
  }
  queue_shadow_ = machine_.address_space().alloc_instr(kMaxQueue * 64, 64);
}

// ---------------------------------------------------------------------------
// Priority queue: a descending-sorted array with one simulated cache line
// per entry.  Insertions/removals touch the shifted slots, so queue traffic
// competes with the application for cache space.

void NWaySearch::pq_touch(std::size_t index) {
  if (index < kMaxQueue) {
    machine_.tool_touch(queue_shadow_ + index * 64, /*write=*/true);
  }
}

void NWaySearch::pq_insert(const Region& region) {
  if (queue_.size() >= kMaxQueue) {
    throw std::length_error("NWaySearch: priority queue overflow");
  }
  auto pos = std::lower_bound(
      queue_.begin(), queue_.end(), region,
      [](const Region& a, const Region& b) {
        if (a.percent != b.percent) return a.percent > b.percent;
        return a.range.base < b.range.base;
      });
  const std::size_t at = static_cast<std::size_t>(pos - queue_.begin());
  queue_.insert(pos, region);
  const std::size_t touches = std::min<std::size_t>(queue_.size() - at, 64);
  for (std::size_t i = 0; i < touches; ++i) pq_touch(at + i);
  charge(cy_pq_, costs_.pq_op + costs_.per_probe * touches);
  if (c_enqueues_ != nullptr) c_enqueues_->inc();
  if (tracing()) {
    telem_->emit({.category = "search",
                  .name = "pq.enqueue",
                  .phase = 'i',
                  .ts = machine_.now(),
                  .args = {{"base", region.range.base},
                           {"bound", region.range.bound},
                           {"percent", region.percent},
                           {"depth", std::uint64_t{region.depth}},
                           {"queue_size",
                            static_cast<std::uint64_t>(queue_.size())}}});
  }
}

Region NWaySearch::pq_pop_front() {
  Region out = queue_.front();
  queue_.erase(queue_.begin());
  const std::size_t touches = std::min<std::size_t>(queue_.size() + 1, 64);
  for (std::size_t i = 0; i < touches; ++i) pq_touch(i);
  charge(cy_pq_, costs_.pq_op + costs_.per_probe * touches);
  if (c_dequeues_ != nullptr) c_dequeues_->inc();
  // A dequeue that jumps back to a shallower region than the last one is
  // the priority queue "backing up" to an earlier part of the search tree
  // (Figure 2's advantage over the greedy search).
  const bool backtrack = out.depth < last_dequeued_depth_;
  if (backtrack && c_backtracks_ != nullptr) c_backtracks_->inc();
  if (tracing()) {
    telem_->emit({.category = "search",
                  .name = "pq.dequeue",
                  .phase = 'i',
                  .ts = machine_.now(),
                  .args = {{"base", out.range.base},
                           {"bound", out.range.bound},
                           {"percent", out.percent},
                           {"depth", std::uint64_t{out.depth}}}});
    if (backtrack) {
      telem_->emit({.category = "search",
                    .name = "backtrack",
                    .phase = 'i',
                    .ts = machine_.now(),
                    .args = {{"from_depth",
                              std::uint64_t{last_dequeued_depth_}},
                             {"to_depth", std::uint64_t{out.depth}},
                             {"base", out.range.base},
                             {"bound", out.range.bound}}});
    }
  }
  last_dequeued_depth_ = out.depth;
  return out;
}

// ---------------------------------------------------------------------------

Region NWaySearch::make_region(sim::AddrRange range, std::uint32_t depth) {
  Region r;
  r.range = range;
  r.depth = depth;
  const std::size_t objects = map_.count_objects_overlapping(range, 2);
  r.object_count = static_cast<std::uint32_t>(objects);
  if (objects == 1) {
    r.single_object = true;
    r.object = map_.single_object_in(range);
  }
  // The object-extent queries above walk the tool's symbol array / RB tree;
  // replay that walk against the simulated cache.
  auto lo = map_.resolve(range.base);
  replay_probes(lo.shadow_path);
  auto hi = map_.resolve(range.bound - 1);
  replay_probes(hi.shadow_path);
  return r;
}

// -- Telemetry helpers -------------------------------------------------------

void NWaySearch::phase_event(char ph, std::string_view name) {
  if (!tracing()) return;
  telem_->emit({.category = "search",
                .name = name,
                .phase = ph,
                .ts = machine_.now(),
                .args = {}});
}

void NWaySearch::open_phase(std::string_view name) {
  close_phase();
  open_phase_name_ = name;
  phase_event('B', name);
}

void NWaySearch::close_phase() {
  if (open_phase_name_.empty()) return;
  phase_event('E', open_phase_name_);
  open_phase_name_ = {};
}

// ---------------------------------------------------------------------------

void NWaySearch::start() {
  machine_.set_handler(this);
  if (telem_ != nullptr) {
    auto& reg = telem_->registry();
    c_iterations_ = &reg.counter("search.iterations");
    c_splits_ = &reg.counter("search.splits");
    c_enqueues_ = &reg.counter("search.pq.enqueues");
    c_dequeues_ = &reg.counter("search.pq.dequeues");
    c_backtracks_ = &reg.counter("search.backtracks");
    c_discarded_ = &reg.counter("search.discarded");
    c_zero_retained_ = &reg.counter("search.zero_retained");
    c_counter_assigns_ = &reg.counter("search.counter_assigns");
    cy_handler_ = &reg.counter("tool_cycles.search.handler");
    cy_pq_ = &reg.counter("tool_cycles.search.pq");
    cy_region_admin_ = &reg.counter("tool_cycles.search.region_admin");
    cy_counter_io_ = &reg.counter("tool_cycles.search.counter_io");
    cy_split_ = &reg.counter("tool_cycles.search.split");
    probe_cycles_ = &reg.counter("tool_cycles.search.probes");
    h_split_depth_ = &reg.histogram("search.split_depth",
                                    {1, 2, 4, 8, 12, 16, 24, 32});
  }
  open_phase("search");
  phase_ = Phase::kSearching;
  const sim::AddrRange universe =
      config_.search_whole_space
          ? machine_.address_space().layout().application_span()
          : map_.occupied_span();
  begin_search(universe);
}

void NWaySearch::begin_search(sim::AddrRange universe) {
  measured_.clear();
  if (universe.empty()) {
    finish();
    return;
  }
  // Divide the universe into n areas, with extents adjusted so objects do
  // not span region boundaries.
  const std::uint64_t chunk = std::max<std::uint64_t>(
      universe.size() / config_.n, 1);
  sim::Addr cursor = universe.base;
  for (unsigned i = 0; i < config_.n && cursor < universe.bound; ++i) {
    sim::Addr end = (i + 1 == config_.n)
                        ? universe.bound
                        : std::min(universe.bound, cursor + chunk);
    if (config_.adjust_boundaries && end < universe.bound) {
      const sim::Addr snapped =
          map_.snap_split_point(end, {cursor, universe.bound});
      if (snapped > cursor) end = snapped;
    }
    if (end > cursor) {
      measured_.push_back(make_region({cursor, end}, 0));
      charge(cy_region_admin_, costs_.region_admin);
    }
    cursor = end;
  }
  program_counters();
}

void NWaySearch::program_counters() {
  mux_samples_.assign(measured_.size(), {});
  mux_slot_ = 0;
  program_mux_slot();
}

// Program the physical counters for the current timesharing slot (a
// dedicated-counter search is simply the one-slot case) and arm the timer
// for the slot's share of the interval.
void NWaySearch::program_mux_slot() {
  auto& pmu = machine_.pmu();
  const unsigned phys = physical();
  const std::size_t base = static_cast<std::size_t>(mux_slot_) * phys;
  for (unsigned i = 0; i < phys; ++i) {
    const std::size_t idx = base + i;
    if (idx < measured_.size()) {
      pmu.configure(i, measured_[idx].range.base,
                    measured_[idx].range.bound);
      if (c_counter_assigns_ != nullptr) c_counter_assigns_->inc();
      if (tracing()) {
        telem_->emit({.category = "search",
                      .name = "counter.assign",
                      .phase = 'i',
                      .ts = machine_.now(),
                      .args = {{"counter", std::uint64_t{i}},
                               {"base", measured_[idx].range.base},
                               {"bound", measured_[idx].range.bound},
                               {"depth",
                                std::uint64_t{measured_[idx].depth}}}});
      }
    } else {
      pmu.disable(i);
    }
    charge(cy_counter_io_, costs_.counter_write);
  }
  pmu.clear_global();
  const unsigned slots = std::max(mux_slots(), 1u);
  machine_.arm_timer_in(std::max<sim::Cycles>(interval_ / slots, 1));
}

void NWaySearch::harvest_mux_slot() {
  auto& pmu = machine_.pmu();
  const unsigned phys = physical();
  const std::size_t base = static_cast<std::size_t>(mux_slot_) * phys;
  const std::uint64_t slot_total = pmu.global_misses();
  charge(cy_counter_io_, costs_.counter_read);
  for (unsigned i = 0; i < phys; ++i) {
    const std::size_t idx = base + i;
    if (idx >= measured_.size()) break;
    // Clamp to the slot total: a region's count can never legitimately
    // exceed the global count, so anything above it is read jitter.
    mux_samples_[idx] = {std::min(pmu.read(i), slot_total), slot_total};
    charge(cy_counter_io_, costs_.counter_read);
  }
}

void NWaySearch::stop() {
  machine_.disarm_timer();
  machine_.set_handler(nullptr);
  close_phase();
  if (phase_ == Phase::kSearching || phase_ == Phase::kRefining) {
    // The application ended before the search did: harvest the isolated
    // single-object regions found so far so report() returns best-effort
    // results (their estimates come from the search averages).
    for (const Region& r : queue_) {
      if (!r.single_object || !r.object || r.measurements == 0) continue;
      bool dup = false;
      for (const Found& f : found_) dup = dup || f.ref == *r.object;
      if (!dup) {
        found_.push_back(Found{.ref = *r.object,
                               .range = r.range,
                               .search_percent = r.percent});
      }
    }
    for (const Region& r : measured_) {
      if (!r.single_object || !r.object || r.measurements == 0) continue;
      bool dup = false;
      for (const Found& f : found_) dup = dup || f.ref == *r.object;
      if (!dup) {
        found_.push_back(Found{.ref = *r.object,
                               .range = r.range,
                               .search_percent = r.percent});
      }
    }
  }
}

void NWaySearch::on_interrupt(sim::Machine&, sim::InterruptKind kind) {
  if (kind != sim::InterruptKind::kCycleTimer) return;
  charge(cy_handler_, costs_.handler_entry);
  on_timer();
}

void NWaySearch::on_timer() {
  switch (phase_) {
    case Phase::kSearching:
      harvest_mux_slot();
      ++mux_slot_;
      if (mux_slot_ < mux_slots()) {
        program_mux_slot();  // next timesharing slot of the same interval
        break;
      }
      search_iteration();
      break;
    case Phase::kRefining:
      refine_iteration();
      break;
    case Phase::kIdle:
    case Phase::kDone:
      break;
  }
}

void NWaySearch::search_iteration() {
  ++stats_.iterations;
  if (c_iterations_ != nullptr) c_iterations_->inc();

  // §5 auto-tuning: too few misses per interval makes every estimate
  // noise; lengthen future intervals.
  if (config_.min_misses_per_interval > 0) {
    std::uint64_t iteration_misses = 0;
    for (std::size_t i = 0; i < mux_samples_.size(); i += physical()) {
      iteration_misses += mux_samples_[i].slot_total;
    }
    if (iteration_misses < config_.min_misses_per_interval) {
      interval_ = std::min<sim::Cycles>(interval_ * 2, config_.max_interval);
    }
  }

  std::vector<Region> retained;
  bool grew_interval = false;
  for (unsigned i = 0; i < measured_.size(); ++i) {
    Region r = measured_[i];
    // Each region's share is computed against the global misses of its own
    // timesharing slot (the whole interval in dedicated mode).
    const std::uint64_t count = mux_samples_[i].count;
    const std::uint64_t total = mux_samples_[i].slot_total;
    charge(cy_region_admin_, costs_.region_admin);
    const double pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(count) /
                         static_cast<double>(total);
    // A region qualifies for zero-retention (the phase heuristic, §3.5) if
    // it actually contains objects and either descends from a top-ranked
    // pick (depth > 0) or has measured nonzero before.  Empty address-space
    // gaps are discarded immediately no matter what.
    const bool previously_hot =
        r.object_count > 0 && (r.depth > 0 || r.measurements > 0);
    if (count == 0) {
      if (config_.phase_retention && previously_hot &&
          r.zero_streak < config_.zero_retention_limit) {
        ++r.zero_streak;
        ++stats_.zero_retained;
        if (c_zero_retained_ != nullptr) c_zero_retained_->inc();
        retained.push_back(r);
        // "each time a region with zero misses is kept, the duration of
        // future sample intervals is increased" — growth is applied at most
        // once per iteration so several simultaneous retentions (applu's
        // a/b/c/d) do not compound it.
        if (!grew_interval) {
          grew_interval = true;
          interval_ = std::min<sim::Cycles>(
              static_cast<sim::Cycles>(static_cast<double>(interval_) *
                                       config_.interval_growth),
              config_.max_interval);
        }
      } else {
        ++stats_.discarded;
        if (c_discarded_ != nullptr) c_discarded_->inc();
        discarded_.push_back(r);
      }
      continue;
    }
    r.zero_streak = 0;
    r.record(pct);
    if (config_.retire_measured && r.single_object && r.object) {
      // §6 variant: retire measured single-object regions so the search
      // keeps finding more objects (single-interval estimates only).
      found_.push_back(Found{.ref = *r.object,
                             .range = r.range,
                             .search_percent = r.percent});
      continue;
    }
    pq_insert(r);
  }
  measured_ = std::move(retained);

  // Queue maintenance: the instrumentation re-ranks its records each
  // iteration, touching every queue entry.
  for (std::size_t i = 0; i < queue_.size() && i < 64; ++i) pq_touch(i);
  charge(cy_pq_, costs_.per_probe * std::min<std::size_t>(queue_.size(), 64));

  if (check_termination()) return;

  select_next_measured();
  if (measured_.empty()) {
    // Nothing measurable is left; wrap up with what we have.
    begin_refinement();
    return;
  }
  program_counters();
}

bool NWaySearch::check_termination() {
  if (stats_.iterations >= config_.max_iterations) {
    begin_refinement();
    return true;
  }
  if (config_.retire_measured && found_.size() >= config_.max_results) {
    begin_refinement();
    return true;
  }
  if (queue_.empty() && measured_.empty()) {
    if (config_.continue_into_discarded && !discarded_.empty()) {
      ++stats_.continuations;
      for (const Region& r : discarded_) pq_insert(r);
      discarded_.clear();
      return false;
    }
    begin_refinement();
    return true;
  }

  // Greedy (no priority queue) mode terminates as soon as the best measured
  // region contains a single object.
  if (!config_.use_priority_queue) {
    if (!queue_.empty() && queue_.front().single_object) {
      begin_refinement();
      return true;
    }
    return false;
  }

  // Paper rule: stop when the top n-1 regions all contain single objects.
  // A single-object region only counts once it has been re-measured (its
  // estimate is an average of >= 2 intervals) — "this allows the objects to
  // be ranked with increasing accuracy" and keeps a momentary phase-local
  // spike from ending the search early.
  const std::size_t need = config_.n - 1;
  if (queue_.size() >= need) {
    bool all_single = true;
    for (std::size_t i = 0; i < need; ++i) {
      if (!queue_[i].single_object || queue_[i].measurements < 2) {
        all_single = false;
        break;
      }
    }
    charge(cy_pq_, costs_.per_probe * need);
    if (all_single) {
      begin_refinement();
      return true;
    }
  }

  // Residual rule: everything significant has been narrowed to single
  // objects; what remains un-refined is below the threshold.  Regions that
  // contain objects but have not produced a measurement yet (fresh splits,
  // retained zero-miss regions) have unknown weight and block this rule.
  double multi_pct = 0.0;
  bool any_single = !found_.empty();
  bool pending_unknown = false;
  for (const Region& r : queue_) {
    if (r.single_object) {
      any_single = true;
    } else {
      multi_pct += r.percent;
    }
  }
  for (const Region& r : measured_) {
    if (r.single_object) continue;
    multi_pct += r.percent;
    if (r.measurements == 0 && r.object_count > 0) pending_unknown = true;
  }
  if (any_single && !pending_unknown &&
      multi_pct < config_.residual_threshold_pct) {
    begin_refinement();
    return true;
  }
  return false;
}

void NWaySearch::select_next_measured() {
  if (!config_.use_priority_queue) {
    // Greedy: refine only the single best region seen this iteration; all
    // other candidates are abandoned (this is what Figure 2 shows going
    // wrong).
    if (queue_.empty()) return;
    Region best = pq_pop_front();
    for (const Region& r : queue_) discarded_.push_back(r);
    stats_.discarded += static_cast<std::uint32_t>(queue_.size());
    if (c_discarded_ != nullptr) c_discarded_->add(queue_.size());
    queue_.clear();
    if (best.single_object) {
      measured_.push_back(best);
    } else {
      split_region(best, measured_);
    }
    return;
  }

  while (measured_.size() < config_.n && !queue_.empty()) {
    const std::size_t budget = config_.n - measured_.size();
    if (!queue_.front().single_object && budget < 2) break;
    Region top = pq_pop_front();
    if (top.single_object) {
      // Re-measure the whole (unsplittable) region; successive estimates
      // are averaged for increasing accuracy.
      measured_.push_back(top);
    } else {
      split_region(top, measured_);
    }
  }
  if (measured_.empty() && !queue_.empty()) {
    measured_.push_back(pq_pop_front());
  }
}

void NWaySearch::split_region(Region region, std::vector<Region>& out) {
  const sim::AddrRange range = region.range;
  sim::Addr mid = range.base + range.size() / 2;
  if (config_.adjust_boundaries) {
    // Replay the lookup the snap performs so it has a cache footprint.
    auto probe = map_.resolve(mid);
    replay_probes(probe.shadow_path);
    mid = map_.snap_split_point(mid, range);
  }
  charge(cy_split_, costs_.split_op);
  if (mid <= range.base || mid >= range.bound) {
    // No interior split point exists: a single object covers (nearly) the
    // whole region.  Treat it as terminal.
    region.single_object = true;
    if (!region.object) {
      map_.for_each_overlapping(range,
                                [&](objmap::ObjectRef ref,
                                    const objmap::ObjectInfo&) {
                                  region.object = ref;
                                  return false;
                                });
    }
    if (region.object) {
      out.push_back(region);
    } else {
      ++stats_.discarded;
      if (c_discarded_ != nullptr) c_discarded_->inc();
      discarded_.push_back(region);
    }
    return;
  }
  ++stats_.splits;
  if (c_splits_ != nullptr) c_splits_->inc();
  if (h_split_depth_ != nullptr) {
    h_split_depth_->record(static_cast<double>(region.depth + 1));
  }
  if (tracing()) {
    telem_->emit({.category = "search",
                  .name = "region.split",
                  .phase = 'i',
                  .ts = machine_.now(),
                  .args = {{"base", range.base},
                           {"mid", mid},
                           {"bound", range.bound},
                           {"depth", std::uint64_t{region.depth}},
                           {"percent", region.percent}}});
  }
  Region lo = make_region({range.base, mid}, region.depth + 1);
  Region hi = make_region({mid, range.bound}, region.depth + 1);
  charge(cy_region_admin_, 2 * costs_.region_admin);
  out.push_back(lo);
  out.push_back(hi);
}

void NWaySearch::begin_refinement() {
  // Collect the final object set: the top regions of the queue that contain
  // single objects (plus everything already retired in retire mode and any
  // retained single-object regions with measurements).
  auto add_found = [&](const Region& r) {
    if (!r.single_object || !r.object) return;
    for (const Found& f : found_) {
      if (f.ref == *r.object) return;  // dedup
    }
    found_.push_back(Found{.ref = *r.object,
                           .range = r.range,
                           .search_percent = r.percent});
  };
  // "Only regions containing single objects are included in these results."
  // A 10-way search generally returns up to 9 objects; the nth slot may add
  // one more if it too is single-object.
  const std::size_t limit = std::max<std::size_t>(config_.n, found_.size());
  for (std::size_t i = 0; i < queue_.size() && found_.size() < limit; ++i) {
    add_found(queue_[i]);
  }
  for (const Region& r : measured_) {
    if (found_.size() >= limit) break;
    if (r.measurements > 0) add_found(r);
  }

  if (found_.empty() || config_.refine_rounds == 0) {
    finish();
    return;
  }
  phase_ = Phase::kRefining;
  open_phase("refine");
  refine_cursor_ = 0;
  refine_round_ = 0;
  // Program the first group: each counter covers exactly one found object.
  refine_slots_.clear();
  auto& pmu = machine_.pmu();
  for (unsigned i = 0; i < physical() && refine_cursor_ < found_.size();
       ++i, ++refine_cursor_) {
    refine_slots_.push_back(refine_cursor_);
    pmu.configure(i, found_[refine_cursor_].range.base,
                  found_[refine_cursor_].range.bound);
    charge(cy_counter_io_, costs_.counter_write);
  }
  for (unsigned i = static_cast<unsigned>(refine_slots_.size());
       i < physical(); ++i) {
    pmu.disable(i);
  }
  pmu.clear_global();
  machine_.arm_timer_in(interval_);
}

void NWaySearch::refine_iteration() {
  ++stats_.refine_iterations;
  auto& pmu = machine_.pmu();
  const std::uint64_t total = pmu.global_misses();
  charge(cy_counter_io_, costs_.counter_read);
  for (unsigned i = 0; i < refine_slots_.size(); ++i) {
    Found& f = found_[refine_slots_[i]];
    f.refine_misses += std::min(pmu.read(i), total);  // jitter guard
    f.refine_total += total;
    ++f.refine_rounds;
    charge(cy_counter_io_, costs_.counter_read);
    charge(cy_region_admin_, costs_.region_admin);
  }

  // Next group (time-sharing the counters when there are more found objects
  // than counters); a round completes when every object has been covered.
  if (refine_cursor_ >= found_.size()) {
    ++refine_round_;
    refine_cursor_ = 0;
    if (refine_round_ >= config_.refine_rounds) {
      finish();
      return;
    }
  }
  refine_slots_.clear();
  for (unsigned i = 0; i < physical() && refine_cursor_ < found_.size();
       ++i, ++refine_cursor_) {
    refine_slots_.push_back(refine_cursor_);
    pmu.configure(i, found_[refine_cursor_].range.base,
                  found_[refine_cursor_].range.bound);
    charge(cy_counter_io_, costs_.counter_write);
  }
  for (unsigned i = static_cast<unsigned>(refine_slots_.size());
       i < physical(); ++i) {
    pmu.disable(i);
  }
  pmu.clear_global();
  machine_.arm_timer_in(interval_);
}

void NWaySearch::finish() {
  // §6 extension: "returning to search previously discarded areas after the
  // ones causing the most cache misses have been examined fully".  Re-seed
  // the search from discarded object-bearing regions; objects that were
  // idle during the phases already searched (e.g. output buffers written
  // only late in a run) get another chance.
  if (config_.continue_into_discarded &&
      stats_.continuations < kMaxContinuations) {
    std::vector<Region> seeds;
    for (Region& r : discarded_) {
      if (r.object_count == 0) continue;
      // Skip regions whose single object is already in the result set.
      if (r.single_object && r.object) {
        bool known = false;
        for (const Found& f : found_) known = known || f.ref == *r.object;
        if (known) continue;
      }
      r.zero_streak = 0;
      seeds.push_back(r);
    }
    discarded_.clear();
    if (!seeds.empty()) {
      ++stats_.continuations;
      phase_ = Phase::kSearching;
      open_phase("search");
      for (const Region& r : seeds) pq_insert(r);
      select_next_measured();
      if (!measured_.empty()) {
        program_counters();
        return;
      }
    }
  }
  machine_.disarm_timer();
  phase_ = Phase::kDone;
  stats_.final_interval = interval_;
  close_phase();
  if (tracing()) {
    telem_->emit({.category = "search",
                  .name = "done",
                  .phase = 'i',
                  .ts = machine_.now(),
                  .args = {{"iterations", std::uint64_t{stats_.iterations}},
                           {"splits", std::uint64_t{stats_.splits}},
                           {"objects",
                            static_cast<std::uint64_t>(found_.size())}}});
  }
}

Report NWaySearch::report() const {
  std::vector<ReportRow> rows;
  std::uint64_t total_misses = 0;
  for (const Found& f : found_) {
    const double pct =
        f.refine_total > 0
            ? 100.0 * static_cast<double>(f.refine_misses) /
                  static_cast<double>(f.refine_total)
            : f.search_percent;
    rows.push_back(ReportRow{.name = map_.display_name(f.ref),
                             .ref = f.ref,
                             .count = f.refine_misses,
                             .percent = pct});
    total_misses += f.refine_misses;
  }
  return Report(std::move(rows), total_misses);
}

}  // namespace hpm::core
