// Primality helpers for the prime sampling-interval policy (§3.1: sampling
// 1 in 50,111 misses — a prime — removed the aliasing that a 50,000-miss
// interval suffered on tomcatv).
#pragma once

#include <cstdint>

namespace hpm::core {

[[nodiscard]] bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime >= n (n <= 2 yields 2).
[[nodiscard]] std::uint64_t next_prime(std::uint64_t n) noexcept;

}  // namespace hpm::core
