// Cache-miss address sampling (paper §2.1).
//
// The PMU is armed to interrupt after N misses; in the handler, the address
// of the last cache miss is mapped to the containing program object and a
// per-object count is incremented, then the counter is re-armed.  Counts are
// proportional estimates of each object's share of all misses.
//
// Period policies implement the §3.1 finding: a fixed period can alias with
// the application's periodic miss pattern (tomcatv's RX/RY); basing the
// period on a prime, or varying it pseudo-randomly, decorrelates the
// samples.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/report.hpp"
#include "core/tool.hpp"
#include "util/prng.hpp"

namespace hpm::core {

enum class PeriodPolicy : std::uint8_t {
  kFixed,         ///< exactly `period` misses between samples
  kPrime,         ///< smallest prime >= `period`
  kPseudoRandom,  ///< uniform in [period/2, 3*period/2)
};

struct SamplerConfig {
  std::uint64_t period = 50'000;  ///< paper's Table 1 sampling rate
  PeriodPolicy policy = PeriodPolicy::kFixed;
  std::uint64_t seed = 0x5eed;        ///< kPseudoRandom only
  bool aggregate_sites = false;       ///< group heap blocks by named site
  /// Adaptive period (§5 auto-tuning): target this many interrupts per
  /// billion cycles by scaling the period; 0 disables.
  std::uint64_t target_interrupts_per_gcycle = 0;
  /// Dropped-interrupt watchdog: arm the machine's one-shot cycle timer at
  /// this interval and, whenever it fires with the overflow counter neither
  /// armed nor pending, conclude the interrupt was lost and re-arm (fault
  /// tolerance for FaultPlan::drop_rate).  0 disables — bit-identical to
  /// the pre-watchdog sampler.
  sim::Cycles watchdog_interval = 0;
  /// Discard samples whose attributed address lies outside the application
  /// span (skid can leave a tool-plane or null address in the last-miss
  /// register).  Off by default: fault-free runs can legitimately sample
  /// tool addresses and counting them as unresolved is the paper's
  /// behaviour.
  bool discard_out_of_range = false;
  /// Coherence-event sampling period (multi-core): interrupt after this
  /// many MESI events on the sampler's core and attribute the last-event
  /// address the same way miss samples are attributed.  0 disables the
  /// plane entirely — no counters registered, nothing armed — which keeps
  /// single-core runs byte-identical.
  std::uint64_t coherence_period = 0;
};

class Sampler : public Tool {
 public:
  Sampler(sim::Machine& machine, objmap::ObjectMap& map, SamplerConfig config,
          ToolCosts costs = {});

  void start() override;
  void stop() override;
  void on_interrupt(sim::Machine& machine, sim::InterruptKind kind) override;

  /// Ranked objects with percent = share of samples (an estimate of the
  /// share of all misses).  Site aggregation folds grouped heap blocks.
  [[nodiscard]] Report report() const;

  /// Ranked objects by share of *coherence-event* samples — the estimate of
  /// each object's share of MESI traffic.  Empty unless coherence sampling
  /// was enabled and events arrived.
  [[nodiscard]] Report coherence_report() const;

  [[nodiscard]] std::uint64_t samples_taken() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t coherence_samples_taken() const noexcept {
    return coherence_samples_;
  }
  [[nodiscard]] std::uint64_t unresolved_coherence_samples() const noexcept {
    return coherence_unresolved_;
  }
  [[nodiscard]] std::uint64_t unresolved_samples() const noexcept {
    return unresolved_;
  }
  [[nodiscard]] std::uint64_t current_period() const noexcept {
    return current_period_;
  }
  /// Overflow re-arms forced by the dropped-interrupt watchdog.
  [[nodiscard]] std::uint64_t rearms() const noexcept { return rearms_; }
  /// Samples rejected by the out-of-range filter.
  [[nodiscard]] std::uint64_t discarded_samples() const noexcept {
    return discarded_;
  }

 private:
  struct Slot;
  using SlotMap =
      std::unordered_map<objmap::ObjectRef, Slot, objmap::ObjectRefHash>;

  [[nodiscard]] std::uint64_t next_period();
  [[nodiscard]] sim::Addr count_slot(objmap::ObjectRef ref);
  void on_coherence_overflow(sim::Machine& machine);
  [[nodiscard]] Report make_report(const SlotMap& counts) const;

  SamplerConfig config_;
  util::Xoshiro256 rng_;
  std::uint64_t current_period_;
  std::uint64_t samples_ = 0;
  std::uint64_t unresolved_ = 0;
  std::uint64_t rearms_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t coherence_samples_ = 0;
  std::uint64_t coherence_unresolved_ = 0;
  sim::Cycles started_at_ = 0;

  // Telemetry instruments (null when telemetry is off).
  telemetry::Counter* c_interrupts_ = nullptr;
  telemetry::Counter* c_attributed_ = nullptr;
  telemetry::Counter* c_unresolved_ = nullptr;
  telemetry::Counter* c_rearms_ = nullptr;
  telemetry::Counter* c_discarded_ = nullptr;
  telemetry::Counter* c_coh_interrupts_ = nullptr;
  telemetry::Counter* c_coh_attributed_ = nullptr;
  telemetry::Counter* c_coh_unresolved_ = nullptr;
  telemetry::Counter* cy_handler_ = nullptr;
  telemetry::Counter* cy_counter_io_ = nullptr;
  telemetry::Counter* cy_count_update_ = nullptr;
  telemetry::Histogram* h_period_ = nullptr;

  // Per-object sample counts.  The table itself lives in simulated memory
  // (one 8-byte slot per object, allocated on first sample) so that count
  // updates have a cache footprint; the host-side map mirrors it for exact
  // reporting.  Coherence samples keep their own table over the same
  // simulated slot pool.
  struct Slot {
    std::uint64_t count = 0;
    sim::Addr shadow = 0;
  };
  SlotMap counts_;
  SlotMap coherence_counts_;
  sim::Addr slots_base_ = 0;
  std::uint64_t slots_used_ = 0;
  static constexpr std::uint64_t kMaxSlots = 65'536;
};

}  // namespace hpm::core
