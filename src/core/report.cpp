#include "core/report.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace hpm::core {

Report::Report(std::vector<ReportRow> rows, std::uint64_t total_count)
    : rows_(std::move(rows)), total_(total_count) {
  std::sort(rows_.begin(), rows_.end(),
            [](const ReportRow& a, const ReportRow& b) {
              if (a.percent != b.percent) return a.percent > b.percent;
              return a.name < b.name;
            });
}

std::size_t Report::rank_of(std::string_view name) const {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].name == name) return i + 1;
  }
  return 0;
}

std::optional<double> Report::percent_of(std::string_view name) const {
  for (const auto& r : rows_) {
    if (r.name == name) return r.percent;
  }
  return std::nullopt;
}

Report Report::filtered(double min_percent) const {
  std::vector<ReportRow> kept;
  for (const auto& r : rows_) {
    if (r.percent >= min_percent) kept.push_back(r);
  }
  return Report(std::move(kept), total_);
}

Report Report::top(std::size_t k) const {
  std::vector<ReportRow> kept(rows_.begin(),
                              rows_.begin() + std::min(k, rows_.size()));
  return Report(std::move(kept), total_);
}

Report::Comparison Report::compare(const Report& actual,
                                   const Report& estimated,
                                   std::size_t top_k) {
  Comparison c;
  std::vector<double> act;
  std::vector<double> est;
  for (std::size_t i = 0; i < actual.rows_.size() && i < top_k; ++i) {
    const auto& row = actual.rows_[i];
    ++c.objects_compared;
    act.push_back(row.percent);
    if (auto e = estimated.percent_of(row.name)) {
      est.push_back(*e);
      const double err = std::abs(row.percent - *e);
      c.max_abs_error = std::max(c.max_abs_error, err);
      c.mean_abs_error += err;
    } else {
      est.push_back(0.0);
      ++c.missing;
      c.max_abs_error = std::max(c.max_abs_error, row.percent);
      c.mean_abs_error += row.percent;
    }
  }
  if (c.objects_compared > 0) {
    c.mean_abs_error /= static_cast<double>(c.objects_compared);
  }
  c.order_agreement = util::pairwise_order_agreement(act, est);
  return c;
}

Report merge_reports(const std::vector<Report>& reports) {
  // Name-keyed accumulation with first-appearance ordering so the merged
  // row set is independent of per-core hash-map iteration order.
  std::vector<ReportRow> merged;
  std::unordered_map<std::string, std::size_t> index;
  std::uint64_t total = 0;
  for (const Report& report : reports) {
    total += report.total_count();
    for (const ReportRow& row : report.rows()) {
      auto [it, inserted] = index.try_emplace(row.name, merged.size());
      if (inserted) {
        merged.push_back(row);
      } else {
        merged[it->second].count += row.count;
      }
    }
  }
  for (ReportRow& row : merged) {
    row.percent = total == 0 ? 0.0
                             : 100.0 * static_cast<double>(row.count) /
                                   static_cast<double>(total);
  }
  return Report(std::move(merged), total);
}

util::Table make_comparison_table(
    std::string_view label_header,
    const std::vector<std::string>& estimate_names) {
  std::vector<std::string> headers{std::string(label_header), "object",
                                   "actual rank", "actual %"};
  std::vector<util::Align> aligns{util::Align::kLeft, util::Align::kLeft,
                                  util::Align::kRight, util::Align::kRight};
  for (const auto& name : estimate_names) {
    headers.push_back(name + " rank");
    headers.push_back(name + " %");
    aligns.push_back(util::Align::kRight);
    aligns.push_back(util::Align::kRight);
  }
  return util::Table(std::move(headers), std::move(aligns));
}

void append_comparison_rows(util::Table& table,
                            const ComparisonTableSpec& spec) {
  if (spec.actual == nullptr) return;
  const Report top = spec.actual->top(spec.top_k);
  bool first = true;
  for (const auto& row : top.rows()) {
    table.row().cell(first ? spec.label : std::string()).cell(row.name);
    first = false;
    table.cell(static_cast<std::uint64_t>(spec.actual->rank_of(row.name)));
    table.cell(row.percent, spec.precision);
    for (const Report* estimate : spec.estimates) {
      const std::size_t rank =
          estimate != nullptr ? estimate->rank_of(row.name) : 0;
      if (rank != 0) {
        table.cell(static_cast<std::uint64_t>(rank));
        table.cell(*estimate->percent_of(row.name), spec.precision);
      } else {
        table.blank().blank();
      }
    }
  }
}

}  // namespace hpm::core
