// The n-way search for memory bottlenecks (paper §2.2).
//
// The search assumes n cache-miss counters with base/bounds registers plus
// one global counter.  The address space is divided into n regions; at each
// timer expiration the instrumentation ranks measured regions by their share
// of all misses in the interval, places them in a priority queue, pops the
// best ones and splits each in half (with extents adjusted so objects never
// span a region boundary), and repeats.  The priority queue lets the search
// back up to earlier regions (Figure 2); regions that formerly ranked high
// but show zero misses are retained for a few iterations and the interval is
// lengthened (the phase heuristic of §3.5).  The search ends when the top
// n-1 regions each contain a single object, or when what is left unsearched
// is insignificant; a refinement pass then measures each found object's
// extent exactly.
//
// Configuration switches expose the paper's ablations and extensions:
//   * use_priority_queue=false — the naive greedy search of Figure 2;
//   * adjust_boundaries=false  — splits may bisect objects;
//   * phase_retention=false    — zero-miss regions are always discarded;
//   * retire_measured=true     — §6's "return more objects" variant;
//   * continue_into_discarded=true — §6's re-search of discarded areas.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/report.hpp"
#include "core/search_region.hpp"
#include "core/tool.hpp"

namespace hpm::core {

struct SearchConfig {
  unsigned n = 10;  ///< regions measured per iteration (needs n+1 counters)
  /// Physical base/bounds counters available; 0 means n (dedicated).  When
  /// fewer than n, the search timeshares them across sub-intervals — §2.2:
  /// "multiple counters with separate base/bounds could be simulated by
  /// timesharing the single conditional counter between regions of
  /// interest" — at the cost of the §3.4 inaccuracy (each region is only
  /// observed during its own slot of the interval).
  unsigned physical_counters = 0;
  sim::Cycles initial_interval = 1'000'000;
  /// §5 auto-tuning: if an interval produces fewer misses than this, the
  /// interval is doubled (0 disables).  Keeps iterations statistically
  /// meaningful on low-miss-rate applications without hand tuning.
  std::uint64_t min_misses_per_interval = 0;
  /// Interval multiplier applied each time a zero-miss region is retained
  /// ("each time a region with zero misses is kept, the duration of future
  /// sample intervals is increased").  With growth g and limit k, retention
  /// rides out an idle phase of up to interval * (g^(k+1) - 1) / (g - 1)
  /// cycles.
  double interval_growth = 2.0;
  /// Upper bound on the adapted interval; 0 means 64 * initial_interval.
  /// Unbounded growth would let heavily phased applications (su2cor) push
  /// the interval past the remaining run length, stalling the search.
  sim::Cycles max_interval = 0;
  /// Iterations a formerly-hot region may show zero misses before discard.
  std::uint32_t zero_retention_limit = 5;
  /// Terminate when multi-object regions still in play account for less
  /// than this percent of misses (handles "fewer than n-1 significant
  /// regions").
  double residual_threshold_pct = 2.0;
  /// Full measurement rounds over the found objects after the search.
  std::uint32_t refine_rounds = 3;
  std::uint32_t max_iterations = 4'000;  ///< safety stop
  bool use_priority_queue = true;
  bool adjust_boundaries = true;
  bool phase_retention = true;
  bool retire_measured = false;
  std::uint32_t max_results = 32;  ///< retire mode: stop after this many
  bool continue_into_discarded = false;
  /// Search the whole application address space (paper) rather than just
  /// the currently occupied span.
  bool search_whole_space = true;
};

struct SearchStats {
  std::uint32_t iterations = 0;
  std::uint32_t refine_iterations = 0;
  std::uint32_t splits = 0;
  std::uint32_t discarded = 0;
  std::uint32_t zero_retained = 0;
  std::uint32_t continuations = 0;
  sim::Cycles final_interval = 0;
};

class NWaySearch : public Tool {
 public:
  NWaySearch(sim::Machine& machine, objmap::ObjectMap& map,
             SearchConfig config, ToolCosts costs = {});

  void start() override;
  void stop() override;
  void on_interrupt(sim::Machine& machine, sim::InterruptKind kind) override;

  [[nodiscard]] bool done() const noexcept { return phase_ == Phase::kDone; }
  /// Final ranked objects with refined percent estimates.  Valid once the
  /// search has finished (or after stop(): best effort from current state).
  [[nodiscard]] Report report() const;
  [[nodiscard]] const SearchStats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::Cycles current_interval() const noexcept {
    return interval_;
  }

 private:
  enum class Phase { kIdle, kSearching, kRefining, kDone };

  struct Found {
    objmap::ObjectRef ref{};
    sim::AddrRange range{};
    double search_percent = 0.0;  ///< average from the search phase
    std::uint64_t refine_misses = 0;
    std::uint64_t refine_total = 0;
    std::uint32_t refine_rounds = 0;
  };

  // -- Priority queue (sorted array, highest percent first) with a shadow
  //    line per entry so queue traffic hits the simulated cache.
  void pq_insert(const Region& region);
  Region pq_pop_front();
  void pq_touch(std::size_t index);

  void begin_search(sim::AddrRange universe);
  void program_counters();
  void program_mux_slot();
  void harvest_mux_slot();
  void on_timer();
  void search_iteration();
  void select_next_measured();
  void split_region(Region region, std::vector<Region>& out);
  [[nodiscard]] Region make_region(sim::AddrRange range, std::uint32_t depth);
  [[nodiscard]] bool check_termination();
  void begin_refinement();
  void refine_iteration();
  void finish();

  SearchConfig config_;
  Phase phase_ = Phase::kIdle;
  sim::Cycles interval_;
  SearchStats stats_{};

  std::vector<Region> measured_;  ///< measured_[i] uses PMU counter i
  std::vector<Region> queue_;     ///< the priority queue, descending percent
  std::vector<Region> discarded_; ///< for the continuation extension
  std::vector<Found> found_;      ///< single-object results
  std::vector<std::size_t> refine_slots_;  ///< found_ indices being measured
  std::size_t refine_cursor_ = 0;
  std::uint32_t refine_round_ = 0;

  // Counter-timesharing state (physical_counters < n).  Each measurement
  // interval is cut into slots; slot s observes measured_ regions
  // [s*phys, s*phys+phys).  Per-region percentages are computed against
  // the global misses of the region's own slot.
  struct MuxSample {
    std::uint64_t count = 0;
    std::uint64_t slot_total = 0;
  };
  std::vector<MuxSample> mux_samples_;
  unsigned mux_slot_ = 0;
  [[nodiscard]] unsigned physical() const noexcept {
    return config_.physical_counters == 0 ? config_.n
                                          : config_.physical_counters;
  }
  [[nodiscard]] unsigned mux_slots() const noexcept {
    const unsigned phys = physical();
    return static_cast<unsigned>((measured_.size() + phys - 1) /
                                 (phys == 0 ? 1 : phys));
  }

  sim::Addr queue_shadow_ = 0;
  static constexpr std::size_t kMaxQueue = 4096;
  static constexpr std::uint32_t kMaxContinuations = 4;

  // -- Telemetry (all pointers null when telemetry is off) -----------------
  /// Emit a 'B'/'E' Chrome duration event for a search phase.
  void phase_event(char ph, std::string_view name);
  /// Close the currently open phase span (if any) and open `name`.
  void open_phase(std::string_view name);
  void close_phase();

  std::string_view open_phase_name_{};  ///< always a string literal
  std::uint32_t last_dequeued_depth_ = 0;
  telemetry::Counter* c_iterations_ = nullptr;
  telemetry::Counter* c_splits_ = nullptr;
  telemetry::Counter* c_enqueues_ = nullptr;
  telemetry::Counter* c_dequeues_ = nullptr;
  telemetry::Counter* c_backtracks_ = nullptr;
  telemetry::Counter* c_discarded_ = nullptr;
  telemetry::Counter* c_zero_retained_ = nullptr;
  telemetry::Counter* c_counter_assigns_ = nullptr;
  telemetry::Counter* cy_handler_ = nullptr;
  telemetry::Counter* cy_pq_ = nullptr;
  telemetry::Counter* cy_region_admin_ = nullptr;
  telemetry::Counter* cy_counter_io_ = nullptr;
  telemetry::Counter* cy_split_ = nullptr;
  telemetry::Histogram* h_split_depth_ = nullptr;
};

}  // namespace hpm::core
