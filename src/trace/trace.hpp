// Memory-reference trace capture and replay.
//
// The paper's simulator is trace-driven: ATOM-instrumented binaries emit
// load/store events plus basic-block instruction counts.  This module
// provides the equivalent infrastructure: a recorder that captures a
// workload's event stream from a live Machine, a compact binary file
// format, and a replay workload that re-executes a recorded stream against
// any machine configuration — so a single expensive workload run can be
// re-measured under many cache/tool configurations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "sim/types.hpp"

namespace hpm::trace {

enum class EventKind : std::uint8_t {
  kLoad = 0,
  kStore = 1,
  kExec = 2,  ///< a batch of non-memory instructions (basic-block count)
};

struct Event {
  EventKind kind = EventKind::kExec;
  sim::Addr addr = 0;       ///< kLoad/kStore only
  std::uint64_t count = 0;  ///< kExec only

  constexpr bool operator==(const Event&) const noexcept = default;
};

/// An in-memory reference trace.
class Trace {
 public:
  void append_load(sim::Addr addr) {
    events_.push_back({EventKind::kLoad, addr, 0});
  }
  void append_store(sim::Addr addr) {
    events_.push_back({EventKind::kStore, addr, 0});
  }
  /// Consecutive exec batches coalesce.
  void append_exec(std::uint64_t count) {
    if (!events_.empty() && events_.back().kind == EventKind::kExec) {
      events_.back().count += count;
      return;
    }
    events_.push_back({EventKind::kExec, 0, count});
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() { events_.clear(); }

  [[nodiscard]] std::uint64_t reference_count() const noexcept;
  [[nodiscard]] std::uint64_t instruction_count() const noexcept;

  /// Serialize to the compact binary format (varint deltas; loads/stores
  /// near each other cost ~2 bytes).  Throws std::runtime_error on I/O
  /// failure.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  /// Parse; throws std::runtime_error on malformed input.
  [[nodiscard]] static Trace load(std::istream& is);
  [[nodiscard]] static Trace load_file(const std::string& path);

  bool operator==(const Trace&) const = default;

 private:
  std::vector<Event> events_;
};

/// Records the application-plane event stream of a machine while live code
/// runs.  Tool-plane traffic is not recorded (the point of a trace is to
/// re-measure the *application* under different instrumentation).
///
/// Lifetime contract: the Recorder must not outlive the Machine (its
/// observers hold `this`).  The destructor detaches them without throwing,
/// so a Recorder destroyed mid-recording (e.g. during exception unwinding)
/// is safe.  take() ends the Recorder's useful life: a subsequent start()
/// throws std::logic_error rather than silently recording into a
/// moved-from trace, as does start() while already recording.
class Recorder {
 public:
  explicit Recorder(sim::Machine& machine);
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Begin recording.  Throws std::logic_error if already recording or if
  /// the trace has been take()n.
  void start();
  /// Detach from the machine; idempotent and safe to call when not
  /// recording.
  void stop() noexcept;
  /// Move the recorded trace out, stopping first if needed.  The Recorder
  /// cannot be restarted afterwards.
  [[nodiscard]] Trace take();
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  sim::Machine& machine_;
  Trace trace_;
  bool running_ = false;
  bool taken_ = false;
};

/// Replay a trace against a machine: every recorded reference becomes a
/// machine reference (cache, PMU, interrupts all live), every exec batch a
/// cycle charge.  Object identity is not part of a raw trace; pair replay
/// with a layout-registration callback or use it for cache/overhead studies.
void replay(const Trace& trace, sim::Machine& machine);

}  // namespace hpm::trace
