#include "trace/trace.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace hpm::trace {

namespace {

constexpr char kMagic[4] = {'H', 'P', 'M', 'T'};
constexpr std::uint32_t kVersion = 1;

void put_varint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    if (c == EOF) throw std::runtime_error("trace: truncated varint");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw std::runtime_error("trace: varint overflow");
  }
  return v;
}

constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

std::uint64_t Trace::reference_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& e : events_) n += e.kind != EventKind::kExec;
  return n;
}

std::uint64_t Trace::instruction_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& e : events_) {
    n += e.kind == EventKind::kExec ? e.count : 1;
  }
  return n;
}

void Trace::save(std::ostream& os) const {
  os.write(kMagic, sizeof kMagic);
  put_varint(os, kVersion);
  put_varint(os, events_.size());
  sim::Addr prev = 0;
  for (const auto& e : events_) {
    os.put(static_cast<char>(e.kind));
    switch (e.kind) {
      case EventKind::kLoad:
      case EventKind::kStore: {
        const auto delta = static_cast<std::int64_t>(e.addr) -
                           static_cast<std::int64_t>(prev);
        put_varint(os, zigzag(delta));
        prev = e.addr;
        break;
      }
      case EventKind::kExec:
        put_varint(os, e.count);
        break;
    }
  }
  if (!os) throw std::runtime_error("trace: write failed");
}

void Trace::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  save(os);
}

Trace Trace::load(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("trace: bad magic");
  }
  const std::uint64_t version = get_varint(is);
  if (version != kVersion) {
    throw std::runtime_error("trace: unsupported version");
  }
  const std::uint64_t count = get_varint(is);
  Trace trace;
  trace.events_.reserve(count);
  sim::Addr prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const int tag = is.get();
    if (tag == EOF) throw std::runtime_error("trace: truncated event");
    switch (static_cast<EventKind>(tag)) {
      case EventKind::kLoad:
      case EventKind::kStore: {
        const std::int64_t delta = unzigzag(get_varint(is));
        const auto addr = static_cast<sim::Addr>(
            static_cast<std::int64_t>(prev) + delta);
        trace.events_.push_back(
            {static_cast<EventKind>(tag), addr, 0});
        prev = addr;
        break;
      }
      case EventKind::kExec:
        trace.events_.push_back({EventKind::kExec, 0, get_varint(is)});
        break;
      default:
        throw std::runtime_error("trace: bad event tag");
    }
  }
  return trace;
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  return load(is);
}

Recorder::Recorder(sim::Machine& machine) : machine_(machine) {}

Recorder::~Recorder() {
  stop();  // noexcept: a throwing stop() here would terminate during unwind
}

void Recorder::start() {
  if (running_) {
    throw std::logic_error("trace::Recorder: start() while recording");
  }
  if (taken_) {
    throw std::logic_error("trace::Recorder: start() after take()");
  }
  running_ = true;
  machine_.set_ref_observer([this](sim::Addr addr, bool write) {
    if (write) {
      trace_.append_store(addr);
    } else {
      trace_.append_load(addr);
    }
  });
  machine_.set_exec_observer(
      [this](std::uint64_t count) { trace_.append_exec(count); });
}

void Recorder::stop() noexcept {
  if (!running_) return;
  running_ = false;
  machine_.set_ref_observer(nullptr);
  machine_.set_exec_observer(nullptr);
}

Trace Recorder::take() {
  stop();
  taken_ = true;
  return std::move(trace_);
}

void replay(const Trace& trace, sim::Machine& machine) {
  for (const auto& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kLoad:
        machine.touch(e.addr, /*write=*/false);
        break;
      case EventKind::kStore:
        machine.touch(e.addr, /*write=*/true);
        break;
      case EventKind::kExec:
        machine.exec(e.count);
        break;
    }
  }
}

}  // namespace hpm::trace
