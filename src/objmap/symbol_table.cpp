#include "objmap/symbol_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpm::objmap {

std::uint32_t SymbolTable::add(std::string_view name, sim::Addr base,
                               std::uint64_t size) {
  if (size == 0) throw std::invalid_argument("SymbolTable::add: empty symbol");
  auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), base,
      [](const Entry& e, sim::Addr a) { return e.base < a; });
  // Overlap checks against both neighbours.
  if (pos != entries_.end() && base + size > pos->base) {
    throw std::invalid_argument("SymbolTable::add: overlapping symbol");
  }
  if (pos != entries_.begin()) {
    const Entry& prev = *(pos - 1);
    if (prev.base + prev.size > base) {
      throw std::invalid_argument("SymbolTable::add: overlapping symbol");
    }
  }
  pos = entries_.insert(pos, Entry{std::string(name), base, size, 0});
  // Re-derive shadow addresses; indices after the insertion point shifted.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].shadow = shadow_of(i);
  }
  return static_cast<std::uint32_t>(pos - entries_.begin());
}

void SymbolTable::set_shadow_storage(sim::Addr base,
                                     std::uint64_t stride) noexcept {
  shadow_base_ = base;
  shadow_stride_ = stride == 0 ? 64 : stride;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].shadow = shadow_of(i);
  }
}

SymbolTable::Lookup SymbolTable::find_containing(sim::Addr addr) const {
  Lookup result;
  // Hand-rolled binary search so the probe sequence (and thus the simulated
  // cache footprint of the lookup) is explicit.
  std::size_t lo = 0;
  std::size_t hi = entries_.size();
  std::size_t candidate = entries_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    result.shadow_path.push_back(entries_[mid].shadow);
    if (entries_[mid].base <= addr) {
      candidate = mid;
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (candidate < entries_.size()) {
    const Entry& e = entries_[candidate];
    if (addr < e.base + e.size) {
      result.entry = &e;
      result.index = static_cast<std::uint32_t>(candidate);
    }
  }
  return result;
}

std::uint32_t SymbolTable::lower_bound(sim::Addr addr) const {
  auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), addr,
      [](const Entry& e, sim::Addr a) { return e.base < a; });
  return static_cast<std::uint32_t>(pos - entries_.begin());
}

}  // namespace hpm::objmap
