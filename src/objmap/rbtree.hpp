// Red-black interval tree over heap blocks, keyed by block base address.
//
// The paper (§2.2) keeps heap-block extents "in a red-black tree ... since
// this data will change as allocations and deallocations take place".  This
// is that tree, written from scratch.  Blocks are non-overlapping, so
// "interval" lookups reduce to: find the greatest base <= addr, then check
// the block's extent.
//
// Each node carries a *shadow address* in the simulated instrumentation
// segment.  Lookups report the shadow addresses of the nodes they visited so
// the measurement tool can replay the walk against the simulated cache —
// that is how the paper-observed perturbation effects (Figure 3) arise.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace hpm::objmap {

struct HeapBlockNode {
  sim::Addr base = 0;
  std::uint64_t size = 0;
  std::uint32_t object_id = 0;  ///< stable id in the heap object table
  sim::Addr shadow = 0;         ///< simulated address of this node's storage
};

class RbTree {
 public:
  /// Result of a tree search: the matching payload (if any) plus the shadow
  /// addresses of every node examined on the way down.
  struct Lookup {
    const HeapBlockNode* node = nullptr;
    std::vector<sim::Addr> path;  ///< shadow addresses visited, root first
  };

  /// `shadow_alloc` provides simulated storage for each node (may be null,
  /// in which case shadow addresses are 0).
  explicit RbTree(std::function<sim::Addr(std::uint64_t size)> shadow_alloc =
                      nullptr);
  ~RbTree();
  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  /// Insert a block; `base` must not already be present.
  void insert(sim::Addr base, std::uint64_t size, std::uint32_t object_id);
  /// Remove the block with this exact base; returns false if absent.
  bool erase(sim::Addr base);

  /// Find the block containing `addr` (base <= addr < base + size).
  [[nodiscard]] Lookup find_containing(sim::Addr addr) const;
  /// Find the block with the smallest base >= addr (for range traversal).
  [[nodiscard]] Lookup lower_bound(sim::Addr addr) const;
  /// Find the block with the greatest base <= addr.
  [[nodiscard]] Lookup floor(sim::Addr addr) const;

  /// In-order visit of blocks with base in [from, to); stops early if the
  /// visitor returns false.
  void visit_range(sim::Addr from, sim::Addr to,
                   const std::function<bool(const HeapBlockNode&)>& visit)
      const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Height of the tree (0 for empty); <= 2*log2(n+1) if valid.
  [[nodiscard]] std::size_t height() const noexcept;
  /// Check every red-black invariant; used by the property tests.
  [[nodiscard]] bool validate() const;

  /// First / last blocks by base (nullptr when empty).
  [[nodiscard]] const HeapBlockNode* min() const noexcept;
  [[nodiscard]] const HeapBlockNode* max() const noexcept;

 private:
  enum Color : std::uint8_t { kRed, kBlack };
  struct Node {
    HeapBlockNode payload;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
    Color color = kRed;
  };

  void rotate_left(Node* x);
  void rotate_right(Node* x);
  void insert_fixup(Node* z);
  void erase_fixup(Node* x, Node* x_parent);
  void transplant(Node* u, Node* v);
  [[nodiscard]] Node* find_node(sim::Addr base) const;
  static Node* minimum(Node* n);
  static const Node* next_in_order(const Node* n);
  void destroy(Node* n);
  [[nodiscard]] bool check_node(const Node* n, int& black_height) const;

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  std::function<sim::Addr(std::uint64_t)> shadow_alloc_;
};

}  // namespace hpm::objmap
