// Unified address -> program-object mapping, plus the region geometry
// services the n-way search depends on (snapping split points to object
// extents, counting objects overlapping a region, detecting single-object
// regions).
//
// An ObjectMap is the measurement tool's view of the program: it is fed by
// AddressSpace hooks (symbol registration, malloc/free, stack frames) and,
// when attached to a Machine, owns shadow storage in the simulated
// instrumentation segment so that lookups have a realistic cache footprint.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "objmap/heap_tracker.hpp"
#include "objmap/object_id.hpp"
#include "objmap/symbol_table.hpp"
#include "sim/address_space.hpp"
#include "sim/types.hpp"

namespace hpm::objmap {

class ObjectMap {
 public:
  ObjectMap() = default;

  /// Install hooks on `as` so this map mirrors all future allocation
  /// activity, and reserve shadow storage from the instrumentation segment.
  /// Call before the workload defines its objects.
  void attach(sim::AddressSpace& as);

  // -- Event intake (normally via attach(), callable directly in tests) -----
  void add_static(std::string_view name, sim::Addr base, std::uint64_t size);
  void add_heap_block(sim::Addr base, std::uint64_t size, sim::AllocSite site);
  void remove_heap_block(sim::Addr base);
  void push_frame(std::string_view function);
  void add_local(std::string_view name, sim::Addr base, std::uint64_t size);
  void pop_frame();

  /// Name an allocation site (related-block aggregation, §5).
  void set_site_name(sim::AllocSite site, std::string name);

  /// Register a grouping arena (normally via the AddressSpace hook when
  /// create_site_arena runs): the whole range is treated as ONE program
  /// object — resolution, boundary snapping and region object-counting all
  /// see the group instead of the individual blocks inside it, so the
  /// n-way search can consider related blocks "as a unit" (§5).
  void add_arena_group(sim::AllocSite site, sim::Addr base,
                       std::uint64_t size);

  // -- Resolution ------------------------------------------------------------
  struct Lookup {
    bool found = false;
    ObjectRef ref{};
    /// Shadow addresses of tool data examined during this lookup; the tool
    /// replays these against the simulated cache and charges cycles per
    /// probe.
    std::vector<sim::Addr> shadow_path;
  };
  [[nodiscard]] Lookup resolve(sim::Addr addr) const;

  [[nodiscard]] ObjectInfo info(ObjectRef ref) const;
  [[nodiscard]] std::string display_name(ObjectRef ref) const;
  /// Group heap blocks by named allocation site: returns a site-aggregate
  /// ObjectRef stand-in name if the block's site is named, else nullopt.
  [[nodiscard]] std::optional<std::string> site_group_name(ObjectRef ref) const;

  // -- Region geometry for the n-way search ----------------------------------
  /// Snap a proposed split point so that no object spans it.  If `candidate`
  /// falls strictly inside an object, returns the nearer of the object's
  /// base/end that still lies strictly inside `region`; if neither does, the
  /// region cannot be split there (returns region.base to signal "no split").
  [[nodiscard]] sim::Addr snap_split_point(sim::Addr candidate,
                                           sim::AddrRange region) const;

  /// Count live objects overlapping `r`, stopping at `cap`.
  [[nodiscard]] std::size_t count_objects_overlapping(
      sim::AddrRange r, std::size_t cap = SIZE_MAX) const;

  /// If exactly one live object overlaps `r`, return it.
  [[nodiscard]] std::optional<ObjectRef> single_object_in(
      sim::AddrRange r) const;

  /// Visit live objects overlapping `r` in address order.
  void for_each_overlapping(
      sim::AddrRange r,
      const std::function<bool(ObjectRef, const ObjectInfo&)>& visit) const;

  /// Tight bounding range of all live statics and heap blocks (the search's
  /// starting universe).  Empty range if no objects exist.
  [[nodiscard]] sim::AddrRange occupied_span() const;

  [[nodiscard]] std::size_t static_count() const noexcept {
    return symbols_.size();
  }
  [[nodiscard]] std::size_t heap_count() const noexcept {
    return heap_.object_count();
  }
  [[nodiscard]] const SymbolTable& symbols() const noexcept {
    return symbols_;
  }
  [[nodiscard]] const HeapTracker& heap() const noexcept { return heap_; }

 private:
  struct ActiveLocal {
    std::uint32_t aggregate = 0;
    sim::Addr base = 0;
    std::uint64_t size = 0;
    std::size_t frame = 0;
  };
  struct StackAggregate {
    std::string name;  // "function::variable"
    std::uint64_t activations = 0;
  };
  struct ArenaGroup {
    std::string name;
    sim::AddrRange range{};
    sim::AllocSite site = sim::kNoSite;
  };

  [[nodiscard]] const ArenaGroup* arena_containing(sim::Addr addr) const;

  std::uint32_t stack_aggregate_id(const std::string& key);

  SymbolTable symbols_;
  HeapTracker heap_{[this](std::uint64_t size) { return shadow_alloc(size); }};

  sim::Addr shadow_alloc(std::uint64_t size);
  sim::AddressSpace* as_ = nullptr;
  sim::Addr shadow_symbols_base_ = 0;
  static constexpr std::uint64_t kShadowSymbolCapacity = 4096;

  std::vector<std::string> frame_names_;
  std::vector<ActiveLocal> active_locals_;
  std::vector<StackAggregate> stack_aggregates_;
  std::unordered_map<std::string, std::uint32_t> stack_agg_by_key_;
  std::vector<ArenaGroup> arenas_;  // few; linear scans are fine
};

}  // namespace hpm::objmap
